"""Capacity-estimation guards: brownout recovery, purity, and overhead.

Three contracts from the performance-observability layer's design
budget:

* **Recovery** — under a 0.5x brownout on one replica, routing and
  scaling on the online estimator's live capacities recovers at least
  15% committed throughput over the declared-capacity control, on both
  executable pillars, and the estimator reports a bounded detection
  latency.
* **Estimator off is invisible** — a DES run with the estimator engaged
  (observe-only, via telemetry) is bit-identical to one without it, and
  spelling ``capacity_source="declared"`` is byte-identical to omitting
  the switch (same results, same cache keys).
* **Estimator on is nearly free** — observing a live fleet every control
  tick (counter deltas and a few EWMAs) must cost under 5% wall-clock on
  the live cluster, where real time is the measurement.
"""

from __future__ import annotations

import dataclasses
import time

from conftest import run_once

from repro.control.autoscale import autoscale_cluster, autoscale_sim
from repro.control.controller import FixedPolicy
from repro.control.trace import DiurnalTrace
from repro.engine import run_scenario
from repro.ops.plan import OpsPlan
from repro.simulator.faults import brownout_fault
from repro.telemetry import TelemetryConfig
from repro.workloads import get_workload


def _check_recovery(comparison, detection_bound):
    assert all(result.converged for result in comparison.results)
    # The headline claim: estimated capacities buy back >= 15% of the
    # throughput the declared-capacity arm loses to the brownout.
    assert comparison.recovery >= 0.15, comparison.to_text()
    latency = comparison.detection_latency
    assert latency is not None, "brownout was never gray-detected"
    assert latency <= detection_bound, comparison.to_text()


def test_capacity_recovery_simulator(benchmark, settings, fast_mode):
    """Estimated vs declared capacities under a brownout (simulator)."""
    comparison = run_once(
        benchmark,
        lambda: run_scenario("capacity-estimation", settings, jobs=1,
                             cache=None),
    )
    print("\n" + comparison.to_text())
    benchmark.extra_info["recovery"] = comparison.recovery
    benchmark.extra_info["detection_latency"] = comparison.detection_latency
    _check_recovery(comparison,
                    detection_bound=4.0 * settings.autoscale_control_interval)


def test_capacity_recovery_live_cluster(benchmark, settings, fast_mode):
    """The same claim live: a real thread pool browns out and recovers."""
    comparison = run_once(
        benchmark,
        lambda: run_scenario("capacity-estimation-live", settings, jobs=1,
                             cache=None),
    )
    print("\n" + comparison.to_text())
    benchmark.extra_info["recovery"] = comparison.recovery
    benchmark.extra_info["detection_latency"] = comparison.detection_latency
    # Live control ticks every second; detection within a handful.
    _check_recovery(comparison, detection_bound=6.0)


def test_estimator_off_results_bit_identical(benchmark):
    """Observe-only estimation never perturbs the deterministic run."""
    spec = get_workload("tpcw/shopping")
    config = spec.replication_config(1)
    trace = DiurnalTrace(base_rate=40.0, peak_rate=40.0, period=24.0)
    plan = OpsPlan(faults=(brownout_fault(1, 10.0, 10.0, severity=0.5),))
    kwargs = dict(
        design="multi-master", seed=7, warmup=4.0, duration=24.0,
        control_interval=2.0, slo_response=3.0, max_replicas=4,
        config=config, ops=plan,
    )

    def all_three():
        off = autoscale_sim(spec, trace, FixedPolicy(replicas=2), **kwargs)
        declared = autoscale_sim(spec, trace, FixedPolicy(replicas=2),
                                 capacity_source="declared", **kwargs)
        observed = autoscale_sim(spec, trace, FixedPolicy(replicas=2),
                                 telemetry=TelemetryConfig(), **kwargs)
        return off, declared, observed

    off, declared, observed = run_once(benchmark, all_three)
    # "declared" is the default spelled out: byte-identical result.
    assert declared == off
    # Telemetry engages the estimator observe-only: identical modulo
    # the recording attachments themselves.
    assert off.perf is None and observed.perf is not None
    assert observed.perf.snapshots
    assert dataclasses.replace(observed, telemetry=None, perf=None) == off


def test_estimator_live_overhead_under_five_percent(benchmark, fast_mode):
    """Per-tick counter deltas must vanish into the live pacing budget."""
    spec = get_workload("tpcw/shopping")
    config = spec.replication_config(1)
    rate = 30.0
    trace = DiurnalTrace(base_rate=rate, peak_rate=rate, period=24.0)
    kwargs = dict(
        design="multi-master", seed=7,
        warmup=2.0, duration=8.0 if fast_mode else 16.0,
        control_interval=1.0, slo_response=3.0,
        time_scale=0.1, max_replicas=3, config=config,
    )

    def timed(telemetry):
        started = time.perf_counter()
        result = autoscale_cluster(spec, trace, FixedPolicy(replicas=2),
                                   telemetry=telemetry, **kwargs)
        return time.perf_counter() - started, result

    def compare():
        # Off first: both runs then share warm code paths.
        off_seconds, off = timed(None)
        on_seconds, on = timed(TelemetryConfig())
        return off_seconds, off, on_seconds, on

    off_seconds, off, on_seconds, on = run_once(benchmark, compare)
    assert off.converged and on.converged
    assert off.perf is None
    assert on.perf is not None and on.perf.snapshots

    ratio = on_seconds / off_seconds
    benchmark.extra_info["off_seconds"] = off_seconds
    benchmark.extra_info["on_seconds"] = on_seconds
    benchmark.extra_info["overhead_ratio"] = ratio
    print(f"\nestimator overhead: off {off_seconds:.2f}s, "
          f"on {on_seconds:.2f}s, ratio {ratio:.3f}")
    assert ratio < 1.05
