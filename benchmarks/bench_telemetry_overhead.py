"""Telemetry overhead guard: disabled is free, enabled is <5%.

Two contracts from the observability layer's design budget:

* **Telemetry off** — a run without telemetry must produce results
  *identical* to an instrumented run of the same point (the recording
  hooks sit behind ``if telemetry is not None`` guards and must not
  perturb seeds, virtual clocks, or commit counts).
* **Telemetry on** — instrumenting the live cluster (metrics + spans +
  fleet snapshots) must cost less than 5% wall-clock, because the
  instrument updates are tiny compared to the cluster's scaled sleeps.

The wall-clock comparison runs on the live cluster — the only pillar
where real time is the measurement — with the simulator covered by the
result-equality check (its cost model is virtual, so overhead can only
show up as perturbed results, never as wall-clock).
"""

import dataclasses
import time

from conftest import run_once

from repro.cluster import run_cluster
from repro.simulator.runner import simulate
from repro.telemetry import TelemetryConfig
from repro.workloads import get_workload

REPLICAS = 2

#: Full tracing pressure: every transaction sampled, 0.5s snapshots.
HEAVY = TelemetryConfig(span_sample_rate=1.0, snapshot_interval=0.5)


def test_telemetry_off_results_identical(benchmark):
    spec = get_workload("tpcw/shopping")
    config = spec.replication_config(REPLICAS)
    kwargs = dict(design="multi-master", seed=7, warmup=5.0, duration=20.0)

    def both():
        off = simulate(spec, config, **kwargs)
        on = simulate(spec, config, telemetry=HEAVY, **kwargs)
        return off, on

    off, on = run_once(benchmark, both)
    assert off.telemetry is None
    assert on.telemetry is not None and on.telemetry.spans
    assert dataclasses.replace(on, telemetry=None) == off


def test_telemetry_on_live_overhead_under_five_percent(benchmark, fast_mode):
    spec = get_workload("tpcw/shopping")
    config = spec.replication_config(REPLICAS)
    kwargs = dict(
        design="multi-master", seed=7,
        warmup=2.0 if fast_mode else 4.0,
        duration=8.0 if fast_mode else 20.0,
        time_scale=0.05 if fast_mode else 0.1,
    )

    def timed(telemetry):
        started = time.perf_counter()
        result = run_cluster(spec, config, telemetry=telemetry, **kwargs)
        return time.perf_counter() - started, result

    def compare():
        # Off first: both runs then share warm code paths.
        off_seconds, off = timed(None)
        on_seconds, on = timed(HEAVY)
        return off_seconds, off, on_seconds, on

    off_seconds, off, on_seconds, on = run_once(benchmark, compare)
    assert off.converged and on.converged
    assert off.telemetry is None
    assert on.telemetry is not None and on.telemetry.timeline

    ratio = on_seconds / off_seconds
    benchmark.extra_info["off_seconds"] = off_seconds
    benchmark.extra_info["on_seconds"] = on_seconds
    benchmark.extra_info["overhead_ratio"] = ratio
    print(f"\ntelemetry overhead: off {off_seconds:.2f}s, "
          f"on {on_seconds:.2f}s, ratio {ratio:.3f}")
    # The live cluster's pacing is dominated by scaled sleeps; the
    # instrument updates must disappear into that budget.
    assert ratio < 1.05
