"""Microbenchmarks of the core components (classic pytest-benchmark style).

These time the hot paths many callers hit in a loop: the exact MVA solver,
the multiclass solver, the SI engine's commit path, the certifier, and raw
discrete-event throughput.
"""


from repro.core.rng import make_rng
from repro.models.multimaster import predict_multimaster
from repro.queueing.mva import solve_mva, solve_mva_multiclass
from repro.queueing.network import (
    ClosedNetwork,
    MulticlassNetwork,
    delay_center,
    queueing_center,
)
from repro.sidb.certifier import Certifier
from repro.sidb.engine import SIDatabase
from repro.sidb.writeset import Writeset
from repro.simulator.des import Environment, Timeout
from repro.workloads import tpcw


def test_mva_solver_speed(benchmark):
    """Exact single-class MVA, 100 clients over 3 centers."""
    network = ClosedNetwork(
        centers=(
            queueing_center("cpu", 0.035),
            queueing_center("disk", 0.013),
            delay_center("lb", 0.001),
        ),
        think_time=1.0,
    )
    solution = benchmark(solve_mva, network, 100)
    assert solution.throughput > 0


def test_multiclass_mva_speed(benchmark):
    """Exact two-class MVA over a 60x20 population lattice."""
    network = MulticlassNetwork(
        centers=(queueing_center("cpu", 0.0), queueing_center("disk", 0.0)),
        demands={"read": (0.025, 0.011), "write": (0.041, 0.049)},
        think_times={"read": 1.0, "write": 1.0},
    )
    solution = benchmark(
        solve_mva_multiclass, network, {"read": 60, "write": 20}
    )
    assert solution.total_throughput > 0


def test_multimaster_prediction_speed(benchmark, shopping_profile=None):
    """Full multi-master prediction (MVA + conflict-window fixed point)."""
    spec = tpcw.SHOPPING
    profile = spec.ground_truth_profile(
        abort_rate=0.0002, update_response_time=0.1
    )
    config = spec.replication_config(16)
    prediction = benchmark(predict_multimaster, profile, config)
    assert prediction.throughput > 0


def test_sidb_commit_path_speed(benchmark):
    """SI engine: begin/write/commit of disjoint update transactions."""
    db = SIDatabase({("row", i): 0 for i in range(1000)})
    counter = [0]

    def txn():
        t = db.begin()
        key = ("row", counter[0] % 1000)
        counter[0] += 1
        t.write(key, counter[0])
        db.commit(t)

    benchmark(txn)
    assert db.update_commits > 0


def test_certifier_speed(benchmark):
    """Certification against a deep history window."""
    certifier = Certifier()
    rng = make_rng(7)
    for i in range(1, 2001):
        keys = {("row", int(r)): i for r in rng.integers(0, 100_000, size=3)}
        certifier.certify(Writeset.from_dict(i, certifier.latest_version, keys))
    state = [certifier.latest_version]

    def certify_one():
        keys = {("row", int(r)): 0 for r in rng.integers(0, 100_000, size=3)}
        outcome = certifier.certify(
            Writeset.from_dict(0, max(0, state[0] - 50), keys)
        )
        state[0] = certifier.latest_version
        return outcome

    benchmark(certify_one)


def test_des_event_throughput(benchmark):
    """Raw event loop throughput: 10k timeout events."""

    def run():
        env = Environment()

        def ticker():
            for _ in range(10_000):
                yield Timeout(0.001)

        env.start(ticker())
        env.run_until(100.0)
        return env.now

    benchmark.pedantic(run, rounds=3, iterations=1)
