"""Auditor overhead guard: DES results identical, live cost <5%.

The online invariant auditor rides the telemetry event stream in both
executable pillars, so its budget is the same as the rest of the
observability layer:

* **Simulator** — the auditor is pure bookkeeping over commit, deliver,
  and apply events (no clocks, no randomness), so an audited DES run
  must produce results *identical* to the same point with auditing off
  — and the audit itself must come back green with real check volume.
* **Live cluster** — auditing every delivery on real threads must cost
  less than 5% wall-clock on top of a run that is already tracing at
  full span pressure.
"""

import dataclasses
import time

from conftest import run_once

from repro.cluster import run_cluster
from repro.simulator.runner import simulate
from repro.telemetry import TelemetryConfig
from repro.workloads import get_workload

REPLICAS = 2

#: Full tracing pressure without the auditor ...
TRACED = TelemetryConfig(span_sample_rate=1.0, snapshot_interval=0.5)
#: ... and the same pressure with every invariant checked online.
AUDITED = dataclasses.replace(TRACED, audit=True)


def test_audit_des_results_identical(benchmark):
    spec = get_workload("tpcw/shopping")
    config = spec.replication_config(REPLICAS)
    kwargs = dict(design="multi-master", seed=7, warmup=5.0, duration=20.0)

    def both():
        plain = simulate(spec, config, telemetry=TRACED, **kwargs)
        audited = simulate(spec, config, telemetry=AUDITED, **kwargs)
        return plain, audited

    plain, audited = run_once(benchmark, both)
    report = audited.telemetry.audit
    assert report is not None and report.ok
    assert report.total_checks > 0 and report.commits_seen > 0
    benchmark.extra_info["audit_checks"] = report.total_checks
    # Strip the telemetry attachments: everything the simulation itself
    # computed must be bit-identical with the auditor on or off.
    assert (dataclasses.replace(audited, telemetry=None)
            == dataclasses.replace(plain, telemetry=None))


def test_audit_on_live_overhead_under_five_percent(benchmark, fast_mode):
    spec = get_workload("tpcw/shopping")
    config = spec.replication_config(REPLICAS)
    kwargs = dict(
        design="multi-master", seed=7,
        warmup=2.0 if fast_mode else 4.0,
        duration=8.0 if fast_mode else 20.0,
        time_scale=0.05 if fast_mode else 0.1,
    )

    def timed(telemetry):
        started = time.perf_counter()
        result = run_cluster(spec, config, telemetry=telemetry, **kwargs)
        return time.perf_counter() - started, result

    def compare():
        # Traced-only first: both runs then share warm code paths.
        plain_seconds, plain = timed(TRACED)
        audited_seconds, audited = timed(AUDITED)
        return plain_seconds, plain, audited_seconds, audited

    plain_seconds, plain, audited_seconds, audited = run_once(
        benchmark, compare
    )
    assert plain.converged and audited.converged
    report = audited.telemetry.audit
    assert report is not None and report.ok
    assert report.deliveries_seen > 0 and report.applies_seen > 0

    ratio = audited_seconds / plain_seconds
    benchmark.extra_info["plain_seconds"] = plain_seconds
    benchmark.extra_info["audited_seconds"] = audited_seconds
    benchmark.extra_info["overhead_ratio"] = ratio
    benchmark.extra_info["audit_checks"] = report.total_checks
    print(f"\naudit overhead: traced {plain_seconds:.2f}s, "
          f"audited {audited_seconds:.2f}s, ratio {ratio:.3f} "
          f"({report.total_checks} checks)")
    # The auditor's per-event work is a few dict operations under one
    # lock — it must vanish into the cluster's scaled sleeps.
    assert ratio < 1.05
