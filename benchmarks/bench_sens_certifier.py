"""§6.3.2 sensitivity: the certifier as a delay center.

Two experiments back the paper's modelling decision:

* the group-committing certifier's latency is nearly constant (~12 ms)
  from 25 to 500 requests/s — batching absorbs load, so no queueing model
  is needed;
* predictions barely move when the certification delay is halved or
  doubled, because only update transactions pay it and it is small next to
  the think time.
"""

from conftest import run_once

from repro.experiments import certifier_capacity, certifier_delay_sensitivity


def test_certifier_latency_constant_under_load(benchmark):
    result = run_once(
        benchmark, lambda: certifier_capacity(duration=240.0)
    )
    print("\n" + result.to_text())
    latencies = [p.mean_latency for p in result.points]
    # ~half a write of waiting plus one 8 ms write: 8-14 ms at every load.
    assert all(0.008 <= latency <= 0.014 for latency in latencies)
    # Insensitive to two orders of magnitude of load (spread < 5 ms).
    assert result.latency_spread() < 0.005
    # Batching is what absorbs the load.
    assert result.points[-1].mean_batch_size > 2.0


def test_certifier_delay_sensitivity(benchmark, settings):
    result = run_once(benchmark, lambda: certifier_delay_sensitivity(settings))
    print("\n" + result.to_text())
    # Throughput is insensitive to 6 vs 24 ms certification.
    assert result.max_throughput_drop() < 0.02
