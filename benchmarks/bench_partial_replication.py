"""Benchmark: partial replication across both execution pillars.

Regenerates the partition scenarios through the engine and asserts the
headline placement claims:

* at update-heavy workloads, partial replication's peak throughput is at
  least full replication's — on the deterministic simulator AND the live
  cluster runtime — because writesets propagate only to hosting replicas
  (the ``(N-1) * Pw * ws`` ceiling of §3.3.2 becomes ``(h-1) * Pw * ws``);
* scoped propagation loses and duplicates nothing: every live replica
  converges to the identical final version, equal to the certifier's
  commit count;
* the partition-aware analytical model tracks the partial-replication
  simulator inside the cross-validation envelope;
* weight-balanced placement planning beats a weight-oblivious ring on a
  skewed partition popularity.
"""

from __future__ import annotations

from conftest import run_once

from repro.engine import run_scenario
from repro.partition.scenarios import WRITE_FRACTIONS


def test_partial_beats_full_simulator(benchmark, settings, fast_mode):
    """Partial >= full peak throughput, model inside the envelope (sim)."""
    report = run_once(
        benchmark,
        lambda: run_scenario("partial-replication-sweep", settings, jobs=1,
                             cache=None),
    )
    print("\n" + report.to_text())
    heavy = report.row_for(max(WRITE_FRACTIONS))
    assert heavy is not None
    # The placement claim, with real head-room at the update-heavy end:
    # a factor-2 ring on a 6-replica fleet cuts the propagation fan-in
    # from 5 to ~1.1, and the saturated full-replication cell pays it.
    assert heavy.sim_partial.throughput >= heavy.sim_full.throughput
    if not fast_mode:
        assert heavy.speedup >= 1.10
    # Monotone cost of replication breadth: partial never loses at any
    # swept update fraction.
    for row in report.rows:
        assert row.sim_partial.throughput >= 0.98 * row.sim_full.throughput
    # The partition-aware model tracks the partial-replication simulator
    # within the crossval envelope (25% smoke, 15% at full settings).
    for row in report.rows:
        assert row.model_vs_sim_deviation < 0.25, (
            f"Pw={row.write_fraction}: {row.model_vs_sim_deviation:.1%}"
        )
        if not fast_mode:
            assert row.model_vs_sim_deviation < 0.15


def test_partial_beats_full_live_cluster(benchmark, settings, fast_mode):
    """The same claim live, plus zero lost/duplicated writesets."""
    report = run_once(
        benchmark,
        lambda: run_scenario("partial-replication-sweep-live", settings,
                             jobs=1, cache=None),
    )
    print("\n" + report.to_text())
    full = report.cell("full")
    partial = report.cell("partial")
    assert full is not None and partial is not None
    # Peak throughput: scoped propagation wins on real threads too.
    assert partial.throughput >= full.throughput
    # Zero lost or duplicated committed writesets under partition-scoped
    # routing and propagation: every replica converged to the identical
    # final version, and that version equals the certifier's commit
    # count (each commit produced exactly one installed version).
    for result in (full, partial):
        assert result.state_converged
        commits = (result.total_certifications
                   - result.total_certification_aborts)
        assert set(result.final_versions) == {commits}


def test_placement_ablation(benchmark, settings, fast_mode):
    """Weight-balanced placement beats the oblivious ring under skew."""
    report = run_once(
        benchmark,
        lambda: run_scenario("placement-ablation", settings, jobs=1,
                             cache=None),
    )
    print("\n" + report.to_text())
    balanced = report.cell("weight-balanced")
    oblivious = report.cell("ring-oblivious")
    assert balanced is not None and oblivious is not None
    # Routing feedback can re-balance client work, but writeset
    # application is pinned to the hosts — the planner's win.
    assert balanced.throughput >= oblivious.throughput
    assert balanced.response_time <= 1.05 * oblivious.response_time
    if not fast_mode:
        assert balanced.throughput >= 1.10 * oblivious.throughput
    # The planner rendered its placement into the artifact.
    assert "imbalance" in report.plan_text


def test_placement_ablation_live(benchmark, settings, fast_mode):
    """Live validation: balanced placement at least matches the ring."""
    report = run_once(
        benchmark,
        lambda: run_scenario("placement-ablation-live", settings, jobs=1,
                             cache=None),
    )
    print("\n" + report.to_text())
    balanced = report.cell("weight-balanced")
    oblivious = report.cell("ring-oblivious")
    assert balanced is not None and oblivious is not None
    for result in (balanced, oblivious):
        assert result.state_converged
    # Thread-scheduling noise gets a small allowance; the signal is
    # one-sided (balanced never loses meaningfully).
    assert balanced.throughput >= 0.95 * oblivious.throughput
