"""Figure 12: RUBiS throughput on the single-master system.

Paper shape: browsing scales linearly (reads spread over all replicas,
master included); bidding is bounded by the master's update capacity —
adding slaves past ~4 buys almost nothing.
"""

from conftest import run_once

from repro.experiments import figure12


def test_figure12_rubis_sm_throughput(benchmark, settings, fast_mode):
    figure = run_once(benchmark, lambda: figure12(settings))
    print("\n" + figure.to_text())

    browsing = figure.series["browsing"].measured_curve()
    bidding = figure.series["bidding"].measured_curve()
    top = max(settings.replica_counts)

    if not fast_mode:
        # Browsing linear.
        assert browsing.speedup()[-1] > 0.9 * top
        # Bidding bounded by the master: the 4 -> 16 replica jump gains
        # under 25%.
        assert bidding.point_at(top).throughput < (
            1.25 * bidding.point_at(4).throughput
        )

    assert figure.max_error() < 0.15
