"""Figure 7: TPC-W response time on the multi-master system.

Paper shape: browsing stays almost flat (few updates); ordering's response
time climbs steeply as writeset processing loads every replica.  (This
benchmark reuses the Figure 6 sweep when it ran first in the session.)
"""

from conftest import run_once

from repro.experiments import figure7


def test_figure7_tpcw_mm_response_time(benchmark, settings, fast_mode):
    figure = run_once(benchmark, lambda: figure7(settings))
    print("\n" + figure.to_text())

    browsing = figure.series["browsing"].measured_curve()
    ordering = figure.series["ordering"].measured_curve()
    top = max(settings.replica_counts)

    # Browsing response is flat: spread below 1.6x across the sweep.
    b_responses = browsing.response_times
    assert max(b_responses) < 1.6 * min(b_responses)

    if not fast_mode:
        # Ordering response climbs steeply with N (writeset load).
        assert ordering.point_at(top).response_time > (
            4.0 * ordering.point_at(1).response_time
        )

    # Predicted curves track the measured ones.  Response-time errors run
    # higher than throughput errors (the model statically partitions
    # clients while the simulated balancer routes to the least-loaded
    # replica; see the lb-policy ablation).
    assert figure.max_error() < 0.40
