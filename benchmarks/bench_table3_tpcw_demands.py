"""Table 3: re-measure TPC-W service demands with the §4 profiler.

The benchmark times the full profiling pipeline (log capture, three
utilization-law replays, one mixed run) for all three TPC-W mixes and
asserts the profiler recovers the ground-truth demands within sampling
noise.
"""

from conftest import run_once

from repro.experiments import table3


def test_table3_tpcw_service_demands(benchmark, settings):
    table = run_once(benchmark, lambda: table3(settings))
    print("\n" + table.to_text())
    # The Utilization Law should recover every demand within ~10%.
    assert table.max_relative_error() < 0.10
    # Spot-check the primary mix against the paper's measured values (ms).
    shopping_cpu = next(
        row for row in table.rows
        if row.mix == "shopping" and row.resource == "cpu"
    )
    assert abs(shopping_cpu.read_measured - 41.43) / 41.43 < 0.10
    assert abs(shopping_cpu.write_measured - 12.51) / 12.51 < 0.10
