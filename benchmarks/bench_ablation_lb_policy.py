"""Ablation: load-balancer routing policy vs the model's static partition.

The prototypes route each transaction to the least-loaded replica; the
analytical model assumes a static equal split of clients ("perfect load
balancing", §3.4).  Least-loaded routing cannot beat the static split on
throughput (capacity is capacity) but shortens response times at high
utilization — the main source of the response-time prediction error.
"""

from conftest import run_once

from repro.experiments import lb_policy_ablation


def test_lb_policy_vs_model(benchmark, settings):
    rows = run_once(benchmark, lambda: lb_policy_ablation(settings))
    print()
    by_policy = {}
    for row in rows:
        by_policy[row.policy] = row
        print(
            f"  {row.policy:<13s} measured X={row.measured_throughput:7.1f} "
            f"R={row.measured_response_time*1000:6.1f}ms | predicted "
            f"X={row.predicted_throughput:7.1f} "
            f"R={row.predicted_response_time*1000:6.1f}ms"
        )
    # Throughput is routing-insensitive (within a few percent).
    throughputs = [r.measured_throughput for r in rows]
    assert max(throughputs) < 1.10 * min(throughputs)
    # Least-loaded routing achieves the best (or tied) response time.
    best = by_policy["least-loaded"].measured_response_time
    assert best <= by_policy["random"].measured_response_time * 1.02
