"""Benchmark: self-healing operations on both execution pillars.

Regenerates the operations scenarios through the engine and asserts the
headline operability claims:

* after an injected crash, automatic replacement recovers at least 90% of
  the pre-fault throughput, with zero lost or duplicated committed
  writesets (convergence + identical final versions) and a bounded MTTR —
  on both the deterministic simulator and the live cluster runtime;
* a rolling upgrade cycles the whole fleet with no SLO-violation spike
  beyond the single-replica-out envelope (measured by actually running
  the same trace on an N-1 fleet);
* on a heterogeneous fleet, capacity-aware routing at least matches
  least-loaded and beats capacity-oblivious routing by a wide margin.
"""

from __future__ import annotations

from conftest import run_once

from repro.control.autoscale import autoscale_sim
from repro.control.controller import FixedPolicy
from repro.control.scenarios import SLO_RESPONSE, _design_capacity
from repro.engine import run_scenario
from repro.ops.scenarios import FLEET, ROLLING_LOAD, _steady_trace
from repro.simulator.runner import MULTI_MASTER, SINGLE_MASTER
from repro.workloads import tpcw


def _check_selfheal(report, expected_crashes, mttr_bound):
    result, summary = report.result, report.summary
    assert summary.crashes == expected_crashes, summary
    assert summary.replacements == expected_crashes, summary
    assert summary.mttr is not None and summary.mttr <= mttr_bound, summary
    # >= 90% of pre-fault throughput after the last repair.
    assert summary.recovery_ratio >= 0.90, summary
    # Zero lost or duplicated committed writesets: every surviving
    # replica converged to the identical final version.
    assert result.converged, result
    assert len(set(result.final_versions)) <= 1, result.final_versions
    assert result.final_members == FLEET


def test_selfheal_simulator(benchmark, settings, fast_mode):
    """Crash storm + automatic replacement on both designs (simulator)."""
    comparison = run_once(
        benchmark,
        lambda: run_scenario("selfheal-crashstorm", settings, jobs=1,
                             cache=None),
    )
    print("\n" + comparison.to_text())
    mttr_bound = 3.0 * settings.autoscale_control_interval
    for design in (MULTI_MASTER, SINGLE_MASTER):
        report = comparison.report_for(design)
        assert report is not None
        _check_selfheal(report, expected_crashes=2, mttr_bound=mttr_bound)


def test_selfheal_live_cluster(benchmark, settings, fast_mode):
    """The same claim live: crash, detect, replace on real threads."""
    comparison = run_once(
        benchmark,
        lambda: run_scenario("selfheal-crashstorm-live", settings, jobs=1,
                             cache=None),
    )
    print("\n" + comparison.to_text())
    report = comparison.report_for(MULTI_MASTER)
    assert report is not None
    result, summary = report.result, report.summary
    assert summary.crashes == 1 and summary.replacements == 1, summary
    assert summary.mttr is not None and summary.mttr <= 6.0, summary
    assert summary.recovery_ratio >= 0.90, summary
    assert result.converged
    assert len(set(result.final_versions)) <= 1, result.final_versions


def _single_replica_out_envelope(settings, design):
    """SLO-violation fraction of an N-1 fleet on the rolling trace."""
    spec = tpcw.SHOPPING
    capacity = _design_capacity(design, spec, settings)
    trace = _steady_trace(ROLLING_LOAD * capacity,
                          settings.autoscale_duration)
    result = autoscale_sim(
        spec, trace, FixedPolicy(replicas=FLEET - 1),
        design=design,
        seed=settings.seed,
        warmup=settings.autoscale_warmup,
        duration=settings.autoscale_duration,
        control_interval=settings.autoscale_control_interval,
        slo_response=SLO_RESPONSE,
        max_replicas=2 * FLEET,
        config=spec.replication_config(
            1,
            load_balancer_delay=settings.load_balancer_delay,
            certifier_delay=settings.certifier_delay,
        ),
    )
    return result.slo_violation_fraction


def test_rolling_upgrade_simulator(benchmark, settings, fast_mode):
    """Rolling restart completes within the single-replica-out envelope."""
    comparison = run_once(
        benchmark,
        lambda: run_scenario("rolling-upgrade", settings, jobs=1,
                             cache=None),
    )
    print("\n" + comparison.to_text())
    for design in (MULTI_MASTER, SINGLE_MASTER):
        report = comparison.report_for(design)
        assert report is not None
        result, summary = report.result, report.summary
        cycled = FLEET if design == MULTI_MASTER else FLEET - 1
        assert summary.upgrades == cycled, summary
        assert any(e.kind == "rolling-complete" for e in result.ops_events)
        # Never more than one replica out, and back to full strength.
        assert min(p.members for p in result.timeline) >= FLEET - 1
        assert result.final_members == FLEET
        # No SLO spike beyond what permanently running one replica short
        # would produce on the same trace.
        envelope = _single_replica_out_envelope(settings, design)
        assert result.slo_violation_fraction <= envelope + 0.01, (
            f"{design}: rolling violations "
            f"{result.slo_violation_fraction:.2%} exceed the "
            f"single-replica-out envelope {envelope:.2%}"
        )
        assert result.converged


def test_rolling_upgrade_live_cluster(benchmark, settings, fast_mode):
    """Rolling restart on the live cluster: whole fleet, no divergence."""
    comparison = run_once(
        benchmark,
        lambda: run_scenario("rolling-upgrade-live", settings, jobs=1,
                             cache=None),
    )
    print("\n" + comparison.to_text())
    report = comparison.report_for(MULTI_MASTER)
    assert report is not None
    result, summary = report.result, report.summary
    assert summary.upgrades == 3, summary
    assert any(e.kind == "rolling-complete" for e in result.ops_events)
    assert min(p.members for p in result.timeline) >= 2
    assert result.slo_violation_fraction <= 0.05
    assert result.converged
    assert len(set(result.final_versions)) <= 1


def test_hetero_fleet_simulator(benchmark, settings, fast_mode):
    """Capacity-aware routing on a mixed fleet (open-loop load)."""
    comparison = run_once(
        benchmark,
        lambda: run_scenario("hetero-fleet", settings, jobs=1, cache=None),
    )
    print("\n" + comparison.to_text())
    weighted = comparison.cell("capacity-weighted")
    least = comparison.cell("least-loaded")
    oblivious = comparison.cell("random")
    assert weighted is not None and least is not None
    assert oblivious is not None
    # Capacity weighting at least matches the feedback policy...
    assert weighted.response_time <= 1.05 * least.response_time
    # ... and beats capacity-oblivious routing by a wide margin: the
    # random control saturates the half-speed box.
    assert weighted.response_time < 0.25 * oblivious.response_time
    assert weighted.throughput >= oblivious.throughput
    # The model sized the same inventory (mixed-fleet planning works).
    assert comparison.plan_text
