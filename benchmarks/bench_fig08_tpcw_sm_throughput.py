"""Figure 8: TPC-W throughput on the single-master system.

Paper shape: browsing scales linearly (the master's spare capacity absorbs
the few updates, and extra reads run on the master); ordering saturates as
soon as the master becomes the bottleneck (~4 replicas) and stays flat.
"""

from conftest import run_once

from repro.experiments import figure8


def test_figure8_tpcw_sm_throughput(benchmark, settings, fast_mode):
    figure = run_once(benchmark, lambda: figure8(settings))
    print("\n" + figure.to_text())

    browsing = figure.series["browsing"].measured_curve()
    ordering = figure.series["ordering"].measured_curve()
    top = max(settings.replica_counts)

    if not fast_mode:
        # Browsing: near-linear scaling.
        assert browsing.speedup()[-1] > 0.8 * top
        # Ordering: saturated by the master — the last doubling of
        # replicas buys under 15% more throughput.
        assert ordering.point_at(top).throughput < (
            1.15 * ordering.point_at(4).throughput
        )
        # The saturation plateau sits near twice the master's update
        # capacity (updates are half the committed transactions).
        assert 100 < ordering.point_at(top).throughput < 200

    assert figure.max_error() < 0.15
