"""Cross-validation drift benchmark: live cluster vs simulator vs model.

Runs the three-pillar comparison for one TPC-W shopping multi-master
point and records the per-pillar throughputs and their deviation from the
simulator, so future PRs can track drift between the execution engines.
The live cluster must stay within 25% of the simulator's throughput (the
smoke criterion) and its replicas must converge to identical state.
"""

from conftest import run_once

from repro.experiments import cross_validate
from repro.workloads import get_workload

#: The multi-master point tracked for drift (kept small: the live cluster
#: spawns one thread per client).
REPLICAS = 2


def test_crossval_cluster_deviation(benchmark, fast_mode):
    spec = get_workload("tpcw/shopping")
    config = spec.replication_config(REPLICAS)
    result = run_once(
        benchmark,
        lambda: cross_validate(
            spec,
            config,
            design="multi-master",
            sim_warmup=10.0,
            sim_duration=40.0,
            cluster_warmup=3.0 if fast_mode else 5.0,
            cluster_duration=10.0 if fast_mode else 25.0,
            time_scale=0.05 if fast_mode else 0.1,
        ),
    )
    print("\n" + result.to_text())

    deviations = result.deviations()
    benchmark.extra_info["model_tput_dev"] = deviations["model"]["throughput"]
    benchmark.extra_info["cluster_tput_dev"] = (
        deviations["cluster"]["throughput"]
    )
    benchmark.extra_info["cluster_resp_dev"] = (
        deviations["cluster"]["response_time"]
    )

    # Replication correctness: every live replica converged to the same
    # version after quiesce.
    assert result.state_converged

    # The live cluster tracks the simulator (smoke criterion: 25%); the
    # model tracks it within the paper's validation margin ballpark.
    assert deviations["cluster"]["throughput"] < 0.25
    assert deviations["model"]["throughput"] < 0.25
    if not fast_mode:
        assert deviations["cluster"]["throughput"] < 0.15
