"""Figure 9: TPC-W response time on the single-master system.

Paper shape: browsing and shopping stay almost flat; ordering's response
time climbs rapidly after ~4 replicas as clients queue at the saturated
master.
"""

from conftest import run_once

from repro.experiments import figure9


def test_figure9_tpcw_sm_response_time(benchmark, settings, fast_mode):
    figure = run_once(benchmark, lambda: figure9(settings))
    print("\n" + figure.to_text())

    browsing = figure.series["browsing"].measured_curve()
    ordering = figure.series["ordering"].measured_curve()
    top = max(settings.replica_counts)

    # Browsing response flat.
    b_responses = browsing.response_times
    assert max(b_responses) < 1.6 * min(b_responses)

    if not fast_mode:
        # Ordering response explodes once the master saturates: by 16
        # replicas clients wait many times the single-replica latency.
        assert ordering.point_at(top).response_time > (
            10.0 * ordering.point_at(1).response_time
        )
        # And the knee is past 4 replicas (flat-ish before, steep after).
        assert ordering.point_at(4).response_time < (
            0.3 * ordering.point_at(top).response_time
        )

    # Relative response errors are leveraged: with R = N/X - Z, a few
    # percent of throughput error becomes tens of percent of response error
    # whenever R << Z (the flat low-load region of these curves).
    assert figure.max_error() < 0.60
