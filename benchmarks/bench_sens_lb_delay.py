"""§6.3.1 sensitivity: load-balancer and network delay.

The paper argues the ~1 ms LB/network delay is negligible; sweeping it to
10 ms moves predicted throughput by well under 1%.
"""

from conftest import run_once

from repro.experiments import lb_delay_sensitivity


def test_lb_delay_sensitivity(benchmark, settings):
    result = run_once(benchmark, lambda: lb_delay_sensitivity(settings))
    print("\n" + result.to_text())
    # Sub-millisecond to 10 ms: predicted throughput moves < 1%.
    assert result.max_throughput_drop() < 0.01
    # Model and simulator agree at every probed delay.
    for row in result.rows:
        error = abs(row.predicted_throughput - row.measured_throughput)
        assert error / row.measured_throughput < 0.10
