"""Engine speedup benchmark: serial vs parallel wall-clock.

Runs one fig06-sized validation sweep (TPC-W, multi-master: every mix ×
replica count × {model, simulator} plus the standalone profiling runs)
twice from a cold cache — once with ``jobs=1`` and once fanned out over a
process pool — and records the wall-clock ratio.  Guards against future
serialization regressions (e.g. a point payload growing an unpicklable or
huge field, or the runner accidentally forcing a barrier): the parallel
artifact must be *identical* to the serial one, and on a multi-core
machine the sweep must actually get faster.
"""

from __future__ import annotations

import os
import time

from conftest import run_once

from repro.engine import clear_memo, execute_points
from repro.experiments import ExperimentSettings, clear_cache
from repro.experiments.figures import assemble_sweep, sweep_points

#: Workers used for the parallel leg (the acceptance target is 4).
JOBS = min(4, os.cpu_count() or 1)


def _sweep_settings(fast_mode: bool) -> ExperimentSettings:
    if fast_mode:
        return ExperimentSettings.fast()
    # Fig06-sized: the full mix grid at the benchmark suite's counts.
    return ExperimentSettings(
        replica_counts=(1, 2, 4, 6, 8, 16),
        sim_warmup=10.0,
        sim_duration=45.0,
    )


def _timed_sweep(settings: ExperimentSettings, jobs: int):
    """Cold-run the sweep (profiling included) and time it."""
    clear_memo()
    clear_cache()
    points = sweep_points("tpcw", "multi-master", settings)
    started = time.perf_counter()
    results = execute_points(points, jobs=jobs)
    elapsed = time.perf_counter() - started
    return assemble_sweep(settings, points, results), elapsed


def test_engine_parallel_speedup(benchmark, fast_mode):
    settings = _sweep_settings(fast_mode)

    def both():
        serial_result, serial_s = _timed_sweep(settings, jobs=1)
        parallel_result, parallel_s = _timed_sweep(settings, jobs=JOBS)
        return serial_result, serial_s, parallel_result, parallel_s

    serial_result, serial_s, parallel_result, parallel_s = run_once(
        benchmark, both
    )
    ratio = serial_s / parallel_s if parallel_s > 0 else float("inf")
    benchmark.extra_info["jobs"] = JOBS
    benchmark.extra_info["serial_s"] = round(serial_s, 2)
    benchmark.extra_info["parallel_s"] = round(parallel_s, 2)
    benchmark.extra_info["speedup"] = round(ratio, 2)
    print(f"\nserial {serial_s:.1f}s vs jobs={JOBS} {parallel_s:.1f}s "
          f"-> speedup {ratio:.2f}x")

    # Parallel execution must not change the artifact.
    assert parallel_result == serial_result

    # On a machine with the cores to show it, the fan-out must pay off
    # (acceptance target: >= 2x at 4 workers; 1.5x here absorbs CI noise).
    if not fast_mode and JOBS >= 4:
        assert ratio >= 1.5
