"""§6.2 headline claim: predictions within 15% of measurements.

Aggregates |predicted - measured| / measured over every point of the
throughput figures (6, 8, 10, 12) across both benchmarks and both designs.
"""

from conftest import run_once

from repro.experiments import error_margin


def test_error_margin_within_paper_claim(benchmark, settings):
    result = run_once(benchmark, lambda: error_margin(settings))
    print("\n" + result.to_text())
    # The paper reports performance predictions within 15%.
    assert result.max_throughput_error < 0.15
    assert result.mean_throughput_error < 0.08
