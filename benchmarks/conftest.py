"""Shared fixtures for the benchmark suite.

Each benchmark regenerates one paper artifact (table or figure) end to end:
standalone profiling -> analytical prediction -> discrete-event measurement
-> comparison.  ``pytest-benchmark`` times the regeneration; the assertions
check the *shape* of the reproduced result against the paper (who wins, by
roughly what factor, where crossovers fall).

Every benchmark drives the shared scenario engine
(:mod:`repro.engine`), whose per-process memo keys sweep points by
content: figure pairs sharing runs (6/7, 8/9, 10/11, 12/13) pay for
their sweep once — the first benchmark of each pair carries the cost.
``bench_engine_speedup`` additionally times the same sweep serial vs
fanned out over a process pool.

Set ``REPRO_BENCH_FAST=1`` to run a cut-down sweep (fewer replica counts,
shorter windows) for smoke-testing the harness itself.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.settings import ExperimentSettings


def _settings() -> ExperimentSettings:
    if os.environ.get("REPRO_BENCH_FAST"):
        return ExperimentSettings.fast()
    # Longer windows than the defaults: saturated single-master points need
    # the measurement window to dwarf the multi-second write response times,
    # or the committed mix is transiently read-biased.
    return ExperimentSettings(
        replica_counts=(1, 2, 4, 6, 8, 16),
        sim_warmup=25.0,
        sim_duration=90.0,
    )


@pytest.fixture(scope="session")
def settings() -> ExperimentSettings:
    """Experiment fidelity used by every benchmark in the session."""
    return _settings()


@pytest.fixture(scope="session")
def fast_mode() -> bool:
    """Whether the cut-down sweep is active (loosens shape assertions)."""
    return bool(os.environ.get("REPRO_BENCH_FAST"))


def run_once(benchmark, fn):
    """Time *fn* exactly once (experiments are deterministic and heavy)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
