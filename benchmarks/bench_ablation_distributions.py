"""Ablation: MVA's exponential-service assumption (§3.4, assumption 6).

The simulator draws deterministic and lognormal (CV=1) service demands
instead of exponential ones.  The processor-sharing CPU is insensitive to
the distribution and the disk load is moderate, so predictions hold up.
"""

from conftest import run_once

from repro.experiments import distribution_ablation


def test_service_distribution_sensitivity(benchmark, settings):
    rows = run_once(benchmark, lambda: distribution_ablation(settings))
    print()
    for row in rows:
        print(
            f"  {row.distribution:<14s} measured={row.measured_throughput:7.1f} "
            f"predicted={row.predicted_throughput:7.1f} "
            f"err={row.relative_error:.1%}"
        )
        assert row.relative_error < 0.10
