"""Tables 2 and 4: benchmark workload parameters (inputs of the study)."""

from conftest import run_once

from repro.experiments import table2, table4


def test_table2_tpcw_parameters(benchmark):
    table = run_once(benchmark, table2)
    print("\n" + table.to_text())
    rows = {row.mix: row for row in table.rows}
    assert rows["browsing"].read_fraction == 0.95
    assert rows["shopping"].write_fraction == 0.20
    assert rows["ordering"].clients_per_replica == 50


def test_table4_rubis_parameters(benchmark):
    table = run_once(benchmark, table4)
    print("\n" + table.to_text())
    rows = {row.mix: row for row in table.rows}
    assert rows["browsing"].write_fraction == 0.0
    assert rows["bidding"].write_fraction == 0.20
    assert all(row.think_time_ms == 1000.0 for row in table.rows)
