"""Ablation: one-step-lag conflict window (the paper's §4.1.1 scheme) vs a
converged per-population fixed point.

The paper notes its scheme "slightly underestimates the abort probability";
the converged fixed point confirms the bias is tiny at TPC-W abort rates.
"""

from conftest import run_once

from repro.experiments import conflict_window_ablation


def test_conflict_window_one_step_lag_vs_fixed_point(benchmark, settings):
    rows = run_once(benchmark, lambda: conflict_window_ablation(settings))
    print()
    for row in rows:
        print(
            f"  N={row.replicas:>2d} lag={row.one_step_lag_abort:.4%} "
            f"fixed={row.fixed_point_abort:.4%}"
        )
        # The lagged estimate never exceeds the converged one ...
        assert row.one_step_lag_abort <= row.fixed_point_abort * (1 + 1e-6)
        # ... and the two agree within 5% relative at TPC-W abort rates.
        if row.fixed_point_abort > 0:
            gap = (row.fixed_point_abort - row.one_step_lag_abort)
            assert gap / row.fixed_point_abort < 0.05
