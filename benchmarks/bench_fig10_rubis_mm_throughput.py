"""Figure 10: RUBiS throughput on the multi-master system.

Paper shape: browsing (100% read-only) scales linearly; bidding flattens
early — peaking around 6 replicas in the paper — because applying a RUBiS
writeset (index maintenance, integrity constraints) costs almost as much
disk time as the original update, so update propagation consumes the
replicas' capacity.
"""

from conftest import run_once

from repro.experiments import figure10


def test_figure10_rubis_mm_throughput(benchmark, settings, fast_mode):
    figure = run_once(benchmark, lambda: figure10(settings))
    print("\n" + figure.to_text())

    browsing = figure.series["browsing"].measured_curve()
    bidding = figure.series["bidding"].measured_curve()
    top = max(settings.replica_counts)

    if not fast_mode:
        # Browsing: linear scaling (no updates at all).
        assert browsing.speedup()[-1] > 0.9 * top
        # Bidding: severely writeset-bound — under 4x at 16 replicas.
        assert bidding.speedup()[-1] < 4.5
        # Most of bidding's gains arrive by ~6 replicas (the paper's peak).
        assert bidding.point_at(top).throughput < (
            1.3 * bidding.point_at(6).throughput
        )

    assert figure.max_error() < 0.15
