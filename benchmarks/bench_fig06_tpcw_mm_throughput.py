"""Figure 6: TPC-W throughput on the multi-master system.

Paper shape: browsing scales almost linearly (22 -> 347 tps, 15.7x at 16
replicas); ordering starts higher (45 tps — updates are cheaper than reads)
but writeset propagation limits it to ~6.7x; predictions track measurements
within 15%.
"""

from conftest import run_once

from repro.experiments import figure6


def test_figure6_tpcw_mm_throughput(benchmark, settings, fast_mode):
    figure = run_once(benchmark, lambda: figure6(settings))
    print("\n" + figure.to_text())

    browsing = figure.series["browsing"].measured_curve()
    ordering = figure.series["ordering"].measured_curve()
    top = max(settings.replica_counts)

    # Ordering starts above browsing at one replica: read-only transactions
    # are more expensive than updates in TPC-W (§6.2.1).
    assert ordering.point_at(1).throughput > browsing.point_at(1).throughput

    if not fast_mode:
        # Browsing: near-linear speedup; ordering: writeset-bound.
        browsing_speedup = browsing.speedup()[-1]
        ordering_speedup = ordering.speedup()[-1]
        assert browsing_speedup > 0.8 * top
        assert ordering_speedup < 0.6 * top
        assert browsing_speedup > ordering_speedup

    # Predictions track measurements (the paper reports <= 15%).
    assert figure.max_error() < 0.15
