"""Figure 14: multi-master abort probability under raised conflict rates.

The §6.3.3 experiment: a high-conflict heap table is added to TPC-W
shopping, sized so the standalone abort rate A1 hits 0.24%, 0.53% and
0.90%.  Paper result: measured abort rates at 16 replicas of roughly 10%,
17% and 29%; the model captures the growth trend but under-estimates at the
largest rates.
"""

from conftest import run_once

from repro.experiments import figure14

#: The paper's measured A16 values per A1 target (§6.3.3).
PAPER_A16 = {0.0024: 0.10, 0.0053: 0.17, 0.0090: 0.29}


def test_figure14_abort_probability_scaling(benchmark, settings, fast_mode):
    result = run_once(benchmark, lambda: figure14(settings))
    print("\n" + result.to_text())

    top = max(settings.replica_counts)
    for curve in result.curves:
        # The calibrated heap table reaches the target A1 (within noise).
        assert 0.5 * curve.target_a1 <= curve.measured_a1 <= 1.6 * curve.target_a1
        # Abort probability grows with the replica count.
        assert curve.measured[-1] > curve.measured[0]
        assert list(curve.predicted) == sorted(curve.predicted)

    if not fast_mode and top >= 16:
        for curve in result.curves:
            paper = PAPER_A16[curve.target_a1]
            measured_16 = curve.measured[-1]
            # Measured A16 lands in the paper's ballpark (within ~45%).
            assert 0.55 * paper < measured_16 < 1.45 * paper

    # Higher A1 -> uniformly higher abort curves.
    by_target = sorted(result.curves, key=lambda c: c.target_a1)
    for weaker, stronger in zip(by_target, by_target[1:]):
        assert stronger.measured[-1] > weaker.measured[-1]
        assert stronger.predicted[-1] > weaker.predicted[-1]
