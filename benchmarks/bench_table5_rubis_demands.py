"""Table 5: re-measure RUBiS service demands with the §4 profiler."""

from conftest import run_once

from repro.experiments import table5


def test_table5_rubis_service_demands(benchmark, settings):
    table = run_once(benchmark, lambda: table5(settings))
    print("\n" + table.to_text())
    assert table.max_relative_error() < 0.10
    # §6.2.2: writeset application for bidding is disk-heavy — the measured
    # writeset disk demand must stay close to the update disk demand.
    bidding_disk = next(
        row for row in table.rows
        if row.mix == "bidding" and row.resource == "disk"
    )
    assert bidding_disk.writeset_measured > 0.6 * bidding_disk.write_measured
