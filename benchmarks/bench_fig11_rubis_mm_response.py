"""Figure 11: RUBiS response time on the multi-master system.

Paper shape: browsing stays flat; bidding's response time grows steeply
with N as writeset application competes with client transactions for the
disk.  The model tracks both curves.
"""

from conftest import run_once

from repro.experiments import figure11


def test_figure11_rubis_mm_response_time(benchmark, settings, fast_mode):
    figure = run_once(benchmark, lambda: figure11(settings))
    print("\n" + figure.to_text())

    browsing = figure.series["browsing"].measured_curve()
    bidding = figure.series["bidding"].measured_curve()
    top = max(settings.replica_counts)

    # Browsing flat.
    b_responses = browsing.response_times
    assert max(b_responses) < 1.6 * min(b_responses)

    if not fast_mode:
        # Bidding response grows severalfold across the sweep.
        assert bidding.point_at(top).response_time > (
            5.0 * bidding.point_at(1).response_time
        )

    assert figure.max_error() < 0.25
