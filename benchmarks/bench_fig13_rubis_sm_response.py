"""Figure 13: RUBiS response time on the single-master system.

Paper shape: browsing flat; bidding climbs as clients queue behind the
saturated master.  The model over-predicts bidding response at high N (it
slightly under-predicts throughput there), so the error band is looser than
for throughput.
"""

from conftest import run_once

from repro.experiments import figure13


def test_figure13_rubis_sm_response_time(benchmark, settings, fast_mode):
    figure = run_once(benchmark, lambda: figure13(settings))
    print("\n" + figure.to_text())

    browsing = figure.series["browsing"].measured_curve()
    bidding = figure.series["bidding"].measured_curve()
    top = max(settings.replica_counts)

    b_responses = browsing.response_times
    assert max(b_responses) < 1.6 * min(b_responses)

    if not fast_mode:
        assert bidding.point_at(top).response_time > (
            5.0 * bidding.point_at(1).response_time
        )

    assert figure.max_error() < 0.55
