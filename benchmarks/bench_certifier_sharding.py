"""Benchmark: certifier sharding across both executable pillars.

Regenerates the ``certifier-sharding`` scenarios through the engine and
asserts the PR's headline write-path claims:

* at a high update fraction (TPC-W ordering, Pw=0.5) on many partitions
  (8 certifier shards), the sharded certifier's throughput strictly
  dominates the global sequencer's — on the deterministic simulator AND
  the live cluster runtime — because per-partition shards serialize only
  same-partition commits while the global certifier serializes all of
  them;
* the sharded model cell tracks the sharded simulator cell inside the
  cross-validation envelope (the analytic ``s_eff`` shard-parallelism
  term is calibrated, not decorative);
* distributed cross-partition commit loses and duplicates nothing:
  every live replica converges to the identical final version, equal to
  the certifier's commit count, under both protocols.
"""

from __future__ import annotations

from conftest import run_once

from repro.engine import run_scenario


def test_sharded_beats_global_simulator(benchmark, settings, fast_mode):
    """Sharded > global throughput on the DES, model in the envelope."""
    report = run_once(
        benchmark,
        lambda: run_scenario("certifier-sharding", settings, jobs=1,
                             cache=None),
    )
    print("\n" + report.to_text())
    # The tentpole claim on the deterministic pillar: strict dominance,
    # with real head-room at full fidelity.
    assert report.speedup("sim") > 1.0
    if not fast_mode:
        assert report.speedup("sim") >= 1.05
    # The analytic model agrees on the direction and tracks both arms.
    assert report.speedup("model") > 1.0
    for arm in ("global", "sharded"):
        sim = report.cell(f"sim-{arm}").throughput
        model = report.cell(f"model-{arm}").throughput
        assert abs(model - sim) / sim < 0.25, (
            f"{arm}: model {model:.1f} tps vs sim {sim:.1f} tps"
        )


def test_sharded_beats_global_live_cluster(benchmark, settings, fast_mode):
    """The same claim on real threads, plus zero lost/duplicated commits."""
    report = run_once(
        benchmark,
        lambda: run_scenario("certifier-sharding-live", settings, jobs=1,
                             cache=None),
    )
    print("\n" + report.to_text())
    assert report.speedup("live") > 1.0
    if not fast_mode:
        assert report.speedup("live") >= 1.2
    # Zero lost or duplicated committed writesets under either protocol.
    # ``state_converged`` is the strong check: quiesce compares every
    # replica's applied vector against the certifier's version vector
    # lane by lane, so a shard channel dropping one writeset stalls
    # convergence and a replayed one overruns its lane's clock.
    for label in ("live-global", "live-sharded"):
        result = report.cell(label)
        assert result is not None
        assert result.state_converged, label
    # On the global path the scalar invariant is exact: one installed
    # version per commit, identical on every replica.
    global_ = report.cell("live-global")
    commits = (global_.total_certifications
               - global_.total_certification_aborts)
    assert set(global_.final_versions) == {commits}
    # On the sharded path each commit appends one version per *touched
    # shard*, so the summed watermark exceeds the commit count by
    # exactly the cross-partition commits: strictly more than the
    # commits (the workload has cross-partition traffic), never more
    # than twice (coordinated writesets touch two shards).
    sharded = report.cell("live-sharded")
    commits = (sharded.total_certifications
               - sharded.total_certification_aborts)
    assert len(set(sharded.final_versions)) == 1
    applied = sharded.final_versions[0]
    assert commits < applied <= 2 * commits
