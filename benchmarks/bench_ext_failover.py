"""Extension benchmark: failover behaviour of the multi-master system.

Beyond the paper's evaluation: crash 1 of 4 replicas mid-run.  The
degraded-phase throughput should match the model's N-1 prediction — i.e.
the standalone-profiling methodology also predicts *degraded-mode*
capacity, which is what an operator sizing for fault tolerance needs.
"""

from conftest import run_once

from repro.experiments import failover_experiment
from repro.workloads import tpcw


def test_failover_degraded_capacity_predicted(benchmark, settings):
    result = run_once(
        benchmark,
        lambda: failover_experiment(
            tpcw.SHOPPING,
            design="multi-master",
            replicas=4,
            settings=settings,
            phase_length=30.0,
        ),
    )
    print("\n" + result.to_text())
    # The dip is real and roughly one replica's worth of capacity.
    assert 0.10 < result.dip_fraction < 0.40
    # The N and N-1 predictions call both plateaus within 10%.
    assert abs(result.before - result.predicted_healthy) < (
        0.10 * result.predicted_healthy
    )
    assert abs(result.during - result.predicted_degraded) < (
        0.10 * result.predicted_degraded
    )
    # Full recovery after the replica returns and catches up.
    assert result.recovered
