"""Ablation: exact MVA vs Schweitzer's approximation.

Exact MVA costs O(population) per solve and is what the paper uses; the
fixed-point approximation errs most around the saturation knee (~4% on the
TPC-W shopping network) — enough to matter when predictions claim 15%
accuracy, which is why the reproduction defaults to exact.
"""

from conftest import run_once

from repro.experiments import mva_ablation


def test_mva_exact_vs_schweitzer(benchmark):
    rows = run_once(benchmark, mva_ablation)
    print()
    worst = 0.0
    for row in rows:
        print(
            f"  n={row.population:>4d} exact={row.exact_throughput:8.2f} "
            f"approx={row.approximate_throughput:8.2f} "
            f"err={row.relative_error:.2%}"
        )
        worst = max(worst, row.relative_error)
    # Schweitzer is good but not exact: visible error near the knee...
    assert worst > 0.01
    # ... yet bounded everywhere.
    assert worst < 0.10
