"""Extension benchmark: open vs closed arrivals ([Schroeder 2006], §3.1).

Validates the paper's choice of the closed-loop client model: at matched
loads below the knee the two agree, while past capacity the open queue
diverges and the closed system degrades gracefully.
"""

from conftest import run_once

from repro.experiments import open_vs_closed
from repro.workloads import tpcw


def test_open_vs_closed_arrivals(benchmark, settings):
    result = run_once(benchmark, lambda: open_vs_closed(tpcw.SHOPPING, settings))
    print("\n" + result.to_text())
    rows = {round(row.load_fraction, 2): row for row in result.rows}

    # Light load: both models agree within ~50 ms.
    light = rows[0.5]
    assert abs(light.open_response - light.closed_response) < 0.05

    # Overload: the open queue diverges, the closed loop self-throttles.
    overload = rows[1.1]
    assert overload.open_response > 3.0 * overload.closed_response
    assert overload.closed_response < 1.0  # bounded by the population
