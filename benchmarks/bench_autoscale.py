"""Benchmark: the autoscaling control plane under trace-driven load.

Regenerates the ``autoscale-diurnal`` policy comparison (simulator pillar)
and a live-cluster diurnal run through the scenario engine, then asserts
the headline result of the control plane: model-feedforward provisioning
saves at least 20% replica-hours against static peak provisioning at
equal-or-fewer SLO violations — on both execution pillars — while every
run converges (membership churn never loses or duplicates a committed
writeset).
"""

from __future__ import annotations

from conftest import run_once

from repro.engine import run_scenario
from repro.simulator.runner import MULTI_MASTER, SINGLE_MASTER


def _check_savings(comparison, design, minimum, slack=0.0):
    feedforward = comparison.result_for(design, "feedforward")
    static = comparison.result_for(design, "static-peak")
    assert feedforward is not None and static is not None
    assert feedforward.converged and static.converged
    savings = feedforward.savings_vs(static)
    assert savings >= minimum, (
        f"{design}: feedforward saved only {savings:.1%} replica-hours "
        f"vs static peak (need >= {minimum:.0%})"
    )
    assert (feedforward.slo_violation_fraction
            <= static.slo_violation_fraction + slack), (
        f"{design}: feedforward violated the SLO more often "
        f"({feedforward.slo_violation_fraction:.2%} vs "
        f"{static.slo_violation_fraction:.2%})"
    )
    return savings


def test_autoscale_diurnal_simulator(benchmark, settings, fast_mode):
    """Feedforward vs static peak on the deterministic simulator pillar."""
    comparison = run_once(
        benchmark,
        lambda: run_scenario("autoscale-diurnal", settings, jobs=1,
                             cache=None),
    )
    for design in (MULTI_MASTER, SINGLE_MASTER):
        _check_savings(comparison, design, minimum=0.20)
        # The reactive baseline exists and converged too.
        reactive = comparison.result_for(design, "reactive")
        assert reactive is not None and reactive.converged


def test_autoscale_flashcrowd_simulator(benchmark, settings, fast_mode):
    """A flash crowd: the forecast-driven policy pre-scales for the spike."""
    comparison = run_once(
        benchmark,
        lambda: run_scenario("autoscale-flashcrowd", settings, jobs=1,
                             cache=None),
    )
    for design in (MULTI_MASTER, SINGLE_MASTER):
        # The spike is short, so savings are even larger than diurnal.
        _check_savings(comparison, design, minimum=0.25)


def test_autoscale_diurnal_live_cluster(benchmark, settings, fast_mode):
    """The same claim on the live cluster: real threads, real membership.

    Live runs carry scheduler noise, so the SLO comparison gets a small
    slack; the replica-hours claim stays at the full 20%.
    """
    comparison = run_once(
        benchmark,
        lambda: run_scenario("autoscale-diurnal-live", settings, jobs=1,
                             cache=None),
    )
    savings = _check_savings(comparison, MULTI_MASTER, minimum=0.20,
                             slack=0.01)
    # Replication correctness under churn: every run converged with
    # identical final versions across replicas.
    for result in comparison.results:
        assert result.converged, result.policy
        assert len(set(result.final_versions)) <= 1
    assert savings < 1.0
