"""Regenerate every paper artifact and dump the results to a text report.

Thin wrapper over :func:`repro.experiments.full_report`; used to populate
EXPERIMENTS.md and to calibrate the benchmark assertions.
"""

from __future__ import annotations

import sys

from repro.experiments import ExperimentSettings, full_report


def main() -> int:
    fast = "--fast" in sys.argv
    settings = ExperimentSettings.fast() if fast else ExperimentSettings()
    report = full_report(
        settings, progress=lambda line: print(line, file=sys.stderr)
    )
    with open("results_full.txt", "w") as handle:
        handle.write(report)
    print(report)
    return 0


if __name__ == "__main__":
    sys.exit(main())
