"""Compare a pytest-benchmark JSON run against the committed baseline.

Usage::

    python scripts/check_bench_regression.py CURRENT.json BASELINE.json

Benchmarks are matched by fully-qualified test name.  Because the
baseline and the nightly run execute on different hardware, raw times
are not comparable: the gate first estimates the host-speed factor as
the *median* per-benchmark ratio (current / baseline), then flags any
benchmark whose normalized ratio exceeds ``1 + threshold`` — i.e. a
benchmark that got more than 10% slower *relative to the suite as a
whole*.  A uniform slowdown (slower runner) passes; a single benchmark
regressing does not.

Exit status: 0 when clean, 1 on regression, 2 on unusable input.
"""

import argparse
import json
import statistics
import sys


def load_means(path):
    """Read {test name: mean seconds} from a pytest-benchmark JSON file."""
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as exc:
        print(f"cannot read {path}: {exc}", file=sys.stderr)
        raise SystemExit(2)
    means = {}
    for bench in payload.get("benchmarks", []):
        stats = bench.get("stats") or {}
        mean = stats.get("mean")
        if mean and mean > 0:
            means[bench["fullname"]] = float(mean)
    return means


def build_parser():
    """The command-line interface of the gate."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", help="freshly produced benchmark JSON")
    parser.add_argument("baseline", help="committed baseline JSON")
    threshold_help = "allowed normalized slowdown (default 10%%)"
    parser.add_argument("--threshold", type=float, default=0.10, help=threshold_help)
    min_help = "ignore benchmarks faster than this in the baseline (timer noise)"
    parser.add_argument("--min-seconds", type=float, default=0.5, help=min_help)
    return parser


def main(argv=None):
    """Run the gate; returns the process exit status."""
    args = build_parser().parse_args(argv)
    current = load_means(args.current)
    baseline = load_means(args.baseline)
    shared = sorted(set(current) & set(baseline))
    comparable = [n for n in shared if baseline[n] >= args.min_seconds]
    if not comparable:
        print("no comparable benchmarks between the two runs", file=sys.stderr)
        return 2

    ratios = {n: current[n] / baseline[n] for n in comparable}
    host_factor = statistics.median(ratios.values())
    counts = f"{len(comparable)} comparable benchmarks ({len(shared)} shared)"
    print(f"{counts}; host-speed factor {host_factor:.2f}x vs baseline")

    failures = []
    for name in comparable:
        normalized = ratios[name] / host_factor
        regressed = normalized > 1 + args.threshold
        marker = " <-- REGRESSION" if regressed else ""
        times = f"{current[name]:9.2f}s (baseline {baseline[name]:9.2f}s)"
        print(f"  {normalized:6.2f}x  {times}  {name}{marker}")
        if regressed:
            failures.append(name)

    for name in sorted(set(baseline) - set(current)):
        print(f"  WARNING: baseline benchmark did not run: {name}")

    if failures:
        detail = f"{len(failures)} benchmark(s) regressed more than"
        print(f"\nFAIL: {detail} {args.threshold:.0%}", file=sys.stderr)
        return 1
    print(f"\nPASS: no benchmark regressed more than {args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
