"""Load-balancer policy tests under skewed load — simulator and cluster.

Covers the four routing policies (least-loaded, pinned, random,
conflict-aware) at the unit level with synthetic skew, and end-to-end in
both the discrete-event simulator and the live cluster runtime.  The key
property: the conflict-aware policy never routes an update to a lagging
replica (one whose ``applied_version`` trails the freshest available
replica).
"""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.cluster import LoadBalancer, run_cluster
from repro.cluster.balancer import CONFLICT_AWARE, LEAST_LOADED, PINNED, RANDOM
from repro.core import rng as rng_util
from repro.core.params import ConflictProfile, ReplicationConfig, WorkloadMix
from repro.simulator.des import Environment
from repro.simulator.runner import simulate
from repro.simulator.stats import MetricsCollector
from repro.simulator.systems import LB_POLICIES, MultiMasterSystem
from repro.workloads.spec import WorkloadSpec, demands_ms


@pytest.fixture(scope="module")
def tiny_spec():
    return WorkloadSpec(
        benchmark="micro",
        mix_name="lb-tiny",
        mix=WorkloadMix(read_fraction=0.6, write_fraction=0.4),
        demands=demands_ms(
            read_cpu=3.0, read_disk=1.0,
            write_cpu=2.0, write_disk=1.0,
            writeset_cpu=0.5, writeset_disk=0.3,
        ),
        clients_per_replica=6,
        think_time=0.05,
        conflict=ConflictProfile(db_update_size=500, updates_per_transaction=2),
    )


def _config(spec, replicas):
    return ReplicationConfig(
        replicas=replicas,
        clients_per_replica=spec.clients_per_replica,
        think_time=spec.think_time,
        load_balancer_delay=0.0005,
        certifier_delay=0.002,
    )


def _fake_replicas(actives, applied, available=None):
    available = available or [True] * len(actives)
    return [
        SimpleNamespace(
            name=f"r{i}", active=a, applied_version=v, available=alive
        )
        for i, (a, v, alive) in enumerate(zip(actives, applied, available))
    ]


# ----------------------------------------------------------------------
# Cluster LoadBalancer unit behaviour under skew
# ----------------------------------------------------------------------

class TestClusterBalancer:
    def _balancer(self, policy):
        return LoadBalancer(policy, rng_util.spawn(7, "test-lb"))

    def test_least_loaded_avoids_hot_replica(self):
        # Skew: replica 0 is saturated, the others idle.
        replicas = _fake_replicas([25, 0, 1], [5, 5, 5])
        lb = self._balancer(LEAST_LOADED)
        for client_id in range(10):
            assert lb.select(replicas, client_id).name == "r1"

    def test_pinned_ignores_load_skew(self):
        replicas = _fake_replicas([25, 0, 1], [5, 5, 5])
        lb = self._balancer(PINNED)
        for client_id in range(9):
            assert lb.select(replicas, client_id).name == f"r{client_id % 3}"

    def test_random_spreads_over_all_replicas(self):
        replicas = _fake_replicas([25, 0, 1], [5, 5, 5])
        lb = self._balancer(RANDOM)
        chosen = {lb.select(replicas, 0).name for _ in range(200)}
        assert chosen == {"r0", "r1", "r2"}

    def test_conflict_aware_never_routes_update_to_lagging_replica(self):
        # Replica 1 is most caught up but busier; the policy still prefers
        # it for updates (freshness beats load) and never picks a laggard.
        replicas = _fake_replicas([3, 8, 1], [10, 42, 41])
        lb = self._balancer(CONFLICT_AWARE)
        for client_id in range(20):
            assert lb.select(replicas, client_id, is_update=True).name == "r1"
        # Reads fall back to least-loaded (the laggard is fine for reads).
        assert lb.select(replicas, 0, is_update=False).name == "r2"

    def test_conflict_aware_skips_unavailable_freshest(self):
        replicas = _fake_replicas(
            [0, 0, 0], [50, 40, 30], available=[False, True, True]
        )
        lb = self._balancer(CONFLICT_AWARE)
        assert lb.select(replicas, 0, is_update=True).name == "r1"

    def test_routes_somewhere_during_total_outage(self):
        replicas = _fake_replicas([1, 2], [5, 5], available=[False, False])
        lb = self._balancer(LEAST_LOADED)
        assert lb.select(replicas, 0).name == "r0"


# ----------------------------------------------------------------------
# Simulator route() under skew
# ----------------------------------------------------------------------

class TestSimulatorRoute:
    def _system(self, spec, lb_policy, replicas=3):
        env = Environment()
        return MultiMasterSystem(
            env, spec, _config(spec, replicas), seed=11,
            metrics=MetricsCollector(), lb_policy=lb_policy,
        )

    def test_least_loaded_avoids_hot_replica(self, tiny_spec):
        system = self._system(tiny_spec, "least-loaded")
        system.replicas[0].active = 25
        system.replicas[2].active = 2
        for client_id in range(10):
            assert system.route(system.replicas, client_id) is system.replicas[1]

    def test_pinned_ignores_load_skew(self, tiny_spec):
        system = self._system(tiny_spec, "pinned")
        system.replicas[0].active = 25
        for client_id in range(9):
            chosen = system.route(system.replicas, client_id)
            assert chosen is system.replicas[client_id % 3]

    def test_random_spreads_over_all_replicas(self, tiny_spec):
        system = self._system(tiny_spec, "random")
        names = {
            system.route(system.replicas, 0).name for _ in range(200)
        }
        assert names == {"replica0", "replica1", "replica2"}

    def test_conflict_aware_never_routes_update_to_lagging_replica(
        self, tiny_spec
    ):
        system = self._system(tiny_spec, "conflict-aware")
        system.replicas[0].applied_version = 3
        system.replicas[1].applied_version = 9
        system.replicas[2].applied_version = 9
        system.replicas[1].active = 5
        for client_id in range(20):
            chosen = system.route(system.replicas, client_id, is_update=True)
            assert chosen.applied_version == 9
            # Tie on freshness broken by load.
            assert chosen is system.replicas[2]
        # Reads may still use the laggard (it is the least loaded).
        system.replicas[0].active = 0
        assert (
            system.route(system.replicas, 0, is_update=False)
            is system.replicas[0]
        )


# ----------------------------------------------------------------------
# End-to-end: every policy works in both execution engines
# ----------------------------------------------------------------------

@pytest.mark.parametrize("policy", LB_POLICIES)
def test_simulator_runs_under_every_policy(tiny_spec, policy):
    result = simulate(
        tiny_spec, _config(tiny_spec, 3), design="multi-master",
        warmup=2.0, duration=8.0, lb_policy=policy,
    )
    assert result.committed_transactions > 50
    assert result.abort_rate < 0.5


@pytest.mark.parametrize("policy", LB_POLICIES)
def test_cluster_runs_under_every_policy(tiny_spec, policy):
    result = run_cluster(
        tiny_spec, _config(tiny_spec, 2), design="multi-master",
        warmup=0.3, duration=1.5, time_scale=1.0, lb_policy=policy,
    )
    assert result.committed_transactions > 20
    assert result.state_converged


def test_cluster_conflict_aware_routing_live(tiny_spec):
    """In a real run, every update routes to a maximally caught-up replica.

    The balancer is wrapped to observe each decision: the chosen replica's
    applied version (read after selection; versions only grow) must be at
    least the freshest version visible among available replicas just
    before selection — i.e. never a lagging replica.
    """
    from repro.cluster.cluster import MultiMasterCluster

    violations = []
    decisions = []
    original_init = MultiMasterCluster.__init__

    class RecordingBalancer(LoadBalancer):
        def select(self, candidates, client_id, is_update=False,
                   partitions=()):
            alive = [r for r in candidates if r.available] or list(candidates)
            freshest_before = max(r.applied_version for r in alive)
            chosen = super().select(candidates, client_id, is_update,
                                    partitions)
            if is_update:
                decisions.append(chosen.name)
                if chosen.applied_version < freshest_before:
                    violations.append((chosen.name, freshest_before))
            return chosen

    def patched_init(self, *args, **kwargs):
        original_init(self, *args, **kwargs)
        self.balancer = RecordingBalancer(
            self.balancer.policy, rng_util.spawn(7, "recording-lb")
        )

    MultiMasterCluster.__init__ = patched_init
    try:
        result = run_cluster(
            tiny_spec, _config(tiny_spec, 3), design="multi-master",
            warmup=0.3, duration=1.5, time_scale=1.0,
            lb_policy="conflict-aware",
        )
    finally:
        MultiMasterCluster.__init__ = original_init

    assert result.state_converged
    assert decisions, "no update was routed"
    assert violations == []
