"""Tests for the autoscale harness on the (deterministic) simulator pillar.

A millisecond-scale workload keeps each elastic run around a second while
still committing thousands of transactions, so the assertions cover the
acceptance criteria directly: feedforward beats static-peak on
replica-hours at equal-or-fewer SLO violations, timelines are exactly
reproducible, membership churn never loses or duplicates a writeset, and
the engine produces identical artifacts serially and fanned out.
"""

import pickle

import pytest

from repro.control import (
    DiurnalTrace,
    FeedforwardPolicy,
    ReactivePolicy,
    StaticPeakPolicy,
    autoscale_sim,
    render_timeline,
)
from repro.control.trace import PiecewiseTrace
from repro.core.errors import ConfigurationError
from repro.core.params import ConflictProfile, WorkloadMix
from repro.simulator.des import Environment
from repro.simulator.stats import MetricsCollector
from repro.simulator.systems import MultiMasterSystem, SingleMasterSystem
from repro.workloads.spec import WorkloadSpec, demands_ms


@pytest.fixture(scope="module")
def tiny_spec():
    """Millisecond-scale mix: elastic sim runs finish in about a second."""
    return WorkloadSpec(
        benchmark="micro",
        mix_name="autoscale-sim-tiny",
        mix=WorkloadMix(read_fraction=0.7, write_fraction=0.3),
        demands=demands_ms(
            read_cpu=30.0, read_disk=10.0,
            write_cpu=20.0, write_disk=10.0,
            writeset_cpu=2.0, writeset_disk=1.0,
        ),
        clients_per_replica=10,
        think_time=0.5,
        conflict=ConflictProfile(db_update_size=2000,
                                 updates_per_transaction=2),
        description="tiny mix for autoscale simulator tests",
    )


@pytest.fixture(scope="module")
def tiny_profile(tiny_spec):
    return tiny_spec.ground_truth_profile(
        abort_rate=0.0005, update_response_time=0.06
    )


@pytest.fixture(scope="module")
def diurnal():
    # Per-replica capacity of the tiny mix is ~37 tps; this swings a
    # multi-replica deployment between idle and busy.
    return DiurnalTrace(base_rate=12.0, peak_rate=110.0, period=120.0)


def _run(spec, trace, policy, profile, design="multi-master", **overrides):
    kwargs = dict(
        profile=profile, seed=7, warmup=20.0, duration=240.0,
        control_interval=5.0, slo_response=0.8, max_replicas=10,
        transfer_writesets=8,
    )
    kwargs.update(overrides)
    return autoscale_sim(spec, trace, policy, design, **kwargs)


@pytest.fixture(scope="module")
def policy_runs(tiny_spec, tiny_profile, diurnal):
    """The three policies on the diurnal trace (shared by assertions)."""
    return {
        "feedforward": _run(tiny_spec, diurnal,
                            FeedforwardPolicy(horizon=10.0, headroom=0.25),
                            tiny_profile),
        "reactive": _run(tiny_spec, diurnal,
                         ReactivePolicy(initial_replicas=2),
                         tiny_profile),
        "static-peak": _run(tiny_spec, diurnal,
                            StaticPeakPolicy(headroom=0.25),
                            tiny_profile),
    }


class TestPolicyComparison:
    def test_feedforward_saves_replica_hours_at_equal_slo(self, policy_runs):
        """The acceptance criterion, on the simulator pillar."""
        feedforward = policy_runs["feedforward"]
        static = policy_runs["static-peak"]
        assert feedforward.savings_vs(static) >= 0.20
        assert (feedforward.slo_violation_fraction
                <= static.slo_violation_fraction + 1e-9)

    def test_static_peak_never_scales(self, policy_runs):
        static = policy_runs["static-peak"]
        assert static.scale_events == 0
        members = {p.members for p in static.timeline}
        assert len(members) == 1

    def test_feedforward_tracks_the_cycle(self, policy_runs):
        timeline = policy_runs["feedforward"].timeline
        members = [p.members for p in timeline]
        assert max(members) - min(members) >= 2  # actually elastic
        # Membership correlates with offered load: the busiest tick runs
        # more replicas than the quietest one.
        by_load = sorted(timeline, key=lambda p: p.offered_rate)
        assert by_load[-1].members > by_load[0].members

    def test_all_policies_converge(self, policy_runs):
        for result in policy_runs.values():
            assert result.converged, result.policy
            assert len(set(result.final_versions)) == 1

    def test_timeline_and_totals_are_consistent(self, policy_runs):
        result = policy_runs["feedforward"]
        assert result.window == 240.0
        assert result.committed > 1000
        assert 0.0 <= result.slo_violation_fraction <= 1.0
        assert result.replica_seconds > 0
        assert result.mean_members == pytest.approx(
            result.replica_seconds / result.window
        )
        assert len(result.timeline) == 48  # 240s / 5s interval
        assert render_timeline(result).count("\n") >= len(result.timeline)


class TestDeterminism:
    def test_identical_runs_identical_timelines(self, tiny_spec, tiny_profile,
                                                diurnal):
        first = _run(tiny_spec, diurnal, FeedforwardPolicy(horizon=10.0),
                     tiny_profile, duration=120.0)
        second = _run(tiny_spec, diurnal, FeedforwardPolicy(horizon=10.0),
                      tiny_profile, duration=120.0)
        assert first == second
        assert pickle.dumps(first.timeline) == pickle.dumps(second.timeline)

    def test_seed_changes_the_run(self, tiny_spec, tiny_profile, diurnal):
        first = _run(tiny_spec, diurnal, FeedforwardPolicy(horizon=10.0),
                     tiny_profile, duration=120.0)
        other = _run(tiny_spec, diurnal, FeedforwardPolicy(horizon=10.0),
                     tiny_profile, duration=120.0, seed=8)
        assert first.committed != other.committed


class TestSingleMasterElasticity:
    def test_single_master_scales_slaves(self, tiny_spec, tiny_profile,
                                         diurnal):
        result = _run(tiny_spec, diurnal, FeedforwardPolicy(horizon=10.0),
                      tiny_profile, design="single-master", duration=120.0)
        assert result.converged
        assert result.scale_events > 0
        members = [p.members for p in result.timeline]
        assert min(members) >= 1  # the master is never removed


class TestElasticMembershipChurn:
    """add/remove under load never loses or duplicates a writeset."""

    def test_churn_converges_multi_master(self, tiny_spec):
        env = Environment()
        metrics = MetricsCollector()
        system = MultiMasterSystem(
            env, tiny_spec, tiny_spec.replication_config(2), 11, metrics
        )
        trace = PiecewiseTrace(points=((0.0, 40.0),))
        system.start_trace_arrivals(trace)
        # Aggressive churn: grow to 5, shrink to 2, twice, mid-traffic.
        t = 2.0
        for _ in range(2):
            for _ in range(3):
                env.schedule(t, system.add_replica, 4)
                t += 1.5
            for _ in range(3):
                env.schedule(t, lambda: system.remove_replica())
                t += 1.5
        env.schedule(1.0, metrics.begin_window, 1.0)
        env.run_until(t + 5.0)
        metrics.end_window(env.now)
        system.stop_arrivals()
        env.run_until(t + 25.0)

        assert metrics.committed > 100
        survivors = [r for r in system.replicas if not r.draining]
        assert len(survivors) == 2
        latest = system.certifier.latest_version
        assert latest > 0
        # No lost writesets: every survivor applied every commit;
        # no duplicates: enqueue_writeset would have raised.
        for replica in survivors:
            assert replica.applied_version == latest
            assert replica.apply_backlog == 0

    def test_churn_converges_single_master(self, tiny_spec):
        env = Environment(compact_min=32)
        metrics = MetricsCollector()
        system = SingleMasterSystem(
            env, tiny_spec, tiny_spec.replication_config(2), 13, metrics
        )
        system.start_trace_arrivals(PiecewiseTrace(points=((0.0, 30.0),)))
        for i in range(3):
            env.schedule(2.0 + i, system.add_replica, 4)
        for i in range(3):
            env.schedule(8.0 + i, lambda: system.remove_replica())
        env.schedule(1.0, metrics.begin_window, 1.0)
        env.run_until(15.0)
        metrics.end_window(env.now)
        system.stop_arrivals()
        env.run_until(35.0)

        latest = system.certifier.latest_version
        assert latest > 0
        for replica in system.replicas:
            if not replica.draining:
                assert replica.applied_version == latest

    def test_cannot_remove_last_replica(self, tiny_spec):
        from repro.core.errors import SimulationError

        env = Environment()
        system = MultiMasterSystem(
            env, tiny_spec, tiny_spec.replication_config(1), 5,
            MetricsCollector(),
        )
        with pytest.raises(SimulationError):
            system.remove_replica()

    def test_master_is_never_removable(self, tiny_spec):
        from repro.core.errors import SimulationError

        env = Environment()
        system = SingleMasterSystem(
            env, tiny_spec, tiny_spec.replication_config(1), 5,
            MetricsCollector(),
        )
        with pytest.raises(SimulationError):
            system.remove_replica()


class TestValidation:
    def test_rejects_bad_inputs(self, tiny_spec, tiny_profile, diurnal):
        with pytest.raises(ConfigurationError):
            autoscale_sim(tiny_spec, diurnal, StaticPeakPolicy(),
                          "standalone", profile=tiny_profile)
        with pytest.raises(ConfigurationError):
            _run(tiny_spec, diurnal, StaticPeakPolicy(), tiny_profile,
                 control_interval=0.0)
        with pytest.raises(ConfigurationError):
            _run(tiny_spec, diurnal, StaticPeakPolicy(), tiny_profile,
                 slo_response=-1.0)
        with pytest.raises(ConfigurationError):
            _run(tiny_spec, diurnal, FeedforwardPolicy(), profile=None)


class TestEngineIntegration:
    def test_autoscale_scenario_serial_equals_parallel(self, tiny_spec,
                                                       tiny_profile, diurnal):
        """Engine fan-out must not change autoscale artifacts."""
        from repro.engine import (
            autoscale_point,
            clear_memo,
            execute_points,
        )

        def points():
            return [
                autoscale_point(
                    tiny_spec, tiny_spec.replication_config(1),
                    "multi-master", seed=7, trace=diurnal, policy=policy,
                    slo_response=0.8, warmup=10.0, duration=60.0,
                    control_interval=5.0, max_replicas=8,
                    transfer_writesets=8, profile=tiny_profile,
                )
                for policy in (FeedforwardPolicy(horizon=10.0),
                               StaticPeakPolicy())
            ]

        clear_memo()
        serial = execute_points(points(), jobs=1, cache=None)
        clear_memo()
        parallel = execute_points(points(), jobs=2, cache=None)
        assert serial == parallel
        texts = [r.to_text() for r in serial]
        assert texts == [r.to_text() for r in parallel]

    def test_autoscale_points_are_cacheable_and_keyed(self, tiny_spec,
                                                      tiny_profile, diurnal):
        from repro.engine import autoscale_point, point_key

        def make(policy, pillar="simulator"):
            return autoscale_point(
                tiny_spec, tiny_spec.replication_config(1), "multi-master",
                seed=7, trace=diurnal, policy=policy, slo_response=0.8,
                warmup=10.0, duration=60.0, control_interval=5.0,
                pillar=pillar, profile=tiny_profile,
            )

        a = make(FeedforwardPolicy(horizon=10.0))
        b = make(FeedforwardPolicy(horizon=10.0))
        c = make(FeedforwardPolicy(horizon=20.0))
        assert point_key(a) == point_key(b)
        assert point_key(a) != point_key(c)  # policy is part of the key
        assert a.cacheable
        assert not make(StaticPeakPolicy(), pillar="cluster").cacheable
