"""Tests for the autoscaling controller policies."""

import pytest

from repro.control.controller import (
    ControlObservation,
    FeedforwardPolicy,
    ReactivePolicy,
    StaticPeakPolicy,
    make_controller,
)
from repro.control.trace import DiurnalTrace
from repro.core.errors import ConfigurationError
from repro.core.params import ReplicationConfig
from repro.models.api import MULTI_MASTER, predict


def _observation(now=0.0, members=4, p95=0.1, utilization=0.5, commits=100):
    return ControlObservation(
        now=now, members=members, attached=members, offered_rate=50.0,
        commits=commits, throughput=50.0, mean_response=p95 * 0.7,
        p95_response=p95, max_utilization=utilization,
    )


@pytest.fixture
def trace():
    return DiurnalTrace(base_rate=20.0, peak_rate=150.0, period=200.0)


class TestFeedforwardController:
    def test_tracks_the_forecast(self, simple_profile, simple_config, trace):
        controller = make_controller(
            FeedforwardPolicy(horizon=10.0, headroom=0.1),
            design=MULTI_MASTER, trace=trace, slo_response=2.0,
            config=simple_config, profile=simple_profile, max_replicas=32,
        )
        trough = controller.target(_observation(now=0.0))
        crest = controller.target(_observation(now=90.0))  # crest at t=100
        assert crest > trough >= 1
        # The sized deployment actually serves the forecast load.
        forecast = trace.peak_between(90.0, 100.0)
        capacity = predict(
            MULTI_MASTER, simple_profile, simple_config.with_replicas(crest)
        ).throughput
        assert capacity >= forecast

    def test_initial_target_sizes_the_first_window(self, simple_profile,
                                                   simple_config, trace):
        controller = make_controller(
            FeedforwardPolicy(horizon=10.0), design=MULTI_MASTER,
            trace=trace, slo_response=2.0, config=simple_config,
            profile=simple_profile, max_replicas=32,
        )
        assert controller.initial_target() >= 1

    def test_requires_a_profile(self, simple_config, trace):
        with pytest.raises(ConfigurationError):
            make_controller(
                FeedforwardPolicy(), design=MULTI_MASTER, trace=trace,
                slo_response=2.0, config=simple_config, profile=None,
            )

    def test_unreachable_window_saturates_at_max(self, simple_profile,
                                                 simple_config):
        huge = DiurnalTrace(base_rate=1e6, peak_rate=2e6, period=100.0)
        controller = make_controller(
            FeedforwardPolicy(horizon=10.0), design=MULTI_MASTER,
            trace=huge, slo_response=2.0, config=simple_config,
            profile=simple_profile, max_replicas=6,
        )
        assert controller.target(_observation()) == 6


class TestReactiveController:
    def _controller(self, **policy_kwargs):
        policy = ReactivePolicy(**policy_kwargs)
        return make_controller(
            policy, design=MULTI_MASTER,
            trace=DiurnalTrace(base_rate=1.0, peak_rate=2.0, period=10.0),
            slo_response=1.0,
            config=ReplicationConfig(replicas=1, clients_per_replica=10),
            min_replicas=1, max_replicas=8,
        )

    def test_scales_up_on_high_utilization(self):
        controller = self._controller(up_patience=1)
        assert controller.target(_observation(utilization=0.9)) == 5

    def test_scales_up_on_slo_breach(self):
        controller = self._controller(up_patience=1)
        assert controller.target(_observation(p95=1.5, utilization=0.5)) == 5

    def test_down_needs_sustained_cold(self):
        controller = self._controller(down_patience=3)
        cold = _observation(utilization=0.1, p95=0.05)
        assert controller.target(cold) == 4   # 1st cold interval: hold
        assert controller.target(cold) == 4   # 2nd: hold
        assert controller.target(cold) == 3   # 3rd: scale down

    def test_hold_in_the_comfort_band(self):
        controller = self._controller()
        assert controller.target(_observation(utilization=0.5)) == 4

    def test_respects_bounds(self):
        controller = self._controller(up_patience=1)
        top = _observation(members=8, utilization=0.99)
        assert controller.target(top) == 8
        controller = self._controller(down_patience=1)
        floor = _observation(members=1, utilization=0.01, p95=0.01)
        assert controller.target(floor) == 1


class TestStaticPeakController:
    def test_never_moves(self, simple_profile, simple_config, trace):
        controller = make_controller(
            StaticPeakPolicy(headroom=0.1), design=MULTI_MASTER,
            trace=trace, slo_response=2.0, config=simple_config,
            profile=simple_profile, max_replicas=32,
        )
        size = controller.initial_target()
        assert size >= 1
        assert controller.target(_observation(utilization=0.01)) == size
        assert controller.target(_observation(utilization=0.99)) == size
        # Sized for the trace peak: predicted capacity covers it.
        capacity = predict(
            MULTI_MASTER, simple_profile, simple_config.with_replicas(size)
        ).throughput
        assert capacity >= trace.max_rate


class TestPolicyValidation:
    def test_policy_field_validation(self):
        with pytest.raises(ConfigurationError):
            FeedforwardPolicy(horizon=0.0)
        with pytest.raises(ConfigurationError):
            FeedforwardPolicy(headroom=1.0)
        with pytest.raises(ConfigurationError):
            ReactivePolicy(high_utilization=0.3, low_utilization=0.5)
        with pytest.raises(ConfigurationError):
            ReactivePolicy(up_patience=0)
        with pytest.raises(ConfigurationError):
            StaticPeakPolicy(headroom=-0.1)

    def test_make_controller_validates_bounds(self, simple_profile,
                                              simple_config, trace):
        with pytest.raises(ConfigurationError):
            make_controller(
                StaticPeakPolicy(), design=MULTI_MASTER, trace=trace,
                slo_response=0.0, config=simple_config,
                profile=simple_profile,
            )
        with pytest.raises(ConfigurationError):
            make_controller(
                StaticPeakPolicy(), design=MULTI_MASTER, trace=trace,
                slo_response=1.0, config=simple_config,
                profile=simple_profile, min_replicas=5, max_replicas=2,
            )
