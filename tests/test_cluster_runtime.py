"""Tests for the live replicated-cluster runtime (repro.cluster).

These run real threads against real SI engines, so the specs are tiny
(millisecond demands, a handful of clients) and the windows short; the
assertions target correctness — replication convergence, counter
consistency — and coarse performance sanity, not calibrated accuracy
(which tests/test_crossval.py and the benchmarks cover).
"""

from __future__ import annotations

import pytest

from repro.cluster import run_cluster
from repro.core.params import (
    ConflictProfile,
    ReplicationConfig,
    WorkloadMix,
)
from repro.simulator.faults import ReplicaFault
from repro.workloads.spec import WorkloadSpec, demands_ms


@pytest.fixture(scope="module")
def tiny_spec():
    """A millisecond-scale mix so live runs finish in a couple of seconds."""
    return WorkloadSpec(
        benchmark="micro",
        mix_name="cluster-tiny",
        mix=WorkloadMix(read_fraction=0.6, write_fraction=0.4),
        demands=demands_ms(
            read_cpu=3.0, read_disk=1.0,
            write_cpu=2.0, write_disk=1.0,
            writeset_cpu=0.5, writeset_disk=0.3,
        ),
        clients_per_replica=6,
        think_time=0.05,
        conflict=ConflictProfile(db_update_size=500, updates_per_transaction=2),
        description="tiny mix for live-cluster tests",
    )


def _config(spec, replicas):
    return ReplicationConfig(
        replicas=replicas,
        clients_per_replica=spec.clients_per_replica,
        think_time=spec.think_time,
        load_balancer_delay=0.0005,
        certifier_delay=0.002,
    )


def _check_replication_correctness(result):
    """Every replica converged to the identical version, equal to the
    number of certified commits (versions are dense from 1)."""
    assert result.converged
    assert result.state_converged
    assert len(set(result.final_versions)) == 1
    commits = result.total_certifications - result.total_certification_aborts
    assert result.final_versions[0] == commits


def test_multi_master_cluster_runs_and_converges(tiny_spec):
    result = run_cluster(
        tiny_spec, _config(tiny_spec, 3), design="multi-master",
        warmup=0.5, duration=2.0, time_scale=1.0,
    )
    assert result.design == "multi-master"
    assert result.replicas == 3
    assert result.committed_transactions > 50
    assert result.throughput > 0
    assert result.update_throughput > 0
    assert result.read_throughput > 0
    assert 0.0 <= result.abort_rate < 0.5
    # The metrics schema matches the simulator's collector.
    assert set(result.utilizations) == {
        f"replica{i}.{r}" for i in range(3) for r in ("cpu", "disk")
    }
    assert all(0.0 <= u <= 1.05 for u in result.utilizations.values())
    assert len(result.throughput_timeline) == int(result.window)
    _check_replication_correctness(result)


def test_single_master_cluster_runs_and_converges(tiny_spec):
    result = run_cluster(
        tiny_spec, _config(tiny_spec, 3), design="single-master",
        warmup=0.5, duration=2.0, time_scale=1.0,
    )
    assert result.committed_transactions > 50
    assert result.update_throughput > 0
    assert "master.cpu" in result.utilizations
    assert "slave0.cpu" in result.utilizations
    _check_replication_correctness(result)


def test_cluster_fault_injection_recovers_and_converges(tiny_spec):
    result = run_cluster(
        tiny_spec, _config(tiny_spec, 2), design="multi-master",
        warmup=0.3, duration=2.0, time_scale=1.0,
        faults=[ReplicaFault(replica_index=1, start=0.8, downtime=0.6)],
    )
    # The survivor kept committing; the faulted replica caught up on its
    # deferred writeset backlog after recovery.
    assert result.committed_transactions > 20
    _check_replication_correctness(result)


def test_cluster_open_loop_driver(tiny_spec):
    result = run_cluster(
        tiny_spec, _config(tiny_spec, 2), design="multi-master",
        warmup=0.3, duration=2.0, time_scale=1.0, arrival_rate=30.0,
    )
    # Poisson arrivals at 30 tps over a 2 s window, no think feedback.
    assert result.committed_transactions > 20
    assert result.throughput == pytest.approx(30.0, rel=0.5)
    _check_replication_correctness(result)


def test_cluster_rejects_bad_configuration(tiny_spec):
    from repro.core.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        run_cluster(tiny_spec, _config(tiny_spec, 2), design="standalone")
    with pytest.raises(ConfigurationError):
        run_cluster(tiny_spec, _config(tiny_spec, 2), lb_policy="romantic")
    with pytest.raises(ConfigurationError):
        run_cluster(tiny_spec, _config(tiny_spec, 2), duration=0.0)
    with pytest.raises(ConfigurationError):
        run_cluster(tiny_spec, _config(tiny_spec, 2), arrival_rate=-1.0)


def test_cluster_garbage_collection_paths(tiny_spec, monkeypatch):
    """With the GC intervals forced low, pruning/vacuuming runs during the
    measurement window without perturbing correctness."""
    import repro.cluster.cluster as cluster_mod
    import repro.cluster.replica as replica_mod

    monkeypatch.setattr(cluster_mod, "_PRUNE_INTERVAL", 5)
    monkeypatch.setattr(replica_mod, "_VACUUM_INTERVAL", 5)
    for design in ("multi-master", "single-master"):
        result = run_cluster(
            tiny_spec, _config(tiny_spec, 2), design=design,
            warmup=0.3, duration=1.5, time_scale=1.0,
        )
        assert result.committed_transactions > 20
        _check_replication_correctness(result)


def test_cluster_snapshot_age_and_certifier_rate(tiny_spec):
    result = run_cluster(
        tiny_spec, _config(tiny_spec, 2), design="multi-master",
        warmup=0.5, duration=2.0, time_scale=1.0,
    )
    # GSI: snapshots can lag but only by a bounded amount in a healthy run.
    assert result.mean_snapshot_age >= 0.0
    assert result.certifier_request_rate > 0.0
