"""Unit tests for repro.core.results."""

import pytest

from repro.core.errors import ConfigurationError
from repro.core.results import (
    OperatingPoint,
    ScalabilityCurve,
    ValidationPoint,
    ValidationSeries,
    relative_error,
)


def point(throughput=100.0, response=0.2, abort=0.01):
    return OperatingPoint(
        throughput=throughput, response_time=response, abort_rate=abort
    )


class TestOperatingPoint:
    def test_valid(self):
        p = point()
        assert p.throughput == 100.0

    def test_rejects_negative_throughput(self):
        with pytest.raises(ConfigurationError):
            OperatingPoint(throughput=-1.0, response_time=0.1)

    def test_rejects_negative_response(self):
        with pytest.raises(ConfigurationError):
            OperatingPoint(throughput=1.0, response_time=-0.1)

    def test_rejects_abort_rate_above_one(self):
        with pytest.raises(ConfigurationError):
            OperatingPoint(throughput=1.0, response_time=0.1, abort_rate=1.5)


class TestScalabilityCurve:
    def make(self):
        return ScalabilityCurve(
            label="test",
            replica_counts=(1, 2, 4),
            points=(point(50), point(95), point(180)),
        )

    def test_throughputs_in_order(self):
        assert self.make().throughputs == [50, 95, 180]

    def test_response_times(self):
        assert self.make().response_times == [0.2, 0.2, 0.2]

    def test_point_at_known_count(self):
        assert self.make().point_at(2).throughput == 95

    def test_point_at_unknown_count_raises(self):
        with pytest.raises(ConfigurationError):
            self.make().point_at(3)

    def test_speedup_relative_to_first(self):
        speedup = self.make().speedup()
        assert speedup[0] == pytest.approx(1.0)
        assert speedup[2] == pytest.approx(3.6)

    def test_peak_returns_best_replica_count(self):
        curve = ScalabilityCurve(
            label="peaky",
            replica_counts=(1, 2, 4, 8),
            points=(point(50), point(90), point(120), point(110)),
        )
        assert curve.peak() == 4

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            ScalabilityCurve(label="bad", replica_counts=(1, 2), points=(point(),))

    def test_non_increasing_counts_rejected(self):
        with pytest.raises(ConfigurationError):
            ScalabilityCurve(
                label="bad",
                replica_counts=(2, 1),
                points=(point(), point()),
            )

    def test_duplicate_counts_rejected(self):
        with pytest.raises(ConfigurationError):
            ScalabilityCurve(
                label="bad",
                replica_counts=(1, 1),
                points=(point(), point()),
            )


class TestRelativeError:
    def test_symmetric_magnitude(self):
        assert relative_error(110, 100) == pytest.approx(0.1)
        assert relative_error(90, 100) == pytest.approx(0.1)

    def test_zero_measured_rejected(self):
        with pytest.raises(ConfigurationError):
            relative_error(1.0, 0.0)


class TestValidationSeries:
    def make(self):
        rows = [
            ValidationPoint(replicas=1, predicted=point(100), measured=point(110)),
            ValidationPoint(replicas=2, predicted=point(210), measured=point(200)),
        ]
        return ValidationSeries(label="series", rows=rows)

    def test_throughput_error_per_row(self):
        series = self.make()
        assert series.rows[0].throughput_error == pytest.approx(10 / 110)
        assert series.rows[1].throughput_error == pytest.approx(10 / 200)

    def test_max_error(self):
        assert self.make().max_throughput_error() == pytest.approx(10 / 110)

    def test_mean_error(self):
        series = self.make()
        expected = (10 / 110 + 10 / 200) / 2
        assert series.mean_throughput_error() == pytest.approx(expected)

    def test_response_time_error(self):
        rows = [
            ValidationPoint(
                replicas=1,
                predicted=point(response=0.25),
                measured=point(response=0.2),
            )
        ]
        series = ValidationSeries(label="rt", rows=rows)
        assert series.max_response_time_error() == pytest.approx(0.25)

    def test_curve_extraction_round_trip(self):
        series = self.make()
        predicted = series.predicted_curve()
        measured = series.measured_curve()
        assert predicted.throughputs == [100, 210]
        assert measured.throughputs == [110, 200]
        assert list(predicted.replica_counts) == [1, 2]

    def test_empty_series_statistics_raise(self):
        series = ValidationSeries(label="empty", rows=())
        with pytest.raises(ConfigurationError):
            series.max_throughput_error()
        with pytest.raises(ConfigurationError):
            series.mean_throughput_error()
