"""Elastic membership on the live cluster: churn stress + autoscale runs.

These run real threads against real SI engines.  The churn stress test is
the replication-correctness acceptance check: while client threads commit
update transactions, a churn loop adds and removes replicas; afterwards
every surviving replica must hold the identical final version, equal to
the certifier's commit count — a lost writeset would leave a replica
behind, a duplicated one would crash its version store.
"""

import threading
import time

import pytest

from repro.cluster.clock import VirtualClock
from repro.cluster.cluster import MultiMasterCluster, SingleMasterCluster
from repro.control import (
    DiurnalTrace,
    FeedforwardPolicy,
    StaticPeakPolicy,
    autoscale_cluster,
)
from repro.core import rng as rng_util
from repro.core.errors import ConfigurationError
from repro.core.params import ConflictProfile, ReplicationConfig, WorkloadMix
from repro.simulator.sampling import WorkloadSampler
from repro.simulator.stats import MetricsCollector
from repro.workloads.spec import WorkloadSpec, demands_ms


@pytest.fixture(scope="module")
def tiny_spec():
    return WorkloadSpec(
        benchmark="micro",
        mix_name="elastic-live-tiny",
        mix=WorkloadMix(read_fraction=0.6, write_fraction=0.4),
        demands=demands_ms(
            read_cpu=3.0, read_disk=1.0,
            write_cpu=2.0, write_disk=1.0,
            writeset_cpu=0.5, writeset_disk=0.3,
        ),
        clients_per_replica=6,
        think_time=0.05,
        conflict=ConflictProfile(db_update_size=500,
                                 updates_per_transaction=2),
        description="tiny mix for live elastic-membership tests",
    )


def _config(spec, replicas):
    return ReplicationConfig(
        replicas=replicas,
        clients_per_replica=spec.clients_per_replica,
        think_time=spec.think_time,
        load_balancer_delay=0.0005,
        certifier_delay=0.002,
    )


def _build(cls, spec, replicas, seed=19):
    cluster = cls(
        spec, _config(spec, replicas), seed,
        VirtualClock(1.0), MetricsCollector(),
    )
    cluster.start()
    return cluster


def _traffic(cluster, spec, stop, errors, client_id):
    sampler = WorkloadSampler(
        spec, rng_util.spawn(77, "elastic-test-client", client_id)
    )
    while not stop.is_set():
        try:
            is_update = sampler.next_is_update()
            cluster.execute(sampler, is_update, client_id)
        except BaseException as exc:  # noqa: BLE001 — assert after join
            errors.append(exc)
            stop.set()
            return


def _churn_stress(cluster, spec, churn):
    """Run client threads while *churn* mutates membership."""
    stop = threading.Event()
    errors = []
    clients = [
        threading.Thread(
            target=_traffic, args=(cluster, spec, stop, errors, i),
            daemon=True,
        )
        for i in range(6)
    ]
    for thread in clients:
        thread.start()
    try:
        churn(stop)
    finally:
        stop.set()
        for thread in clients:
            thread.join(10.0)
    assert not errors, errors
    assert cluster.quiesce(timeout=30.0), "cluster did not converge"
    assert not cluster.applier_errors()
    versions = cluster.replica_versions()
    assert len(set(versions)) == 1, versions
    commits = cluster.certifier.certifications - cluster.certifier.aborts
    assert versions[0] == commits
    assert commits > 0


class TestMembershipChurnStress:
    def test_multi_master_churn_never_loses_or_duplicates(self, tiny_spec):
        """The acceptance stress test, on the live multi-master cluster."""
        cluster = _build(MultiMasterCluster, tiny_spec, 2)
        try:
            def churn(stop):
                added = []
                for round_ in range(3):
                    for _ in range(2):
                        added.append(cluster.add_replica(transfer_writesets=4))
                        time.sleep(0.15)
                    for _ in range(2):
                        cluster.remove_replica(drain_timeout=20.0)
                        time.sleep(0.15)
                # End on a grown cluster so the check also covers a
                # freshly joined replica.
                added.append(cluster.add_replica(transfer_writesets=4))
                time.sleep(0.3)

            _churn_stress(cluster, tiny_spec, churn)
            assert len(cluster.replicas) == 3
        finally:
            cluster.shutdown()

    def test_single_master_slave_churn(self, tiny_spec):
        cluster = _build(SingleMasterCluster, tiny_spec, 2)
        try:
            def churn(stop):
                for _ in range(2):
                    cluster.add_replica(transfer_writesets=4)
                    time.sleep(0.15)
                for _ in range(2):
                    cluster.remove_replica(drain_timeout=20.0)
                    time.sleep(0.15)

            _churn_stress(cluster, tiny_spec, churn)
            assert len(cluster.slaves) == 1
        finally:
            cluster.shutdown()

    def test_joiner_state_transfer_is_complete(self, tiny_spec):
        """A replica joining mid-run ends bit-identical to the donors."""
        cluster = _build(MultiMasterCluster, tiny_spec, 2)
        try:
            def churn(stop):
                time.sleep(0.3)  # commit some state first
                cluster.add_replica(transfer_writesets=4)
                time.sleep(0.3)

            _churn_stress(cluster, tiny_spec, churn)
            # Same version and same visible contents everywhere.
            views = [
                replica.db.store.snapshot_view(replica.db.latest_version)
                for replica in cluster.replicas
            ]
            for view in views[1:]:
                assert view == views[0]
        finally:
            cluster.shutdown()

    def test_cannot_remove_below_one(self, tiny_spec):
        cluster = _build(MultiMasterCluster, tiny_spec, 1)
        try:
            with pytest.raises(ConfigurationError):
                cluster.remove_replica()
        finally:
            cluster.shutdown()

    def test_master_is_not_removable(self, tiny_spec):
        cluster = _build(SingleMasterCluster, tiny_spec, 1)
        try:
            with pytest.raises(ConfigurationError):
                cluster.remove_replica()
        finally:
            cluster.shutdown()


@pytest.fixture(scope="module")
def live_autoscale_spec():
    """Heavier demands: the autoscaler has real work to balance."""
    return WorkloadSpec(
        benchmark="micro",
        mix_name="autoscale-live-test",
        mix=WorkloadMix(read_fraction=0.7, write_fraction=0.3),
        demands=demands_ms(
            read_cpu=40.0, read_disk=15.0,
            write_cpu=25.0, write_disk=10.0,
            writeset_cpu=2.0, writeset_disk=1.0,
        ),
        clients_per_replica=6,
        think_time=0.2,
        conflict=ConflictProfile(db_update_size=1000,
                                 updates_per_transaction=2),
        description="live autoscale validation mix",
    )


class TestLiveAutoscale:
    def test_feedforward_beats_static_peak_live(self, live_autoscale_spec):
        """The acceptance criterion, on the live cluster pillar."""
        spec = live_autoscale_spec
        profile = spec.ground_truth_profile(
            abort_rate=0.0005, update_response_time=0.08
        )
        # Per-replica capacity ~27 tps; swing a 3-4 replica deployment.
        trace = DiurnalTrace(base_rate=8.0, peak_rate=62.0, period=8.0)
        kwargs = dict(
            profile=profile, seed=3, warmup=2.0, duration=16.0,
            control_interval=1.0, slo_response=1.2, time_scale=0.25,
            max_replicas=6, transfer_writesets=4,
            config=spec.replication_config(
                1, load_balancer_delay=0.0005, certifier_delay=0.002,
            ),
        )
        feedforward = autoscale_cluster(
            spec, trace, FeedforwardPolicy(horizon=2.0, headroom=0.25),
            **kwargs,
        )
        static = autoscale_cluster(
            spec, trace, StaticPeakPolicy(headroom=0.25), **kwargs,
        )
        assert feedforward.converged and static.converged
        assert feedforward.scale_events > 0
        assert static.scale_events == 0
        assert feedforward.savings_vs(static) >= 0.20
        assert (feedforward.slo_violation_fraction
                <= static.slo_violation_fraction + 0.01)
