"""Unit tests for the discrete-event kernel."""

import pytest

from repro.core.errors import SimulationError
from repro.simulator.des import (
    Acquire,
    Environment,
    Semaphore,
    Service,
    Timeout,
)
from repro.simulator.resources import FIFOResource


class TestScheduling:
    def test_events_fire_in_time_order(self):
        env = Environment()
        order = []
        env.schedule(2.0, order.append, "b")
        env.schedule(1.0, order.append, "a")
        env.schedule(3.0, order.append, "c")
        env.run_until(10.0)
        assert order == ["a", "b", "c"]

    def test_ties_fire_in_schedule_order(self):
        env = Environment()
        order = []
        env.schedule(1.0, order.append, 1)
        env.schedule(1.0, order.append, 2)
        env.schedule(1.0, order.append, 3)
        env.run_until(2.0)
        assert order == [1, 2, 3]

    def test_now_advances_to_event_times(self):
        env = Environment()
        seen = []
        env.schedule(1.5, lambda: seen.append(env.now))
        env.run_until(5.0)
        assert seen == [1.5]
        assert env.now == 5.0

    def test_events_beyond_horizon_not_fired(self):
        env = Environment()
        fired = []
        env.schedule(10.0, fired.append, True)
        env.run_until(5.0)
        assert fired == []
        env.run_until(15.0)
        assert fired == [True]

    def test_cancelled_event_skipped(self):
        env = Environment()
        fired = []
        handle = env.schedule(1.0, fired.append, True)
        handle.cancel()
        env.run_until(2.0)
        assert fired == []

    def test_negative_delay_rejected(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.schedule(-1.0, lambda: None)

    def test_run_until_past_rejected(self):
        env = Environment()
        env.schedule(1.0, lambda: None)
        env.run_until(2.0)
        with pytest.raises(SimulationError):
            env.run_until(1.0)


class TestProcesses:
    def test_timeout_resumes_after_delay(self):
        env = Environment()
        trace = []

        def process():
            trace.append(("start", env.now))
            yield Timeout(2.5)
            trace.append(("resumed", env.now))

        env.start(process())
        env.run_until(10.0)
        assert trace == [("start", 0.0), ("resumed", 2.5)]

    def test_nested_generators_compose(self):
        env = Environment()
        trace = []

        def inner():
            yield Timeout(1.0)
            return "inner-done"

        def outer():
            result = yield from inner()
            trace.append((result, env.now))

        env.start(outer())
        env.run_until(5.0)
        assert trace == [("inner-done", 1.0)]

    def test_invalid_yield_rejected(self):
        env = Environment()

        def bad():
            yield "not-an-effect"

        with pytest.raises(SimulationError):
            env.start(bad())

    def test_negative_timeout_rejected(self):
        with pytest.raises(SimulationError):
            Timeout(-1.0)

    def test_negative_service_rejected(self):
        env = Environment()
        resource = FIFOResource(env, "disk")
        with pytest.raises(SimulationError):
            Service(resource, -0.5)

    def test_service_effect_completes_work(self):
        env = Environment()
        resource = FIFOResource(env, "disk")
        done = []

        def process():
            yield Service(resource, 0.5)
            done.append(env.now)

        env.start(process())
        env.run_until(2.0)
        assert done == [0.5]


class TestSemaphore:
    def test_capacity_enforced(self):
        env = Environment()
        sem = Semaphore(env, capacity=2)
        inside = []

        def worker(i):
            yield Acquire(sem)
            inside.append((i, env.now))
            yield Timeout(1.0)
            sem.release()

        for i in range(4):
            env.start(worker(i))
        env.run_until(0.5)
        assert len(inside) == 2  # only two admitted at t=0
        env.run_until(1.5)
        assert len(inside) == 4  # the rest admitted when slots freed

    def test_fifo_admission_order(self):
        env = Environment()
        sem = Semaphore(env, capacity=1)
        admitted = []

        def worker(i):
            yield Acquire(sem)
            admitted.append(i)
            yield Timeout(1.0)
            sem.release()

        for i in range(3):
            env.start(worker(i))
        env.run_until(10.0)
        assert admitted == [0, 1, 2]

    def test_in_use_and_waiting_counters(self):
        env = Environment()
        sem = Semaphore(env, capacity=1)

        def holder():
            yield Acquire(sem)
            yield Timeout(5.0)
            sem.release()

        env.start(holder())
        env.start(holder())
        env.run_until(1.0)
        assert sem.in_use == 1
        assert sem.waiting == 1

    def test_over_release_rejected(self):
        env = Environment()
        sem = Semaphore(env, capacity=1)
        with pytest.raises(SimulationError):
            sem.release()

    def test_zero_capacity_rejected(self):
        env = Environment()
        with pytest.raises(SimulationError):
            Semaphore(env, capacity=0)


class TestHeapCompaction:
    def test_cancelled_events_compacted_out(self):
        env = Environment()
        live = env.schedule(1000.0, lambda: None)
        handles = [env.schedule(2000.0, lambda: None) for _ in range(500)]
        assert env.pending_events == 501
        for handle in handles:
            handle.cancel()
        # More than half the heap was tombstones, so it was compacted.
        assert env.pending_events < 500
        assert not live.cancelled

    def test_compaction_preserves_event_order(self):
        fired = []
        env = Environment()
        handles = [env.schedule(float(i), fired.append, i) for i in range(500)]
        for i in range(500):
            if i % 5:
                handles[i].cancel()
        # 400 of 500 cancelled: well past the half-tombstone threshold, so
        # compaction (heapify of the filtered list) ran mid-loop.
        assert env.pending_events < 250
        env.run_until(600.0)
        # The surviving events must still fire in exact time order.
        assert fired == list(range(0, 500, 5))

    def test_cancel_is_idempotent_in_counter(self):
        env = Environment()
        handles = [env.schedule(10.0, lambda: None) for _ in range(200)]
        for handle in handles[:150]:
            handle.cancel()
            handle.cancel()  # double-cancel must not over-count
        env.run_until(20.0)
        assert env.pending_events == 0

    def test_small_heaps_not_compacted(self):
        env = Environment()
        handles = [env.schedule(10.0, lambda: None) for _ in range(10)]
        for handle in handles:
            handle.cancel()
        # Below the compaction threshold the tombstones just sit there.
        assert env.pending_events == 10
        env.run_until(20.0)
        assert env.pending_events == 0
