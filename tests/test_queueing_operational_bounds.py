"""Unit tests for operational laws and asymptotic bounds."""

import pytest

from repro.core.errors import ConfigurationError
from repro.queueing.bounds import asymptotic_bounds, max_useful_replicas
from repro.queueing.network import ClosedNetwork, delay_center, queueing_center
from repro.queueing.operational import (
    closed_loop_throughput,
    interactive_response_time,
    littles_law_population,
    utilization,
    utilization_law_demand,
)


class TestOperationalLaws:
    def test_utilization_law_demand(self):
        # 30 s busy over 1000 completions -> 30 ms demand.
        assert utilization_law_demand(30.0, 1000) == pytest.approx(0.030)

    def test_utilization_law_demand_rejects_zero_completions(self):
        with pytest.raises(ConfigurationError):
            utilization_law_demand(1.0, 0)

    def test_utilization_law_demand_rejects_negative_busy(self):
        with pytest.raises(ConfigurationError):
            utilization_law_demand(-1.0, 10)

    def test_utilization(self):
        assert utilization(100.0, 0.005) == pytest.approx(0.5)

    def test_littles_law(self):
        assert littles_law_population(50.0, 0.2) == pytest.approx(10.0)

    def test_interactive_response_time(self):
        # N=100, X=50, Z=1 -> R = 100/50 - 1 = 1 second.
        assert interactive_response_time(100, 50.0, 1.0) == pytest.approx(1.0)

    def test_interactive_response_time_clamps_at_zero(self):
        assert interactive_response_time(10, 100.0, 1.0) == 0.0

    def test_interactive_response_time_rejects_zero_throughput(self):
        with pytest.raises(ConfigurationError):
            interactive_response_time(10, 0.0, 1.0)

    def test_closed_loop_throughput_inverts_response_law(self):
        x = closed_loop_throughput(100, 1.0, 1.0)
        assert x == pytest.approx(50.0)
        assert interactive_response_time(100, x, 1.0) == pytest.approx(1.0)

    def test_closed_loop_throughput_rejects_zero_denominator(self):
        with pytest.raises(ConfigurationError):
            closed_loop_throughput(10, 0.0, 0.0)


class TestAsymptoticBounds:
    def network(self):
        return ClosedNetwork(
            centers=(
                queueing_center("cpu", 0.040),
                queueing_center("disk", 0.010),
                delay_center("lb", 0.002),
            ),
            think_time=1.0,
        )

    def test_light_load_bound(self):
        bounds = asymptotic_bounds(self.network(), 1)
        # One client: X <= 1/(D+Z)
        assert bounds.throughput_upper == pytest.approx(1 / 1.052)

    def test_heavy_load_bound(self):
        bounds = asymptotic_bounds(self.network(), 10_000)
        assert bounds.throughput_upper == pytest.approx(1 / 0.040)

    def test_saturation_population(self):
        bounds = asymptotic_bounds(self.network(), 10)
        assert bounds.saturation_population == pytest.approx(1.052 / 0.040)

    def test_response_lower_bound_light(self):
        bounds = asymptotic_bounds(self.network(), 1)
        assert bounds.response_time_lower == pytest.approx(0.052)

    def test_response_lower_bound_heavy(self):
        n = 1000
        bounds = asymptotic_bounds(self.network(), n)
        assert bounds.response_time_lower == pytest.approx(n * 0.040 - 1.0)

    def test_pure_delay_network(self):
        network = ClosedNetwork(centers=(delay_center("lb", 0.01),), think_time=1.0)
        bounds = asymptotic_bounds(network, 50)
        assert bounds.throughput_upper == pytest.approx(50 / 1.01)
        assert bounds.saturation_population == float("inf")

    def test_negative_population_rejected(self):
        with pytest.raises(ConfigurationError):
            asymptotic_bounds(self.network(), -1)

    def test_max_useful_replicas(self):
        assert max_useful_replicas(100.0, 25.0) == pytest.approx(4.0)

    def test_max_useful_replicas_zero_load(self):
        assert max_useful_replicas(100.0, 0.0) == float("inf")

    def test_max_useful_replicas_rejects_zero_capacity(self):
        with pytest.raises(ConfigurationError):
            max_useful_replicas(0.0, 1.0)


class TestNetworkValidation:
    def test_duplicate_center_names_rejected(self):
        with pytest.raises(ConfigurationError):
            ClosedNetwork(
                centers=(queueing_center("cpu", 0.1), queueing_center("cpu", 0.2)),
            )

    def test_empty_network_rejected(self):
        with pytest.raises(ConfigurationError):
            ClosedNetwork(centers=())

    def test_negative_think_time_rejected(self):
        with pytest.raises(ConfigurationError):
            ClosedNetwork(centers=(queueing_center("cpu", 0.1),), think_time=-1.0)

    def test_negative_demand_rejected(self):
        with pytest.raises(ConfigurationError):
            queueing_center("cpu", -0.1)

    def test_bottleneck_is_largest_queueing_center(self):
        network = ClosedNetwork(
            centers=(
                queueing_center("cpu", 0.02),
                queueing_center("disk", 0.05),
                delay_center("lb", 0.99),
            ),
        )
        assert network.bottleneck.name == "disk"

    def test_with_demands_replaces_named_centers(self):
        network = ClosedNetwork(
            centers=(queueing_center("cpu", 0.02), queueing_center("disk", 0.01)),
        )
        updated = network.with_demands({"cpu": 0.04})
        assert updated.demands() == {"cpu": 0.04, "disk": 0.01}
        assert network.demands()["cpu"] == 0.02

    def test_with_demands_unknown_center_rejected(self):
        network = ClosedNetwork(centers=(queueing_center("cpu", 0.02),))
        with pytest.raises(ConfigurationError):
            network.with_demands({"disk": 0.01})

    def test_total_demand(self):
        network = ClosedNetwork(
            centers=(queueing_center("cpu", 0.02), delay_center("lb", 0.01)),
        )
        assert network.total_demand == pytest.approx(0.03)
