"""Tests for balanced-job bounds, including a property check against exact MVA."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import ConfigurationError
from repro.queueing.bounds import asymptotic_bounds, balanced_bounds
from repro.queueing.mva import solve_mva
from repro.queueing.network import ClosedNetwork, delay_center, queueing_center

demand_st = st.floats(min_value=1e-3, max_value=0.3,
                      allow_nan=False, allow_infinity=False)


def network(demands, think=1.0, delays=()):
    centers = [queueing_center(f"q{i}", d) for i, d in enumerate(demands)]
    centers += [delay_center(f"d{i}", d) for i, d in enumerate(delays)]
    return ClosedNetwork(centers=tuple(centers), think_time=think)


class TestBalancedBounds:
    def test_single_customer_bounds_are_tight(self):
        net = network([0.05, 0.02])
        bounds = balanced_bounds(net, 1)
        exact = solve_mva(net, 1).throughput
        assert bounds.throughput_lower == pytest.approx(exact)
        assert bounds.throughput_upper == pytest.approx(exact)

    def test_bounds_bracket_exact_mva(self):
        net = network([0.04, 0.02, 0.01], think=0.5)
        for n in (1, 5, 20, 60, 150):
            bounds = balanced_bounds(net, n)
            exact = solve_mva(net, n).throughput
            assert bounds.contains(exact), (n, bounds, exact)

    def test_tighter_than_asymptotic_upper(self):
        net = network([0.04, 0.02], think=1.0)
        for n in (5, 20, 50):
            balanced = balanced_bounds(net, n)
            asymptotic = asymptotic_bounds(net, n)
            assert balanced.throughput_upper <= (
                asymptotic.throughput_upper + 1e-12
            )

    def test_balanced_network_upper_bound_is_exact(self):
        # A network that is already balanced IS its balanced equivalent:
        # the upper bound coincides with exact MVA.
        net = network([0.03, 0.03], think=1.0)
        for n in (1, 10, 40):
            bounds = balanced_bounds(net, n)
            exact = solve_mva(net, n).throughput
            assert exact == pytest.approx(bounds.throughput_upper, rel=1e-9)
            assert bounds.throughput_lower <= exact * (1 + 1e-9)

    def test_delay_centers_shift_both_bounds(self):
        plain = balanced_bounds(network([0.04]), 10)
        delayed = balanced_bounds(network([0.04], delays=[0.1]), 10)
        assert delayed.throughput_upper < plain.throughput_upper
        assert delayed.throughput_lower < plain.throughput_lower

    def test_pure_delay_network_exact(self):
        net = ClosedNetwork(centers=(delay_center("d", 0.05),), think_time=1.0)
        bounds = balanced_bounds(net, 20)
        assert bounds.throughput_lower == pytest.approx(20 / 1.05)
        assert bounds.throughput_upper == pytest.approx(20 / 1.05)

    def test_zero_population(self):
        bounds = balanced_bounds(network([0.04]), 0)
        assert bounds.throughput_lower == 0.0
        assert bounds.throughput_upper == 0.0

    def test_negative_population_rejected(self):
        with pytest.raises(ConfigurationError):
            balanced_bounds(network([0.04]), -1)

    @given(
        demands=st.lists(demand_st, min_size=1, max_size=4),
        think=st.floats(min_value=0.0, max_value=3.0),
        population=st.integers(min_value=1, max_value=60),
    )
    @settings(max_examples=80, deadline=None)
    def test_property_bounds_bracket_mva(self, demands, think, population):
        net = network(demands, think=think)
        bounds = balanced_bounds(net, population)
        exact = solve_mva(net, population).throughput
        assert bounds.throughput_lower <= exact * (1 + 1e-9)
        assert exact <= bounds.throughput_upper * (1 + 1e-9)
