"""Unit tests for the top-level prediction API."""

import pytest

from repro.core.errors import ConfigurationError
from repro.models.api import (
    MULTI_MASTER,
    SINGLE_MASTER,
    compare_designs,
    predict,
    predict_curve,
    replicas_for_throughput,
)
from repro.models.standalone import (
    predict_standalone,
    predict_standalone_from_config,
)


class TestPredictDispatch:
    def test_multimaster_design(self, simple_profile, simple_config):
        prediction = predict(MULTI_MASTER, simple_profile, simple_config)
        assert prediction.replicas == 4

    def test_singlemaster_design(self, simple_profile, simple_config):
        prediction = predict(SINGLE_MASTER, simple_profile, simple_config)
        assert prediction.replicas == 4

    def test_unknown_design_rejected(self, simple_profile, simple_config):
        with pytest.raises(ConfigurationError):
            predict("tri-master", simple_profile, simple_config)


class TestPredictCurve:
    def test_curve_covers_requested_counts(self, simple_profile, simple_config):
        curve = predict_curve(
            MULTI_MASTER, simple_profile, simple_config, (1, 2, 4)
        )
        assert list(curve.replica_counts) == [1, 2, 4]
        assert len(curve.points) == 3

    def test_empty_counts_rejected(self, simple_profile, simple_config):
        with pytest.raises(ConfigurationError):
            predict_curve(MULTI_MASTER, simple_profile, simple_config, ())

    def test_curve_throughput_monotone_for_mm(self, simple_profile, simple_config):
        curve = predict_curve(
            MULTI_MASTER, simple_profile, simple_config, (1, 2, 4, 8)
        )
        assert curve.throughputs == sorted(curve.throughputs)


class TestCompareDesigns:
    def test_returns_both_designs(self, simple_profile, simple_config):
        result = compare_designs(simple_profile, simple_config, (1, 2))
        assert set(result) == {MULTI_MASTER, SINGLE_MASTER}

    def test_mm_beats_sm_for_write_heavy_at_scale(self, simple_demands):
        from repro.core.params import StandaloneProfile, WorkloadMix

        profile = StandaloneProfile(
            mix=WorkloadMix(read_fraction=0.5, write_fraction=0.5),
            demands=simple_demands,
            abort_rate=0.0005,
            update_response_time=0.05,
        )
        from repro.core.params import ReplicationConfig

        config = ReplicationConfig(replicas=1, clients_per_replica=50)
        result = compare_designs(profile, config, (16,))
        mm = result[MULTI_MASTER].point_at(16).throughput
        sm = result[SINGLE_MASTER].point_at(16).throughput
        assert mm > sm


class TestReplicasForThroughput:
    def test_finds_minimum_replicas(self, simple_profile, simple_config):
        x1 = predict(MULTI_MASTER, simple_profile,
                     simple_config.with_replicas(1)).throughput
        target = 2.5 * x1
        n = replicas_for_throughput(
            MULTI_MASTER, simple_profile, simple_config, target
        )
        assert n is not None
        assert predict(
            MULTI_MASTER, simple_profile, simple_config.with_replicas(n)
        ).throughput >= target
        if n > 1:
            assert predict(
                MULTI_MASTER, simple_profile, simple_config.with_replicas(n - 1)
            ).throughput < target

    def test_unreachable_target_returns_none(self, simple_profile, simple_config):
        n = replicas_for_throughput(
            SINGLE_MASTER, simple_profile, simple_config, 1e9, max_replicas=4
        )
        assert n is None

    def test_rejects_nonpositive_target(self, simple_profile, simple_config):
        with pytest.raises(ConfigurationError):
            replicas_for_throughput(
                MULTI_MASTER, simple_profile, simple_config, 0.0
            )


class TestStandaloneModel:
    def test_throughput_bounded_by_capacity(self, simple_profile):
        prediction = predict_standalone(simple_profile, clients=500)
        demand_cpu = 0.8 * 0.040 + 0.2 * 0.012 / (1 - 0.001)
        assert prediction.throughput <= 1.0 / demand_cpu + 1e-9

    def test_light_load_throughput(self, simple_profile):
        prediction = predict_standalone(simple_profile, clients=1, think_time=1.0)
        assert prediction.throughput == pytest.approx(
            1.0 / (1.0 + prediction.response_time), rel=1e-9
        )

    def test_from_config_uses_config_fields(self, simple_profile, simple_config):
        a = predict_standalone_from_config(simple_profile, simple_config)
        b = predict_standalone(
            simple_profile,
            clients=simple_config.clients_per_replica,
            think_time=simple_config.think_time,
        )
        assert a.throughput == pytest.approx(b.throughput)

    def test_breakdown_role(self, simple_profile):
        prediction = predict_standalone(simple_profile, clients=10)
        assert prediction.breakdown[0].role == "standalone"
