"""Unit tests for the multi-version store."""

import pytest

from repro.core.errors import ConfigurationError
from repro.sidb.versionstore import VersionedStore


class TestBasicVersioning:
    def test_initial_state_is_version_zero(self):
        store = VersionedStore({"a": 1})
        assert store.read("a", 0) == 1
        assert store.latest_version == 0

    def test_missing_key_raises(self):
        store = VersionedStore()
        with pytest.raises(KeyError):
            store.read("nope", 0)

    def test_get_returns_default_for_missing(self):
        store = VersionedStore()
        assert store.get("nope", 0, default=42) == 42

    def test_install_creates_new_version(self):
        store = VersionedStore({"a": 1})
        store.install(1, {"a": 2})
        assert store.read("a", 0) == 1
        assert store.read("a", 1) == 2
        assert store.latest_version == 1

    def test_snapshot_sees_newest_at_or_below(self):
        store = VersionedStore({"a": 0})
        store.install(1, {"a": 10})
        store.install(5, {"a": 50})
        assert store.read("a", 3) == 10
        assert store.read("a", 5) == 50
        assert store.read("a", 99) == 50

    def test_key_created_later_invisible_to_old_snapshot(self):
        store = VersionedStore()
        store.install(1, {"b": 7})
        with pytest.raises(KeyError):
            store.read("b", 0)
        assert store.read("b", 1) == 7

    def test_contains(self):
        store = VersionedStore()
        store.install(1, {"b": 7})
        assert not store.contains("b", 0)
        assert store.contains("b", 1)

    def test_install_out_of_order_rejected(self):
        store = VersionedStore()
        store.install(2, {"a": 1})
        with pytest.raises(ConfigurationError):
            store.install(2, {"a": 2})
        with pytest.raises(ConfigurationError):
            store.install(1, {"a": 2})

    def test_version_of_tracks_newest_write(self):
        store = VersionedStore()
        assert store.version_of("a") is None
        store.install(3, {"a": 1})
        assert store.version_of("a") == 3

    def test_multiple_keys_per_install(self):
        store = VersionedStore()
        store.install(1, {"a": 1, "b": 2})
        assert store.read("a", 1) == 1
        assert store.read("b", 1) == 2


class TestVacuum:
    def test_vacuum_drops_invisible_versions(self):
        store = VersionedStore({"a": 0})
        for v in range(1, 6):
            store.install(v, {"a": v})
        freed = store.vacuum(oldest_active_snapshot=4)
        assert freed == 4  # versions 0..3 superseded by 4 and invisible
        assert store.read("a", 4) == 4
        assert store.read("a", 5) == 5

    def test_vacuum_keeps_version_visible_to_oldest_snapshot(self):
        store = VersionedStore({"a": 0})
        store.install(2, {"a": 2})
        store.install(4, {"a": 4})
        store.vacuum(oldest_active_snapshot=3)
        # Snapshot 3 must still see the version-2 value.
        assert store.read("a", 3) == 2

    def test_vacuum_noop_when_everything_visible(self):
        store = VersionedStore({"a": 0})
        store.install(1, {"a": 1})
        assert store.vacuum(oldest_active_snapshot=0) == 0

    def test_version_count(self):
        store = VersionedStore({"a": 0})
        store.install(1, {"a": 1})
        assert store.version_count("a") == 2
        assert store.version_count("zzz") == 0


class TestSnapshotView:
    def test_view_materialises_state_at_version(self):
        store = VersionedStore({"a": 1, "b": 2})
        store.install(1, {"a": 10})
        store.install(2, {"c": 30})
        assert store.snapshot_view(0) == {"a": 1, "b": 2}
        assert store.snapshot_view(1) == {"a": 10, "b": 2}
        assert store.snapshot_view(2) == {"a": 10, "b": 2, "c": 30}

    def test_keys_iterates_all_keys(self):
        store = VersionedStore({"a": 1})
        store.install(1, {"b": 2})
        assert set(store.keys()) == {"a", "b"}
