"""Unit tests for writesets and the certification service."""

import pytest

from repro.core.errors import ConfigurationError
from repro.sidb.certifier import Certifier
from repro.sidb.writeset import Writeset


def ws(txn_id, snapshot, keys):
    return Writeset.from_dict(txn_id, snapshot, {k: txn_id for k in keys})


class TestWriteset:
    def test_keys_extracted(self):
        writeset = ws(1, 0, ["a", "b"])
        assert writeset.keys == frozenset({"a", "b"})

    def test_empty_writeset_rejected(self):
        with pytest.raises(ConfigurationError):
            Writeset.from_dict(1, 0, {})

    def test_negative_snapshot_rejected(self):
        with pytest.raises(ConfigurationError):
            ws(1, -1, ["a"])

    def test_conflicts_with_detects_overlap(self):
        assert ws(1, 0, ["a", "b"]).conflicts_with(ws(2, 0, ["b", "c"]))
        assert not ws(1, 0, ["a"]).conflicts_with(ws(2, 0, ["c"]))

    def test_committed_stamps_version(self):
        committed = ws(1, 0, ["a"]).committed(5)
        assert committed.commit_version == 5
        assert committed.keys == frozenset({"a"})

    def test_committed_rejects_nonpositive_version(self):
        with pytest.raises(ConfigurationError):
            ws(1, 0, ["a"]).committed(0)

    def test_encoded_size_grows_with_rows(self):
        small = ws(1, 0, ["a"]).encoded_size()
        large = ws(2, 0, ["a", "b", "c"]).encoded_size()
        assert large > small

    def test_as_dict(self):
        writeset = Writeset.from_dict(9, 0, {"a": 1, "b": 2})
        assert writeset.as_dict == {"a": 1, "b": 2}


class TestCertifierBasics:
    def test_first_commit_gets_version_one(self):
        certifier = Certifier()
        outcome = certifier.certify(ws(1, 0, ["a"]))
        assert outcome.committed
        assert outcome.commit_version == 1
        assert certifier.latest_version == 1

    def test_versions_are_dense(self):
        certifier = Certifier()
        versions = [
            certifier.certify(ws(i, certifier.latest_version, [f"k{i}"]))
            .commit_version
            for i in range(1, 6)
        ]
        assert versions == [1, 2, 3, 4, 5]

    def test_conflict_aborts(self):
        certifier = Certifier()
        certifier.certify(ws(1, 0, ["a"]))
        outcome = certifier.certify(ws(2, 0, ["a"]))  # concurrent with txn 1
        assert not outcome.committed
        assert outcome.conflicting_keys == frozenset({"a"})

    def test_non_overlapping_concurrent_commits(self):
        certifier = Certifier()
        certifier.certify(ws(1, 0, ["a"]))
        outcome = certifier.certify(ws(2, 0, ["b"]))
        assert outcome.committed

    def test_serial_rewrites_commit(self):
        certifier = Certifier()
        certifier.certify(ws(1, 0, ["a"]))
        # Transaction 2 saw version 1, so txn 1 is not concurrent with it.
        outcome = certifier.certify(ws(2, 1, ["a"]))
        assert outcome.committed

    def test_conflict_only_against_later_commits(self):
        certifier = Certifier()
        certifier.certify(ws(1, 0, ["a"]))  # v1
        certifier.certify(ws(2, 1, ["b"]))  # v2
        # Snapshot 1: conflicts checked against v2 only.
        assert certifier.certify(ws(3, 1, ["a"])).committed
        assert not certifier.certify(ws(4, 1, ["b"])).committed

    def test_future_snapshot_rejected(self):
        certifier = Certifier()
        with pytest.raises(ConfigurationError):
            certifier.certify(ws(1, 5, ["a"]))

    def test_statistics_counted(self):
        certifier = Certifier()
        certifier.certify(ws(1, 0, ["a"]))
        certifier.certify(ws(2, 0, ["a"]))
        assert certifier.certifications == 2
        assert certifier.commits == 1
        assert certifier.aborts == 1
        assert certifier.abort_fraction == pytest.approx(0.5)

    def test_reset_statistics(self):
        certifier = Certifier()
        certifier.certify(ws(1, 0, ["a"]))
        certifier.reset_statistics()
        assert certifier.certifications == 0
        assert certifier.abort_fraction == 0.0
        # Version counter is NOT reset.
        assert certifier.latest_version == 1


class TestCertifierPruning:
    def test_observe_snapshot_prunes_history(self):
        certifier = Certifier()
        for i in range(1, 11):
            certifier.certify(ws(i, certifier.latest_version, [f"k{i}"]))
        certifier.observe_snapshot(5)
        # Snapshots >= 5 still certify exactly.
        assert certifier.certify(ws(99, 5, ["fresh"])).committed

    def test_stale_snapshot_conservatively_aborts_after_pruning(self):
        certifier = Certifier()
        for i in range(1, 11):
            certifier.certify(ws(i, certifier.latest_version, [f"k{i}"]))
        certifier.observe_snapshot(8)
        outcome = certifier.certify(ws(99, 2, ["zzz"]))
        assert not outcome.committed  # history to answer exactly is gone

    def test_max_history_bounds_memory(self):
        certifier = Certifier(max_history=5)
        for i in range(1, 21):
            certifier.certify(ws(i, certifier.latest_version, [f"k{i}"]))
        assert len(certifier._history) <= 5

    def test_max_history_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            Certifier(max_history=0)

    def test_first_committer_wins_invariant(self):
        """Of two concurrent overlapping writesets, exactly one commits."""
        certifier = Certifier()
        snapshot = certifier.latest_version
        first = certifier.certify(ws(1, snapshot, ["x", "y"]))
        second = certifier.certify(ws(2, snapshot, ["y", "z"]))
        assert first.committed
        assert not second.committed


def pws(txn_id, snapshot, partition, rows):
    """A partitioned writeset with partition-qualified keys."""
    return Writeset.from_dict(
        txn_id, snapshot,
        {("updatable", partition, row): txn_id for row in rows},
        partitions=(partition,),
    )


class TestPartitionedWriteset:
    def test_partitions_sorted_and_deduplicated(self):
        writeset = Writeset.from_dict(
            1, 0, {"a": 1}, partitions=(2, 0, 2)
        )
        assert writeset.partitions == (0, 2)
        assert writeset.partition_set == frozenset({0, 2})

    def test_committed_preserves_partitions(self):
        committed = pws(1, 0, 3, ["r"]).committed(7)
        assert committed.partitions == (3,)

    def test_writes_for_scopes_cross_partition_payload(self):
        writeset = Writeset.from_dict(
            1, 0,
            {("updatable", 0, 5): 1, ("updatable", 1, 9): 1},
            partitions=(0, 1),
        )
        assert writeset.writes_for(frozenset({0})) == {("updatable", 0, 5): 1}
        assert writeset.writes_for(None) == writeset.as_dict

    def test_writes_for_unpartitioned_returns_everything(self):
        writeset = ws(1, 0, ["a"])
        assert writeset.writes_for(frozenset({0})) == {"a": 1}


class TestPartitionedCertification:
    def test_disjoint_partitions_never_conflict(self):
        certifier = Certifier()
        first = certifier.certify(pws(1, 0, 0, [1, 2]))
        second = certifier.certify(pws(2, 0, 1, [1, 2]))
        assert first.committed and second.committed

    def test_same_partition_overlap_still_conflicts(self):
        certifier = Certifier()
        assert certifier.certify(pws(1, 0, 0, [1, 2])).committed
        outcome = certifier.certify(pws(2, 0, 0, [2, 3]))
        assert not outcome.committed
        assert ("updatable", 0, 2) in outcome.conflicting_keys

    def test_partition_sets_share_one_global_version_sequence(self):
        certifier = Certifier()
        a = certifier.certify(pws(1, 0, 0, [1]))
        b = certifier.certify(pws(2, 1, 1, [1]))
        assert (a.commit_version, b.commit_version) == (1, 2)

    def test_unpartitioned_wildcard_conflicts_with_partitioned(self):
        certifier = Certifier()
        assert certifier.certify(pws(1, 0, 0, [4])).committed
        wildcard = Writeset.from_dict(2, 0, {("updatable", 0, 4): 2})
        assert not certifier.certify(wildcard).committed

    def test_cross_partition_writesets_conflict_on_shared_partition(self):
        certifier = Certifier()
        first = Writeset.from_dict(
            1, 0, {("updatable", 0, 1): 1, ("updatable", 1, 1): 1},
            partitions=(0, 1),
        )
        second = Writeset.from_dict(
            2, 0, {("updatable", 1, 1): 2, ("updatable", 2, 1): 2},
            partitions=(1, 2),
        )
        assert certifier.certify(first).committed
        assert not certifier.certify(second).committed
