"""Self-healing operations: crash detection and automatic replacement."""

import pytest

from repro.control.autoscale import autoscale_sim
from repro.control.controller import FixedPolicy
from repro.control.trace import DiurnalTrace
from repro.ops import OpsPlan, summarize
from repro.ops.events import OpsEvent
from repro.simulator.faults import crash_fault
from repro.simulator.runner import MULTI_MASTER, SINGLE_MASTER


def _steady(rate, period=100.0):
    return DiurnalTrace(base_rate=rate, peak_rate=rate, period=period)


def _selfheal_run(spec, design, rate=30.0, crash_at=30.0, seed=7):
    return autoscale_sim(
        spec,
        _steady(rate),
        FixedPolicy(replicas=3),
        design=design,
        seed=seed,
        warmup=10.0,
        duration=90.0,
        control_interval=5.0,
        slo_response=1.5,
        max_replicas=6,
        ops=OpsPlan(faults=(crash_fault(1, crash_at),), self_heal=True),
    )


class TestSelfHealSim:
    @pytest.fixture(scope="class", params=[MULTI_MASTER, SINGLE_MASTER])
    def result(self, request, shopping_spec):
        return _selfheal_run(shopping_spec, request.param)

    def test_replacement_event_sequence(self, result):
        kinds = [e.kind for e in result.ops_events]
        for expected in ("crash", "detect", "detach", "replace", "restored"):
            assert expected in kinds, kinds
        # Detection cannot precede the crash; restoration ends the cycle.
        assert kinds.index("crash") < kinds.index("detect")
        assert kinds.index("replace") < kinds.index("restored")

    def test_membership_restored(self, result):
        assert result.final_members == 3
        assert min(p.members for p in result.timeline) >= 2

    def test_mttr_bounded(self, result):
        summary = summarize(result)
        assert summary.crashes == 1
        assert summary.replacements == 1
        # Detection latency (one control interval) + state transfer;
        # generous bound to keep the test robust.
        assert summary.mttr is not None
        assert summary.mttr <= 20.0

    def test_throughput_recovers(self, result):
        summary = summarize(result)
        assert summary.recovery_ratio >= 0.9

    def test_no_lost_or_duplicated_writesets(self, result):
        assert result.converged
        assert len(set(result.final_versions)) <= 1

    def test_controller_did_not_interfere(self, result):
        # The ops plan is the membership authority: the fixed controller
        # must not have issued its own scale events.
        assert result.scale_events == 0


class TestSelfHealDeterminism:
    def test_same_seed_same_timeline(self, shopping_spec):
        first = _selfheal_run(shopping_spec, MULTI_MASTER, seed=11)
        second = _selfheal_run(shopping_spec, MULTI_MASTER, seed=11)
        assert first.timeline == second.timeline
        assert first.ops_events == second.ops_events


class TestSummarize:
    def test_open_repair_window_counts_as_crash(self):
        # A crash whose replacement never completed still shows up.
        class FakeResult:
            ops_events = (OpsEvent(10.0, "crash", "replica1"),)
            timeline = ()
            control_interval = 5.0

        summary = summarize(FakeResult())
        assert summary.crashes == 1
        assert summary.replacements == 0
        assert summary.mttr is None

    def test_matched_pairs_by_name(self):
        class FakeResult:
            ops_events = (
                OpsEvent(10.0, "crash", "a"),
                OpsEvent(12.0, "crash", "b"),
                OpsEvent(20.0, "restored", "a2", detail="replaces a"),
                OpsEvent(30.0, "restored", "b2", detail="replaces b"),
            )
            timeline = ()
            control_interval = 5.0

        summary = summarize(FakeResult())
        assert summary.crashes == 2
        assert summary.replacements == 2
        assert summary.mttr == pytest.approx((10.0 + 18.0) / 2)
        assert summary.worst_mttr == pytest.approx(18.0)
        # Windows [10, 20] and [12, 30] overlap: merged to [10, 30].
        assert summary.unavailability == pytest.approx(20.0)


class TestDetectInterval:
    """Detection cadence decoupled from the control interval."""

    def _run(self, spec, detect_interval):
        return autoscale_sim(
            spec,
            _steady(30.0),
            FixedPolicy(replicas=3),
            design=MULTI_MASTER,
            seed=11,
            warmup=10.0,
            duration=90.0,
            control_interval=10.0,
            slo_response=1.5,
            max_replicas=6,
            ops=OpsPlan(
                faults=(crash_fault(1, 35.0),),
                self_heal=True,
                detect_interval=detect_interval,
            ),
        )

    def test_fast_detection_bounds_detection_latency(self, shopping_spec):
        result = self._run(shopping_spec, detect_interval=1.0)
        summary = summarize(result)
        assert summary.crashes == 1 and summary.replacements == 1
        assert summary.mean_detection_latency is not None
        # Detection rides its own 1 s timer, not the 10 s control loop.
        assert summary.mean_detection_latency <= 1.0 + 1e-9
        assert summary.mean_repair_latency is not None
        assert summary.mean_detection_latency + summary.mean_repair_latency \
            == pytest.approx(summary.mttr)

    def test_default_detection_rides_the_control_interval(
        self, shopping_spec
    ):
        result = self._run(shopping_spec, detect_interval=None)
        summary = summarize(result)
        assert summary.replacements == 1
        # Without the knob, worst-case detection is one control interval.
        assert summary.mean_detection_latency <= 10.0 + 1e-9

    def test_faster_detection_shrinks_mttr(self, shopping_spec):
        slow = summarize(self._run(shopping_spec, detect_interval=None))
        fast = summarize(self._run(shopping_spec, detect_interval=1.0))
        assert fast.mttr <= slow.mttr + 1e-9

    def test_detect_interval_must_be_positive(self):
        with pytest.raises(Exception):
            OpsPlan(self_heal=True, detect_interval=0.0)

    def test_breakdown_rendered(self, shopping_spec):
        summary = summarize(self._run(shopping_spec, detect_interval=1.0))
        assert "detection" in summary.to_text()
