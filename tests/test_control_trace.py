"""Tests for the load-trace layer of the autoscaling control plane."""

import pytest

from repro.control.trace import (
    DiurnalTrace,
    FlashCrowdTrace,
    ModulatedTrace,
    PiecewiseTrace,
)
from repro.core.errors import ConfigurationError


class TestDiurnalTrace:
    def test_swings_between_base_and_peak(self):
        trace = DiurnalTrace(base_rate=10.0, peak_rate=100.0, period=200.0)
        assert trace.rate(0.0) == pytest.approx(10.0)
        assert trace.rate(100.0) == pytest.approx(100.0)  # half period
        assert trace.rate(200.0) == pytest.approx(10.0)
        assert trace.max_rate == 100.0
        for t in (13.0, 57.0, 123.0):
            assert 10.0 <= trace.rate(t) <= 100.0

    def test_peak_between_exact_at_crest(self):
        trace = DiurnalTrace(base_rate=10.0, peak_rate=100.0, period=200.0)
        # Window containing the crest at t=100 reports the exact peak.
        assert trace.peak_between(90.0, 110.0) == pytest.approx(100.0)
        # Window on the rising flank reports the right endpoint.
        assert trace.peak_between(10.0, 40.0) == pytest.approx(
            trace.rate(40.0)
        )

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            DiurnalTrace(base_rate=50.0, peak_rate=10.0, period=100.0)
        with pytest.raises(ConfigurationError):
            DiurnalTrace(base_rate=1.0, peak_rate=2.0, period=0.0)


class TestFlashCrowdTrace:
    def test_trapezoid_shape(self):
        trace = FlashCrowdTrace(base_rate=10.0, spike_rate=100.0,
                                spike_start=50.0, spike_duration=20.0,
                                ramp=10.0)
        assert trace.rate(0.0) == 10.0
        assert trace.rate(55.0) == pytest.approx(55.0)  # mid-ramp
        assert trace.rate(65.0) == 100.0                # plateau
        assert trace.rate(85.0) == pytest.approx(55.0)  # mid-descent
        assert trace.rate(120.0) == 10.0

    def test_peak_between_catches_narrow_spike(self):
        trace = FlashCrowdTrace(base_rate=10.0, spike_rate=100.0,
                                spike_start=50.0, spike_duration=1.0,
                                ramp=0.5)
        # A wide window around a narrow spike must still see the spike.
        assert trace.peak_between(0.0, 500.0) == pytest.approx(100.0)
        assert trace.peak_between(100.0, 500.0) == 10.0


class TestModulatedTrace:
    def test_deterministic_and_level_valued(self):
        trace = ModulatedTrace(rates=(10.0, 40.0, 90.0), dwell=5.0, seed=3)
        rates = [trace.rate(t) for t in range(0, 100)]
        assert all(r in (10.0, 40.0, 90.0) for r in rates)
        again = ModulatedTrace(rates=(10.0, 40.0, 90.0), dwell=5.0, seed=3)
        assert [again.rate(t) for t in range(0, 100)] == rates
        # A different seed modulates differently somewhere.
        other = ModulatedTrace(rates=(10.0, 40.0, 90.0), dwell=5.0, seed=4)
        assert [other.rate(t) for t in range(0, 100)] != rates

    def test_constant_within_a_dwell_epoch(self):
        trace = ModulatedTrace(rates=(10.0, 90.0), dwell=10.0, seed=1)
        assert trace.rate(20.0) == trace.rate(29.9)

    def test_peak_between_spans_epochs(self):
        trace = ModulatedTrace(rates=(10.0, 90.0), dwell=10.0, seed=1)
        window_peak = trace.peak_between(0.0, 200.0)
        assert window_peak == max(trace.rate(t) for t in range(0, 201))


class TestPiecewiseTrace:
    POINTS = ((0.0, 10.0), (60.0, 100.0), (120.0, 40.0))

    def test_interpolates_linearly(self):
        trace = PiecewiseTrace(points=self.POINTS)
        assert trace.rate(0.0) == 10.0
        assert trace.rate(30.0) == pytest.approx(55.0)
        assert trace.rate(60.0) == 100.0
        assert trace.rate(90.0) == pytest.approx(70.0)
        # Holds the last rate beyond the final point.
        assert trace.rate(500.0) == 40.0
        assert trace.max_rate == 100.0

    def test_cyclic_replay_wraps(self):
        trace = PiecewiseTrace(points=self.POINTS, period=180.0)
        assert trace.rate(180.0) == trace.rate(0.0)
        assert trace.rate(240.0) == pytest.approx(trace.rate(60.0))
        # Across the wrap it interpolates back toward the first point.
        assert 10.0 <= trace.rate(150.0) <= 40.0

    def test_peak_between_includes_breakpoints(self):
        trace = PiecewiseTrace(points=self.POINTS)
        assert trace.peak_between(0.0, 120.0) == 100.0
        cyclic = PiecewiseTrace(points=self.POINTS, period=180.0)
        # Any window >= one period sees the global peak.
        assert cyclic.peak_between(500.0, 700.0) == 100.0

    def test_from_file(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("# time rate\n0, 10\n60 100\n\n120,40\n")
        trace = PiecewiseTrace.from_file(str(path))
        assert trace.points == ((0.0, 10.0), (60.0, 100.0), (120.0, 40.0))
        with pytest.raises(ConfigurationError):
            bad = tmp_path / "bad.txt"
            bad.write_text("0 10 extra\n")
            PiecewiseTrace.from_file(str(bad))

    def test_rejects_unsorted_times(self):
        with pytest.raises(ConfigurationError):
            PiecewiseTrace(points=((10.0, 5.0), (0.0, 5.0)))
