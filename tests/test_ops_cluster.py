"""Live-cluster operations: crash semantics, replacement, rolling cycles."""

import pytest

from repro.cluster.clock import VirtualClock
from repro.cluster.cluster import MultiMasterCluster, SingleMasterCluster
from repro.control.autoscale import autoscale_cluster
from repro.control.controller import FixedPolicy
from repro.control.scenarios import LIVE_SPEC
from repro.control.trace import DiurnalTrace
from repro.core.errors import ConfigurationError
from repro.ops import OpsPlan, summarize
from repro.simulator.faults import crash_fault
from repro.simulator.stats import MetricsCollector


def _mm_cluster(replicas=3, capacities=None):
    clock = VirtualClock(0.02)
    cluster = MultiMasterCluster(
        LIVE_SPEC, LIVE_SPEC.replication_config(replicas), 1, clock,
        MetricsCollector(), capacities=capacities,
    )
    cluster.start()
    return cluster


class TestCrashSemantics:
    def test_crashed_replica_stops_consuming_writesets(self):
        cluster = _mm_cluster()
        try:
            victim = cluster.replicas[1]
            victim.crash()
            assert victim.failed
            assert not victim.available
            before = victim.apply_backlog
            # Publishes after the crash are dropped, not deferred.
            from repro.sidb.writeset import Writeset

            ws = Writeset.from_dict(1, 0, {("updatable", 1): 1})
            victim.enqueue_writeset(ws.committed(1), charged=True)
            assert victim.apply_backlog == before
        finally:
            cluster.shutdown()

    def test_crash_is_permanent(self):
        cluster = _mm_cluster()
        try:
            victim = cluster.replicas[1]
            victim.crash()
            victim.available = True  # fault recovery must not revive it
            assert not victim.available
            assert cluster.member_count == 2
        finally:
            cluster.shutdown()

    def test_force_remove_detaches_immediately(self):
        cluster = _mm_cluster()
        try:
            victim = cluster.replicas[1]
            victim.crash()
            removed = cluster.remove_replica(replica=victim, force=True)
            assert removed is victim
            assert victim not in cluster.replicas
            assert len(cluster.replicas) == 2
        finally:
            cluster.shutdown()

    def test_cannot_force_remove_last_healthy(self):
        cluster = _mm_cluster(replicas=2)
        try:
            cluster.replicas[0].crash()
            with pytest.raises(ConfigurationError):
                cluster.remove_replica(
                    replica=cluster.replicas[1], force=True
                )
        finally:
            cluster.shutdown()

    def test_single_master_master_not_removable(self):
        clock = VirtualClock(0.02)
        cluster = SingleMasterCluster(
            LIVE_SPEC, LIVE_SPEC.replication_config(2), 1, clock,
            MetricsCollector(),
        )
        cluster.start()
        try:
            with pytest.raises(ConfigurationError):
                cluster.remove_replica(replica=cluster.master, force=True)
        finally:
            cluster.shutdown()

    def test_heterogeneous_capacities_reach_resources(self):
        cluster = _mm_cluster(capacities=(2.0, 1.0, 0.5))
        try:
            assert [r.capacity for r in cluster.replicas] == [2.0, 1.0, 0.5]
            assert cluster.replicas[0].cpu.rate == 2.0
        finally:
            cluster.shutdown()


def _steady(rate, period=20.0):
    return DiurnalTrace(base_rate=rate, peak_rate=rate, period=period)


class TestLiveSelfHeal:
    @pytest.fixture(scope="class")
    def result(self):
        plan = OpsPlan(
            faults=(crash_fault(1, 5.0),), self_heal=True,
            transfer_writesets=4,
        )
        return autoscale_cluster(
            LIVE_SPEC, _steady(10.0), FixedPolicy(replicas=3),
            design="multi-master", seed=5, warmup=2.0, duration=12.0,
            control_interval=1.0, slo_response=1.5, time_scale=0.2,
            max_replicas=6, ops=plan,
        )

    def test_replacement_completed(self, result):
        summary = summarize(result)
        assert summary.crashes == 1
        assert summary.replacements == 1
        assert summary.mttr is not None and summary.mttr < 10.0

    def test_membership_restored(self, result):
        assert result.final_members == 3

    def test_no_lost_or_duplicated_writesets(self, result):
        assert result.converged
        assert len(set(result.final_versions)) <= 1


class TestLiveRollingUpgrade:
    @pytest.fixture(scope="class")
    def result(self):
        plan = OpsPlan(
            rolling_start=4.0, rolling_settle=1.0, transfer_writesets=4,
        )
        return autoscale_cluster(
            LIVE_SPEC, _steady(8.0), FixedPolicy(replicas=3),
            design="multi-master", seed=6, warmup=2.0, duration=14.0,
            control_interval=1.0, slo_response=1.5, time_scale=0.2,
            max_replicas=6, ops=plan,
        )

    def test_whole_fleet_cycled(self, result):
        assert summarize(result).upgrades == 3
        assert any(e.kind == "rolling-complete"
                   for e in result.ops_events)

    def test_fleet_never_more_than_one_short(self, result):
        assert min(p.members for p in result.timeline) >= 2
        assert result.final_members == 3

    def test_converged(self, result):
        assert result.converged
        assert len(set(result.final_versions)) <= 1
