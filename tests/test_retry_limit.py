"""Tests for the max_retries configuration knob and its structured error."""

from __future__ import annotations

import pytest

from repro.core.errors import (
    ConfigurationError,
    RetryLimitExceeded,
    SimulationError,
)
from repro.core.params import (
    ConflictProfile,
    ReplicationConfig,
    WorkloadMix,
)
from repro.simulator.runner import simulate
from repro.workloads.spec import WorkloadSpec, demands_ms


def test_max_retries_is_a_config_knob_with_safe_default():
    config = ReplicationConfig(replicas=2, clients_per_replica=4)
    assert config.max_retries == 10_000
    custom = ReplicationConfig(replicas=2, clients_per_replica=4, max_retries=7)
    assert custom.max_retries == 7


def test_max_retries_must_be_positive():
    with pytest.raises(ConfigurationError):
        ReplicationConfig(replicas=1, clients_per_replica=1, max_retries=0)


def test_retry_limit_error_is_structured():
    error = RetryLimitExceeded("multi-master", "update", 3)
    assert isinstance(error, SimulationError)
    assert error.design == "multi-master"
    assert error.transaction_class == "update"
    assert error.retries == 3
    assert "update" in str(error)
    assert "multi-master" in str(error)


def test_simulator_raises_structured_error_when_limit_trips():
    """A pathological conflict model (every update writes the same single
    row) livelocks retries; the simulator must fail loudly, naming the
    offending transaction class, rather than spin forever."""
    spec = WorkloadSpec(
        benchmark="micro",
        mix_name="livelock",
        mix=WorkloadMix(read_fraction=0.0, write_fraction=1.0),
        demands=demands_ms(
            read_cpu=0.0, read_disk=0.0, write_cpu=5.0, write_disk=2.0,
        ),
        clients_per_replica=6,
        think_time=0.001,
        conflict=ConflictProfile(db_update_size=1, updates_per_transaction=1),
    )
    config = ReplicationConfig(
        replicas=1,
        clients_per_replica=6,
        think_time=0.001,
        max_retries=3,
    )
    with pytest.raises(RetryLimitExceeded) as excinfo:
        simulate(spec, config, design="standalone", warmup=1.0, duration=30.0)
    assert excinfo.value.transaction_class == "update"
    assert excinfo.value.design == "standalone"
    assert excinfo.value.retries == 3
