"""Tests for the unified telemetry layer (repro.telemetry).

Three contracts matter most and each gets direct coverage here:

* **Disabled is free and invisible** — a run without telemetry returns
  results identical to one with it (same seeds, same virtual clock),
  and the result object carries ``telemetry=None``.
* **Both pillars speak one schema** — the simulator and the live
  cluster emit the same shared metric names, with certifier queue
  depth and replication lag populated on both.
* **Exports round-trip** — span JSONL validates against its schema,
  converts to Chrome trace format, and metrics render as Prometheus
  text.
"""

from __future__ import annotations

import dataclasses
import json
import pickle

import pytest

from repro.core.errors import ConfigurationError
from repro.core.params import ConflictProfile, ReplicationConfig, WorkloadMix
from repro.telemetry import (
    Span,
    TelemetryConfig,
    TelemetryEvent,
    Tracer,
    active_config,
    render_dashboard,
    render_events,
)
from repro.telemetry import export as tel_export
from repro.telemetry import schema as tel_schema
from repro.telemetry.registry import MetricsRegistry
from repro.workloads.spec import WorkloadSpec, demands_ms

# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------


def test_counter_accumulates_per_label_set():
    registry = MetricsRegistry()
    registry.counter("hits", kind="read").inc()
    registry.counter("hits", kind="read").inc(2.0)
    registry.counter("hits", kind="update").inc()
    samples = {s.labels: s.value for s in registry.snapshot()}
    assert samples[(("kind", "read"),)] == 3.0
    assert samples[(("kind", "update"),)] == 1.0


def test_gauge_tracks_high_water_mark():
    registry = MetricsRegistry()
    gauge = registry.gauge("depth")
    gauge.add(1.0)
    gauge.add(2.0)
    gauge.add(-3.0)
    (sample,) = registry.snapshot()
    assert sample.value == 0.0
    assert sample.max_value == 3.0


def test_histogram_bucket_edges_are_upper_bound_inclusive():
    registry = MetricsRegistry()
    hist = registry.histogram("lat", bounds=(0.1, 0.5, 1.0))
    # Exactly on a bound lands in that bound's bucket (Prometheus
    # convention: bucket counts v <= bound).
    for value in (0.1, 0.5, 1.0):
        hist.observe(value)
    hist.observe(0.05)   # below the first bound
    hist.observe(2.0)    # overflow (+Inf bucket)
    (sample,) = registry.snapshot()
    assert sample.buckets == (2, 1, 1, 1)
    assert sample.count == 5
    assert sample.sum == pytest.approx(3.65)
    # Quantiles report the bucket upper bound, saturating at the
    # largest finite bound for overflow observations.
    assert sample.quantile(0.5) == 0.5
    assert sample.quantile(1.0) == 1.0


def test_histogram_rejects_unsorted_bounds():
    registry = MetricsRegistry()
    with pytest.raises(ConfigurationError):
        registry.histogram("bad", bounds=(1.0, 0.5))


def test_metric_kind_collision_is_an_error():
    registry = MetricsRegistry()
    registry.counter("x")
    with pytest.raises(ConfigurationError):
        registry.gauge("x")


# ----------------------------------------------------------------------
# Tracing
# ----------------------------------------------------------------------


def test_tracer_sampling_is_deterministic_and_proportional():
    tracer = Tracer(sample_rate=0.25)
    sampled = [tracer.start_trace() is not None for _ in range(100)]
    assert sum(sampled) == 25
    # Error-diffusion sampling: same rate, same pattern, every run.
    again = Tracer(sample_rate=0.25)
    assert sampled == [again.start_trace() is not None for _ in range(100)]


def test_tracer_zero_rate_records_nothing():
    tracer = Tracer(sample_rate=0.0)
    assert all(tracer.start_trace() is None for _ in range(10))
    assert tracer.spans == []


def test_tracer_caps_spans_and_counts_drops():
    tracer = Tracer(sample_rate=1.0, max_spans=2)
    trace = tracer.start_trace()
    for i in range(4):
        tracer.add_span(trace, "route", float(i), float(i) + 0.5)
    assert len(tracer.spans) == 2
    assert tracer.dropped == 2


def test_tracer_version_map_links_appliers_to_traces():
    tracer = Tracer(sample_rate=1.0)
    trace = tracer.start_trace()
    tracer.note_version(7, trace)
    assert tracer.trace_for(7) == trace
    assert tracer.trace_for(8) is None


# ----------------------------------------------------------------------
# Events (the ops timeline rides the telemetry schema)
# ----------------------------------------------------------------------


def test_ops_event_is_a_telemetry_event_with_replica_alias():
    from repro.ops.events import OpsEvent

    event = OpsEvent(12.0, "detect", "replica1", "crashed")
    assert isinstance(event, TelemetryEvent)
    assert event.replica == "replica1"
    assert event.subject == "replica1"
    assert OpsEvent(3.0, "join", subject="replica9").replica == "replica9"


def test_ops_event_renders_like_any_timeline_event():
    from repro.ops.events import OpsEvent

    event = OpsEvent(12.0, "detect", "replica1")
    assert event.to_text() == TelemetryEvent(12.0, "detect", "replica1").to_text()
    lines = render_events([TelemetryEvent(5.0, "crash", "r0"), event])
    assert len(lines) == 2 and "crash" in lines[0] and "detect" in lines[1]


def test_ops_event_unpickles_legacy_replica_field():
    from repro.ops.events import OpsEvent

    event = pickle.loads(pickle.dumps(OpsEvent(1.0, "detect", "replica2")))
    assert event.replica == "replica2"
    # Pickles written before the telemetry layer stored the subject
    # under the old field name.
    legacy = OpsEvent.__new__(OpsEvent)
    legacy.__setstate__({"time": 2.0, "kind": "detach", "replica": "old",
                         "detail": ""})
    assert legacy.subject == "old" and legacy.replica == "old"


# ----------------------------------------------------------------------
# Disabled fast path + DES-vs-live schema parity
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def tiny_spec():
    """A millisecond-scale mix so instrumented runs finish quickly."""
    return WorkloadSpec(
        benchmark="micro",
        mix_name="telemetry-tiny",
        mix=WorkloadMix(read_fraction=0.6, write_fraction=0.4),
        demands=demands_ms(
            read_cpu=3.0, read_disk=1.0,
            write_cpu=2.0, write_disk=1.0,
            writeset_cpu=0.5, writeset_disk=0.3,
        ),
        clients_per_replica=4,
        think_time=0.05,
        conflict=ConflictProfile(db_update_size=500,
                                 updates_per_transaction=2),
        description="tiny mix for telemetry tests",
    )


def _config(spec, replicas):
    return ReplicationConfig(
        replicas=replicas,
        clients_per_replica=spec.clients_per_replica,
        think_time=spec.think_time,
        load_balancer_delay=0.0005,
        certifier_delay=0.002,
    )


@pytest.fixture(scope="module")
def pillar_pair(tiny_spec):
    """One small point run on both executable pillars with telemetry."""
    from repro.cluster import run_cluster
    from repro.simulator.runner import simulate

    config = _config(tiny_spec, 2)
    telemetry = TelemetryConfig(span_sample_rate=0.2,
                                snapshot_interval=1.0)
    sim = simulate(tiny_spec, config, design="multi-master", seed=13,
                   warmup=2.0, duration=10.0, telemetry=telemetry)
    live = run_cluster(tiny_spec, config, design="multi-master", seed=13,
                       warmup=1.0, duration=6.0, time_scale=0.05,
                       telemetry=telemetry)
    return sim, live


def test_simulator_results_identical_with_telemetry_off_and_on(tiny_spec):
    from repro.simulator.runner import simulate

    config = _config(tiny_spec, 2)
    kwargs = dict(design="multi-master", seed=13, warmup=2.0, duration=10.0)
    off = simulate(tiny_spec, config, **kwargs)
    on = simulate(tiny_spec, config,
                  telemetry=TelemetryConfig(span_sample_rate=0.5), **kwargs)
    assert off.telemetry is None
    assert on.telemetry is not None
    # Recording must not perturb the simulation: strip the attachment
    # and every other field — seeds, clocks, counters — is identical.
    assert dataclasses.replace(on, telemetry=None) == off


def test_active_config_normalises_flags():
    assert active_config(None) is None
    assert active_config(False) is None
    assert active_config(True) == TelemetryConfig()
    disabled = TelemetryConfig(enabled=False)
    assert active_config(disabled) is None


def test_both_pillars_emit_the_shared_metric_schema(pillar_pair):
    sim, live = pillar_pair
    sim_names = sim.telemetry.metric_names()
    live_names = live.telemetry.metric_names()
    assert tel_schema.SHARED_SCHEMA <= sim_names
    assert tel_schema.SHARED_SCHEMA <= live_names
    # The live pillar's extras are exactly the documented live-only set.
    assert live_names - sim_names <= tel_schema.LIVE_ONLY


def test_queue_depth_and_replication_lag_populated_on_both(pillar_pair):
    for result in pillar_pair:
        telemetry = result.telemetry
        depth = telemetry.find(tel_schema.CERTIFIER_QUEUE_DEPTH)
        assert depth is not None and depth.max_value > 0
        replicas = telemetry.label_values(
            tel_schema.REPLICATION_LAG_VERSIONS, "replica"
        )
        assert len(replicas) == 2
        assert telemetry.timeline, "no fleet snapshots recorded"


def test_both_pillars_record_the_same_span_names(pillar_pair):
    sim, live = pillar_pair
    expected = {tel_schema.SPAN_ROUTE, tel_schema.SPAN_EXECUTE,
                tel_schema.SPAN_CERTIFY, tel_schema.SPAN_PROPAGATE,
                tel_schema.SPAN_APPLY}
    for result in (sim, live):
        assert {s.name for s in result.telemetry.spans} == expected


def test_dashboard_renders_for_both_pillars(pillar_pair):
    for result in pillar_pair:
        text = render_dashboard(result.telemetry)
        assert "telemetry dashboard" in text
        assert tel_schema.TXN_COMMITS in text


# ----------------------------------------------------------------------
# Export: JSONL, Chrome trace, Prometheus text
# ----------------------------------------------------------------------


def _example_spans():
    return [
        Span(trace_id=1, span_id=1, name="route", start=0.0, end=0.1,
             subject="replica0", tags=(("policy", "least-loaded"),)),
        Span(trace_id=1, span_id=2, name="certify", start=0.1, end=0.2,
             subject="certifier", parent_id=1,
             tags=(("committed", "True"),)),
    ]


def test_span_jsonl_roundtrip_validates(tmp_path):
    path = str(tmp_path / "spans.jsonl")
    written = tel_export.write_spans_jsonl(path, _example_spans(),
                                           pillar="simulator")
    assert written == 2
    loaded = tel_export.load_spans_jsonl(path)
    assert [d["name"] for d in loaded] == ["route", "certify"]
    assert all(d["pillar"] == "simulator" for d in loaded)
    assert all(not tel_export.validate_span_dict(d) for d in loaded)


def test_span_validation_rejects_malformed_records(tmp_path):
    path = str(tmp_path / "bad.jsonl")
    with open(path, "w") as handle:
        handle.write(json.dumps({"name": "route"}) + "\n")
    with pytest.raises(ValueError):
        tel_export.load_spans_jsonl(path)


def test_chrome_trace_conversion(tmp_path):
    dicts = [tel_export.span_to_dict(s, "simulator")
             for s in _example_spans()]
    trace = tel_export.chrome_trace(dicts)
    # "X" duration events per span, plus "M" process/thread metadata.
    durations = [e for e in trace["traceEvents"] if e["ph"] == "X"]
    assert len(durations) == 2
    assert durations[0]["dur"] == pytest.approx(1e5)
    out = str(tmp_path / "trace.json")
    tel_export.write_chrome_trace(out, dicts)
    with open(out) as handle:
        assert json.load(handle) == trace


def test_export_cli_validate_and_chrome(tmp_path, capsys):
    path = str(tmp_path / "spans.jsonl")
    tel_export.write_spans_jsonl(path, _example_spans(), pillar="cluster")
    assert tel_export.main(["validate", path]) == 0
    out = str(tmp_path / "trace.json")
    assert tel_export.main(["chrome", path, out]) == 0
    with open(out) as handle:
        assert json.load(handle)["traceEvents"]


def test_prometheus_text_renders_cumulative_buckets():
    registry = MetricsRegistry()
    registry.counter("txn_commits_total").inc(5)
    hist = registry.histogram("lat_seconds", bounds=(0.1, 1.0))
    hist.observe(0.05)
    hist.observe(0.5)
    hist.observe(5.0)
    text = tel_export.prometheus_text(registry.snapshot())
    assert "# TYPE txn_commits_total counter" in text
    assert "txn_commits_total 5" in text
    assert 'lat_seconds_bucket{le="0.1"} 1' in text
    assert 'lat_seconds_bucket{le="1"} 2' in text
    assert 'lat_seconds_bucket{le="+Inf"} 3' in text
    assert "lat_seconds_count 3" in text


def test_prometheus_export_surfaces_drops_and_audit_gauges(tiny_spec):
    """Span-ring data loss and the auditor's verdict are first-class
    metrics: they must show up in the Prometheus export, not just the
    dashboard footer."""
    from repro.simulator.runner import simulate

    config = _config(tiny_spec, 2)
    run = simulate(
        tiny_spec, config, design="multi-master", seed=13,
        warmup=2.0, duration=8.0,
        telemetry=TelemetryConfig(span_sample_rate=1.0, max_spans=4,
                                  span_ring=True, audit=True),
    )
    assert run.telemetry.spans_dropped > 0
    text = tel_export.prometheus_text(run.telemetry.samples)
    assert tel_schema.SPANS_DROPPED in text
    assert (f"{tel_schema.SPANS_DROPPED} "
            f"{float(run.telemetry.spans_dropped):g}") in text
    assert tel_schema.AUDIT_CHECKS in text
    assert tel_schema.AUDIT_VIOLATIONS in text
    assert run.telemetry.audit is not None
    assert run.telemetry.audit.total_violations == 0


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


def test_cli_metrics_smoke(tmp_path, capsys):
    from repro.cli import main

    trace_out = str(tmp_path / "spans.jsonl")
    code = main([
        "metrics", "--workload", "tpcw/shopping", "--pillar", "simulator",
        "--replicas", "2", "--warmup", "2", "--duration", "8",
        "--span-rate", "0.2", "--trace-out", trace_out,
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "telemetry dashboard — simulator pillar" in out
    assert tel_schema.CERTIFIER_QUEUE_DEPTH in out
    assert tel_export.load_spans_jsonl(trace_out)
