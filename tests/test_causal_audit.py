"""Causal tracing, invariant auditing, and SLO burn-rate monitoring.

The PR-8 observability contracts:

* the causal trace graph is deterministic and carries the same edge
  schema on both executable pillars;
* the critical-path breakdown attributes >= 95% of measured replication
  lag to the certifier-queue / channel / apply hops;
* the online auditor is pure bookkeeping — a DES run is bit-identical
  with it on or off — and flags lost, duplicated, and mis-scoped
  writesets when fed corrupted event streams;
* the SLO monitor computes multi-window error-budget burns that surface
  on autoscale timelines and in the telemetry gauge set;
* the ring-buffer span store keeps the latest window and counts drops
  loudly.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.audit import AuditReport, Auditor
from repro.audit import auditor as audit_mod
from repro.control.slo import (
    ABORT,
    LATENCY,
    BurnRate,
    SLOMonitor,
    max_burn,
)
from repro.core.errors import ConfigurationError
from repro.core.params import ConflictProfile, ReplicationConfig, WorkloadMix
from repro.telemetry import (
    TelemetryConfig,
    causal_traces,
    critical_path,
    edge_schema,
    render_critical_path,
    render_dashboard,
    staleness_summary,
)
from repro.telemetry import schema as tel_schema
from repro.telemetry.causal import causal_chrome_trace
from repro.workloads.spec import WorkloadSpec, demands_ms


@pytest.fixture(scope="module")
def tiny_spec():
    """A millisecond-scale mix so instrumented runs finish quickly."""
    return WorkloadSpec(
        benchmark="micro",
        mix_name="causal-tiny",
        mix=WorkloadMix(read_fraction=0.6, write_fraction=0.4),
        demands=demands_ms(
            read_cpu=3.0, read_disk=1.0,
            write_cpu=2.0, write_disk=1.0,
            writeset_cpu=0.5, writeset_disk=0.3,
        ),
        clients_per_replica=4,
        think_time=0.05,
        conflict=ConflictProfile(db_update_size=500,
                                 updates_per_transaction=2),
        description="tiny mix for causal/audit tests",
    )


def _config(spec, replicas):
    return ReplicationConfig(
        replicas=replicas,
        clients_per_replica=spec.clients_per_replica,
        think_time=spec.think_time,
        load_balancer_delay=0.0005,
        certifier_delay=0.002,
    )


_TELEMETRY = TelemetryConfig(span_sample_rate=1.0, audit=True)


@pytest.fixture(scope="module")
def audited_pair(tiny_spec):
    """One fully-traced, audited point on both executable pillars."""
    from repro.cluster import run_cluster
    from repro.simulator.runner import simulate

    config = _config(tiny_spec, 2)
    sim = simulate(tiny_spec, config, design="multi-master", seed=13,
                   warmup=2.0, duration=10.0, telemetry=_TELEMETRY)
    live = run_cluster(tiny_spec, config, design="multi-master", seed=13,
                       warmup=1.0, duration=6.0, time_scale=0.05,
                       telemetry=_TELEMETRY)
    return sim, live


# ----------------------------------------------------------------------
# Causal graph
# ----------------------------------------------------------------------


def test_causal_graph_is_deterministic(tiny_spec):
    from repro.simulator.runner import simulate

    config = _config(tiny_spec, 2)
    kwargs = dict(design="multi-master", seed=13, warmup=2.0, duration=8.0,
                  telemetry=TelemetryConfig(span_sample_rate=1.0))
    first = causal_traces(simulate(tiny_spec, config, **kwargs).telemetry)
    second = causal_traces(simulate(tiny_spec, config, **kwargs).telemetry)
    assert first == second
    assert any(trace.committed for trace in first)


def test_edge_schema_parity_between_pillars(audited_pair):
    sim, live = audited_pair
    expected = {
        (tel_schema.SPAN_ROUTE, tel_schema.SPAN_EXECUTE),
        (tel_schema.SPAN_EXECUTE, tel_schema.SPAN_CERTIFY),
        (tel_schema.SPAN_CERTIFY, tel_schema.SPAN_PROPAGATE),
        (tel_schema.SPAN_PROPAGATE, tel_schema.SPAN_APPLY),
    }
    assert edge_schema(sim.telemetry) == expected
    assert edge_schema(live.telemetry) == expected


def test_committed_traces_link_certify_to_every_remote_apply(audited_pair):
    sim, _ = audited_pair
    committed = [t for t in causal_traces(sim.telemetry) if t.committed]
    assert committed
    replicas = {"replica0", "replica1"}
    full = 0
    for trace in committed:
        origins = {
            span.subject for span in trace.spans
            if span.name == tel_schema.SPAN_EXECUTE
        }
        appliers = {
            edge.subject for edge in trace.edges
            if edge.child == tel_schema.SPAN_APPLY
        }
        # The origin applies at commit; apply spans trace the remote
        # propagation hops, so a committed writeset reaches every
        # non-origin replica (tail traces may end mid-propagation).
        full += appliers == replicas - origins
        assert trace.version is not None
    assert full >= 0.9 * len(committed)


def test_critical_path_attributes_the_replication_lag(audited_pair):
    for run in audited_pair:
        report = critical_path(run.telemetry)
        assert report.traces_committed > 0
        assert report.hops
        # The acceptance bar: the three hops account for >= 95% of the
        # measured end-to-end lag (clamping is the only loss).
        assert report.attributed_fraction >= 0.95
        text = render_critical_path(report)
        assert "certifier queue" in text
        assert "attributed" in text


def test_causal_chrome_trace_has_one_track_per_replica(audited_pair):
    sim, _ = audited_pair
    trace = causal_chrome_trace(sim.telemetry)
    names = [
        event["args"]["name"] for event in trace["traceEvents"]
        if event["ph"] == "M"
    ]
    assert "certifier [simulator]" in names
    assert sum("replica" in name for name in names) == 2
    slices = [e for e in trace["traceEvents"] if e["ph"] == "X"]
    kinds = {slice_["name"].split(" ")[0] for slice_ in slices}
    assert kinds == {"certify", "channel", "apply"}


def test_staleness_distributions_recorded_on_both(audited_pair):
    for run in audited_pair:
        telemetry = run.telemetry
        for name in (tel_schema.SNAPSHOT_STALENESS_VERSIONS,
                     tel_schema.SNAPSHOT_STALENESS_SECONDS):
            replicas = telemetry.label_values(name, "replica")
            assert len(replicas) == 2, f"{name} missing replicas"
        lines = staleness_summary(
            telemetry, hosted={"replica0": (0,), "replica1": (1,)}
        )
        assert any("snapshot staleness" in line for line in lines)
        assert any("per-partition" in line for line in lines)


# ----------------------------------------------------------------------
# Auditor: bit-identity and run-level verdicts
# ----------------------------------------------------------------------


def test_sim_results_identical_with_auditor_on_and_off(tiny_spec):
    from repro.simulator.runner import simulate

    config = _config(tiny_spec, 2)
    kwargs = dict(design="multi-master", seed=13, warmup=2.0, duration=10.0)
    off = simulate(tiny_spec, config, **kwargs)
    audited = simulate(tiny_spec, config, telemetry=_TELEMETRY, **kwargs)
    assert audited.telemetry.audit is not None
    # The auditor is pure bookkeeping: stripping the telemetry
    # attachment leaves a bit-identical simulation result.
    assert dataclasses.replace(audited, telemetry=None) == off


def test_clean_runs_audit_green_on_both_pillars(audited_pair):
    for run in audited_pair:
        audit = run.telemetry.audit
        assert isinstance(audit, AuditReport)
        assert audit.ok, [v.to_text() for v in audit.violations]
        assert audit.commits_seen > 0
        assert audit.deliveries_seen > 0
        assert audit.applies_seen > 0
        # Every invariant was actually exercised.
        exercised = {name for name, count in audit.checks if count > 0}
        assert audit_mod.COMMIT_ORDER in exercised
        assert audit_mod.DELIVERY_ORDER in exercised
        assert audit_mod.APPLY_ONCE in exercised


def test_dashboard_shows_the_audit_verdict(audited_pair):
    sim, _ = audited_pair
    text = render_dashboard(sim.telemetry)
    assert "audit: PASS" in text


# ----------------------------------------------------------------------
# Auditor: violation detection (corrupted event streams)
# ----------------------------------------------------------------------


def _clean_auditor():
    auditor = Auditor()
    auditor.on_attach("replica0", 0)
    auditor.on_attach("replica1", 0)
    return auditor


def test_auditor_passes_a_clean_stream():
    auditor = _clean_auditor()
    for version in (1, 2, 3):
        auditor.on_commit(version, (0,), "replica0")
        for replica in ("replica0", "replica1"):
            auditor.on_deliver(replica, version)
            auditor.on_apply(replica, version,
                             charged=replica != "replica0",
                             hosted_partitions=None)
    report = auditor.report()
    assert report.ok
    assert report.commits_seen == 3


def test_auditor_flags_a_commit_gap():
    auditor = _clean_auditor()
    auditor.on_commit(1, (), "replica0")
    auditor.on_commit(3, (), "replica0")  # v2 vanished
    report = auditor.report()
    violations = {v.invariant for v in report.violations}
    assert audit_mod.COMMIT_ORDER in violations


def test_auditor_flags_lost_and_duplicated_deliveries():
    auditor = _clean_auditor()
    for version in (1, 2, 3):
        auditor.on_commit(version, (), "replica0")
    auditor.on_deliver("replica1", 1)
    auditor.on_deliver("replica1", 3)  # v2 lost
    auditor.on_deliver("replica1", 3)  # duplicated
    report = auditor.report()
    invariants = [v.invariant for v in report.violations]
    assert audit_mod.DELIVERY_GAP in invariants
    assert audit_mod.DELIVERY_ORDER in invariants


def test_auditor_flags_double_apply():
    auditor = _clean_auditor()
    auditor.on_commit(1, (), "replica0")
    auditor.on_deliver("replica1", 1)
    auditor.on_apply("replica1", 1, charged=True)
    auditor.on_apply("replica1", 1, charged=True)
    report = auditor.report()
    assert any(v.invariant == audit_mod.APPLY_ONCE
               for v in report.violations)


def test_auditor_flags_partition_scope_breaches():
    auditor = _clean_auditor()
    auditor.on_commit(1, (0,), "replica0")
    # replica1 hosts only partition 1 yet was charged for partition 0.
    auditor.on_apply("replica1", 1, charged=True,
                     hosted_partitions=frozenset((1,)))
    auditor.on_commit(2, (0,), "replica0")
    # The origin must never pay for its own writeset.
    auditor.on_apply("replica0", 2, charged=True,
                     hosted_partitions=frozenset((0,)))
    report = auditor.report()
    scope = [v for v in report.violations
             if v.invariant == audit_mod.PARTITION_SCOPE]
    assert len(scope) == 2


def test_auditor_tolerates_crash_and_rejoin():
    auditor = _clean_auditor()
    for version in (1, 2):
        auditor.on_commit(version, (), "replica0")
        auditor.on_deliver("replica1", version)
        auditor.on_apply("replica1", version, charged=True)
    auditor.on_crash("replica1")
    # Deliveries to a dead replica are dropped by design, not flagged.
    auditor.on_commit(3, (), "replica0")
    auditor.on_deliver("replica1", 3)
    # Rejoin via state transfer at v3: delivery resumes above it.
    auditor.on_attach("replica1", 3)
    auditor.on_commit(4, (), "replica0")
    auditor.on_deliver("replica1", 4)
    auditor.on_apply("replica1", 4, charged=True)
    assert auditor.report().ok


# ----------------------------------------------------------------------
# SLO monitor
# ----------------------------------------------------------------------


def test_burn_is_bad_fraction_over_budget():
    monitor = SLOMonitor(latency_budget=0.05, abort_budget=0.10,
                         windows=(("5m", 300.0),))
    burns = monitor.observe(10.0, commits=100, violations=5, aborts=0)
    assert max_burn(burns, LATENCY) == pytest.approx(1.0)
    assert max_burn(burns, ABORT) == 0.0
    burns = monitor.observe(20.0, commits=100, violations=25, aborts=100)
    # 30/200 bad over the window against a 5% budget = 3.0x burn.
    assert max_burn(burns, LATENCY) == pytest.approx(3.0)
    # 100 aborts over 300 attempts against a 10% budget.
    assert max_burn(burns, ABORT) == pytest.approx((100 / 300) / 0.10)


def test_short_window_reacts_long_window_smooths():
    monitor = SLOMonitor(latency_budget=0.05,
                         windows=(("10s", 10.0), ("100s", 100.0)))
    for tick in range(9):
        monitor.observe(float(tick * 10), commits=100, violations=0)
    burns = monitor.observe(90.0, commits=100, violations=50)
    by_window = {b.window: b.burn for b in burns if b.signal == LATENCY}
    # The 10s window sees the bad interval plus one clean one (50/200
    # bad = 5x budget); the 100s window dilutes it to exactly budget —
    # the multi-window alerting shape.
    assert by_window["10s"] == pytest.approx(5.0)
    assert by_window["100s"] == pytest.approx(1.0)
    assert monitor.latest() == burns


def test_old_intervals_age_out_of_every_window():
    monitor = SLOMonitor(windows=(("10s", 10.0),))
    monitor.observe(0.0, commits=10, violations=10)
    burns = monitor.observe(1000.0, commits=10, violations=0)
    assert max_burn(burns) == 0.0


def test_monitor_rejects_bad_configuration():
    with pytest.raises(ConfigurationError):
        SLOMonitor(latency_budget=0.0)
    with pytest.raises(ConfigurationError):
        SLOMonitor(windows=())
    with pytest.raises(ConfigurationError):
        SLOMonitor(windows=(("bad", -1.0),))


def test_burn_rate_text_and_empty_max():
    assert BurnRate("5m", LATENCY, 2.5).to_text() == "latency[5m]=2.50"
    assert max_burn(()) == 0.0


def test_autoscale_timeline_carries_slo_burn(tiny_spec):
    from repro.control import DiurnalTrace, ReactivePolicy, autoscale_sim

    result = autoscale_sim(
        tiny_spec,
        DiurnalTrace(base_rate=20.0, peak_rate=60.0, period=60.0),
        ReactivePolicy(initial_replicas=2),
        "multi-master",
        seed=7, warmup=5.0, duration=60.0, control_interval=5.0,
        slo_response=0.8, max_replicas=4, transfer_writesets=8,
        telemetry=TelemetryConfig(audit=True),
    )
    assert result.timeline
    assert all(point.slo_burn for point in result.timeline)
    windows = {b.window for p in result.timeline for b in p.slo_burn}
    signals = {b.signal for p in result.timeline for b in p.slo_burn}
    assert windows == {"5m", "1h"}
    assert signals == {LATENCY, ABORT}
    # The burn also lands in the telemetry gauge set, labelled.
    sample = result.telemetry.find(tel_schema.SLO_BURN_RATE,
                                   window="5m", signal=LATENCY)
    assert sample is not None
    # And the rendered timeline exposes the burn column.
    from repro.control import render_timeline

    assert "burn" in render_timeline(result)
    assert result.telemetry.audit.ok


def test_controller_observation_exposes_max_slo_burn():
    from repro.control.controller import ControlObservation

    observation = ControlObservation(
        now=0.0, members=2, attached=2, offered_rate=10.0, commits=50,
        throughput=10.0, mean_response=0.1, p95_response=0.2,
        max_utilization=0.5,
        slo_burn=(BurnRate("5m", LATENCY, 2.0), BurnRate("1h", ABORT, 0.5)),
    )
    assert observation.max_slo_burn == pytest.approx(2.0)
    bare = dataclasses.replace(observation, slo_burn=())
    assert bare.max_slo_burn == 0.0


# ----------------------------------------------------------------------
# Ring-buffer span store
# ----------------------------------------------------------------------


def test_ring_buffer_keeps_the_latest_spans_and_counts_drops(tiny_spec):
    from repro.simulator.runner import simulate

    config = _config(tiny_spec, 2)
    kwargs = dict(design="multi-master", seed=13, warmup=2.0, duration=10.0)
    ring = simulate(tiny_spec, config, telemetry=TelemetryConfig(
        span_sample_rate=1.0, max_spans=64, span_ring=True), **kwargs)
    head = simulate(tiny_spec, config, telemetry=TelemetryConfig(
        span_sample_rate=1.0, max_spans=64, span_ring=False), **kwargs)
    for run in (ring, head):
        assert len(run.telemetry.spans) <= 64
        assert run.telemetry.spans_dropped > 0
    # Ring mode retains the recent window, head mode the oldest.
    assert (min(s.start for s in ring.telemetry.spans)
            > min(s.start for s in head.telemetry.spans))
    text = render_dashboard(ring.telemetry)
    assert "SPANS DROPPED" in text
    assert "oldest evicted" in text
    assert "newest discarded" in render_dashboard(head.telemetry)


# ----------------------------------------------------------------------
# CLI: trace verb, metrics notice, audited scenario failures
# ----------------------------------------------------------------------


def test_cli_trace_smoke(tmp_path, capsys):
    from repro.cli import main

    chrome_out = str(tmp_path / "causal.json")
    code = main([
        "trace", "--workload", "tpcw/shopping", "--replicas", "2",
        "--warmup", "2", "--duration", "8", "--audit",
        "--chrome-out", chrome_out,
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "replication critical path" in out
    assert "audit: PASS" in out
    import json

    with open(chrome_out) as handle:
        assert json.load(handle)["metadata"]["kind"] == "causal"


def test_cli_metrics_reports_missing_telemetry(capsys, monkeypatch):
    import repro.cli as cli

    class _Empty:
        telemetry = None

    monkeypatch.setattr(cli, "simulate",
                        lambda *args, **kwargs: _Empty())
    code = cli.main(["metrics", "--pillar", "simulator",
                     "--warmup", "1", "--duration", "1"])
    assert code == 0
    out = capsys.readouterr().out
    assert "no telemetry recorded (telemetry disabled?)" in out


def test_artifact_failures_surface_audit_violations():
    from types import SimpleNamespace

    from repro.cli import _artifact_failures

    violation = audit_mod.AuditViolation(
        invariant=audit_mod.APPLY_ONCE, subject="replica1", version=7,
        detail="applied more than once",
    )
    bad = AuditReport(checks=((audit_mod.APPLY_ONCE, 1),),
                      violations=(violation,))
    good = AuditReport(checks=((audit_mod.APPLY_ONCE, 1),))
    artifact = SimpleNamespace(
        converged=True,
        results=(
            SimpleNamespace(design="multi-master", policy="fixed",
                            converged=True,
                            telemetry=SimpleNamespace(audit=bad)),
            SimpleNamespace(design="single-master", policy="fixed",
                            converged=True,
                            telemetry=SimpleNamespace(audit=good)),
        ),
    )
    failures = _artifact_failures(artifact)
    assert len(failures) == 1
    assert "audit violation" in failures[0]
    assert "multi-master" in failures[0]


def test_settings_audited_threads_telemetry_into_points():
    from repro.engine.scenario import autoscale_point, sim_point
    from repro.experiments.settings import ExperimentSettings

    settings = ExperimentSettings.fast().audited()
    assert settings.telemetry == TelemetryConfig(audit=True)
    spec = WorkloadSpec(
        benchmark="micro", mix_name="opt",
        mix=WorkloadMix(read_fraction=0.5, write_fraction=0.5),
        demands=demands_ms(read_cpu=1.0, read_disk=1.0, write_cpu=1.0,
                           write_disk=1.0, writeset_cpu=0.5,
                           writeset_disk=0.5),
        clients_per_replica=2, think_time=0.1,
        conflict=ConflictProfile(db_update_size=100,
                                 updates_per_transaction=1),
        description="options test",
    )
    config = _config(spec, 2)
    point = sim_point(spec, config, "multi-master", seed=1, warmup=1.0,
                      duration=1.0, telemetry=settings.telemetry)
    assert point.option("telemetry") == settings.telemetry
    # telemetry=None must stay out of the options (cache-key contract).
    bare = sim_point(spec, config, "multi-master", seed=1, warmup=1.0,
                     duration=1.0)
    assert bare.option("telemetry") is None
    assert all(key != "telemetry" for key, _ in bare.options)
    from repro.control import DiurnalTrace
    from repro.control.controller import FixedPolicy

    auto = autoscale_point(
        spec, config, "multi-master", seed=1,
        trace=DiurnalTrace(base_rate=1.0, peak_rate=2.0, period=10.0),
        policy=FixedPolicy(replicas=2), slo_response=1.0, warmup=1.0,
        duration=2.0, control_interval=1.0,
        telemetry=settings.telemetry,
    )
    assert auto.option("telemetry") == settings.telemetry
