"""Unit tests for repro.core.params."""

import dataclasses

import pytest

from repro.core.errors import ConfigurationError
from repro.core.params import (
    CPU,
    DISK,
    ConflictProfile,
    ReplicationConfig,
    ResourceDemand,
    ServiceDemands,
    StandaloneProfile,
    WorkloadMix,
    replica_sweep,
)


class TestResourceDemand:
    def test_total_sums_resources(self):
        demand = ResourceDemand(cpu=0.03, disk=0.01)
        assert demand.total == pytest.approx(0.04)

    def test_defaults_to_zero(self):
        assert ResourceDemand().total == 0.0

    def test_get_by_resource_name(self):
        demand = ResourceDemand(cpu=0.03, disk=0.01)
        assert demand.get(CPU) == 0.03
        assert demand.get(DISK) == 0.01

    def test_get_unknown_resource_raises(self):
        with pytest.raises(ConfigurationError):
            ResourceDemand().get("gpu")

    def test_negative_cpu_rejected(self):
        with pytest.raises(ConfigurationError):
            ResourceDemand(cpu=-0.001)

    def test_negative_disk_rejected(self):
        with pytest.raises(ConfigurationError):
            ResourceDemand(disk=-1.0)

    def test_scaled_multiplies_both(self):
        demand = ResourceDemand(cpu=0.02, disk=0.01).scaled(2.0)
        assert demand.cpu == pytest.approx(0.04)
        assert demand.disk == pytest.approx(0.02)

    def test_scaled_rejects_negative_factor(self):
        with pytest.raises(ConfigurationError):
            ResourceDemand(cpu=0.02).scaled(-1.0)

    def test_plus_adds_elementwise(self):
        total = ResourceDemand(cpu=0.02, disk=0.01).plus(
            ResourceDemand(cpu=0.01, disk=0.03)
        )
        assert total.cpu == pytest.approx(0.03)
        assert total.disk == pytest.approx(0.04)

    def test_as_dict_round_trip(self):
        demand = ResourceDemand(cpu=0.02, disk=0.01)
        assert demand.as_dict() == {CPU: 0.02, DISK: 0.01}

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            ResourceDemand().cpu = 1.0


class TestServiceDemands:
    def test_get_by_class(self, simple_demands):
        assert simple_demands.get("read").cpu == pytest.approx(0.040)
        assert simple_demands.get("write").disk == pytest.approx(0.006)
        assert simple_demands.get("writeset").cpu == pytest.approx(0.003)

    def test_get_unknown_class_raises(self, simple_demands):
        with pytest.raises(ConfigurationError):
            simple_demands.get("scan")

    def test_as_dict_structure(self, simple_demands):
        nested = simple_demands.as_dict()
        assert set(nested) == {"read", "write", "writeset"}
        assert nested["read"][CPU] == pytest.approx(0.040)

    def test_defaults_are_zero_demands(self):
        demands = ServiceDemands()
        assert demands.write.total == 0.0
        assert demands.writeset.total == 0.0


class TestWorkloadMix:
    def test_fractions_must_sum_to_one(self):
        with pytest.raises(ConfigurationError):
            WorkloadMix(read_fraction=0.5, write_fraction=0.6)

    def test_fraction_bounds(self):
        with pytest.raises(ConfigurationError):
            WorkloadMix(read_fraction=1.5, write_fraction=-0.5)

    def test_from_write_fraction(self):
        mix = WorkloadMix.from_write_fraction(0.2)
        assert mix.read_fraction == pytest.approx(0.8)

    def test_read_only_detection(self):
        assert WorkloadMix(read_fraction=1.0, write_fraction=0.0).read_only
        assert not WorkloadMix(read_fraction=0.8, write_fraction=0.2).read_only

    def test_write_to_read_ratio(self):
        mix = WorkloadMix(read_fraction=0.8, write_fraction=0.2)
        assert mix.write_to_read_ratio == pytest.approx(0.25)

    def test_write_to_read_ratio_write_only_raises(self):
        mix = WorkloadMix(read_fraction=0.0, write_fraction=1.0)
        with pytest.raises(ConfigurationError):
            mix.write_to_read_ratio


class TestConflictProfile:
    def test_p_is_reciprocal_of_size(self):
        assert ConflictProfile(10_000, 3).p == pytest.approx(1e-4)

    def test_rejects_zero_size(self):
        with pytest.raises(ConfigurationError):
            ConflictProfile(0, 1)

    def test_rejects_zero_updates(self):
        with pytest.raises(ConfigurationError):
            ConflictProfile(100, 0)

    def test_rejects_updates_exceeding_size(self):
        with pytest.raises(ConfigurationError):
            ConflictProfile(db_update_size=2, updates_per_transaction=3)


class TestStandaloneProfile:
    def test_valid_profile(self, simple_profile):
        assert simple_profile.abort_rate == pytest.approx(0.001)

    def test_abort_rate_must_be_below_one(self, simple_mix, simple_demands):
        with pytest.raises(ConfigurationError):
            StandaloneProfile(
                mix=simple_mix,
                demands=simple_demands,
                abort_rate=1.0,
                update_response_time=0.05,
            )

    def test_updates_require_positive_l1(self, simple_mix, simple_demands):
        with pytest.raises(ConfigurationError):
            StandaloneProfile(
                mix=simple_mix, demands=simple_demands, update_response_time=0.0
            )

    def test_read_only_profile_allows_zero_l1(self, simple_demands):
        profile = StandaloneProfile(
            mix=WorkloadMix(read_fraction=1.0, write_fraction=0.0),
            demands=simple_demands,
        )
        assert profile.update_response_time == 0.0

    def test_replace_changes_field(self, simple_profile):
        updated = simple_profile.replace(abort_rate=0.01)
        assert updated.abort_rate == pytest.approx(0.01)
        assert simple_profile.abort_rate == pytest.approx(0.001)


class TestReplicationConfig:
    def test_total_clients(self):
        config = ReplicationConfig(replicas=4, clients_per_replica=25)
        assert config.total_clients == 100

    def test_with_replicas_preserves_other_fields(self):
        config = ReplicationConfig(replicas=2, clients_per_replica=10,
                                   think_time=0.5)
        updated = config.with_replicas(8)
        assert updated.replicas == 8
        assert updated.think_time == 0.5
        assert config.replicas == 2

    def test_rejects_zero_replicas(self):
        with pytest.raises(ConfigurationError):
            ReplicationConfig(replicas=0, clients_per_replica=10)

    def test_rejects_zero_clients(self):
        with pytest.raises(ConfigurationError):
            ReplicationConfig(replicas=1, clients_per_replica=0)

    def test_rejects_negative_delays(self):
        with pytest.raises(ConfigurationError):
            ReplicationConfig(replicas=1, clients_per_replica=1,
                              load_balancer_delay=-0.001)

    def test_rejects_zero_max_concurrency(self):
        with pytest.raises(ConfigurationError):
            ReplicationConfig(replicas=1, clients_per_replica=1,
                              max_concurrency=0)

    def test_unlimited_concurrency_allowed(self):
        config = ReplicationConfig(replicas=1, clients_per_replica=1,
                                   max_concurrency=None)
        assert config.max_concurrency is None

    def test_replica_sweep_yields_each_count(self):
        config = ReplicationConfig(replicas=1, clients_per_replica=10)
        counts = [c.replicas for c in replica_sweep(config, (1, 2, 4))]
        assert counts == [1, 2, 4]
