"""Unit tests for the snapshot-isolated database engine (SI semantics of §2)."""

import pytest

from repro.core.errors import ConfigurationError, TransactionAborted
from repro.sidb.engine import SIDatabase
from repro.sidb.transaction import TransactionStatus


class TestReadOnlyTransactions:
    def test_read_committed_state(self):
        db = SIDatabase({"a": 1})
        txn = db.begin()
        assert txn.read("a") == 1
        assert db.commit(txn) is None
        assert txn.status is TransactionStatus.COMMITTED

    def test_read_only_always_commits_despite_writers(self):
        db = SIDatabase({"a": 1})
        reader = db.begin()
        writer = db.begin()
        writer.write("a", 2)
        db.commit(writer)
        assert reader.read("a") == 1  # isolated from the concurrent commit
        db.commit(reader)
        assert db.read_only_commits == 1

    def test_snapshot_isolation_stable_reads(self):
        db = SIDatabase({"a": 1})
        txn = db.begin()
        assert txn.read("a") == 1
        w = db.begin()
        w.write("a", 99)
        db.commit(w)
        # Repeated read returns the same snapshot value.
        assert txn.read("a") == 1


class TestUpdateTransactions:
    def test_update_creates_new_version(self):
        db = SIDatabase({"a": 1})
        txn = db.begin()
        txn.write("a", 2)
        writeset = db.commit(txn)
        assert writeset is not None
        assert writeset.commit_version == 1
        assert db.begin().read("a") == 2

    def test_read_your_own_writes(self):
        db = SIDatabase({"a": 1})
        txn = db.begin()
        txn.write("a", 5)
        assert txn.read("a") == 5

    def test_first_committer_wins(self):
        db = SIDatabase({"a": 1})
        t1 = db.begin()
        t2 = db.begin()
        t1.write("a", 10)
        t2.write("a", 20)
        db.commit(t1)
        with pytest.raises(TransactionAborted) as exc:
            db.commit(t2)
        assert "a" in exc.value.conflicting_keys
        assert t2.status is TransactionStatus.ABORTED
        assert db.begin().read("a") == 10

    def test_disjoint_concurrent_updates_both_commit(self):
        db = SIDatabase({"a": 1, "b": 2})
        t1 = db.begin()
        t2 = db.begin()
        t1.write("a", 10)
        t2.write("b", 20)
        db.commit(t1)
        db.commit(t2)
        snapshot = db.begin()
        assert snapshot.read("a") == 10
        assert snapshot.read("b") == 20

    def test_write_write_conflict_requires_overlap_and_concurrency(self):
        db = SIDatabase({"a": 1})
        t1 = db.begin()
        t1.write("a", 10)
        db.commit(t1)
        # t3 begins after t1 committed: no conflict.
        t3 = db.begin()
        t3.write("a", 30)
        db.commit(t3)
        assert db.begin().read("a") == 30

    def test_delete_writes_tombstone(self):
        db = SIDatabase({"a": 1})
        txn = db.begin()
        txn.delete("a")
        db.commit(txn)
        assert db.begin().read("a") is None

    def test_statistics(self):
        db = SIDatabase({"a": 1})
        t1, t2 = db.begin(), db.begin()
        t1.write("a", 1)
        t2.write("a", 2)
        db.commit(t1)
        with pytest.raises(TransactionAborted):
            db.commit(t2)
        assert db.update_commits == 1
        assert db.update_aborts == 1
        assert db.measured_abort_rate == pytest.approx(0.5)


class TestGSISnapshots:
    def test_explicit_older_snapshot(self):
        db = SIDatabase({"a": 1})
        w = db.begin()
        w.write("a", 2)
        db.commit(w)
        stale = db.begin(snapshot_version=0)
        assert stale.read("a") == 1

    def test_stale_snapshot_update_aborts_on_conflict(self):
        db = SIDatabase({"a": 1})
        w = db.begin()
        w.write("a", 2)
        db.commit(w)
        stale = db.begin(snapshot_version=0)
        stale.write("a", 3)
        with pytest.raises(TransactionAborted):
            db.commit(stale)

    def test_future_snapshot_rejected(self):
        db = SIDatabase()
        with pytest.raises(ConfigurationError):
            db.begin(snapshot_version=7)


class TestEngineLifecycle:
    def test_double_commit_rejected(self):
        db = SIDatabase({"a": 1})
        txn = db.begin()
        db.commit(txn)
        with pytest.raises(ConfigurationError):
            db.commit(txn)

    def test_voluntary_abort(self):
        db = SIDatabase({"a": 1})
        txn = db.begin()
        txn.write("a", 2)
        db.abort(txn)
        assert txn.status is TransactionStatus.ABORTED
        assert db.begin().read("a") == 1

    def test_operations_after_finish_rejected(self):
        db = SIDatabase({"a": 1})
        txn = db.begin()
        db.commit(txn)
        with pytest.raises(ConfigurationError):
            txn.read("a")
        with pytest.raises(ConfigurationError):
            txn.write("a", 1)

    def test_apply_writeset_propagates_remote_commit(self):
        source = SIDatabase({"a": 1})
        replica = SIDatabase({"a": 1})
        txn = source.begin()
        txn.write("a", 42)
        writeset = source.commit(txn)
        replica.apply_writeset(writeset)
        assert replica.begin().read("a") == 42

    def test_apply_writeset_without_version_rejected(self):
        db = SIDatabase()
        from repro.sidb.writeset import Writeset

        uncommitted = Writeset.from_dict(1, 0, {"a": 1})
        with pytest.raises(ConfigurationError):
            db.apply_writeset(uncommitted)

    def test_run_executes_operation_list(self):
        db = SIDatabase({("t", 1): 0})
        writeset = db.run([("read", ("t", 1)), ("write", ("t", 1), 99)])
        assert writeset is not None
        assert db.begin().read(("t", 1)) == 99

    def test_run_rejects_unknown_operation(self):
        db = SIDatabase()
        with pytest.raises(ConfigurationError):
            db.run([("scan", "x")])

    def test_vacuum_reclaims_old_versions(self):
        db = SIDatabase({"a": 0})
        for i in range(5):
            txn = db.begin()
            txn.write("a", i)
            db.commit(txn)
        freed = db.vacuum()
        assert freed > 0
        assert db.begin().read("a") == 4

    def test_oldest_active_snapshot_tracks_transactions(self):
        db = SIDatabase({"a": 0})
        t1 = db.begin()
        w = db.begin()
        w.write("a", 1)
        db.commit(w)
        assert db.oldest_active_snapshot() == 0  # t1 still holds snapshot 0
        db.commit(t1)
        assert db.oldest_active_snapshot() == 1

    def test_transaction_ids_unique(self):
        db = SIDatabase()
        ids = {db.begin().txn_id for _ in range(10)}
        assert len(ids) == 10

    def test_reset_statistics(self):
        db = SIDatabase({"a": 1})
        txn = db.begin()
        txn.write("a", 2)
        db.commit(txn)
        db.reset_statistics()
        assert db.update_commits == 0
        assert db.measured_abort_rate == 0.0
