"""Tests for the §6.3.1 network-bandwidth budget."""

import pytest

from repro.core.errors import ConfigurationError
from repro.models.multimaster import predict_multimaster
from repro.models.network import GIGABIT, NetworkBudget, budget_for_prediction


def make(updates=150.0, replicas=16, writeset=275):
    return NetworkBudget(
        update_throughput=updates, replicas=replicas, writeset_bytes=writeset
    )


class TestNetworkBudget:
    def test_paper_arithmetic_under_one_mbit(self):
        # §6.3.1: the most demanding run (ordering MM) sends ~150 writesets
        # per second to the certifier — well under 1 Mbit/s.
        budget = make(updates=150.0)
        assert budget.certifier_ingress_bits_per_second < 1_000_000

    def test_lan_assumption_holds_at_paper_loads(self):
        assert make().lan_assumption_holds

    def test_egress_scales_with_replicas(self):
        small = make(replicas=2).certifier_egress_bits_per_second
        large = make(replicas=16).certifier_egress_bits_per_second
        assert large == pytest.approx(15.0 * small)

    def test_single_replica_has_no_propagation(self):
        budget = make(replicas=1)
        assert budget.certifier_egress_bits_per_second == 0.0
        assert budget.per_replica_ingress_bits_per_second == 0.0

    def test_per_replica_ingress_below_certifier_egress(self):
        budget = make(replicas=8)
        assert (
            budget.per_replica_ingress_bits_per_second
            < budget.certifier_egress_bits_per_second
        )

    def test_utilization_uses_busiest_direction(self):
        budget = make(replicas=16)
        assert budget.certifier_link_utilization == pytest.approx(
            budget.certifier_egress_bits_per_second / GIGABIT
        )

    def test_read_only_workload_needs_no_bandwidth(self):
        budget = make(updates=0.0)
        assert budget.certifier_ingress_bits_per_second == 0.0
        assert budget.lan_assumption_holds

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            NetworkBudget(update_throughput=-1, replicas=1, writeset_bytes=10)
        with pytest.raises(ConfigurationError):
            NetworkBudget(update_throughput=1, replicas=0, writeset_bytes=10)
        with pytest.raises(ConfigurationError):
            NetworkBudget(update_throughput=1, replicas=1, writeset_bytes=10,
                          link_bits_per_second=0)

    def test_to_text(self):
        assert "Mbit/s" in make().to_text()


class TestBudgetFromPrediction:
    def test_end_to_end_with_model(self, shopping_spec, shopping_profile):
        prediction = predict_multimaster(
            shopping_profile, shopping_spec.replication_config(16)
        )
        budget = budget_for_prediction(
            prediction,
            write_fraction=shopping_spec.mix.write_fraction,
            writeset_bytes=shopping_spec.writeset_bytes,
        )
        # TPC-W shopping at 16 replicas stays deep inside the LAN regime.
        assert budget.lan_assumption_holds
        assert budget.update_throughput == pytest.approx(
            0.2 * prediction.throughput
        )

    def test_rejects_bad_write_fraction(self, shopping_spec, shopping_profile):
        prediction = predict_multimaster(
            shopping_profile, shopping_spec.replication_config(2)
        )
        with pytest.raises(ConfigurationError):
            budget_for_prediction(prediction, 1.5, 275)
