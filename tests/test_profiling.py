"""Tests for the §4 profiling pipeline: log capture, writeset extraction,
and utilization-law demand estimation."""

import pytest

from repro.core.errors import ConfigurationError, ProfilingError
from repro.profiling.log import (
    LogRecord,
    TransactionLog,
    capture_log,
    extract_writesets,
)
from repro.profiling.profiler import (
    measure_class_demand,
    measure_service_demands,
    profile_standalone,
)
from repro.sidb.engine import SIDatabase


class TestLogCapture:
    def test_log_has_requested_length(self, shopping_spec):
        log = capture_log(shopping_spec, 500, seed=1)
        assert len(log) == 500

    def test_measured_mix_close_to_spec(self, shopping_spec):
        log = capture_log(shopping_spec, 5000, seed=2)
        mix = log.measured_mix()
        assert mix.write_fraction == pytest.approx(0.2, abs=0.02)

    def test_read_only_spec_has_no_updates(self, rubis_browsing_spec):
        log = capture_log(rubis_browsing_spec, 300, seed=3)
        assert log.update_count == 0
        assert log.measured_mix().read_only

    def test_records_sorted_by_time(self, shopping_spec):
        log = capture_log(shopping_spec, 200, seed=4)
        times = [r.start_time for r in log.records]
        assert times == sorted(times)

    def test_update_records_contain_writes(self, shopping_spec):
        log = capture_log(shopping_spec, 500, seed=5)
        for record in log.updates():
            kinds = {op[0] for op in record.operations}
            assert "write" in kinds
            assert "read" in kinds

    def test_update_write_count_matches_conflict_profile(self, shopping_spec):
        log = capture_log(shopping_spec, 500, seed=6)
        u = shopping_spec.conflict.updates_per_transaction
        for record in log.updates():
            writes = [op for op in record.operations if op[0] == "write"]
            assert len(writes) == u

    def test_deterministic_given_seed(self, shopping_spec):
        a = capture_log(shopping_spec, 100, seed=7)
        b = capture_log(shopping_spec, 100, seed=7)
        assert [r.kind for r in a.records] == [r.kind for r in b.records]

    def test_empty_capture_rejected(self, shopping_spec):
        with pytest.raises(ConfigurationError):
            capture_log(shopping_spec, 0)

    def test_record_kind_validated(self):
        with pytest.raises(ConfigurationError):
            LogRecord(txn_id=1, kind="mystery", session_id=0, start_time=0.0)

    def test_empty_log_mix_rejected(self):
        with pytest.raises(ProfilingError):
            TransactionLog(workload="x").measured_mix()


class TestWritesetExtraction:
    def test_extracts_one_writeset_per_committed_update(self, shopping_spec):
        log = capture_log(shopping_spec, 400, seed=8)
        writesets = extract_writesets(log)
        assert 0 < len(writesets) <= log.update_count

    def test_writesets_carry_update_keys(self, shopping_spec):
        log = capture_log(shopping_spec, 400, seed=9)
        writesets = extract_writesets(log)
        u = shopping_spec.conflict.updates_per_transaction
        for writeset in writesets:
            assert len(writeset.keys) == u

    def test_replay_populates_database(self, shopping_spec):
        log = capture_log(shopping_spec, 300, seed=10)
        db = SIDatabase()
        writesets = extract_writesets(log, database=db)
        assert db.update_commits == len(writesets)


class TestDemandMeasurement:
    def test_read_demand_recovered(self, shopping_spec):
        demand = measure_class_demand(
            shopping_spec, "read", seed=21, duration=30.0, warmup=2.0
        )
        assert demand.cpu == pytest.approx(
            shopping_spec.demands.read.cpu, rel=0.10
        )
        assert demand.disk == pytest.approx(
            shopping_spec.demands.read.disk, rel=0.10
        )

    def test_writeset_demand_recovered(self, shopping_spec):
        demand = measure_class_demand(
            shopping_spec, "writeset", seed=22, duration=30.0, warmup=2.0
        )
        assert demand.cpu == pytest.approx(
            shopping_spec.demands.writeset.cpu, rel=0.10
        )

    def test_unknown_class_rejected(self, shopping_spec):
        with pytest.raises(ProfilingError):
            measure_class_demand(shopping_spec, "delete")

    def test_read_only_spec_skips_update_classes(self, rubis_browsing_spec):
        demands = measure_service_demands(
            rubis_browsing_spec, seed=23, duration=20.0, warmup=2.0
        )
        assert demands.write.total == 0.0
        assert demands.writeset.total == 0.0
        assert demands.read.cpu > 0.0


class TestFullPipeline:
    @pytest.fixture(scope="class")
    def report(self, shopping_spec):
        return profile_standalone(
            shopping_spec,
            seed=31,
            replay_duration=30.0,
            mixed_duration=30.0,
            warmup=3.0,
            log_transactions=1000,
        )

    def test_profile_mix_close_to_spec(self, report):
        assert report.profile.mix.write_fraction == pytest.approx(0.2, abs=0.04)

    def test_profile_l1_positive_and_plausible(self, report):
        # L(1) is at least the raw update demand and below a second.
        assert 0.015 < report.profile.update_response_time < 1.0

    def test_profile_abort_rate_small(self, report):
        # Paper: A1 < 0.023% for TPC-W; allow an order of magnitude slack
        # for short windows.
        assert report.profile.abort_rate < 0.005

    def test_throughput_reported(self, report):
        assert report.standalone_throughput > 5.0

    def test_counts_populated(self, report):
        assert report.read_transactions + report.update_transactions == 1000
        assert report.mixed_transactions > 0
