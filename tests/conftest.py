"""Shared fixtures for the test suite.

Simulation-backed fixtures use short windows and are session-scoped so the
whole suite pays for each expensive measurement once.
"""

from __future__ import annotations

import pytest

from repro.core.params import (
    ConflictProfile,
    ReplicationConfig,
    ResourceDemand,
    ServiceDemands,
    StandaloneProfile,
    WorkloadMix,
)
from repro.experiments.settings import ExperimentSettings
from repro.workloads import rubis, tpcw


@pytest.fixture(scope="session")
def shopping_spec():
    """The TPC-W shopping workload (the paper's primary mix)."""
    return tpcw.SHOPPING


@pytest.fixture(scope="session")
def browsing_spec():
    """The TPC-W browsing workload."""
    return tpcw.BROWSING


@pytest.fixture(scope="session")
def ordering_spec():
    """The TPC-W ordering workload."""
    return tpcw.ORDERING


@pytest.fixture(scope="session")
def rubis_bidding_spec():
    """The RUBiS bidding workload."""
    return rubis.BIDDING


@pytest.fixture(scope="session")
def rubis_browsing_spec():
    """The RUBiS browsing workload (read-only)."""
    return rubis.BROWSING


@pytest.fixture(scope="session")
def shopping_profile(shopping_spec):
    """A ground-truth standalone profile for TPC-W shopping."""
    return shopping_spec.ground_truth_profile(
        abort_rate=0.0002, update_response_time=0.05
    )


@pytest.fixture(scope="session")
def tiny_settings():
    """Extremely cheap experiment settings for smoke tests."""
    return ExperimentSettings(
        replica_counts=(1, 4),
        sim_warmup=2.0,
        sim_duration=8.0,
        profile_duration=20.0,
        profile_mixed_duration=20.0,
    )


@pytest.fixture
def simple_mix():
    """An 80/20 read/update mix."""
    return WorkloadMix(read_fraction=0.8, write_fraction=0.2)


@pytest.fixture
def simple_demands():
    """Small, easily hand-checked service demands."""
    return ServiceDemands(
        read=ResourceDemand(cpu=0.040, disk=0.015),
        write=ResourceDemand(cpu=0.012, disk=0.006),
        writeset=ResourceDemand(cpu=0.003, disk=0.002),
    )


@pytest.fixture
def simple_profile(simple_mix, simple_demands):
    """A standalone profile built from the simple demands."""
    return StandaloneProfile(
        mix=simple_mix,
        demands=simple_demands,
        abort_rate=0.001,
        update_response_time=0.050,
    )


@pytest.fixture
def simple_config():
    """A 4-replica deployment with the paper's delays."""
    return ReplicationConfig(replicas=4, clients_per_replica=20, think_time=1.0)


@pytest.fixture
def simple_conflict():
    """A conflict profile with easy round numbers."""
    return ConflictProfile(db_update_size=10_000, updates_per_transaction=3)
