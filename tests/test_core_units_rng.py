"""Unit tests for repro.core.units and repro.core.rng."""

import numpy as np
import pytest

from repro.core import rng as rng_util
from repro.core.units import MS, US, ms, per_second, to_ms, us


class TestUnits:
    def test_ms_round_trip(self):
        assert to_ms(ms(12.5)) == pytest.approx(12.5)

    def test_ms_value(self):
        assert ms(1000) == pytest.approx(1.0)

    def test_us_value(self):
        assert us(1000) == pytest.approx(0.001)

    def test_constants(self):
        assert MS == pytest.approx(1e-3)
        assert US == pytest.approx(1e-6)

    def test_per_second(self):
        assert per_second(0.5) == pytest.approx(500.0)


class TestRng:
    def test_make_rng_is_deterministic(self):
        a = rng_util.make_rng(42).random(5)
        b = rng_util.make_rng(42).random(5)
        assert np.allclose(a, b)

    def test_spawn_same_path_same_stream(self):
        a = rng_util.spawn(7, "client", 3).random(4)
        b = rng_util.spawn(7, "client", 3).random(4)
        assert np.allclose(a, b)

    def test_spawn_different_paths_differ(self):
        a = rng_util.spawn(7, "client", 3).random(4)
        b = rng_util.spawn(7, "client", 4).random(4)
        assert not np.allclose(a, b)

    def test_spawn_different_seeds_differ(self):
        a = rng_util.spawn(7, "x").random(4)
        b = rng_util.spawn(8, "x").random(4)
        assert not np.allclose(a, b)

    def test_exponential_zero_mean_is_zero(self):
        assert rng_util.exponential(rng_util.make_rng(), 0.0) == 0.0

    def test_exponential_mean_approximately_right(self):
        rng = rng_util.make_rng(1)
        samples = [rng_util.exponential(rng, 0.25) for _ in range(20_000)]
        assert np.mean(samples) == pytest.approx(0.25, rel=0.05)

    def test_choice_index_respects_weights(self):
        rng = rng_util.make_rng(2)
        picks = [rng_util.choice_index(rng, [1.0, 3.0]) for _ in range(10_000)]
        assert np.mean(picks) == pytest.approx(0.75, abs=0.02)

    def test_choice_index_rejects_zero_weights(self):
        with pytest.raises(ValueError):
            rng_util.choice_index(rng_util.make_rng(), [0.0, 0.0])

    def test_sample_rows_count_and_range(self):
        rows = rng_util.sample_rows(rng_util.make_rng(3), 100, 5)
        assert len(rows) == 5
        assert all(0 <= r < 100 for r in rows)

    def test_sample_rows_distinct(self):
        rows = rng_util.sample_rows(rng_util.make_rng(4), 10, 10)
        assert rows == frozenset(range(10))

    def test_sample_rows_too_many_raises(self):
        with pytest.raises(ValueError):
            rng_util.sample_rows(rng_util.make_rng(), 3, 4)

    def test_sample_rows_dense_path(self):
        # count*4 >= size exercises the permutation branch
        rows = rng_util.sample_rows(rng_util.make_rng(5), 12, 4)
        assert len(rows) == 4

    def test_seeds_are_distinct(self):
        values = list(rng_util.seeds(11, 20))
        assert len(set(values)) == 20

    def test_seeds_deterministic(self):
        assert list(rng_util.seeds(11, 5)) == list(rng_util.seeds(11, 5))
