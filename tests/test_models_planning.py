"""Tests for the capacity-planning and provisioning helpers."""

import pytest

from repro.core.errors import ConfigurationError
from repro.models.api import MULTI_MASTER, SINGLE_MASTER, predict
from repro.models.planning import (
    plan_deployment,
    provisioning_schedule,
    replicas_for_response_time,
)


class TestReplicasForResponseTime:
    def test_finds_minimum(self, simple_profile, simple_config):
        # Pick an SLA between the N=1 and a larger deployment's latency.
        r1 = predict(MULTI_MASTER, simple_profile,
                     simple_config.with_replicas(1)).response_time
        n = replicas_for_response_time(
            MULTI_MASTER, simple_profile, simple_config,
            max_response_time=r1 * 1.5,
        )
        assert n == 1

    def test_unreachable_sla_returns_none(self, simple_profile, simple_config):
        n = replicas_for_response_time(
            MULTI_MASTER, simple_profile, simple_config,
            max_response_time=1e-6, max_replicas=4,
        )
        assert n is None

    def test_rejects_nonpositive_sla(self, simple_profile, simple_config):
        with pytest.raises(ConfigurationError):
            replicas_for_response_time(
                MULTI_MASTER, simple_profile, simple_config, 0.0
            )


class TestPlanDeployment:
    def test_meets_throughput_target(self, simple_profile, simple_config):
        x1 = predict(MULTI_MASTER, simple_profile,
                     simple_config.with_replicas(1)).throughput
        plan = plan_deployment(simple_profile, simple_config,
                               target_throughput=3 * x1)
        assert plan is not None
        assert plan.predicted_throughput >= 3 * x1
        assert plan.load_factor <= 1.0

    def test_headroom_buys_more_replicas(self, simple_profile, simple_config):
        x1 = predict(MULTI_MASTER, simple_profile,
                     simple_config.with_replicas(1)).throughput
        tight = plan_deployment(simple_profile, simple_config, 3 * x1)
        roomy = plan_deployment(simple_profile, simple_config, 3 * x1,
                                headroom=0.3)
        assert roomy.replicas >= tight.replicas

    def test_latency_constraint_filters(self, simple_profile, simple_config):
        x1 = predict(MULTI_MASTER, simple_profile,
                     simple_config.with_replicas(1)).throughput
        plan = plan_deployment(
            simple_profile, simple_config, 2 * x1,
            max_response_time=1e-6, max_replicas=8,
        )
        assert plan is None

    def test_unreachable_target_returns_none(self, simple_profile,
                                             simple_config):
        plan = plan_deployment(simple_profile, simple_config, 1e9,
                               max_replicas=4)
        assert plan is None

    def test_rejects_bad_inputs(self, simple_profile, simple_config):
        with pytest.raises(ConfigurationError):
            plan_deployment(simple_profile, simple_config, 0.0)
        with pytest.raises(ConfigurationError):
            plan_deployment(simple_profile, simple_config, 10.0, headroom=1.0)

    def test_prefers_fewest_replicas_across_designs(self, simple_demands):
        # Write-heavy at scale: MM needs fewer replicas than SM for high
        # targets, so the plan should come back multi-master.
        from repro.core.params import (
            ReplicationConfig,
            StandaloneProfile,
            WorkloadMix,
        )

        profile = StandaloneProfile(
            mix=WorkloadMix(read_fraction=0.5, write_fraction=0.5),
            demands=simple_demands,
            abort_rate=0.0002,
            update_response_time=0.05,
            update_rate=10.0,
        )
        config = ReplicationConfig(replicas=1, clients_per_replica=50)
        sm_ceiling = max(
            predict(SINGLE_MASTER, profile, config.with_replicas(n)).throughput
            for n in (1, 2, 4, 8, 16)
        )
        plan = plan_deployment(profile, config, sm_ceiling * 1.5,
                               max_replicas=32)
        assert plan is not None
        assert plan.design == MULTI_MASTER


class TestProvisioningSchedule:
    FORECAST = [("00h", 40.0), ("06h", 120.0), ("12h", 260.0), ("18h", 180.0)]

    def test_schedule_covers_all_periods(self, simple_profile, simple_config):
        schedule = provisioning_schedule(
            MULTI_MASTER, simple_profile, simple_config, self.FORECAST
        )
        assert len(schedule.periods) == 4
        labels = [label for label, _, _ in schedule.periods]
        assert labels == ["00h", "06h", "12h", "18h"]

    def test_sizes_match_loads(self, simple_profile, simple_config):
        schedule = provisioning_schedule(
            MULTI_MASTER, simple_profile, simple_config, self.FORECAST
        )
        sizes = {label: n for label, _, n in schedule.periods}
        assert sizes["00h"] < sizes["12h"]
        assert sizes["12h"] == schedule.static_replicas

    def test_each_period_meets_its_load(self, simple_profile, simple_config):
        headroom = 0.1
        schedule = provisioning_schedule(
            MULTI_MASTER, simple_profile, simple_config, self.FORECAST,
            headroom=headroom,
        )
        for _, load, n in schedule.periods:
            capacity = predict(
                MULTI_MASTER, simple_profile, simple_config.with_replicas(n)
            ).throughput
            assert capacity >= load / (1 - headroom) - 1e-9

    def test_savings_positive_for_diurnal_load(self, simple_profile,
                                               simple_config):
        schedule = provisioning_schedule(
            MULTI_MASTER, simple_profile, simple_config, self.FORECAST
        )
        assert schedule.savings_fraction > 0.2
        assert schedule.replica_periods < schedule.static_replica_periods

    def test_unreachable_load_raises(self, simple_profile, simple_config):
        with pytest.raises(ConfigurationError):
            provisioning_schedule(
                MULTI_MASTER, simple_profile, simple_config,
                [("peak", 1e9)], max_replicas=4,
            )

    def test_empty_forecast_rejected(self, simple_profile, simple_config):
        with pytest.raises(ConfigurationError):
            provisioning_schedule(
                MULTI_MASTER, simple_profile, simple_config, []
            )

    def test_to_text_renders(self, simple_profile, simple_config):
        schedule = provisioning_schedule(
            MULTI_MASTER, simple_profile, simple_config, self.FORECAST
        )
        text = schedule.to_text()
        assert "replica-periods" in text
        assert "00h" in text


class TestProvisioningScheduleEdgeCases:
    def test_zero_load_periods_get_minimum_provisioning(self, simple_profile,
                                                        simple_config):
        """An idle period still needs one replica, never zero or an error."""
        forecast = [("night", 0.0), ("day", 120.0), ("off", 0.0)]
        schedule = provisioning_schedule(
            MULTI_MASTER, simple_profile, simple_config, forecast
        )
        sizes = {label: n for label, _, n in schedule.periods}
        assert sizes["night"] == 1
        assert sizes["off"] == 1
        assert sizes["day"] >= 1
        # Zero-load periods contribute their floor to the totals.
        assert schedule.replica_periods == sum(sizes.values())
        assert schedule.static_replicas == sizes["day"]

    def test_all_zero_forecast(self, simple_profile, simple_config):
        schedule = provisioning_schedule(
            MULTI_MASTER, simple_profile, simple_config,
            [("a", 0.0), ("b", 0.0)],
        )
        assert [n for _, _, n in schedule.periods] == [1, 1]
        assert schedule.static_replicas == 1
        assert schedule.savings_fraction == 0.0

    def test_sla_below_zero_load_service_time_is_unreachable(
            self, simple_profile, simple_config):
        """No replica count can beat the zero-load service time."""
        floor = (simple_profile.mix.read_fraction
                 * simple_profile.demands.read.total
                 + simple_profile.mix.write_fraction
                 * simple_profile.demands.write.total)
        n = replicas_for_response_time(
            MULTI_MASTER, simple_profile, simple_config,
            max_response_time=floor * 0.5, max_replicas=16,
        )
        assert n is None
        plan = plan_deployment(
            simple_profile, simple_config, target_throughput=1.0,
            max_response_time=floor * 0.5, designs=(MULTI_MASTER,),
            max_replicas=16,
        )
        assert plan is None

    def test_headroom_rounding_at_max_replicas_boundary(self, simple_profile,
                                                        simple_config):
        """Loads right at the boundary either fit exactly at max_replicas
        or raise — the head-room division must not mis-round either way."""
        headroom = 0.1
        max_replicas = 4
        capacity = predict(
            MULTI_MASTER, simple_profile,
            simple_config.with_replicas(max_replicas),
        ).throughput
        # Exactly fillable: the largest load max_replicas can serve with
        # head-room.  size_for must pick max_replicas, not raise.
        fits = capacity * (1.0 - headroom)
        schedule = provisioning_schedule(
            MULTI_MASTER, simple_profile, simple_config,
            [("edge", fits)], headroom=headroom, max_replicas=max_replicas,
        )
        assert schedule.periods[0][2] == max_replicas
        assert schedule.static_replicas == max_replicas
        # A hair past the boundary must raise, not silently under-provision.
        with pytest.raises(ConfigurationError):
            provisioning_schedule(
                MULTI_MASTER, simple_profile, simple_config,
                [("over", fits * 1.001)], headroom=headroom,
                max_replicas=max_replicas,
            )
