"""Unit tests for the single-master analytical model (Figure 3 balancing)."""

import pytest

from repro.core.params import ReplicationConfig, StandaloneProfile, WorkloadMix
from repro.models.singlemaster import SingleMasterOptions, predict_singlemaster
from repro.models.standalone import predict_standalone


def config(n, clients=20, **kwargs):
    return ReplicationConfig(replicas=n, clients_per_replica=clients, **kwargs)


class TestDegenerateCases:
    def test_n1_close_to_standalone(self, simple_profile):
        sm = predict_singlemaster(
            simple_profile, config(1, load_balancer_delay=0.0)
        )
        standalone = predict_standalone(simple_profile, clients=20)
        assert sm.throughput == pytest.approx(standalone.throughput, rel=0.02)

    def test_read_only_scales_linearly(self, simple_demands):
        profile = StandaloneProfile(
            mix=WorkloadMix(read_fraction=1.0, write_fraction=0.0),
            demands=simple_demands,
        )
        x1 = predict_singlemaster(profile, config(1)).throughput
        x8 = predict_singlemaster(profile, config(8)).throughput
        assert x8 == pytest.approx(8 * x1, rel=0.02)

    def test_read_only_no_aborts(self, simple_demands):
        profile = StandaloneProfile(
            mix=WorkloadMix(read_fraction=1.0, write_fraction=0.0),
            demands=simple_demands,
        )
        assert predict_singlemaster(profile, config(4)).abort_rate == 0.0


class TestScalingBehaviour:
    def test_throughput_grows_then_saturates_for_heavy_writes(self, simple_demands):
        # A write-heavy mix saturates the master (§6.2.1, ordering mix).
        profile = StandaloneProfile(
            mix=WorkloadMix(read_fraction=0.5, write_fraction=0.5),
            demands=simple_demands,
            abort_rate=0.0005,
            update_response_time=0.05,
        )
        throughputs = [
            predict_singlemaster(profile, config(n, clients=50)).throughput
            for n in (1, 2, 4, 8, 16)
        ]
        # Grows early ...
        assert throughputs[1] > throughputs[0]
        # ... but the last doubling of replicas buys little (< 25% more).
        assert throughputs[4] < throughputs[3] * 1.25

    def test_write_capacity_bounded_by_master(self, simple_demands):
        profile = StandaloneProfile(
            mix=WorkloadMix(read_fraction=0.5, write_fraction=0.5),
            demands=simple_demands,
            abort_rate=0.0005,
            update_response_time=0.05,
        )
        prediction = predict_singlemaster(profile, config(16, clients=50))
        # Updates are half the committed work; the master can serve at most
        # 1/max(wc_cpu, wc_disk) updates per second.
        max_updates = 1.0 / max(0.012, 0.006)
        assert prediction.throughput / 2 <= max_updates * 1.05

    def test_light_writes_scale_nearly_linearly(self, simple_demands):
        # 5% updates: slaves dominate, like TPC-W browsing on SM (Figure 8).
        profile = StandaloneProfile(
            mix=WorkloadMix(read_fraction=0.95, write_fraction=0.05),
            demands=simple_demands,
            abort_rate=0.0002,
            update_response_time=0.05,
        )
        x2 = predict_singlemaster(profile, config(2, clients=30)).throughput
        x8 = predict_singlemaster(profile, config(8, clients=30)).throughput
        assert x8 >= 3.0 * x2

    def test_throughput_positive_at_all_scales(self, simple_profile):
        for n in (1, 2, 3, 4, 8, 16):
            assert predict_singlemaster(simple_profile, config(n)).throughput > 0


class TestBalancing:
    def test_extra_reads_when_master_underutilized(self, simple_demands):
        # Read-dominated mix: the master has spare capacity, so the
        # balancer routes extra reads to it (E > 0 in §3.3.3).
        profile = StandaloneProfile(
            mix=WorkloadMix(read_fraction=0.95, write_fraction=0.05),
            demands=simple_demands,
            abort_rate=0.0002,
            update_response_time=0.05,
        )
        prediction = predict_singlemaster(profile, config(4, clients=30))
        assert prediction.master_extra_reads > 0

    def test_no_extra_reads_when_master_bottlenecked(self, simple_demands):
        profile = StandaloneProfile(
            mix=WorkloadMix(read_fraction=0.5, write_fraction=0.5),
            demands=simple_demands,
            abort_rate=0.0005,
            update_response_time=0.05,
        )
        prediction = predict_singlemaster(profile, config(16, clients=50))
        assert prediction.master_extra_reads == 0.0

    def test_breakdown_has_master_and_slave(self, simple_profile):
        prediction = predict_singlemaster(simple_profile, config(4))
        roles = [b.role for b in prediction.breakdown]
        assert roles == ["master", "slave"]

    def test_breakdown_n1_master_only(self, simple_profile):
        prediction = predict_singlemaster(simple_profile, config(1))
        assert [b.role for b in prediction.breakdown] == ["master"]

    def test_ratio_tolerance_must_be_positive(self):
        with pytest.raises(Exception):
            SingleMasterOptions(ratio_tolerance=0.0)

    def test_custom_tolerance_accepted(self, simple_profile):
        prediction = predict_singlemaster(
            simple_profile, config(4),
            options=SingleMasterOptions(ratio_tolerance=0.10),
        )
        assert prediction.throughput > 0


class TestAbortRates:
    def test_master_abort_rate_grows_with_n(self, simple_profile):
        values = [
            predict_singlemaster(simple_profile, config(n)).abort_rate
            for n in (1, 4, 16)
        ]
        assert values == sorted(values)

    def test_zero_a1_zero_apn(self, simple_profile):
        profile = simple_profile.replace(abort_rate=0.0)
        assert predict_singlemaster(profile, config(8)).abort_rate == 0.0

    def test_mpl_bounds_abort_rate_growth(self, simple_demands):
        # Without admission control a saturated master's conflict window
        # (and hence A'N) would blow up with queued clients.
        profile = StandaloneProfile(
            mix=WorkloadMix(read_fraction=0.5, write_fraction=0.5),
            demands=simple_demands,
            abort_rate=0.001,
            update_response_time=0.05,
        )
        prediction = predict_singlemaster(
            profile, config(16, clients=50, max_concurrency=32)
        )
        assert prediction.abort_rate < 0.5
