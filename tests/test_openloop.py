"""Tests for open-loop arrivals and the open-vs-closed experiment."""

import pytest

from repro.core.errors import ConfigurationError, SimulationError
from repro.experiments.openloop import open_vs_closed
from repro.simulator.runner import STANDALONE, simulate


class TestOpenArrivals:
    def test_throughput_tracks_offered_rate_below_capacity(self, shopping_spec):
        result = simulate(
            shopping_spec,
            shopping_spec.replication_config(1),
            design=STANDALONE,
            seed=11,
            warmup=4.0,
            duration=30.0,
            arrival_rate=10.0,
        )
        assert result.throughput == pytest.approx(10.0, rel=0.15)

    def test_response_grows_past_capacity(self, shopping_spec):
        below = simulate(
            shopping_spec, shopping_spec.replication_config(1),
            design=STANDALONE, seed=12, warmup=4.0, duration=25.0,
            arrival_rate=15.0,
        ).response_time
        above = simulate(
            shopping_spec, shopping_spec.replication_config(1),
            design=STANDALONE, seed=12, warmup=4.0, duration=25.0,
            arrival_rate=32.0,
        ).response_time
        assert above > 3.0 * below

    def test_open_arrivals_work_on_replicated_designs(self, shopping_spec):
        result = simulate(
            shopping_spec, shopping_spec.replication_config(2),
            design="multi-master", seed=13, warmup=4.0, duration=20.0,
            arrival_rate=30.0,
        )
        assert result.throughput == pytest.approx(30.0, rel=0.2)

    def test_zero_rate_rejected(self, shopping_spec):
        with pytest.raises(SimulationError):
            simulate(
                shopping_spec, shopping_spec.replication_config(1),
                design=STANDALONE, warmup=1.0, duration=5.0,
                arrival_rate=0.0,
            )

    def test_deterministic_given_seed(self, shopping_spec):
        kwargs = dict(
            design=STANDALONE, seed=14, warmup=2.0, duration=10.0,
            arrival_rate=12.0,
        )
        a = simulate(shopping_spec, shopping_spec.replication_config(1), **kwargs)
        b = simulate(shopping_spec, shopping_spec.replication_config(1), **kwargs)
        assert a.throughput == b.throughput


class TestOpenVsClosedExperiment:
    def test_structure_and_contrast(self, shopping_spec, tiny_settings):
        import dataclasses

        # The open queue's divergence under overload accumulates over the
        # window: give it enough simulated time to separate clearly.
        settings = dataclasses.replace(tiny_settings, sim_duration=30.0)
        result = open_vs_closed(
            shopping_spec, settings, load_fractions=(0.5, 1.1)
        )
        assert len(result.rows) == 2
        assert result.capacity > 0
        light, overload = result.rows
        # Past capacity the open queue is much worse than the closed loop.
        assert overload.open_response > 2.0 * overload.closed_response
        # At half load they broadly agree.
        assert light.open_response == pytest.approx(
            light.closed_response, rel=0.8
        )

    def test_empty_fractions_rejected(self, shopping_spec, tiny_settings):
        with pytest.raises(ConfigurationError):
            open_vs_closed(shopping_spec, tiny_settings, load_fractions=())

    def test_to_text_renders(self, shopping_spec, tiny_settings):
        result = open_vs_closed(
            shopping_spec, tiny_settings, load_fractions=(0.5,)
        )
        assert "open vs closed" in result.to_text()
