"""Unit tests for exact multiclass MVA."""

import pytest

from repro.core.errors import ConfigurationError
from repro.queueing.mva import solve_mva, solve_mva_multiclass
from repro.queueing.network import (
    ClosedNetwork,
    MulticlassNetwork,
    delay_center,
    queueing_center,
)


def two_class_network(d_a=(0.03, 0.01), d_b=(0.01, 0.02), z=(1.0, 1.0)):
    return MulticlassNetwork(
        centers=(queueing_center("cpu", 0.0), queueing_center("disk", 0.0)),
        demands={"a": d_a, "b": d_b},
        think_times={"a": z[0], "b": z[1]},
    )


class TestMulticlassConstruction:
    def test_demand_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            MulticlassNetwork(
                centers=(queueing_center("cpu", 0.0),),
                demands={"a": (0.1, 0.2)},
                think_times={"a": 1.0},
            )

    def test_class_sets_must_match(self):
        with pytest.raises(ConfigurationError):
            MulticlassNetwork(
                centers=(queueing_center("cpu", 0.0),),
                demands={"a": (0.1,)},
                think_times={"b": 1.0},
            )

    def test_negative_demand_rejected(self):
        with pytest.raises(ConfigurationError):
            MulticlassNetwork(
                centers=(queueing_center("cpu", 0.0),),
                demands={"a": (-0.1,)},
                think_times={"a": 1.0},
            )

    def test_classes_sorted(self):
        assert two_class_network().classes == ["a", "b"]


class TestMulticlassAgainstSingleClass:
    def test_single_populated_class_reduces_to_single_class_mva(self):
        network = two_class_network()
        multi = solve_mva_multiclass(network, {"a": 15, "b": 0})
        single = solve_mva(
            ClosedNetwork(
                centers=(queueing_center("cpu", 0.03), queueing_center("disk", 0.01)),
                think_time=1.0,
            ),
            15,
        )
        assert multi.throughputs["a"] == pytest.approx(single.throughput)
        assert multi.response_times["a"] == pytest.approx(single.response_time)
        assert multi.throughputs["b"] == 0.0

    def test_identical_classes_split_symmetrically(self):
        network = two_class_network(d_a=(0.02, 0.01), d_b=(0.02, 0.01))
        solution = solve_mva_multiclass(network, {"a": 10, "b": 10})
        assert solution.throughputs["a"] == pytest.approx(
            solution.throughputs["b"]
        )
        # Combined they must equal the single-class solution with 20 clients.
        single = solve_mva(
            ClosedNetwork(
                centers=(queueing_center("cpu", 0.02), queueing_center("disk", 0.01)),
                think_time=1.0,
            ),
            20,
        )
        assert solution.total_throughput == pytest.approx(single.throughput)


class TestMulticlassProperties:
    def test_population_conservation(self):
        network = two_class_network()
        pops = {"a": 12, "b": 7}
        solution = solve_mva_multiclass(network, pops)
        in_centers = sum(solution.queue_lengths.values())
        thinking = sum(
            solution.throughputs[k] * network.think_times[k] for k in pops
        )
        assert in_centers + thinking == pytest.approx(sum(pops.values()))

    def test_utilization_below_one(self):
        solution = solve_mva_multiclass(
            two_class_network(), {"a": 100, "b": 100}
        )
        for value in solution.utilization.values():
            assert value <= 1.0 + 1e-9

    def test_adding_competing_class_slows_the_other(self):
        network = two_class_network()
        alone = solve_mva_multiclass(network, {"a": 10, "b": 0})
        shared = solve_mva_multiclass(network, {"a": 10, "b": 10})
        assert shared.throughputs["a"] < alone.throughputs["a"]
        assert shared.response_times["a"] > alone.response_times["a"]

    def test_delay_center_residence_constant(self):
        network = MulticlassNetwork(
            centers=(queueing_center("cpu", 0.0), delay_center("lb", 0.0)),
            demands={"a": (0.02, 0.005), "b": (0.01, 0.005)},
            think_times={"a": 1.0, "b": 1.0},
        )
        solution = solve_mva_multiclass(network, {"a": 30, "b": 10})
        assert solution.residence_times["a"]["lb"] == pytest.approx(0.005)
        assert solution.residence_times["b"]["lb"] == pytest.approx(0.005)

    def test_fractional_population_interpolation(self):
        network = two_class_network()
        low = solve_mva_multiclass(network, {"a": 10, "b": 5})
        high = solve_mva_multiclass(network, {"a": 11, "b": 5})
        mid = solve_mva_multiclass(network, {"a": 10.5, "b": 5})
        expected = (low.throughputs["a"] + high.throughputs["a"]) / 2
        assert mid.throughputs["a"] == pytest.approx(expected)

    def test_fractional_both_classes(self):
        network = two_class_network()
        mid = solve_mva_multiclass(network, {"a": 3.5, "b": 2.5})
        corners = [
            solve_mva_multiclass(network, {"a": a, "b": b}).total_throughput
            for a in (3, 4)
            for b in (2, 3)
        ]
        assert min(corners) <= mid.total_throughput <= max(corners)

    def test_unknown_class_rejected(self):
        with pytest.raises(ConfigurationError):
            solve_mva_multiclass(two_class_network(), {"zzz": 1})

    def test_negative_population_rejected(self):
        with pytest.raises(ConfigurationError):
            solve_mva_multiclass(two_class_network(), {"a": -1})

    def test_empty_population(self):
        solution = solve_mva_multiclass(two_class_network(), {"a": 0, "b": 0})
        assert solution.total_throughput == 0.0
