"""Unit tests for the service-demand equations of §3.3."""

import pytest

from repro.core.errors import ConfigurationError
from repro.core.params import WorkloadMix
from repro.models.demands import (
    master_mixed_demand,
    master_update_demand,
    multimaster_demand,
    slave_demand,
    standalone_demand,
)


class TestStandaloneDemand:
    def test_matches_paper_equation(self, simple_demands, simple_mix):
        # D(1) = Pr*rc + Pw*wc/(1-A1)
        demand = standalone_demand(simple_demands, simple_mix, abort_rate=0.1)
        assert demand.cpu == pytest.approx(0.8 * 0.040 + 0.2 * 0.012 / 0.9)
        assert demand.disk == pytest.approx(0.8 * 0.015 + 0.2 * 0.006 / 0.9)

    def test_zero_abort_rate(self, simple_demands, simple_mix):
        demand = standalone_demand(simple_demands, simple_mix, abort_rate=0.0)
        assert demand.cpu == pytest.approx(0.8 * 0.040 + 0.2 * 0.012)

    def test_read_only_mix_ignores_write_demand(self, simple_demands):
        mix = WorkloadMix(read_fraction=1.0, write_fraction=0.0)
        demand = standalone_demand(simple_demands, mix, abort_rate=0.0)
        assert demand.cpu == pytest.approx(0.040)
        assert demand.disk == pytest.approx(0.015)


class TestMultimasterDemand:
    def test_matches_paper_equation(self, simple_demands, simple_mix):
        # DMM(N) = Pr*rc + Pw*wc/(1-AN) + (N-1)*Pw*ws
        n, an = 8, 0.05
        demand = multimaster_demand(simple_demands, simple_mix, n, an)
        expected_cpu = 0.8 * 0.040 + 0.2 * 0.012 / 0.95 + 7 * 0.2 * 0.003
        assert demand.cpu == pytest.approx(expected_cpu)

    def test_n1_equals_standalone(self, simple_demands, simple_mix):
        mm = multimaster_demand(simple_demands, simple_mix, 1, 0.02)
        sa = standalone_demand(simple_demands, simple_mix, 0.02)
        assert mm.cpu == pytest.approx(sa.cpu)
        assert mm.disk == pytest.approx(sa.disk)

    def test_demand_grows_with_replicas(self, simple_demands, simple_mix):
        demands = [
            multimaster_demand(simple_demands, simple_mix, n, 0.0).cpu
            for n in (1, 2, 4, 8, 16)
        ]
        assert demands == sorted(demands)

    def test_writeset_load_linear_in_replicas(self, simple_demands, simple_mix):
        d2 = multimaster_demand(simple_demands, simple_mix, 2, 0.0).cpu
        d3 = multimaster_demand(simple_demands, simple_mix, 3, 0.0).cpu
        d4 = multimaster_demand(simple_demands, simple_mix, 4, 0.0).cpu
        assert d3 - d2 == pytest.approx(d4 - d3)
        assert d3 - d2 == pytest.approx(0.2 * 0.003)

    def test_read_only_mix_has_no_replication_overhead(self, simple_demands):
        mix = WorkloadMix(read_fraction=1.0, write_fraction=0.0)
        d1 = multimaster_demand(simple_demands, mix, 1, 0.0)
        d16 = multimaster_demand(simple_demands, mix, 16, 0.0)
        assert d1.cpu == pytest.approx(d16.cpu)

    def test_rejects_zero_replicas(self, simple_demands, simple_mix):
        with pytest.raises(ConfigurationError):
            multimaster_demand(simple_demands, simple_mix, 0, 0.0)


class TestMasterDemands:
    def test_update_demand_inflated_by_retries(self, simple_demands):
        demand = master_update_demand(simple_demands, abort_rate=0.2)
        assert demand.cpu == pytest.approx(0.012 / 0.8)
        assert demand.disk == pytest.approx(0.006 / 0.8)

    def test_mixed_demand_shares_by_throughput(self, simple_demands):
        # E = update rate -> 50/50 split.
        demand = master_mixed_demand(
            simple_demands, abort_rate=0.0, update_rate=10.0, extra_read_rate=10.0
        )
        assert demand.cpu == pytest.approx(0.5 * 0.040 + 0.5 * 0.012)

    def test_mixed_demand_no_reads_is_update_demand(self, simple_demands):
        demand = master_mixed_demand(
            simple_demands, abort_rate=0.1, update_rate=5.0, extra_read_rate=0.0
        )
        assert demand.cpu == pytest.approx(0.012 / 0.9)

    def test_mixed_demand_rejects_idle_master(self, simple_demands):
        with pytest.raises(ConfigurationError):
            master_mixed_demand(simple_demands, 0.0, 0.0, 0.0)


class TestSlaveDemand:
    def test_default_matches_paper_equation(self, simple_demands, simple_mix):
        # D_slave = rc + (N-1) * (Pw/Pr) * ws
        n = 5
        demand = slave_demand(simple_demands, simple_mix, n)
        wspr = 4 * 0.2 / 0.8
        assert demand.cpu == pytest.approx(0.040 + wspr * 0.003)
        assert demand.disk == pytest.approx(0.015 + wspr * 0.002)

    def test_explicit_writesets_per_read(self, simple_demands, simple_mix):
        demand = slave_demand(
            simple_demands, simple_mix, 3, writesets_per_read=2.0
        )
        assert demand.cpu == pytest.approx(0.040 + 2.0 * 0.003)

    def test_zero_writesets_is_pure_read(self, simple_demands, simple_mix):
        demand = slave_demand(
            simple_demands, simple_mix, 3, writesets_per_read=0.0
        )
        assert demand.cpu == pytest.approx(0.040)

    def test_requires_at_least_two_replicas(self, simple_demands, simple_mix):
        with pytest.raises(ConfigurationError):
            slave_demand(simple_demands, simple_mix, 1)

    def test_rejects_negative_writesets_per_read(self, simple_demands, simple_mix):
        with pytest.raises(ConfigurationError):
            slave_demand(simple_demands, simple_mix, 3, writesets_per_read=-1.0)

    def test_write_only_mix_rejected_without_override(self, simple_demands):
        mix = WorkloadMix(read_fraction=0.0, write_fraction=1.0)
        with pytest.raises(ConfigurationError):
            slave_demand(simple_demands, mix, 3)
