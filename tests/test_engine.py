"""Tests for the scenario engine: registry, caching, parallel determinism.

The engine's core guarantee is that *how* a scenario is executed — serial,
fanned out over a process pool, or served from the result cache — never
changes *what* it produces.  The determinism tests assert byte-identical
artifacts across all three paths on a deliberately tiny sweep.
"""

from __future__ import annotations

import pytest

from repro.core.errors import ConfigurationError, EngineError
from repro.engine import (
    ResultCache,
    SweepPoint,
    clear_memo,
    default_jobs,
    execute_points,
    get_scenario,
    memo_size,
    point_key,
    profile_key,
    profile_task,
    run_scenario,
    scenario_names,
    sim_point,
)
from repro.experiments import ExperimentSettings, clear_cache, figure6
from repro.experiments.figures import sweep_points
from repro.workloads import tpcw


@pytest.fixture
def micro_settings():
    """The cheapest settings that still exercise profiling + sweeping."""
    return ExperimentSettings(
        replica_counts=(1, 2),
        sim_warmup=1.0,
        sim_duration=4.0,
        profile_duration=8.0,
        profile_mixed_duration=8.0,
    )


@pytest.fixture(autouse=True)
def fresh_engine():
    """Each test starts and ends with empty memo/profile caches."""
    clear_memo()
    clear_cache()
    yield
    clear_memo()
    clear_cache()


def _bad_point():
    """A point that raises inside its backend (standalone needs N == 1)."""
    spec = tpcw.SHOPPING
    return sim_point(
        spec, spec.replication_config(2), "standalone",
        seed=1, warmup=1.0, duration=4.0,
    )


class TestRegistry:
    def test_every_paper_artifact_registered(self):
        names = scenario_names()
        for i in range(6, 15):
            assert f"figure{i}" in names
        for i in range(2, 6):
            assert f"table{i}" in names
        assert "error-margin" in names
        assert "crossval" in names

    def test_aliases_resolve(self):
        assert get_scenario("fig06").name == "figure6"
        assert get_scenario("fig6").name == "figure6"
        assert get_scenario("FIG14").name == "figure14"
        assert get_scenario("validate").name == "error-margin"

    def test_unknown_scenario_rejected(self):
        with pytest.raises(KeyError):
            get_scenario("figure99")

    def test_scenarios_carry_metadata(self):
        scenario = get_scenario("figure6")
        assert scenario.kind == "figure"
        assert scenario.metrics == ("throughput",)


class TestCacheKeys:
    def test_tag_is_a_label_not_an_input(self, micro_settings):
        spec = tpcw.SHOPPING
        config = spec.replication_config(2)
        a = sim_point(spec, config, "multi-master", seed=1, warmup=1.0,
                      duration=4.0, tag="x")
        b = sim_point(spec, config, "multi-master", seed=1, warmup=1.0,
                      duration=4.0, tag="y")
        assert point_key(a) == point_key(b)

    def test_seed_and_config_change_the_key(self):
        spec = tpcw.SHOPPING
        base = sim_point(spec, spec.replication_config(2), "multi-master",
                         seed=1, warmup=1.0, duration=4.0)
        other_seed = sim_point(spec, spec.replication_config(2),
                               "multi-master", seed=2, warmup=1.0,
                               duration=4.0)
        other_n = sim_point(spec, spec.replication_config(4), "multi-master",
                            seed=1, warmup=1.0, duration=4.0)
        assert point_key(base) != point_key(other_seed)
        assert point_key(base) != point_key(other_n)

    def test_model_key_depends_on_profile_task(self, micro_settings):
        from repro.engine import model_point

        spec = tpcw.SHOPPING
        config = spec.replication_config(2)
        task = profile_task(spec, micro_settings)
        other = profile_task(spec, ExperimentSettings())
        a = model_point(spec, config, "multi-master", profile=task)
        b = model_point(spec, config, "multi-master", profile=other)
        assert point_key(a) != point_key(b)

    def test_profile_point_key_matches_profile_key(self, micro_settings):
        from repro.engine import profile_point

        point = profile_point(tpcw.SHOPPING, micro_settings)
        assert point_key(point) == profile_key(point.profile)


class TestResultCache:
    def test_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("a" * 64, {"x": 1})
        hit, value = cache.get("a" * 64)
        assert hit and value == {"x": 1}
        assert len(cache) == 1

    def test_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        hit, value = cache.get("b" * 64)
        assert not hit and value is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "c" * 64
        cache.put(key, [1, 2, 3])
        path = cache._path(key)
        path.write_bytes(b"not a pickle")
        hit, _ = cache.get(key)
        assert not hit

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("d" * 64, 1)
        cache.clear()
        assert len(cache) == 0


class TestDeterminism:
    def test_parallel_identical_to_serial(self, micro_settings):
        serial = figure6(micro_settings)
        clear_memo()
        clear_cache()
        parallel = figure6(micro_settings, jobs=4)
        assert serial == parallel

    def test_cache_hits_identical_to_cold_run(self, micro_settings, tmp_path):
        cache = ResultCache(tmp_path)
        cold = figure6(micro_settings, cache=cache)
        clear_memo()
        clear_cache()
        warm = figure6(micro_settings, cache=cache)
        assert cold == warm
        assert cache.hits > 0

    def test_memo_shares_points_across_scenarios(self, micro_settings):
        points = sweep_points("tpcw", "multi-master", micro_settings)
        execute_points(points)
        before = memo_size()
        again = execute_points(points)
        assert memo_size() == before
        assert all(result is not None for result in again)

    def test_run_scenario_by_name(self, micro_settings):
        direct = figure6(micro_settings)
        result = run_scenario("fig06", micro_settings)
        assert result == direct


class TestFailurePropagation:
    def test_worker_failure_raises_engine_error(self):
        good = sim_point(
            tpcw.SHOPPING, tpcw.SHOPPING.replication_config(1),
            "standalone", seed=1, warmup=1.0, duration=4.0,
        )
        with pytest.raises(EngineError) as excinfo:
            execute_points([good, _bad_point()], jobs=2)
        assert "standalone" in str(excinfo.value)
        assert excinfo.value.point is not None

    def test_serial_failure_raises_original_error(self):
        with pytest.raises(ConfigurationError):
            execute_points([_bad_point()], jobs=1)

    def test_reproduce_exit_code_on_engine_error(self, monkeypatch, capsys):
        from repro import cli

        def boom(*args, **kwargs):
            raise EngineError("sweep point failed in worker [test]")

        monkeypatch.setattr(cli.experiments, "full_report", boom)
        assert cli.main(["reproduce", "--fast"]) == 1
        assert "reproduce failed" in capsys.readouterr().err


class TestJobs:
    def test_default_jobs_positive(self):
        assert default_jobs() >= 1

    def test_jobs_none_means_cpu_count(self, micro_settings):
        # jobs=None must not crash and must produce the same artifact.
        serial = figure6(micro_settings)
        clear_memo()
        clear_cache()
        assert figure6(micro_settings, jobs=None) == serial


class TestCLI:
    def test_scenarios_command_lists_registry(self, capsys):
        from repro.cli import main

        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        assert "figure6" in out
        assert "table3" in out
        assert "error-margin" in out

    def test_figure_parser_accepts_aliases(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["figure", "fig06", "--jobs", "4", "--no-cache"]
        )
        assert args.name == "fig06"
        assert args.jobs == 4
        assert args.no_cache

    def test_reproduce_jobs_defaults_to_cpu_count(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["reproduce", "--fast"])
        assert args.jobs is None  # engine maps None -> os.cpu_count()

    def test_figure_jobs_defaults_to_serial(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["figure", "figure6"])
        assert args.jobs == 1

    def test_table_runs_through_registry(self, capsys):
        from repro.cli import main

        code = main(["table", "table2", "--no-cache", "--jobs", "2"])
        assert code == 0
        assert "TPC-W parameters" in capsys.readouterr().out

    def test_run_command_handles_any_scenario(self, capsys):
        from repro.cli import main

        code = main(["run", "ablation-mva", "--no-cache"])
        assert code == 0
        # Ablation artifacts are plain row lists; the CLI renders them
        # one row per line.
        assert "MVAAblationRow" in capsys.readouterr().out

    def test_figure_choices_deduplicated(self):
        from repro.cli import build_parser

        parser = build_parser()
        for action in parser._subparsers._group_actions:
            figure = action.choices.get("figure")
        choices = next(
            a.choices for a in figure._actions if a.dest == "name"
        )
        assert len(choices) == len(set(choices))


class TestPointIntrospection:
    def test_replicas_property(self):
        spec = tpcw.SHOPPING
        point = sim_point(spec, spec.replication_config(8), "multi-master",
                          seed=1, warmup=1.0, duration=4.0)
        assert point.replicas == 8
        profile_only = SweepPoint(backend="profile", spec=spec)
        assert profile_only.replicas == 1

    def test_option_lookup(self):
        spec = tpcw.SHOPPING
        point = sim_point(spec, spec.replication_config(1), "standalone",
                          seed=1, warmup=1.0, duration=4.0,
                          arrival_rate=25.0)
        assert point.option("arrival_rate") == 25.0
        assert point.option("missing", "fallback") == "fallback"
        assert point.options_dict()["duration"] == 4.0
