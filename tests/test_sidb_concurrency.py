"""Concurrency tests for the sidb layer (the live cluster's foundation).

The certifier and version store advertise a locking discipline in their
module docstrings; these tests hammer them (and the engine's commit path)
from many threads and check the invariants that the locks exist to
protect: dense unique commit versions, consistent counters, and a version
store whose watermark never runs ahead of its data.
"""

from __future__ import annotations

import threading


from repro.sidb.certifier import Certifier
from repro.sidb.engine import SIDatabase
from repro.sidb.versionstore import VersionedStore
from repro.sidb.writeset import Writeset


def _run_threads(count, target):
    threads = [threading.Thread(target=target, args=(i,)) for i in range(count)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(30.0)
    assert not any(t.is_alive() for t in threads)


def test_certifier_concurrent_disjoint_commits_get_dense_versions():
    certifier = Certifier()
    per_thread = 200
    versions = [[] for _ in range(8)]

    def worker(thread_id):
        for i in range(per_thread):
            writeset = Writeset.from_dict(
                txn_id=thread_id * per_thread + i,
                snapshot_version=0,
                writes={("t", thread_id, i): 1},  # disjoint: always commits
            )
            outcome = certifier.certify(writeset)
            assert outcome.committed
            versions[thread_id].append(outcome.commit_version)

    _run_threads(8, worker)
    everything = sorted(v for per in versions for v in per)
    assert everything == list(range(1, 8 * per_thread + 1))
    assert certifier.commits == 8 * per_thread
    assert certifier.aborts == 0
    # Each thread saw its own versions in increasing order.
    for per in versions:
        assert per == sorted(per)


def test_versionstore_concurrent_readers_during_installs():
    store = VersionedStore({("row", i): 0 for i in range(16)})
    stop = threading.Event()
    errors = []

    def reader(thread_id):
        while not stop.is_set():
            latest = store.latest_version
            for i in range(16):
                value = store.get(("row", i), latest, 0)
                # Values are the installing version: never newer than the
                # watermark we read first (installs are atomic).
                if not isinstance(value, int) or value > store.latest_version:
                    errors.append((thread_id, value))
                    return

    readers = [threading.Thread(target=reader, args=(i,)) for i in range(4)]
    for t in readers:
        t.start()
    for version in range(1, 500):
        store.install(version, {("row", version % 16): version})
    stop.set()
    for t in readers:
        t.join(10.0)
    assert errors == []
    assert store.latest_version == 499


def test_engine_concurrent_commits_master_style():
    """Many threads committing against one engine (the single-master
    cluster's hot path): first-committer-wins stays atomic."""
    db = SIDatabase(initial={("k", i): 0 for i in range(4)})
    per_thread = 100
    outcomes = {"committed": 0, "aborted": 0}
    lock = threading.Lock()

    def worker(thread_id):
        committed = aborted = 0
        for i in range(per_thread):
            txn = db.begin()
            # A tiny key space forces real write-write conflicts.
            txn.write(("k", (thread_id + i) % 4), thread_id)
            try:
                db.commit(txn)
                committed += 1
            except Exception:
                aborted += 1
        with lock:
            outcomes["committed"] += committed
            outcomes["aborted"] += aborted

    _run_threads(6, worker)
    total = 6 * per_thread
    assert outcomes["committed"] + outcomes["aborted"] == total
    assert outcomes["committed"] >= 1
    # Versions are dense: the store's watermark equals the commit count.
    assert db.latest_version == outcomes["committed"]
    assert db.update_commits == outcomes["committed"]
    assert db.update_aborts == outcomes["aborted"]
    # No leaked snapshots keep the certifier history pinned.
    assert db.oldest_active_snapshot() == db.latest_version


def test_engine_concurrent_begin_apply_and_read():
    """Multi-master replica shape: client threads begin/read while the
    applier thread installs propagated writesets in order."""
    shared = Certifier()
    db = SIDatabase(initial={("row", i): 0 for i in range(8)}, certifier=shared)
    stop = threading.Event()
    errors = []

    def reader(thread_id):
        while not stop.is_set():
            txn = db.begin()
            try:
                for i in range(8):
                    txn.get(("row", i))
                db.commit(txn)  # read-only: always commits
            except Exception as exc:  # noqa: BLE001 — recorded for assert
                errors.append(exc)
                return

    readers = [threading.Thread(target=reader, args=(i,)) for i in range(4)]
    for t in readers:
        t.start()
    for version in range(1, 400):
        writeset = Writeset.from_dict(
            txn_id=version, snapshot_version=version - 1,
            writes={("row", version % 8): version},
        ).committed(version)
        db.apply_writeset(writeset)
    stop.set()
    for t in readers:
        t.join(10.0)
    assert errors == []
    assert db.latest_version == 399
