"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_workloads_subcommand_parses(self):
        args = build_parser().parse_args(["workloads"])
        assert args.command == "workloads"

    def test_predict_defaults(self):
        args = build_parser().parse_args(["predict", "tpcw/shopping"])
        assert args.design == "multi-master"
        assert args.replicas == [1, 2, 4, 8, 16]

    def test_figure_choices_cover_6_to_14(self):
        for i in range(6, 15):
            args = build_parser().parse_args(["figure", f"figure{i}", "--fast"])
            assert args.name == f"figure{i}"

    def test_invalid_figure_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "figure99"])

    def test_table_choices(self):
        for name in ("table2", "table3", "table4", "table5"):
            args = build_parser().parse_args(["table", name])
            assert args.name == name

    def test_plan_requires_target(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["plan", "tpcw/shopping"])

    def test_plan_parses_options(self):
        args = build_parser().parse_args(
            ["plan", "tpcw/shopping", "--target", "100", "--headroom", "0.2"]
        )
        assert args.target == 100.0
        assert args.headroom == 0.2

    def test_reproduce_parses_out(self):
        args = build_parser().parse_args(["reproduce", "--fast", "--out", "x.txt"])
        assert args.out == "x.txt"

    def test_autoscale_parses_options(self):
        args = build_parser().parse_args(
            ["autoscale", "--trace", "flashcrowd", "--live", "--timeline",
             "--fast", "--jobs", "4"]
        )
        assert args.trace == "flashcrowd"
        assert args.live and args.timeline
        assert args.jobs == 4

    def test_autoscale_rejects_unknown_trace(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["autoscale", "--trace", "sawtooth"])

    def test_scenarios_parses_profile(self):
        args = build_parser().parse_args(
            ["scenarios", "--profile", "fig06", "--fast"]
        )
        assert args.profile
        assert args.names == ["fig06"]


class TestCommands:
    def test_workloads_lists_all(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "tpcw/shopping" in out
        assert "rubis/bidding" in out

    def test_table2_renders(self, capsys):
        assert main(["table", "table2"]) == 0
        out = capsys.readouterr().out
        assert "TPC-W parameters" in out

    def test_table4_renders(self, capsys):
        assert main(["table", "table4"]) == 0
        assert "RUBiS" in capsys.readouterr().out

    def test_simulate_standalone_smoke(self, capsys):
        code = main([
            "simulate", "tpcw/shopping", "--design", "standalone",
            "--replicas", "1", "--warmup", "2", "--duration", "6",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "tps" in out

    def test_plan_smoke(self, capsys):
        code = main(["plan", "tpcw/shopping", "--target", "50", "--fast"])
        assert code == 0
        out = capsys.readouterr().out
        assert "replicas" in out

    def test_plan_unreachable_target_fails(self, capsys):
        code = main([
            "plan", "rubis/bidding", "--target", "100000", "--fast",
        ])
        assert code == 1
        assert "no deployment" in capsys.readouterr().out

    def test_run_unknown_scenario_fails_with_suggestion(self, capsys):
        """No traceback: a clean non-zero exit with a did-you-mean hint."""
        code = main(["run", "figur6"])
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown scenario 'figur6'" in err
        assert "figure6" in err  # the did-you-mean suggestion

    def test_run_unknown_scenario_without_close_match(self, capsys):
        code = main(["run", "zzzzzzzz"])
        assert code == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_ops_parses_options(self):
        args = build_parser().parse_args(
            ["ops", "--operation", "rolling", "--live", "--timeline",
             "--fast"]
        )
        assert args.operation == "rolling"
        assert args.live and args.timeline

    def test_plan_parses_capacities(self):
        args = build_parser().parse_args(
            ["plan", "tpcw/shopping", "--target", "50",
             "--capacities", "2", "1", "0.5", "--fast"]
        )
        assert args.capacities == [2.0, 1.0, 0.5]

    def test_backend_failure_is_one_line_not_traceback(self, capsys,
                                                       monkeypatch):
        """A live backend that cannot converge must produce a clean
        one-line error on stderr and exit 1 (CI smoke jobs grep stderr,
        not stack frames)."""
        from repro import cli
        from repro.core.errors import SimulationError

        def boom(*args, **kwargs):
            raise SimulationError(
                "3 traffic thread(s) still running after the drain "
                "timeout; the offered load exceeds what the cluster "
                "can drain"
            )

        monkeypatch.setattr(cli, "run_scenario", boom)
        code = main(["run", "selfheal-crashstorm-live", "--fast"])
        assert code == 1
        err = capsys.readouterr().err
        assert "error:" in err
        assert "drain" in err
        assert "Traceback" not in err

    def test_scenarios_lists_ops_family(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        assert "selfheal-crashstorm" in out
        assert "rolling-upgrade" in out
        assert "hetero-fleet" in out
        assert "selfheal-crashstorm-live" in out

    def test_scenarios_lists_autoscale_family(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        assert "autoscale-diurnal" in out
        assert "autoscale-flashcrowd" in out
        assert "autoscale-diurnal-live" in out

    def test_scenarios_name_filter(self, capsys):
        assert main(["scenarios", "autoscale"]) == 0  # alias resolves
        out = capsys.readouterr().out
        assert "autoscale-diurnal" in out
        assert "table2" not in out

    def test_scenarios_bad_name_fails(self, capsys):
        assert main(["scenarios", "nope-nope"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_scenarios_profile_reports_wall_clock(self, capsys):
        assert main(["scenarios", "--profile", "table2", "--fast",
                     "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "table2:" in out
        assert "wall" in out

    def test_scenarios_profile_requires_names(self, capsys):
        """Without names --profile would run the whole registry, live
        cluster scenarios included — refuse instead."""
        assert main(["scenarios", "--profile"]) == 2
        assert "name the scenarios" in capsys.readouterr().err


class TestArtifactFailures:
    """`repro run` must exit non-zero on non-converged cluster artifacts."""

    def _result(self, converged):
        from repro.control.autoscale import AutoscaleResult

        return AutoscaleResult(
            design="multi-master", policy="feedforward", pillar="cluster",
            trace="diurnal", slo_response=1.0, control_interval=1.0,
            window=10.0, committed=100, slo_violations=0,
            replica_seconds=20.0, timeline=(), final_members=2,
            scale_events=1, converged=converged,
        )

    def test_non_converged_entries_are_failures(self):
        from repro.cli import _artifact_failures
        from repro.control.autoscale import AutoscaleComparison

        comparison = AutoscaleComparison(
            workload="w", trace="diurnal", pillar="cluster",
            slo_response=1.0,
            results=(self._result(True), self._result(False)),
        )
        failures = _artifact_failures(comparison)
        assert len(failures) == 1
        assert "did not converge" in failures[0]

    def test_converged_artifacts_pass(self):
        from repro.cli import _artifact_failures
        from repro.control.autoscale import AutoscaleComparison

        comparison = AutoscaleComparison(
            workload="w", trace="diurnal", pillar="cluster",
            slo_response=1.0, results=(self._result(True),),
        )
        assert _artifact_failures(comparison) == []
        assert _artifact_failures(["plain", "rows"]) == []


class TestPartitionCli:
    def test_partition_parses_options(self):
        args = build_parser().parse_args(
            ["partition", "--family", "sweep", "--live", "--fast",
             "--jobs", "2"]
        )
        assert args.command == "partition"
        assert args.family == "sweep"
        assert args.live
        assert args.jobs == 2

    def test_partition_rejects_unknown_family(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["partition", "--family", "shards"])

    def test_scenarios_tag_filter_lists_partition_family(self, capsys):
        assert main(["scenarios", "--tag", "partition"]) == 0
        out = capsys.readouterr().out
        assert "partial-replication-sweep" in out
        assert "placement-ablation" in out
        assert "figure6" not in out

    def test_scenarios_tag_live_lists_cluster_cells(self, capsys):
        assert main(["scenarios", "--tag", "live"]) == 0
        out = capsys.readouterr().out
        assert "partial-replication-sweep-live" in out
        assert "autoscale-diurnal-live" in out

    def test_scenarios_unknown_tag_exits_2_with_suggestion(self, capsys):
        assert main(["scenarios", "--tag", "partitoin"]) == 2
        err = capsys.readouterr().err
        assert "did you mean" in err
        assert "partition" in err

    def test_scenarios_tag_restricts_explicit_names(self, capsys):
        assert main(["scenarios", "figure6", "placement-ablation",
                     "--tag", "partition"]) == 0
        out = capsys.readouterr().out
        assert "placement-ablation" in out
        assert "figure6" not in out


class TestPerfCli:
    """The performance-observability surface: the `perf` verb, the
    `--capacity-source` engine option, and the gray-failure ops family."""

    def test_perf_parses_options(self):
        args = build_parser().parse_args(
            ["perf", "--live", "--timeline", "--fast"]
        )
        assert args.command == "perf"
        assert args.live and args.timeline and args.fast

    def test_capacity_source_accepts_both_sources(self):
        for source in ("declared", "estimated"):
            args = build_parser().parse_args(
                ["run", "brownout-detection", "--capacity-source", source]
            )
            assert args.capacity_source == source

    def test_capacity_source_defaults_to_none(self):
        args = build_parser().parse_args(["run", "brownout-detection"])
        assert args.capacity_source is None

    def test_unknown_capacity_source_exits_2_with_hint(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(
                ["perf", "--capacity-source", "estimatd"]
            )
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "did you mean" in err
        assert "estimated" in err
        assert "Traceback" not in err

    def test_ops_parses_gray_failure_operations(self):
        for operation in ("brownout", "capest"):
            args = build_parser().parse_args(
                ["ops", "--operation", operation, "--fast"]
            )
            assert args.operation == operation


class TestTraceNotice:
    def test_trace_reports_missing_telemetry_and_exits_0(self, capsys,
                                                         monkeypatch):
        """Like `repro metrics`, a trace run whose telemetry came back
        empty prints the notice and exits 0 instead of crashing."""
        import repro.cli as cli

        class _Empty:
            telemetry = None

        monkeypatch.setattr(cli, "simulate", lambda *args, **kwargs: _Empty())
        code = cli.main(["trace", "--pillar", "simulator",
                         "--warmup", "1", "--duration", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "no telemetry recorded (telemetry disabled?)" in out
