"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_workloads_subcommand_parses(self):
        args = build_parser().parse_args(["workloads"])
        assert args.command == "workloads"

    def test_predict_defaults(self):
        args = build_parser().parse_args(["predict", "tpcw/shopping"])
        assert args.design == "multi-master"
        assert args.replicas == [1, 2, 4, 8, 16]

    def test_figure_choices_cover_6_to_14(self):
        for i in range(6, 15):
            args = build_parser().parse_args(["figure", f"figure{i}", "--fast"])
            assert args.name == f"figure{i}"

    def test_invalid_figure_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "figure99"])

    def test_table_choices(self):
        for name in ("table2", "table3", "table4", "table5"):
            args = build_parser().parse_args(["table", name])
            assert args.name == name

    def test_plan_requires_target(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["plan", "tpcw/shopping"])

    def test_plan_parses_options(self):
        args = build_parser().parse_args(
            ["plan", "tpcw/shopping", "--target", "100", "--headroom", "0.2"]
        )
        assert args.target == 100.0
        assert args.headroom == 0.2

    def test_reproduce_parses_out(self):
        args = build_parser().parse_args(["reproduce", "--fast", "--out", "x.txt"])
        assert args.out == "x.txt"


class TestCommands:
    def test_workloads_lists_all(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "tpcw/shopping" in out
        assert "rubis/bidding" in out

    def test_table2_renders(self, capsys):
        assert main(["table", "table2"]) == 0
        out = capsys.readouterr().out
        assert "TPC-W parameters" in out

    def test_table4_renders(self, capsys):
        assert main(["table", "table4"]) == 0
        assert "RUBiS" in capsys.readouterr().out

    def test_simulate_standalone_smoke(self, capsys):
        code = main([
            "simulate", "tpcw/shopping", "--design", "standalone",
            "--replicas", "1", "--warmup", "2", "--duration", "6",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "tps" in out

    def test_plan_smoke(self, capsys):
        code = main(["plan", "tpcw/shopping", "--target", "50", "--fast"])
        assert code == 0
        out = capsys.readouterr().out
        assert "replicas" in out

    def test_plan_unreachable_target_fails(self, capsys):
        code = main([
            "plan", "rubis/bidding", "--target", "100000", "--fast",
        ])
        assert code == 1
        assert "no deployment" in capsys.readouterr().out
