"""Tests for the report assembly (cheap structural checks only —
``full_report`` itself is exercised end to end by the benchmark suite and
``scripts/run_all_experiments.py``)."""

from repro.experiments import FIGURE_RUNNERS
from repro.experiments.report import _ablation_section


class TestReportStructure:
    def test_figure_runners_cover_6_to_13(self):
        names = [runner.__name__ for runner in FIGURE_RUNNERS]
        assert names == [f"figure{i}" for i in range(6, 14)]

    def test_ablation_section_renders(self, tiny_settings):
        text = _ablation_section(tiny_settings)
        assert "mva ablation" in text
        assert "conflict-window ablation" in text
        assert "lb-policy ablation" in text
        # Every MVA row printed.
        assert text.count("schweitzer=") >= 5


class TestWorkloadSpecHelpers:
    def test_with_demands_swaps_ground_truth(self, shopping_spec):
        from repro.workloads.spec import demands_ms

        new = demands_ms(read_cpu=1.0, read_disk=1.0, write_cpu=1.0,
                         write_disk=1.0, writeset_cpu=1.0, writeset_disk=1.0)
        spec = shopping_spec.with_demands(new)
        assert spec.demands is new
        assert shopping_spec.demands is not new

    def test_with_mix_name_renames(self, shopping_spec):
        spec = shopping_spec.with_mix_name("stress")
        assert spec.name == "tpcw/stress"
        assert shopping_spec.name == "tpcw/shopping"

    def test_ground_truth_profile_read_only(self, rubis_browsing_spec):
        profile = rubis_browsing_spec.ground_truth_profile()
        assert profile.update_response_time == 0.0
        assert profile.abort_rate == 0.0
