"""Partial replication on the live cluster: scoped installs, convergence."""

import pytest

from repro.cluster import run_cluster
from repro.core.errors import ConfigurationError
from repro.core.params import ConflictProfile, WorkloadMix
from repro.partition import PartitionMap
from repro.simulator.runner import MULTI_MASTER, SINGLE_MASTER
from repro.simulator.systems import PARTITION_AWARE
from repro.workloads.spec import WorkloadSpec, demands_ms


@pytest.fixture(scope="module")
def live_spec():
    """A fast millisecond-scale partitioned mix for live tests."""
    return WorkloadSpec(
        benchmark="micro",
        mix_name="partition-test",
        mix=WorkloadMix(read_fraction=0.6, write_fraction=0.4),
        demands=demands_ms(
            read_cpu=4.0, read_disk=2.0,
            write_cpu=4.0, write_disk=2.0,
            writeset_cpu=2.0, writeset_disk=1.0,
        ),
        clients_per_replica=4,
        think_time=0.05,
        conflict=ConflictProfile(db_update_size=900,
                                 updates_per_transaction=2),
        partitions=3,
        cross_partition_fraction=0.1,
        description="partitioned live-cluster test mix",
    )


@pytest.fixture(scope="module")
def live_map():
    return PartitionMap.ring(3, 3, 2)


def run_live(spec, pm, design=MULTI_MASTER, seed=5):
    return run_cluster(
        spec,
        spec.replication_config(3),
        design=design,
        seed=seed,
        warmup=1.0,
        duration=6.0,
        time_scale=0.05,
        lb_policy=PARTITION_AWARE,
        partition_map=pm,
    )


class TestLivePartialReplication:
    def test_multimaster_converges_with_identical_versions(
        self, live_spec, live_map
    ):
        result = run_live(live_spec, live_map)
        assert result.committed_transactions > 0
        # Zero lost or duplicated committed writesets: every replica's
        # final version equals the certifier's commit count.
        assert result.converged
        assert len(set(result.final_versions)) == 1
        expected = (result.total_certifications
                    - result.total_certification_aborts)
        assert result.final_versions[0] == expected

    def test_single_master_converges(self, live_spec, live_map):
        result = run_live(live_spec, live_map, design=SINGLE_MASTER)
        assert result.committed_transactions > 0
        assert result.state_converged

    def test_run_cluster_validates_map(self, live_spec):
        with pytest.raises(ConfigurationError):
            run_live(live_spec, PartitionMap.ring(3, 4, 2))


class TestScopedInstalls:
    def test_non_hosts_skip_payloads_but_track_versions(
        self, live_spec, live_map
    ):
        """Drive a cluster directly and inspect per-replica stores."""
        from repro.cluster.clock import VirtualClock
        from repro.cluster.cluster import MultiMasterCluster
        from repro.core import rng as rng_util
        from repro.simulator.sampling import WorkloadSampler
        from repro.simulator.stats import MetricsCollector

        cluster = MultiMasterCluster(
            live_spec, live_spec.replication_config(3), 9,
            VirtualClock(0.02), MetricsCollector(),
            lb_policy=PARTITION_AWARE, partition_map=live_map,
        )
        cluster.start()
        try:
            sampler = WorkloadSampler(
                live_spec, rng_util.make_rng(17), partition_map=live_map
            )
            for i in range(40):
                cluster.execute(sampler, True, i)
            assert cluster.quiesce(timeout=20.0)

            latest = cluster.certifier.latest_version
            assert latest > 0
            total_payloads = 0
            for index, replica in enumerate(cluster.replicas):
                # Version clock is global even where data is absent.
                assert replica.db.latest_version == latest
                hosted = live_map.hosted_by(index)
                for key in replica.db.store.keys():
                    table, partition, row = key
                    # Scoped propagation: a replica only ever stores
                    # rows of partitions it hosts.
                    assert partition in hosted, (
                        f"{replica.name} stores partition {partition}, "
                        f"hosts only {sorted(hosted)}"
                    )
                total_payloads += replica.writesets_applied
            commits = cluster.certifier.commits
            # Factor-2 placement: each writeset is installed at ~2 of 3
            # replicas (origin included); full replication would be 3.
            assert total_payloads < 3 * commits
        finally:
            cluster.shutdown()

    def test_elastic_membership_rejected_under_partial_map(
        self, live_spec, live_map
    ):
        from repro.cluster.clock import VirtualClock
        from repro.cluster.cluster import MultiMasterCluster
        from repro.simulator.stats import MetricsCollector

        cluster = MultiMasterCluster(
            live_spec, live_spec.replication_config(3), 9,
            VirtualClock(0.02), MetricsCollector(),
            lb_policy=PARTITION_AWARE, partition_map=live_map,
        )
        cluster.start()
        try:
            with pytest.raises(ConfigurationError):
                cluster.add_replica()
            with pytest.raises(ConfigurationError):
                cluster.remove_replica()
        finally:
            cluster.shutdown()
