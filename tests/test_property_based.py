"""Property-based tests (hypothesis) on core invariants.

These cover the algebraic heart of the reproduction: the MVA solver, the
abort-rate algebra, the multi-version store, and the certifier's
first-committer-wins guarantee.
"""


import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.core.params import ResourceDemand, ServiceDemands, WorkloadMix
from repro.models.aborts import retry_inflation, scale_abort_rate
from repro.models.demands import multimaster_demand, standalone_demand
from repro.queueing.bounds import asymptotic_bounds
from repro.queueing.mva import solve_mva
from repro.queueing.network import ClosedNetwork, delay_center, queueing_center
from repro.sidb.certifier import Certifier
from repro.sidb.versionstore import VersionedStore
from repro.sidb.writeset import Writeset
from repro.simulator.stats import RunningStats

demands_st = st.floats(min_value=1e-4, max_value=0.5,
                       allow_nan=False, allow_infinity=False)
think_st = st.floats(min_value=0.0, max_value=5.0,
                     allow_nan=False, allow_infinity=False)


@st.composite
def networks(draw):
    n_queueing = draw(st.integers(min_value=1, max_value=4))
    n_delay = draw(st.integers(min_value=0, max_value=2))
    centers = [
        queueing_center(f"q{i}", draw(demands_st)) for i in range(n_queueing)
    ] + [
        delay_center(f"d{i}", draw(demands_st)) for i in range(n_delay)
    ]
    return ClosedNetwork(centers=tuple(centers), think_time=draw(think_st))


class TestMVAProperties:
    @given(network=networks(), population=st.integers(1, 60))
    @settings(max_examples=60, deadline=None)
    def test_solution_within_asymptotic_bounds(self, network, population):
        solution = solve_mva(network, population)
        bounds = asymptotic_bounds(network, population)
        assert solution.throughput <= bounds.throughput_upper * (1 + 1e-9)
        assert solution.response_time >= bounds.response_time_lower * (1 - 1e-9)

    @given(network=networks(), population=st.integers(1, 40))
    @settings(max_examples=40, deadline=None)
    def test_population_conservation(self, network, population):
        solution = solve_mva(network, population)
        total = sum(solution.queue_lengths.values()) + (
            solution.throughput * network.think_time
        )
        assert total == pytest.approx(population, rel=1e-9)

    @given(network=networks(), population=st.integers(1, 40))
    @settings(max_examples=40, deadline=None)
    def test_throughput_monotone_in_population(self, network, population):
        a = solve_mva(network, population).throughput
        b = solve_mva(network, population + 1).throughput
        # Relative tolerance: at saturation X approaches 1/demand, and
        # a few ulps of rounding can nudge X(n+1) below X(n).
        assert b >= a - 1e-9 * max(1.0, a)

    @given(network=networks(), population=st.integers(1, 40))
    @settings(max_examples=40, deadline=None)
    def test_utilization_at_most_one(self, network, population):
        solution = solve_mva(network, population)
        for value in solution.utilization.values():
            assert value <= 1.0 + 1e-12


class TestAbortAlgebraProperties:
    @given(
        a1=st.floats(min_value=0.0, max_value=0.5),
        ratio=st.floats(min_value=0.0, max_value=100.0),
    )
    @settings(max_examples=200, deadline=None)
    def test_scale_stays_in_unit_interval(self, a1, ratio):
        value = scale_abort_rate(a1, ratio)
        assert 0.0 <= value < 1.0

    @given(
        a1=st.floats(min_value=1e-6, max_value=0.3),
        r1=st.floats(min_value=0.1, max_value=50.0),
        r2=st.floats(min_value=0.1, max_value=50.0),
    )
    @settings(max_examples=200, deadline=None)
    def test_scaling_composes(self, a1, r1, r2):
        # scale(scale(a, r1), r2) == scale(a, r1*r2)
        left = scale_abort_rate(scale_abort_rate(a1, r1), r2)
        right = scale_abort_rate(a1, r1 * r2)
        assert left == pytest.approx(right, rel=1e-6, abs=1e-12)

    @given(
        a1=st.floats(min_value=1e-6, max_value=0.3),
        lo=st.floats(min_value=0.1, max_value=20.0),
        hi=st.floats(min_value=0.1, max_value=20.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_scale_monotone_in_ratio(self, a1, lo, hi):
        assume(lo <= hi)
        assert scale_abort_rate(a1, lo) <= scale_abort_rate(a1, hi) + 1e-15

    @given(a=st.floats(min_value=0.0, max_value=0.99))
    @settings(max_examples=100, deadline=None)
    def test_retry_inflation_at_least_one(self, a):
        assert retry_inflation(a) >= 1.0


class TestDemandProperties:
    mix_st = st.floats(min_value=0.0, max_value=1.0)

    @given(
        pw=mix_st,
        rc=demands_st, wc=demands_st, ws=demands_st,
        n=st.integers(1, 32),
        an=st.floats(min_value=0.0, max_value=0.9),
    )
    @settings(max_examples=150, deadline=None)
    def test_multimaster_demand_at_least_standalone(self, pw, rc, wc, ws, n, an):
        mix = WorkloadMix.from_write_fraction(pw)
        demands = ServiceDemands(
            read=ResourceDemand(cpu=rc, disk=rc),
            write=ResourceDemand(cpu=wc, disk=wc),
            writeset=ResourceDemand(cpu=ws, disk=ws),
        )
        mm = multimaster_demand(demands, mix, n, an)
        sa = standalone_demand(demands, mix, an)
        assert mm.cpu >= sa.cpu - 1e-15
        assert mm.disk >= sa.disk - 1e-15

    @given(
        pw=mix_st, rc=demands_st, wc=demands_st, ws=demands_st,
        an=st.floats(min_value=0.0, max_value=0.9),
    )
    @settings(max_examples=100, deadline=None)
    def test_multimaster_demand_linear_in_replicas(self, pw, rc, wc, ws, an):
        mix = WorkloadMix.from_write_fraction(pw)
        demands = ServiceDemands(
            read=ResourceDemand(cpu=rc), write=ResourceDemand(cpu=wc),
            writeset=ResourceDemand(cpu=ws),
        )
        d2 = multimaster_demand(demands, mix, 2, an).cpu
        d3 = multimaster_demand(demands, mix, 3, an).cpu
        d4 = multimaster_demand(demands, mix, 4, an).cpu
        assert (d3 - d2) == pytest.approx(d4 - d3, rel=1e-9, abs=1e-15)


class TestVersionStoreModel:
    """Model-based test: VersionedStore vs a naive dict-of-snapshots."""

    @given(
        writes=st.lists(
            st.tuples(st.integers(0, 5), st.integers(0, 100)),  # (key, value)
            min_size=1,
            max_size=30,
        ),
        data=st.data(),
    )
    @settings(max_examples=100, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_reads_match_reference_model(self, writes, data):
        store = VersionedStore()
        reference = {0: {}}  # version -> full state
        state = {}
        for version, (key, value) in enumerate(writes, start=1):
            store.install(version, {key: value})
            state = dict(state)
            state[key] = value
            reference[version] = state
        # Probe random (key, snapshot) pairs against the reference.
        for _ in range(10):
            key = data.draw(st.integers(0, 5))
            snapshot = data.draw(st.integers(0, len(writes)))
            expected = reference[snapshot].get(key, "MISSING")
            actual = store.get(key, snapshot, "MISSING")
            assert actual == expected

    @given(
        writes=st.lists(
            st.tuples(st.integers(0, 5), st.integers(0, 100)),
            min_size=2, max_size=20,
        ),
        cut=st.integers(0, 19),
    )
    @settings(max_examples=60, deadline=None)
    def test_vacuum_preserves_visible_reads(self, writes, cut):
        assume(cut <= len(writes))
        store = VersionedStore()
        for version, (key, value) in enumerate(writes, start=1):
            store.install(version, {key: value})
        before = {
            (k, v): store.get(k, v, "MISSING")
            for k in range(6)
            for v in range(cut, len(writes) + 1)
        }
        store.vacuum(oldest_active_snapshot=cut)
        for (k, v), expected in before.items():
            assert store.get(k, v, "MISSING") == expected


class TestCertifierProperties:
    @given(
        keysets=st.lists(
            st.frozensets(st.integers(0, 8), min_size=1, max_size=3),
            min_size=2, max_size=12,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_concurrent_overlapping_writesets_never_both_commit(self, keysets):
        """All writesets share snapshot 0: any overlapping pair has at most
        one committer (first-committer-wins)."""
        certifier = Certifier()
        outcomes = []
        for txn_id, keys in enumerate(keysets, start=1):
            writeset = Writeset.from_dict(txn_id, 0, {k: txn_id for k in keys})
            outcomes.append((keys, certifier.certify(writeset).committed))
        committed = [keys for keys, ok in outcomes if ok]
        for i in range(len(committed)):
            for j in range(i + 1, len(committed)):
                assert committed[i].isdisjoint(committed[j])

    @given(
        keysets=st.lists(
            st.frozensets(st.integers(0, 8), min_size=1, max_size=3),
            min_size=1, max_size=12,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_serial_writesets_always_commit(self, keysets):
        """A writeset whose snapshot is the latest version never conflicts."""
        certifier = Certifier()
        for txn_id, keys in enumerate(keysets, start=1):
            writeset = Writeset.from_dict(
                txn_id, certifier.latest_version, {k: txn_id for k in keys}
            )
            assert certifier.certify(writeset).committed


class TestPartitionedCertifierProperties:
    """Per-partition certification (partial replication)."""

    # (partition, keys) pairs: keys are partition-qualified the way the
    # workload sampler builds them, so key overlap implies partition
    # overlap — the certifier must additionally *skip* the key check for
    # disjoint partition sets.
    partitioned_writesets = st.lists(
        st.tuples(
            st.integers(0, 3),  # partition
            st.frozensets(st.integers(0, 5), min_size=1, max_size=3),
        ),
        min_size=2,
        max_size=12,
    )

    @given(entries=partitioned_writesets)
    @settings(max_examples=100, deadline=None)
    def test_disjoint_partition_sets_never_conflict(self, entries):
        """Writesets touching disjoint partition sets never abort each
        other, even when all are concurrent (shared snapshot 0)."""
        certifier = Certifier()
        outcomes = []
        for txn_id, (partition, rows) in enumerate(entries, start=1):
            writeset = Writeset.from_dict(
                txn_id, 0,
                {("updatable", partition, row): txn_id for row in rows},
                partitions=(partition,),
            )
            outcome = certifier.certify(writeset)
            outcomes.append((partition, rows, outcome))
        for index, (partition, rows, outcome) in enumerate(outcomes):
            if outcome.committed:
                continue
            # Every abort must be justified by a *same-partition*
            # committed overlap that preceded it in certification order.
            culprit = [
                (p, r) for p, r, o in outcomes[:index]
                if o.committed and p == partition and r & rows
            ]
            assert culprit, (
                f"partition {partition} aborted without a same-partition "
                f"conflict"
            )

    @given(
        keysets=st.lists(
            st.frozensets(st.integers(0, 8), min_size=1, max_size=3),
            min_size=2, max_size=12,
        ),
        partition=st.integers(0, 3),
    )
    @settings(max_examples=100, deadline=None)
    def test_single_partition_agrees_with_global_certifier(
        self, keysets, partition
    ):
        """When every writeset shares one partition, the partition-aware
        certifier and a plain keys-only certifier decide identically."""
        scoped = Certifier()
        unscoped = Certifier()
        for txn_id, keys in enumerate(keysets, start=1):
            writes = {("updatable", partition, k): txn_id for k in keys}
            a = scoped.certify(Writeset.from_dict(
                txn_id, 0, writes, partitions=(partition,)
            ))
            b = unscoped.certify(Writeset.from_dict(txn_id, 0, writes))
            assert a.committed == b.committed
            assert a.commit_version == b.commit_version
        assert scoped.aborts == unscoped.aborts

    @given(entries=partitioned_writesets)
    @settings(max_examples=60, deadline=None)
    def test_unpartitioned_writeset_is_a_wildcard(self, entries):
        """An unpartitioned writeset conflicts across every partition."""
        certifier = Certifier()
        keys = set()
        for txn_id, (partition, rows) in enumerate(entries, start=1):
            writes = {("updatable", partition, row): txn_id for row in rows}
            if certifier.certify(Writeset.from_dict(
                txn_id, 0, writes, partitions=(partition,)
            )).committed:
                keys.update(writes)
        if not keys:
            return
        wildcard = Writeset.from_dict(
            9999, 0, {key: 9999 for key in keys}
        )
        assert not certifier.certify(wildcard).committed


class TestRunningStatsProperties:
    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=2,
                    max_size=200))
    @settings(max_examples=100, deadline=None)
    def test_welford_matches_two_pass(self, values):
        stats = RunningStats()
        for v in values:
            stats.add(v)
        mean = sum(values) / len(values)
        var = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
        assert stats.mean == pytest.approx(mean, rel=1e-9, abs=1e-6)
        assert stats.variance == pytest.approx(var, rel=1e-6, abs=1e-6)
