"""Integration tests for the registered partial-replication scenarios."""

import pytest

from repro.engine import get_scenario, run_scenario, scenario_names_with_tag
from repro.partition.scenarios import (
    WRITE_FRACTIONS,
    PartialReplicationReport,
    sweep_map,
)


class TestRegistration:
    def test_partition_scenarios_registered(self):
        names = scenario_names_with_tag("partition")
        assert names == [
            "certifier-sharding",
            "certifier-sharding-live",
            "partial-replication-sweep",
            "partial-replication-sweep-live",
            "placement-ablation",
            "placement-ablation-live",
        ]

    def test_live_cells_carry_the_live_tag(self):
        assert "partial-replication-sweep-live" in scenario_names_with_tag(
            "live"
        )

    def test_aliases_resolve(self):
        assert get_scenario("partition-sweep").name == (
            "partial-replication-sweep"
        )
        assert get_scenario("placement").name == "placement-ablation"
        assert get_scenario("sharded-certifier").name == "certifier-sharding"
        assert get_scenario("sharded-certifier-live").name == (
            "certifier-sharding-live"
        )


class TestPartialReplicationSweep:
    @pytest.fixture(scope="class")
    def report(self, tiny_settings) -> PartialReplicationReport:
        scenario = get_scenario("partial-replication-sweep")
        return run_scenario(scenario, tiny_settings, jobs=1, cache=None)

    def test_rows_cover_the_write_fraction_sweep(self, report):
        assert tuple(row.write_fraction for row in report.rows) == (
            WRITE_FRACTIONS
        )

    def test_partial_at_least_matches_full_at_high_update_fraction(
        self, report
    ):
        row = report.row_for(max(WRITE_FRACTIONS))
        assert row is not None
        assert row.sim_partial.throughput >= row.sim_full.throughput
        assert row.speedup >= 1.0

    def test_model_tracks_simulator_within_crossval_envelope(self, report):
        for row in report.rows:
            assert row.model_vs_sim_deviation < 0.25, (
                f"Pw={row.write_fraction}: model deviates "
                f"{row.model_vs_sim_deviation:.1%}"
            )

    def test_report_renders(self, report):
        text = report.to_text()
        assert "partial replication sweep" in text
        assert "speedup" in text

    def test_sweep_map_is_partial(self):
        assert not sweep_map().is_full


class TestCertifierSharding:
    @pytest.fixture(scope="class")
    def report(self, tiny_settings):
        from repro.partition.scenarios import CertifierShardingReport

        scenario = get_scenario("certifier-sharding")
        report = run_scenario(scenario, tiny_settings, jobs=1, cache=None)
        assert isinstance(report, CertifierShardingReport)
        return report

    def test_cells_cover_both_arms_on_both_pillars(self, report):
        labels = tuple(name for name, _ in report.cells)
        assert labels == ("sim-global", "sim-sharded",
                          "model-global", "model-sharded")

    def test_sharded_dominates_global_in_the_simulator(self, report):
        assert report.speedup("sim") > 1.0

    def test_sharded_dominates_global_in_the_model(self, report):
        assert report.speedup("model") > 1.0

    def test_model_tracks_simulator_within_crossval_envelope(self, report):
        for arm in ("global", "sharded"):
            sim = report.cell(f"sim-{arm}").throughput
            model = report.cell(f"model-{arm}").throughput
            assert abs(model - sim) / sim < 0.25, (
                f"{arm}: model {model:.1f} vs sim {sim:.1f}"
            )

    def test_report_renders(self, report):
        text = report.to_text()
        assert "certifier sharding" in text
        assert "sim speedup (sharded/global)" in text


class TestCertifierShardingLive:
    @pytest.fixture(scope="class")
    def report(self, tiny_settings):
        scenario = get_scenario("certifier-sharding-live")
        return run_scenario(scenario, tiny_settings, jobs=1, cache=None)

    def test_live_cells_converge(self, report):
        assert report.converged

    def test_sharded_dominates_global_live(self, report):
        assert report.speedup("live") > 1.0
