"""Unit tests for simulator statistics and workload sampling."""

import numpy as np
import pytest

from repro.core import rng as rng_util
from repro.core.errors import ConfigurationError, SimulationError
from repro.simulator.sampling import (
    DETERMINISTIC,
    LOGNORMAL,
    WorkloadSampler,
    next_txn_id,
)
from repro.simulator.stats import MetricsCollector, RunningStats


class TestRunningStats:
    def test_matches_numpy_on_random_data(self):
        data = np.random.default_rng(0).normal(5.0, 2.0, size=500)
        stats = RunningStats()
        for x in data:
            stats.add(float(x))
        assert stats.mean == pytest.approx(np.mean(data))
        assert stats.variance == pytest.approx(np.var(data, ddof=1))
        assert stats.stddev == pytest.approx(np.std(data, ddof=1))

    def test_empty_stats_are_zero(self):
        stats = RunningStats()
        assert stats.mean == 0.0
        assert stats.variance == 0.0
        assert stats.stderr == 0.0

    def test_single_observation(self):
        stats = RunningStats()
        stats.add(3.0)
        assert stats.mean == 3.0
        assert stats.variance == 0.0

    def test_stderr_shrinks_with_count(self):
        a, b = RunningStats(), RunningStats()
        rng = np.random.default_rng(1)
        for x in rng.normal(size=100):
            a.add(float(x))
        for x in rng.normal(size=10_000):
            b.add(float(x))
        assert b.stderr < a.stderr


class TestMetricsCollector:
    def test_records_only_inside_window(self):
        metrics = MetricsCollector()
        metrics.record_commit(False, 0.1, 0)  # before window: dropped
        metrics.begin_window(10.0)
        metrics.record_commit(False, 0.2, 0)
        metrics.record_commit(True, 0.3, 2)
        metrics.end_window(20.0)
        metrics.record_commit(True, 0.4, 0)  # after window: dropped
        assert metrics.committed == 2
        assert metrics.read_commits == 1
        assert metrics.update_commits == 1
        assert metrics.update_abort_attempts == 2

    def test_throughput_over_window(self):
        metrics = MetricsCollector()
        metrics.begin_window(0.0)
        for _ in range(50):
            metrics.record_commit(False, 0.1, 0)
        metrics.end_window(10.0)
        assert metrics.throughput() == pytest.approx(5.0)
        assert metrics.read_throughput() == pytest.approx(5.0)
        assert metrics.update_throughput() == 0.0

    def test_abort_rate(self):
        metrics = MetricsCollector()
        metrics.begin_window(0.0)
        metrics.record_commit(True, 0.1, 1)
        metrics.record_commit(True, 0.1, 0)
        metrics.end_window(1.0)
        # 2 commits + 1 aborted attempt -> 1/3 of attempts aborted.
        assert metrics.abort_rate() == pytest.approx(1 / 3)

    def test_end_without_begin_rejected(self):
        metrics = MetricsCollector()
        with pytest.raises(SimulationError):
            metrics.end_window(1.0)

    def test_duplicate_resource_registration_rejected(self):
        metrics = MetricsCollector()

        class FakeResource:
            def busy_time_now(self):
                return 0.0

        metrics.watch_resource("cpu", FakeResource())
        with pytest.raises(SimulationError):
            metrics.watch_resource("cpu", FakeResource())

    def test_utilization_from_busy_delta(self):
        metrics = MetricsCollector()

        class FakeResource:
            def __init__(self):
                self.busy = 0.0

            def busy_time_now(self):
                return self.busy

        resource = FakeResource()
        metrics.watch_resource("cpu", resource)
        metrics.begin_window(0.0)
        resource.busy = 4.0
        metrics.end_window(10.0)
        assert metrics.utilizations()["cpu"] == pytest.approx(0.4)


class TestWorkloadSampler:
    def test_update_fraction_matches_mix(self, shopping_spec):
        sampler = WorkloadSampler(shopping_spec, rng_util.make_rng(0))
        updates = sum(sampler.next_is_update() for _ in range(20_000))
        assert updates / 20_000 == pytest.approx(0.2, abs=0.01)

    def test_read_only_spec_never_updates(self, rubis_browsing_spec):
        sampler = WorkloadSampler(rubis_browsing_spec, rng_util.make_rng(0))
        assert not any(sampler.next_is_update() for _ in range(1000))

    def test_exponential_draws_have_correct_mean(self, shopping_spec):
        sampler = WorkloadSampler(shopping_spec, rng_util.make_rng(1))
        samples = [sampler.read_cpu() for _ in range(20_000)]
        assert np.mean(samples) == pytest.approx(
            shopping_spec.demands.read.cpu, rel=0.03
        )

    def test_deterministic_draws_are_exact(self, shopping_spec):
        sampler = WorkloadSampler(
            shopping_spec, rng_util.make_rng(1), distribution=DETERMINISTIC
        )
        assert sampler.read_cpu() == shopping_spec.demands.read.cpu
        assert sampler.update_disk() == shopping_spec.demands.write.disk

    def test_lognormal_draws_have_correct_mean(self, shopping_spec):
        sampler = WorkloadSampler(
            shopping_spec, rng_util.make_rng(2), distribution=LOGNORMAL
        )
        samples = [sampler.read_cpu() for _ in range(40_000)]
        assert np.mean(samples) == pytest.approx(
            shopping_spec.demands.read.cpu, rel=0.05
        )

    def test_zero_demand_draws_zero(self, rubis_browsing_spec):
        sampler = WorkloadSampler(rubis_browsing_spec, rng_util.make_rng(0))
        assert sampler.update_cpu() == 0.0
        assert sampler.writeset_disk() == 0.0

    def test_unknown_distribution_rejected(self, shopping_spec):
        with pytest.raises(ConfigurationError):
            WorkloadSampler(
                shopping_spec, rng_util.make_rng(0), distribution="uniform"
            )

    def test_writeset_respects_conflict_profile(self, shopping_spec):
        sampler = WorkloadSampler(shopping_spec, rng_util.make_rng(3))
        writeset = sampler.sample_writeset(snapshot_version=0)
        conflict = shopping_spec.conflict
        assert len(writeset.keys) == conflict.updates_per_transaction
        for table, row in writeset.keys:
            assert table == "updatable"
            assert 0 <= row < conflict.db_update_size

    def test_writeset_on_read_only_spec_rejected(self, rubis_browsing_spec):
        sampler = WorkloadSampler(rubis_browsing_spec, rng_util.make_rng(0))
        with pytest.raises(ConfigurationError):
            sampler.sample_writeset(0)

    def test_txn_ids_monotone(self):
        a, b = next_txn_id(), next_txn_id()
        assert b == a + 1

    def test_think_time_mean(self, shopping_spec):
        sampler = WorkloadSampler(shopping_spec, rng_util.make_rng(4))
        samples = [sampler.think_time() for _ in range(20_000)]
        assert np.mean(samples) == pytest.approx(1.0, rel=0.03)
