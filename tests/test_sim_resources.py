"""Unit tests for the processor-sharing CPU and FIFO disk models."""

import pytest

from repro.simulator.des import Environment
from repro.simulator.resources import FIFOResource, ProcessorSharingResource


def run_jobs(resource_cls, jobs, horizon=100.0):
    """Submit (start_time, work) jobs; return list of completion times."""
    env = Environment()
    resource = resource_cls(env, "r")
    completions = {}

    def submit(job_id, work):
        resource.submit(work, lambda: completions.__setitem__(job_id, env.now))

    for job_id, (start, work) in enumerate(jobs):
        env.schedule(start, submit, job_id, work)
    env.run_until(horizon)
    return env, resource, completions


class TestFIFO:
    def test_single_job_takes_its_work(self):
        _, _, completions = run_jobs(FIFOResource, [(0.0, 2.0)])
        assert completions[0] == pytest.approx(2.0)

    def test_jobs_served_in_arrival_order(self):
        _, _, completions = run_jobs(
            FIFOResource, [(0.0, 2.0), (0.5, 1.0), (0.6, 0.5)]
        )
        assert completions[0] == pytest.approx(2.0)
        assert completions[1] == pytest.approx(3.0)
        assert completions[2] == pytest.approx(3.5)

    def test_idle_gap_then_service(self):
        _, _, completions = run_jobs(FIFOResource, [(0.0, 1.0), (5.0, 1.0)])
        assert completions[1] == pytest.approx(6.0)

    def test_busy_time_equals_total_work(self):
        _, resource, _ = run_jobs(
            FIFOResource, [(0.0, 1.0), (0.2, 2.0), (10.0, 0.5)]
        )
        assert resource.stats.busy_time == pytest.approx(3.5)
        assert resource.stats.completions == 3

    def test_zero_work_completes_immediately(self):
        _, resource, completions = run_jobs(FIFOResource, [(1.0, 0.0)])
        assert completions[0] == pytest.approx(1.0)

    def test_queue_length(self):
        env = Environment()
        resource = FIFOResource(env, "r")
        resource.submit(5.0, lambda: None)
        resource.submit(5.0, lambda: None)
        env.run_until(1.0)
        assert resource.queue_length == 2


class TestProcessorSharing:
    def test_single_job_takes_its_work(self):
        _, _, completions = run_jobs(ProcessorSharingResource, [(0.0, 2.0)])
        assert completions[0] == pytest.approx(2.0)

    def test_two_equal_jobs_finish_together_at_double_time(self):
        _, _, completions = run_jobs(
            ProcessorSharingResource, [(0.0, 1.0), (0.0, 1.0)]
        )
        assert completions[0] == pytest.approx(2.0)
        assert completions[1] == pytest.approx(2.0)

    def test_short_job_overtakes_long_job(self):
        # Long job (10s) arrives first; a 0.1s job arrives at t=1 and should
        # finish long before the big one (PS, unlike FIFO).
        _, _, completions = run_jobs(
            ProcessorSharingResource, [(0.0, 10.0), (1.0, 0.1)], horizon=30.0
        )
        # Short job: 0.1 of work at half speed -> done at t = 1.2.
        # Long job: 1.0 alone + 0.1 shared + 8.9 alone -> done at t = 10.1.
        assert completions[1] == pytest.approx(1.2)
        assert completions[0] == pytest.approx(10.1)

    def test_hand_computed_three_job_schedule(self):
        # t=0: A(3.0); t=1: B(1.0).  A alone 1s (2 left), shared until B done
        # at t=1+2 -> B gets 1.0 by t=3; A has 1 left, finishes t=4.
        _, _, completions = run_jobs(
            ProcessorSharingResource, [(0.0, 3.0), (1.0, 1.0)]
        )
        assert completions[1] == pytest.approx(3.0)
        assert completions[0] == pytest.approx(4.0)

    def test_busy_time_counts_wall_clock_while_active(self):
        env, resource, completions = run_jobs(
            ProcessorSharingResource, [(0.0, 1.0), (0.0, 1.0)]
        )
        # Two 1s jobs share: busy 2 seconds of wall clock.
        assert resource.busy_time_now() == pytest.approx(2.0)

    def test_work_conservation(self):
        # Total busy time equals total submitted work when jobs never idle.
        jobs = [(0.0, 0.5), (0.0, 1.5), (0.1, 1.0)]
        _, resource, completions = run_jobs(ProcessorSharingResource, jobs)
        assert len(completions) == 3
        assert resource.busy_time_now() == pytest.approx(3.0, abs=1e-6)

    def test_completions_counted(self):
        _, resource, _ = run_jobs(
            ProcessorSharingResource, [(0.0, 1.0), (0.5, 1.0)]
        )
        assert resource.stats.completions == 2

    def test_zero_work_completes_immediately(self):
        _, _, completions = run_jobs(ProcessorSharingResource, [(2.0, 0.0)])
        assert completions[0] == pytest.approx(2.0)

    def test_many_jobs_slow_each_other(self):
        # 10 unit jobs arriving together all complete at t=10.
        jobs = [(0.0, 1.0)] * 10
        _, _, completions = run_jobs(ProcessorSharingResource, jobs, horizon=20.0)
        for job_id in range(10):
            assert completions[job_id] == pytest.approx(10.0)
