"""The sharded certifier: equivalence, atomicity, spec, and plumbing.

Covers the PR-9 certifier redesign end to end below the scenario layer:

* hypothesis equivalence — :class:`ShardedCertifier` decides exactly
  like the global :class:`Certifier` on single-partition and
  disjoint-partition workloads (the safety claim in
  ``repro/sidb/sharded.py``'s docstring);
* hypothesis atomicity — an injected coordinator fault between the
  conflict checks and the appends leaves every shard untouched;
* :class:`CertifierSpec` resolution, did-you-mean errors, and the
  None-drop-out cache-key guarantee on every scenario point kind;
* the live cluster's prune-floor pinning (regression: in-flight
  certification floors must hold back history pruning).
"""

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import ConfigurationError
from repro.sidb.certifier import Certifier, GlobalCertifier
from repro.sidb.certifier_api import (
    CERTIFIER_KINDS,
    CertificationOutcome,
    CertifierProtocol,
    CertifierSpec,
    UnknownCertifierError,
    resolve_certifier_spec,
    shard_version_key,
)
from repro.sidb.sharded import ShardedCertifier
from repro.sidb.writeset import Writeset


def _partitioned(txn_id, floor_vector, partition_rows):
    """A writeset over ``{partition: rows}`` with per-shard floors."""
    writes = {
        ("updatable", partition, row): txn_id
        for partition, rows in partition_rows.items()
        for row in rows
    }
    ws = Writeset.from_dict(
        txn_id, sum(floor_vector.values()), writes,
        partitions=tuple(partition_rows),
    )
    return ws.with_snapshot_vector(floor_vector)


class TestProtocolSurface:
    def test_both_implementations_satisfy_the_protocol(self):
        assert isinstance(GlobalCertifier(), CertifierProtocol)
        assert isinstance(ShardedCertifier(), CertifierProtocol)

    def test_certifier_is_the_global_certifier(self):
        assert Certifier is GlobalCertifier

    def test_home_shard_is_lowest_touched_partition(self):
        certifier = ShardedCertifier(partitions=4)
        outcome = certifier.certify(_partitioned(1, {}, {3: {0}, 1: {0}}))
        assert outcome.committed
        assert outcome.home_shard == 1
        assert outcome.shard_versions == ((1, 1), (3, 1))

    def test_global_outcomes_have_no_shard_versions(self):
        outcome = GlobalCertifier().certify(
            Writeset.from_dict(1, 0, {"k": 1})
        )
        assert outcome.committed
        assert outcome.shard_versions == ()
        assert outcome.home_shard is None

    def test_unpartitioned_writeset_is_rejected(self):
        certifier = ShardedCertifier(partitions=2)
        with pytest.raises(ConfigurationError, match="--certifier global"):
            certifier.certify(Writeset.from_dict(1, 0, {"k": 1}))

    def test_shard_version_key_disambiguates_across_shards(self):
        assert shard_version_key(0, 7) != shard_version_key(1, 7)


class TestShardedEquivalence:
    """Sharded and global certifiers decide identically where they
    overlap — the property the ISSUE pins the API redesign on."""

    @given(
        entries=st.lists(
            st.tuples(
                st.frozensets(st.integers(0, 7), min_size=1, max_size=3),
                st.integers(0, 4),  # snapshot lag behind latest
            ),
            min_size=1, max_size=14,
        ),
        partition=st.integers(0, 3),
    )
    @settings(max_examples=100, deadline=None)
    def test_single_partition_decisions_match_global(
        self, entries, partition
    ):
        """On one partition, one shard IS the global certifier: same
        decisions and the same (scalar) version sequence."""
        global_cert = Certifier()
        sharded = ShardedCertifier(partitions=4)
        for txn_id, (rows, lag) in enumerate(entries, start=1):
            floor = max(0, global_cert.latest_version - lag)
            writes = {("updatable", partition, r): txn_id for r in rows}
            g = global_cert.certify(Writeset.from_dict(
                txn_id, floor, writes, partitions=(partition,)
            ))
            s = sharded.certify(_partitioned(
                txn_id, {partition: floor}, {partition: rows}
            ))
            assert g.committed == s.committed
            if g.committed:
                assert s.shard_versions == ((partition, g.commit_version),)
        assert global_cert.aborts == sharded.aborts
        assert global_cert.commits == sharded.commits
        assert sharded.shard_version(partition) == global_cert.latest_version

    @given(
        entries=st.lists(
            st.tuples(
                st.integers(0, 3),  # partition
                st.frozensets(st.integers(0, 5), min_size=1, max_size=3),
            ),
            min_size=2, max_size=14,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_concurrent_single_partition_mix_matches_global(self, entries):
        """Concurrent writesets spread over partitions: the partition-
        aware global certifier and the sharded one agree exactly
        (disjoint partitions never conflict in either)."""
        global_cert = Certifier()
        sharded = ShardedCertifier(partitions=4)
        for txn_id, (partition, rows) in enumerate(entries, start=1):
            writes = {("updatable", partition, r): txn_id for r in rows}
            g = global_cert.certify(Writeset.from_dict(
                txn_id, 0, writes, partitions=(partition,)
            ))
            s = sharded.certify(_partitioned(txn_id, {}, {partition: rows}))
            assert g.committed == s.committed, (
                f"txn {txn_id} on partition {partition}: "
                f"global={g.committed} sharded={s.committed}"
            )
            if not g.committed:
                assert s.conflicting_keys == g.conflicting_keys
        assert sharded.abort_fraction == global_cert.abort_fraction

    @given(
        entries=st.lists(
            st.dictionaries(
                st.integers(0, 3),
                st.frozensets(st.integers(0, 5), min_size=1, max_size=2),
                min_size=1, max_size=3,
            ),
            min_size=1, max_size=10,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_serial_cross_partition_writesets_always_commit(self, entries):
        """A writeset reading the latest version vector never aborts,
        and every touched shard's clock advances by exactly one."""
        certifier = ShardedCertifier(partitions=4)
        for txn_id, partition_rows in enumerate(entries, start=1):
            before = dict(certifier.version_vector())
            outcome = certifier.certify(
                _partitioned(txn_id, before, partition_rows)
            )
            assert outcome.committed
            after = dict(certifier.version_vector())
            for partition in range(4):
                delta = after[partition] - before[partition]
                assert delta == (1 if partition in partition_rows else 0)

    def test_cross_partition_overlap_aborts_exactly_once(self):
        """First-committer-wins across a cross-partition pair."""
        certifier = ShardedCertifier(partitions=3)
        a = certifier.certify(_partitioned(1, {}, {0: {1}, 2: {5}}))
        b = certifier.certify(_partitioned(2, {}, {2: {5}, 1: {0}}))
        assert a.committed and not b.committed
        assert b.conflicting_keys == frozenset({("updatable", 2, 5)})


class TestCrossPartitionAtomicity:
    """A coordinator fault between checks and appends must be invisible."""

    @given(
        partition_rows=st.dictionaries(
            st.integers(0, 3),
            st.frozensets(st.integers(0, 5), min_size=1, max_size=3),
            min_size=2, max_size=4,
        ),
        prefix=st.lists(
            st.tuples(
                st.integers(0, 3),
                st.frozensets(st.integers(0, 5), min_size=1, max_size=2),
            ),
            max_size=6,
        ),
    )
    @settings(max_examples=100, deadline=None)
    def test_injected_fault_leaves_every_shard_untouched(
        self, partition_rows, prefix
    ):
        certifier = ShardedCertifier(partitions=4)
        for txn_id, (partition, rows) in enumerate(prefix, start=1):
            certifier.certify(_partitioned(txn_id, {}, {partition: rows}))
        vector = dict(certifier.version_vector())
        history = certifier.history_size
        commits = certifier.commits

        class CoordinatorDown(RuntimeError):
            pass

        def fail(writeset):
            raise CoordinatorDown(f"txn {writeset.txn_id}")

        certifier.fault_injector = fail
        doomed = _partitioned(99, vector, partition_rows)
        with pytest.raises(CoordinatorDown):
            certifier.certify(doomed)
        # All-or-nothing: no shard clock moved, no history grew, no
        # commit was counted.
        assert dict(certifier.version_vector()) == vector
        assert certifier.history_size == history
        assert certifier.commits == commits
        # The retry (coordinator back up) commits on every touched shard.
        certifier.fault_injector = None
        outcome = certifier.certify(doomed)
        assert outcome.committed
        assert {p for p, _ in outcome.shard_versions} == set(partition_rows)
        for partition, version in outcome.shard_versions:
            assert version == vector[partition] + 1

    def test_fault_after_partial_append_rolls_back(self, monkeypatch):
        """Even a failure raised mid-append (not just at the injection
        seam) must unappend everything already appended."""
        from repro.sidb import sharded as sharded_module

        certifier = ShardedCertifier(partitions=3)
        shard = certifier._shard(2)
        original_append = sharded_module._Shard.append
        calls = []

        def exploding_append(self_shard, keys):
            if self_shard is shard:
                calls.append(keys)
                raise RuntimeError("append lost")
            return original_append(self_shard, keys)

        monkeypatch.setattr(sharded_module._Shard, "append",
                            exploding_append)
        with pytest.raises(RuntimeError, match="append lost"):
            certifier.certify(_partitioned(1, {}, {0: {1}, 2: {2}}))
        monkeypatch.undo()
        assert calls, "the faulty shard append was never reached"
        # Shard 0 appended first (canonical order) and must be rolled back.
        assert certifier.version_vector() == ((0, 0), (1, 0), (2, 0))
        assert certifier.history_size == 0
        retry = certifier.certify(_partitioned(1, {}, {0: {1}, 2: {2}}))
        assert retry.committed


class TestCertifierSpec:
    def test_default_spec_is_global_pure_delay(self):
        spec = CertifierSpec()
        assert spec.kind == "global"
        assert spec.service_time == 0.0
        assert spec.is_default and not spec.is_sharded

    def test_resolution_accepts_none_names_and_specs(self):
        assert resolve_certifier_spec(None) is None
        assert resolve_certifier_spec("global") == CertifierSpec("global")
        assert resolve_certifier_spec(" Sharded ") == CertifierSpec("sharded")
        spec = CertifierSpec("sharded", service_time=0.01)
        assert resolve_certifier_spec(spec) is spec

    def test_unknown_kind_gets_did_you_mean(self):
        with pytest.raises(UnknownCertifierError) as exc:
            resolve_certifier_spec("shraded")
        assert "did you mean sharded" in str(exc.value)
        assert "known certifiers: " + ", ".join(CERTIFIER_KINDS) in str(
            exc.value
        )

    def test_non_string_non_spec_rejected(self):
        with pytest.raises(ConfigurationError, match="CertifierSpec"):
            resolve_certifier_spec(42)

    def test_negative_service_time_rejected(self):
        with pytest.raises(ConfigurationError, match="service_time"):
            CertifierSpec("global", service_time=-0.001)

    def test_nondefault_global_spec_is_not_default(self):
        assert not CertifierSpec("global", service_time=0.004).is_default
        assert not CertifierSpec("sharded").is_default


class TestCacheKeyDropOut:
    """``--certifier global`` must be byte-identical to omitting it."""

    def test_settings_normalise_the_default_spec_to_none(self):
        from repro.experiments.settings import ExperimentSettings

        settings_ = ExperimentSettings()
        assert settings_.certifier is None
        assert settings_.with_certifier("global").certifier is None
        sharded = settings_.with_certifier("sharded").certifier
        assert sharded == CertifierSpec("sharded")

    def test_point_options_identical_with_and_without_the_default(
        self, shopping_spec
    ):
        from repro.engine.cache import point_key
        from repro.engine.scenario import (
            cluster_point, model_point, sim_point,
        )

        spec = shopping_spec.with_partitions(4)
        config = spec.replication_config(4)
        for maker, kwargs in (
            (sim_point, dict(seed=7, warmup=1.0, duration=4.0)),
            (cluster_point,
             dict(seed=7, warmup=1.0, duration=4.0, time_scale=0.1)),
            (model_point, dict(profile=None)),
        ):
            omitted = maker(spec, config, "multi-master", **kwargs)
            defaulted = maker(spec, config, "multi-master",
                              certifier=None, **kwargs)
            sharded = maker(spec, config, "multi-master",
                            certifier=CertifierSpec("sharded"), **kwargs)
            assert omitted.options == defaulted.options, maker.__name__
            assert point_key(omitted) == point_key(defaulted), maker.__name__
            assert point_key(sharded) != point_key(omitted), maker.__name__


class TestCliSurface:
    def test_certifier_flag_parses_on_run(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["run", "certifier-sharding", "--certifier", "sharded"]
        )
        assert args.certifier == "sharded"

    def test_unknown_certifier_exits_2_with_suggestion(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit) as exc:
            main(["run", "certifier-sharding", "--certifier", "shraded"])
        assert exc.value.code == 2
        assert "did you mean sharded" in capsys.readouterr().err

    def test_partition_verb_knows_the_certifier_family(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["partition", "--family", "certifier", "--fast"]
        )
        assert args.family == "certifier"


class TestLivePruneFloorPinning:
    """Regression: pruning must never pass an in-flight attempt's floors.

    Without the registry, the live cluster pruned to the fleet's applied
    watermarks while attempts held floors captured seconds earlier; the
    certifier's conservative pruned-history fallback then aborted ~30%
    of update transactions spuriously.
    """

    class _StubReplica:
        failed = False

        def __init__(self, floors):
            self._floors = dict(floors)

        def shard_floors(self):
            return dict(self._floors)

    def _cluster(self, replicas, certifier):
        from repro.cluster.sharded import ShardedMultiMasterCluster

        cluster = object.__new__(ShardedMultiMasterCluster)
        cluster._floor_lock = threading.Lock()
        cluster._active_floors = {}
        cluster._floor_token = 0
        cluster.replicas = replicas
        cluster.certifier = certifier
        return cluster

    def _committed_certifier(self, partitions=2, commits=6):
        certifier = ShardedCertifier(partitions=partitions)
        for txn_id in range(1, commits + 1):
            vector = dict(certifier.version_vector())
            outcome = certifier.certify(_partitioned(
                txn_id, vector,
                {p: {txn_id} for p in range(partitions)},
            ))
            assert outcome.committed
        return certifier

    def test_registered_floors_hold_back_the_prune(self):
        certifier = self._committed_certifier()
        cluster = self._cluster(
            [self._StubReplica({0: 6, 1: 6})], certifier
        )
        token = cluster._register_floors({0: 2, 1: 3})
        cluster._prune()
        # The in-flight attempt certifying against floor 2 still gets an
        # exact answer: versions 3.. are retained on shard 0.
        stale = _partitioned(99, {0: 2, 1: 3}, {0: {100}, 1: {100}})
        assert certifier.certify(stale).committed
        cluster._release_floors(token)
        cluster._prune()
        # With the pin gone the watermark floor applies: a floor-2 read
        # now predates retained history and hits the conservative path.
        pruned = _partitioned(100, {0: 2, 1: 3}, {0: {200}, 1: {200}})
        outcome = certifier.certify(pruned)
        assert not outcome.committed
        assert outcome.conflicting_keys  # forced retry, never unsafe

    def test_prune_takes_the_minimum_across_replicas_and_attempts(self):
        certifier = self._committed_certifier()
        shard0 = certifier._shard(0)
        cluster = self._cluster(
            [
                self._StubReplica({0: 6, 1: 6}),
                self._StubReplica({0: 4, 1: 5}),
            ],
            certifier,
        )
        cluster._register_floors({0: 3, 1: 6})
        cluster._prune()
        # Shard 0's floor is min(6, 4, 3) = 3: versions 4.. retained.
        assert shard0.oldest_retained <= 4

    def test_failed_replicas_do_not_hold_back_the_prune(self):
        certifier = self._committed_certifier()
        dead = self._StubReplica({0: 0, 1: 0})
        dead.failed = True
        cluster = self._cluster(
            [self._StubReplica({0: 6, 1: 6}), dead], certifier
        )
        cluster._prune()
        assert certifier._shard(0).oldest_retained == 7

    def test_release_is_idempotent(self):
        cluster = self._cluster([], ShardedCertifier(partitions=2))
        token = cluster._register_floors({0: 1, 1: 1})
        cluster._release_floors(token)
        cluster._release_floors(token)
        assert cluster._active_floors == {}


class TestObserveSnapshot:
    def test_scalar_floor_is_ambiguous_with_multiple_shards(self):
        certifier = ShardedCertifier(partitions=2)
        with pytest.raises(ConfigurationError, match="per-partition"):
            certifier.observe_snapshot(3)

    def test_vector_floor_prunes_each_shard_independently(self):
        certifier = ShardedCertifier(partitions=2)
        for txn_id in range(1, 5):
            certifier.certify(_partitioned(
                txn_id, dict(certifier.version_vector()),
                {0: {txn_id}, 1: {txn_id}},
            ))
        certifier.observe_snapshot({0: 4, 1: 1})
        assert certifier._shard(0).oldest_retained == 5
        assert certifier._shard(1).oldest_retained == 2

    def test_outcome_is_the_frozen_api_type(self):
        certifier = ShardedCertifier(partitions=2)
        outcome = certifier.certify(_partitioned(1, {}, {0: {1}}))
        assert isinstance(outcome, CertificationOutcome)
