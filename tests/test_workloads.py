"""Tests that workload specs carry the paper's Table 2-5 parameters."""

import pytest

from repro.core.errors import ConfigurationError
from repro.core.params import ConflictProfile, WorkloadMix
from repro.core.units import ms
from repro.workloads import (
    get_workload,
    heap_table_spec,
    microbench,
    rubis,
    tpcw,
    workload_names,
)
from repro.workloads.spec import WorkloadSpec, demands_ms


class TestTable2Parameters:
    """Table 2: TPC-W parameters."""

    @pytest.mark.parametrize(
        "mix,pr,pw,clients",
        [("browsing", 0.95, 0.05, 30),
         ("shopping", 0.80, 0.20, 40),
         ("ordering", 0.50, 0.50, 50)],
    )
    def test_mix_parameters(self, mix, pr, pw, clients):
        spec = tpcw.get_mix(mix)
        assert spec.mix.read_fraction == pytest.approx(pr)
        assert spec.mix.write_fraction == pytest.approx(pw)
        assert spec.clients_per_replica == clients
        assert spec.think_time == pytest.approx(1.0)


class TestTable3Demands:
    """Table 3: measured service demands for TPC-W (ms)."""

    @pytest.mark.parametrize(
        "mix,rc,wc,ws",
        [
            ("browsing", (41.62, 14.56), (17.47, 8.74), (3.48, 2.62)),
            ("shopping", (41.43, 15.11), (12.51, 6.05), (3.18, 1.81)),
            ("ordering", (22.46, 12.62), (13.48, 8.34), (4.04, 1.67)),
        ],
    )
    def test_ground_truth_demands(self, mix, rc, wc, ws):
        spec = tpcw.get_mix(mix)
        assert spec.demands.read.cpu == pytest.approx(ms(rc[0]))
        assert spec.demands.read.disk == pytest.approx(ms(rc[1]))
        assert spec.demands.write.cpu == pytest.approx(ms(wc[0]))
        assert spec.demands.write.disk == pytest.approx(ms(wc[1]))
        assert spec.demands.writeset.cpu == pytest.approx(ms(ws[0]))
        assert spec.demands.writeset.disk == pytest.approx(ms(ws[1]))


class TestTable4And5Rubis:
    def test_browsing_read_only(self):
        spec = rubis.get_mix("browsing")
        assert spec.mix.read_only
        assert spec.clients_per_replica == 50
        assert spec.demands.read.cpu == pytest.approx(ms(25.29))
        assert spec.demands.read.disk == pytest.approx(ms(11.36))

    def test_bidding_parameters(self):
        spec = rubis.get_mix("bidding")
        assert spec.mix.write_fraction == pytest.approx(0.20)
        assert spec.demands.write.cpu == pytest.approx(ms(41.51))
        assert spec.demands.write.disk == pytest.approx(ms(48.61))
        assert spec.demands.writeset.cpu == pytest.approx(ms(9.83))
        assert spec.demands.writeset.disk == pytest.approx(ms(35.28))

    def test_bidding_writeset_apply_is_disk_heavy(self):
        # §6.2.2: applying a RUBiS writeset costs only slightly less than
        # the original update on disk — the key to Figure 10's early peak.
        spec = rubis.get_mix("bidding")
        assert spec.demands.writeset.disk > 0.7 * spec.demands.write.disk

    def test_writeset_sizes_match_paper(self):
        assert tpcw.SHOPPING.writeset_bytes == 275
        assert rubis.BIDDING.writeset_bytes == 272


class TestRegistry:
    def test_all_five_mixes_registered(self):
        assert set(workload_names()) == {
            "tpcw/browsing", "tpcw/shopping", "tpcw/ordering",
            "rubis/browsing", "rubis/bidding",
        }

    def test_get_workload_by_qualified_name(self):
        assert get_workload("tpcw/shopping") is tpcw.SHOPPING

    def test_get_workload_accepts_colon(self):
        assert get_workload("rubis:bidding") is rubis.BIDDING

    def test_unknown_workload_lists_choices(self):
        with pytest.raises(KeyError, match="tpcw/shopping"):
            get_workload("tpcw/hoarding")

    def test_unknown_mix_helpers(self):
        with pytest.raises(KeyError):
            tpcw.get_mix("nope")
        with pytest.raises(KeyError):
            rubis.get_mix("nope")


class TestWorkloadSpec:
    def test_update_mix_requires_conflict_profile(self):
        with pytest.raises(ConfigurationError):
            WorkloadSpec(
                benchmark="x",
                mix_name="y",
                mix=WorkloadMix(read_fraction=0.5, write_fraction=0.5),
                demands=demands_ms(1, 1, 1, 1),
                clients_per_replica=10,
                think_time=1.0,
                conflict=None,
            )

    def test_replication_config_carries_client_settings(self):
        config = tpcw.SHOPPING.replication_config(8)
        assert config.replicas == 8
        assert config.clients_per_replica == 40
        assert config.think_time == pytest.approx(1.0)

    def test_ground_truth_profile_defaults(self):
        profile = tpcw.SHOPPING.ground_truth_profile()
        assert profile.update_response_time == pytest.approx(
            tpcw.SHOPPING.demands.write.total
        )

    def test_with_conflict_renames_nothing(self):
        conflict = ConflictProfile(50, 2)
        spec = tpcw.SHOPPING.with_conflict(conflict)
        assert spec.conflict is conflict
        assert spec.mix_name == "shopping"

    def test_name_is_qualified(self):
        assert tpcw.ORDERING.name == "tpcw/ordering"


class TestMicrobench:
    def test_heap_spec_shrinks_table_for_higher_a1(self):
        specs = [
            heap_table_spec(a1, update_response_time=0.05, update_rate=6.0)
            for a1 in microbench.FIGURE14_ABORT_RATES
        ]
        sizes = [s.conflict.db_update_size for s in specs]
        assert sizes == sorted(sizes, reverse=True)

    def test_heap_spec_keeps_base_demands(self):
        spec = heap_table_spec(0.005, 0.05, 6.0)
        assert spec.demands == tpcw.SHOPPING.demands
        assert spec.mix == tpcw.SHOPPING.mix

    def test_heap_spec_label_encodes_target(self):
        spec = heap_table_spec(0.0053, 0.05, 6.0)
        assert "0.0053" in spec.mix_name

    def test_figure14_specs_count(self):
        specs = microbench.figure14_specs(0.05, 6.0)
        assert len(specs) == 3

    def test_read_only_base_rejected(self):
        with pytest.raises(ConfigurationError):
            heap_table_spec(0.005, 0.05, 6.0, base=rubis.BROWSING)
