"""Unit tests for partition maps, resolution, and placement planning."""

import pytest

from repro.core.errors import ConfigurationError
from repro.models.planning import plan_placement
from repro.partition import PartitionMap, resolve_partition_map
from repro.workloads import tpcw


class TestPartitionMap:
    def test_full_map_hosts_everything(self):
        pm = PartitionMap.full(4, 3)
        assert pm.is_full
        assert pm.replication_factor == 3.0
        for p in range(4):
            assert pm.hosts(p) == (0, 1, 2)
        assert pm.hosted_by(1) == frozenset({0, 1, 2, 3})

    def test_ring_map_shape(self):
        pm = PartitionMap.ring(4, 4, 2)
        assert pm.hosts(0) == (0, 1)
        assert pm.hosts(3) == (0, 3)
        assert not pm.is_full
        assert pm.replication_factor == 2.0

    def test_ring_adjacent_partitions_share_a_host(self):
        pm = PartitionMap.ring(8, 5, 2)
        for p in range(8):
            partners = pm.colocated_partners(p)
            assert partners, f"partition {p} has no co-located partner"

    def test_common_hosts_intersection(self):
        pm = PartitionMap.ring(4, 4, 2)
        assert pm.common_hosts((0, 1)) == (1,)
        assert pm.common_hosts(()) == (0, 1, 2, 3)

    def test_placement_validation(self):
        with pytest.raises(ConfigurationError):
            PartitionMap(2, 2, ((0,),))  # wrong partition count
        with pytest.raises(ConfigurationError):
            PartitionMap(1, 2, ((),))  # hosted nowhere
        with pytest.raises(ConfigurationError):
            PartitionMap(1, 2, ((0, 2),))  # replica index out of range
        with pytest.raises(ConfigurationError):
            PartitionMap(1, 2, ((0, 0),))  # duplicate host

    def test_placement_is_sorted_and_frozen(self):
        pm = PartitionMap(2, 3, ((2, 0), (1,)))
        assert pm.hosts(0) == (0, 2)

    def test_ring_factor_bounds(self):
        with pytest.raises(ConfigurationError):
            PartitionMap.ring(4, 3, 4)
        with pytest.raises(ConfigurationError):
            PartitionMap.ring(4, 3, 0)


class TestExpectedFanout:
    def test_full_map_fanout_is_fleet_size(self):
        pm = PartitionMap.full(4, 5)
        assert pm.expected_update_fanout(0.0) == pytest.approx(5.0)
        assert pm.expected_update_fanout(0.5) == pytest.approx(5.0)

    def test_single_partition_fanout_is_replication_factor(self):
        pm = PartitionMap.ring(6, 6, 2)
        assert pm.expected_update_fanout(0.0) == pytest.approx(2.0)

    def test_cross_fraction_raises_fanout(self):
        pm = PartitionMap.ring(6, 6, 2)
        lo = pm.expected_update_fanout(0.0)
        hi = pm.expected_update_fanout(0.5)
        assert hi > lo
        # Cross-partition unions of a factor-2 ring never exceed rf + 2.
        assert hi <= 4.0

    def test_weights_shift_fanout(self):
        # Partition 0 hosted once, partition 1 hosted twice.
        pm = PartitionMap(2, 3, ((0,), (1, 2)))
        light = pm.expected_update_fanout(0.0, weights=(10.0, 1.0))
        heavy = pm.expected_update_fanout(0.0, weights=(1.0, 10.0))
        assert light < heavy

    def test_weight_validation(self):
        pm = PartitionMap.ring(4, 4, 2)
        with pytest.raises(ConfigurationError):
            pm.expected_update_fanout(0.0, weights=(1.0,))
        with pytest.raises(ConfigurationError):
            pm.expected_update_fanout(0.0, weights=(1.0, -1.0, 1.0, 1.0))
        with pytest.raises(ConfigurationError):
            pm.expected_update_fanout(1.5)


class TestResolvePartitionMap:
    def test_unpartitioned_spec_returns_none(self, shopping_spec):
        config = shopping_spec.replication_config(4)
        assert resolve_partition_map(shopping_spec, config, None) is None

    def test_unpartitioned_spec_rejects_map(self, shopping_spec):
        config = shopping_spec.replication_config(4)
        with pytest.raises(ConfigurationError):
            resolve_partition_map(
                shopping_spec, config, PartitionMap.full(4, 4)
            )

    def test_partitioned_spec_defaults_to_full(self):
        spec = tpcw.SHOPPING.with_partitions(4)
        config = spec.replication_config(3)
        pm = resolve_partition_map(spec, config, None)
        assert pm is not None and pm.is_full
        assert pm.partitions == 4 and pm.replicas == 3

    def test_partition_count_must_match(self):
        spec = tpcw.SHOPPING.with_partitions(4)
        config = spec.replication_config(3)
        with pytest.raises(ConfigurationError):
            resolve_partition_map(spec, config, PartitionMap.ring(5, 3, 2))

    def test_replica_count_must_match(self):
        spec = tpcw.SHOPPING.with_partitions(4)
        config = spec.replication_config(3)
        with pytest.raises(ConfigurationError):
            resolve_partition_map(spec, config, PartitionMap.ring(4, 4, 2))

    def test_every_replica_must_host_something(self):
        spec = tpcw.SHOPPING.with_partitions(2)
        config = spec.replication_config(3)
        # Replica 2 hosts nothing.
        lopsided = PartitionMap(2, 3, ((0, 1), (0, 1)))
        with pytest.raises(ConfigurationError):
            resolve_partition_map(spec, config, lopsided)

    def test_single_master_exempts_the_master(self):
        spec = tpcw.SHOPPING.with_partitions(2)
        config = spec.replication_config(3)
        # Index 0 (the master) hosts nothing explicitly; slaves cover all.
        slaves_only = PartitionMap(2, 3, ((1, 2), (1, 2)))
        resolved = resolve_partition_map(
            spec, config, slaves_only, design="single-master"
        )
        assert resolved is slaves_only
        with pytest.raises(ConfigurationError):
            resolve_partition_map(
                spec, config, slaves_only, design="multi-master"
            )


class TestSpecPartitionFields:
    def test_with_partitions_renames(self, shopping_spec):
        spec = shopping_spec.with_partitions(4, 0.2)
        assert spec.partitions == 4
        assert spec.cross_partition_fraction == 0.2
        assert spec.name != shopping_spec.name
        assert spec.partitioned

    def test_cross_fraction_needs_partitions(self, shopping_spec):
        with pytest.raises(ConfigurationError):
            shopping_spec.with_partitions(1, 0.2)

    def test_partitions_bounded_by_conflict_rows(self, shopping_spec):
        too_many = shopping_spec.conflict.db_update_size
        with pytest.raises(ConfigurationError):
            shopping_spec.with_partitions(too_many)

    def test_weights_must_match_partition_count(self, shopping_spec):
        with pytest.raises(ConfigurationError):
            shopping_spec.with_partitions(4, 0.1, partition_weights=(1.0,))

    def test_cross_partition_updates_need_two_rows(self, shopping_spec):
        import dataclasses

        from repro.core.params import ConflictProfile

        single_row = dataclasses.replace(
            shopping_spec,
            conflict=ConflictProfile(db_update_size=1000,
                                     updates_per_transaction=1),
        )
        # U=1 cannot put a row in each of two touched partitions.
        with pytest.raises(ConfigurationError):
            single_row.with_partitions(4, 0.1)
        # Without cross-partition traffic U=1 stays legal.
        assert single_row.with_partitions(4, 0.0).partitions == 4


class TestPlanPlacement:
    def test_respects_replication_factor(self):
        plan = plan_placement(8, 4, 2)
        for p in range(8):
            assert len(plan.partition_map.hosts(p)) == 2

    def test_covers_every_replica(self):
        plan = plan_placement(8, 4, 2, weights=(100, 1, 1, 1, 1, 1, 1, 1))
        for r in range(4):
            assert plan.partition_map.hosted_by(r)

    def test_balances_skewed_weights(self):
        plan = plan_placement(8, 4, 2, weights=(8, 4, 2, 1, 1, 1, 1, 1))
        # Greedy LPT keeps the imbalance close to 1 even under heavy skew.
        assert plan.imbalance <= 1.25
        assert plan.max_load == max(plan.replica_loads)

    def test_uniform_weights_balance_exactly(self):
        plan = plan_placement(8, 4, 2)
        assert plan.imbalance == pytest.approx(1.0)

    def test_deterministic(self):
        a = plan_placement(8, 4, 2, weights=(8, 4, 2, 1, 1, 1, 1, 1))
        b = plan_placement(8, 4, 2, weights=(8, 4, 2, 1, 1, 1, 1, 1))
        assert a == b

    def test_coverage_requirement(self):
        with pytest.raises(ConfigurationError):
            plan_placement(2, 5, 2)  # 2 partitions x 2 < 5 replicas

    def test_factor_bounds(self):
        with pytest.raises(ConfigurationError):
            plan_placement(4, 3, 4)
        with pytest.raises(ConfigurationError):
            plan_placement(4, 3, 0)

    def test_to_text_mentions_imbalance(self):
        plan = plan_placement(4, 2, 1)
        assert "imbalance" in plan.to_text()
