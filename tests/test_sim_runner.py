"""Tests for the simulation runner and curve measurement."""

import pytest

from repro.core.errors import ConfigurationError
from repro.simulator.runner import (
    MULTI_MASTER,
    SINGLE_MASTER,
    STANDALONE,
    measure_curve,
    simulate,
)


class TestSimulateValidation:
    def test_unknown_design_rejected(self, shopping_spec):
        with pytest.raises(ConfigurationError):
            simulate(shopping_spec, shopping_spec.replication_config(1),
                     design="sharded")

    def test_unknown_distribution_rejected(self, shopping_spec):
        with pytest.raises(ConfigurationError):
            simulate(shopping_spec, shopping_spec.replication_config(1),
                     design=STANDALONE, distribution="pareto")

    def test_zero_duration_rejected(self, shopping_spec):
        with pytest.raises(ConfigurationError):
            simulate(shopping_spec, shopping_spec.replication_config(1),
                     design=STANDALONE, duration=0.0)

    def test_negative_warmup_rejected(self, shopping_spec):
        with pytest.raises(ConfigurationError):
            simulate(shopping_spec, shopping_spec.replication_config(1),
                     design=STANDALONE, warmup=-1.0)


class TestSimulationResult:
    @pytest.fixture(scope="class")
    def result(self, shopping_spec):
        return simulate(
            shopping_spec,
            shopping_spec.replication_config(2),
            design=MULTI_MASTER,
            seed=9,
            warmup=3.0,
            duration=15.0,
        )

    def test_window_recorded(self, result):
        assert result.window == pytest.approx(15.0)

    def test_committed_count_consistent_with_throughput(self, result):
        assert result.committed_transactions == pytest.approx(
            result.throughput * result.window, rel=1e-6
        )

    def test_class_throughputs_sum_to_total(self, result):
        assert result.read_throughput + result.update_throughput == (
            pytest.approx(result.throughput, rel=1e-6)
        )

    def test_mix_close_to_spec(self, result):
        fraction = result.update_throughput / result.throughput
        assert fraction == pytest.approx(0.2, abs=0.05)

    def test_point_utilization_by_kind(self, result):
        assert set(result.point.utilization) == {"cpu", "disk"}

    def test_per_replica_utilizations_present(self, result):
        assert "replica0.cpu" in result.utilizations
        assert "replica1.disk" in result.utilizations


class TestMeasureCurve:
    def test_curve_shape(self, shopping_spec):
        curve = measure_curve(
            shopping_spec, MULTI_MASTER, (1, 2), seed=5,
            warmup=2.0, duration=8.0,
        )
        assert list(curve.replica_counts) == [1, 2]
        assert curve.throughputs[1] > curve.throughputs[0]

    def test_empty_counts_rejected(self, shopping_spec):
        with pytest.raises(ConfigurationError):
            measure_curve(shopping_spec, SINGLE_MASTER, ())
