"""Tests for the relational layer over the SI engine."""

import pytest

from repro.core.errors import ConfigurationError, TransactionAborted
from repro.sidb.engine import SIDatabase
from repro.sidb.tables import Catalog, Table, TableSchema

ITEMS = TableSchema(
    name="items",
    columns=("item_id", "title", "stock", "category"),
    primary_key="item_id",
    indexes=("category",),
    unique_indexes=("title",),
)


@pytest.fixture
def db():
    return SIDatabase()


@pytest.fixture
def items(db):
    return Table(db, ITEMS)


def add_item(db, items, item_id, title, stock=10, category="fiction"):
    txn = db.begin()
    items.insert(txn, {"item_id": item_id, "title": title,
                       "stock": stock, "category": category})
    db.commit(txn)


class TestSchema:
    def test_primary_key_must_be_column(self):
        with pytest.raises(ConfigurationError):
            TableSchema(name="t", columns=("a",), primary_key="b")

    def test_duplicate_columns_rejected(self):
        with pytest.raises(ConfigurationError):
            TableSchema(name="t", columns=("a", "a"), primary_key="a")

    def test_index_must_be_column(self):
        with pytest.raises(ConfigurationError):
            TableSchema(name="t", columns=("a", "b"), primary_key="a",
                        indexes=("c",))

    def test_primary_key_not_reindexable(self):
        with pytest.raises(ConfigurationError):
            TableSchema(name="t", columns=("a", "b"), primary_key="a",
                        indexes=("a",))

    def test_column_cannot_be_unique_and_nonunique(self):
        with pytest.raises(ConfigurationError):
            TableSchema(name="t", columns=("a", "b"), primary_key="a",
                        indexes=("b",), unique_indexes=("b",))

    def test_validate_row_requires_exact_columns(self):
        with pytest.raises(ConfigurationError):
            ITEMS.validate_row({"item_id": 1})


class TestCrud:
    def test_insert_then_get(self, db, items):
        add_item(db, items, 1, "Dune")
        txn = db.begin()
        row = items.get(txn, 1)
        assert row["title"] == "Dune"
        assert row["stock"] == 10

    def test_get_missing_returns_none(self, db, items):
        assert items.get(db.begin(), 404) is None

    def test_duplicate_primary_key_rejected(self, db, items):
        add_item(db, items, 1, "Dune")
        txn = db.begin()
        with pytest.raises(ConfigurationError):
            items.insert(txn, {"item_id": 1, "title": "Other",
                               "stock": 1, "category": "x"})

    def test_update_changes_columns(self, db, items):
        add_item(db, items, 1, "Dune")
        txn = db.begin()
        items.update(txn, 1, stock=9)
        db.commit(txn)
        assert items.get(db.begin(), 1)["stock"] == 9

    def test_update_missing_row_rejected(self, db, items):
        with pytest.raises(ConfigurationError):
            items.update(db.begin(), 404, stock=1)

    def test_update_unknown_column_rejected(self, db, items):
        add_item(db, items, 1, "Dune")
        with pytest.raises(ConfigurationError):
            items.update(db.begin(), 1, weight=3)

    def test_update_primary_key_rejected(self, db, items):
        add_item(db, items, 1, "Dune")
        with pytest.raises(ConfigurationError):
            items.update(db.begin(), 1, item_id=2)

    def test_delete_removes_row(self, db, items):
        add_item(db, items, 1, "Dune")
        txn = db.begin()
        items.delete(txn, 1)
        db.commit(txn)
        assert items.get(db.begin(), 1) is None

    def test_delete_missing_rejected(self, db, items):
        with pytest.raises(ConfigurationError):
            items.delete(db.begin(), 404)

    def test_scan_and_count(self, db, items):
        for i in range(5):
            add_item(db, items, i, f"Book {i}")
        txn = db.begin()
        assert items.count(txn) == 5
        titles = {row["title"] for row in items.scan(txn)}
        assert titles == {f"Book {i}" for i in range(5)}


class TestIndexes:
    def test_lookup_by_secondary_index(self, db, items):
        add_item(db, items, 1, "Dune", category="scifi")
        add_item(db, items, 2, "Neuromancer", category="scifi")
        add_item(db, items, 3, "Emma", category="classic")
        rows = items.lookup(db.begin(), "category", "scifi")
        assert {row["item_id"] for row in rows} == {1, 2}

    def test_lookup_by_unique_index(self, db, items):
        add_item(db, items, 1, "Dune")
        rows = items.lookup(db.begin(), "title", "Dune")
        assert len(rows) == 1 and rows[0]["item_id"] == 1

    def test_lookup_unindexed_column_rejected(self, db, items):
        with pytest.raises(ConfigurationError):
            items.lookup(db.begin(), "stock", 10)

    def test_unique_violation_rejected(self, db, items):
        add_item(db, items, 1, "Dune")
        txn = db.begin()
        with pytest.raises(ConfigurationError):
            items.insert(txn, {"item_id": 2, "title": "Dune",
                               "stock": 1, "category": "x"})

    def test_update_moves_index_entry(self, db, items):
        add_item(db, items, 1, "Dune", category="scifi")
        txn = db.begin()
        items.update(txn, 1, category="classic")
        db.commit(txn)
        fresh = db.begin()
        assert items.lookup(fresh, "category", "scifi") == []
        assert len(items.lookup(fresh, "category", "classic")) == 1

    def test_delete_removes_index_entries(self, db, items):
        add_item(db, items, 1, "Dune", category="scifi")
        txn = db.begin()
        items.delete(txn, 1)
        db.commit(txn)
        fresh = db.begin()
        assert items.lookup(fresh, "category", "scifi") == []
        assert items.lookup(fresh, "title", "Dune") == []

    def test_index_reads_are_snapshot_isolated(self, db, items):
        add_item(db, items, 1, "Dune", category="scifi")
        reader = db.begin()
        writer = db.begin()
        items.update(writer, 1, category="classic")
        db.commit(writer)
        # The reader's snapshot predates the move.
        assert len(items.lookup(reader, "category", "scifi")) == 1


class TestConcurrency:
    def test_concurrent_stock_updates_conflict(self, db, items):
        add_item(db, items, 1, "Dune", stock=10)
        t1, t2 = db.begin(), db.begin()
        items.update(t1, 1, stock=9)
        items.update(t2, 1, stock=8)
        db.commit(t1)
        with pytest.raises(TransactionAborted):
            db.commit(t2)
        assert items.get(db.begin(), 1)["stock"] == 9

    def test_updates_to_different_rows_commit(self, db, items):
        add_item(db, items, 1, "Dune")
        add_item(db, items, 2, "Emma")
        t1, t2 = db.begin(), db.begin()
        items.update(t1, 1, stock=1)
        items.update(t2, 2, stock=2)
        db.commit(t1)
        db.commit(t2)

    def test_unique_index_serialises_inserts(self, db, items):
        # Two concurrent inserts of the same unique title: the index entry
        # key is shared, so first-committer-wins aborts the second.
        t1, t2 = db.begin(), db.begin()
        items.insert(t1, {"item_id": 1, "title": "Dune",
                          "stock": 1, "category": "x"})
        items.insert(t2, {"item_id": 2, "title": "Dune",
                          "stock": 1, "category": "x"})
        db.commit(t1)
        with pytest.raises(TransactionAborted):
            db.commit(t2)

    def test_multi_table_transaction_atomic(self, db):
        catalog = Catalog(db)
        items = catalog.create_table(ITEMS)
        orders = catalog.create_table(TableSchema(
            name="orders", columns=("order_id", "item_id", "qty"),
            primary_key="order_id", indexes=("item_id",),
        ))
        add_item(db, items, 1, "Dune", stock=5)
        txn = db.begin()
        items.update(txn, 1, stock=4)
        orders.insert(txn, {"order_id": 100, "item_id": 1, "qty": 1})
        db.commit(txn)
        fresh = db.begin()
        assert items.get(fresh, 1)["stock"] == 4
        assert len(orders.lookup(fresh, "item_id", 1)) == 1


class TestCatalog:
    def test_create_and_lookup(self, db):
        catalog = Catalog(db)
        catalog.create_table(ITEMS)
        assert catalog.table("items").schema is ITEMS
        assert catalog.names() == ["items"]

    def test_duplicate_table_rejected(self, db):
        catalog = Catalog(db)
        catalog.create_table(ITEMS)
        with pytest.raises(ConfigurationError):
            catalog.create_table(ITEMS)

    def test_unknown_table_rejected(self, db):
        with pytest.raises(ConfigurationError):
            Catalog(db).table("ghosts")
