"""Performance observability: estimator math, gray-failure detection,
model drift, brownout faults, and the capacity-source switch.

The load-bearing contracts:

* the estimator is a pure observer — a DES run with it engaged is
  bit-identical to one without (telemetry/perf fields aside);
* the effective-capacity estimate tracks an injected slowdown
  monotonically and crosses the hysteresis band exactly once per
  transition (no flapping);
* ``capacity_source="estimated"`` re-weights the LB and inflates the
  controller target only after an actual gray detection.
"""

import dataclasses
import math
from types import SimpleNamespace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.control.autoscale import autoscale_sim
from repro.control.controller import FixedPolicy
from repro.control.estimator import (
    DETECT_RATIO,
    ESTIMATED,
    FleetCapacityEstimator,
    ModelDriftMonitor,
    PerfMonitor,
    resolve_capacity_source,
)
from repro.control.trace import DiurnalTrace
from repro.core.errors import ConfigurationError
from repro.ops.events import OpsEvent, summarize
from repro.ops.plan import OpsPlan
from repro.simulator.faults import (
    BROWNOUT,
    FAULT_KINDS,
    brownout_fault,
    crash_fault,
    validate_faults,
)
from repro.telemetry.perf import Ewma, WindowedQuantile
from repro.workloads import tpcw


# ---------------------------------------------------------------------
# Estimator math
# ---------------------------------------------------------------------

class TestEwma:
    def test_seeded_value_then_half_life_decay(self):
        ewma = Ewma(half_life=2.0, initial=1.0)
        ewma.update(0.0, dt=2.0)  # one half-life: halfway to the target
        assert ewma.value == pytest.approx(0.5)

    def test_unseeded_first_update_sets_value(self):
        ewma = Ewma(half_life=1.0)
        assert ewma.value is None
        assert ewma.update(3.0, dt=10.0) == pytest.approx(3.0)

    def test_rejects_nonpositive_half_life(self):
        with pytest.raises(ConfigurationError):
            Ewma(half_life=0.0)

    @given(
        rate=st.floats(min_value=0.1, max_value=10.0),
        start=st.floats(min_value=0.1, max_value=10.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_converges_to_a_constant_rate(self, rate, start):
        # Satellite property: feeding a constant observation stream
        # converges geometrically to it, from any starting estimate.
        ewma = Ewma(half_life=1.0, initial=start)
        for _ in range(30):
            ewma.update(rate, dt=1.0)
        assert ewma.value == pytest.approx(rate, rel=1e-6, abs=1e-6)


class TestWindowedQuantile:
    def test_empty_window_is_zero(self):
        assert WindowedQuantile().quantile(0.95) == 0.0

    def test_exact_quantiles_on_small_window(self):
        q = WindowedQuantile(window=10)
        for value in (1.0, 2.0, 3.0, 4.0):
            q.observe(value)
        assert q.quantile(0.5) == 2.0
        assert q.quantile(1.0) == 4.0

    def test_oldest_falls_off_the_window(self):
        q = WindowedQuantile(window=3)
        for value in (100.0, 1.0, 2.0, 3.0):
            q.observe(value)
        assert len(q) == 3
        assert q.quantile(1.0) == 3.0


class TestResolveCapacitySource:
    def test_declared_and_none_normalise_to_none(self):
        assert resolve_capacity_source(None) is None
        assert resolve_capacity_source("declared") is None

    def test_estimated_passes_through(self):
        assert resolve_capacity_source("estimated") == ESTIMATED

    def test_unknown_source_hints(self):
        with pytest.raises(ConfigurationError, match="did you mean"):
            resolve_capacity_source("estimatd")


# ---------------------------------------------------------------------
# Brownout faults and plan semantics
# ---------------------------------------------------------------------

class TestBrownoutFault:
    def test_brownout_is_a_registered_kind(self):
        assert BROWNOUT in FAULT_KINDS

    def test_helper_builds_a_valid_fault(self):
        fault = brownout_fault(1, 10.0, 5.0, severity=0.5)
        assert fault.kind == BROWNOUT
        assert fault.severity == 0.5
        assert fault.downtime == 5.0

    def test_severity_must_be_a_true_slowdown(self):
        for severity in (0.0, 1.0, 1.5, -0.5):
            with pytest.raises(ConfigurationError):
                brownout_fault(0, 1.0, 1.0, severity=severity)

    def test_brownout_needs_a_duration(self):
        with pytest.raises(ConfigurationError):
            brownout_fault(0, 1.0, 0.0)

    def test_single_master_master_may_brown_out_but_not_crash(self):
        # A brownout never changes membership, so degrading the master
        # is legal where crashing it is not (no failover support).
        validate_faults((brownout_fault(0, 1.0, 1.0),), 2, "single-master")
        with pytest.raises(ConfigurationError):
            validate_faults((crash_fault(0, 1.0),), 2, "single-master")


class TestOpsPlanMembership:
    def test_brownout_only_plan_leaves_controller_in_charge(self):
        plan = OpsPlan(faults=(brownout_fault(1, 5.0, 5.0),))
        assert plan.active
        assert not plan.manages_membership

    def test_crash_self_heal_and_rolling_take_authority(self):
        assert OpsPlan(faults=(crash_fault(1, 5.0),)).manages_membership
        assert OpsPlan(self_heal=True).manages_membership
        assert OpsPlan(rolling_start=1.0).manages_membership


class TestSummarizeGray:
    def _result(self, events):
        return SimpleNamespace(
            ops_events=events, timeline=(), control_interval=1.0
        )

    def test_pairs_each_brownout_with_first_later_detect(self):
        summary = summarize(self._result([
            OpsEvent(10.0, BROWNOUT, "replica1"),
            OpsEvent(13.0, "gray-detect", "replica1"),
            OpsEvent(40.0, BROWNOUT, "replica1"),
            OpsEvent(46.0, "gray-detect", "replica1"),
        ]))
        assert summary.gray_failures == 2
        assert summary.gray_detected == 2
        assert summary.mean_gray_detection_latency == pytest.approx(4.5)

    def test_undetected_brownout_is_counted_loudly(self):
        summary = summarize(self._result([
            OpsEvent(10.0, BROWNOUT, "replica1"),
            OpsEvent(5.0, "gray-detect", "replica2"),  # wrong replica
        ]))
        assert summary.gray_failures == 1
        assert summary.gray_detected == 0
        assert summary.mean_gray_detection_latency is None
        assert "UNDETECTED" in summary.to_text()


# ---------------------------------------------------------------------
# Fleet estimation on fake replicas
# ---------------------------------------------------------------------

class _FakeResource:
    """A live-pillar-shaped resource: bare counters, no stats object."""

    def __init__(self, name):
        self.name = name
        self.busy = 0.0
        self.work_done = 0.0
        self.completions = 0

    def busy_time_now(self):
        return self.busy


class _FakeReplica:
    def __init__(self, name, capacity=1.0):
        self.name = name
        self.capacity = capacity
        self.failed = False
        self.cpu = _FakeResource(f"{name}.cpu")
        self.disk = _FakeResource(f"{name}.disk")

    def advance(self, dt, rate):
        """Busy for the whole interval delivering *rate* work/second."""
        for resource in (self.cpu, self.disk):
            resource.busy += dt
            resource.work_done += dt * rate
            resource.completions += 5


def _tick(estimator, now, replicas):
    return estimator.observe_fleet(now, replicas)


class TestFleetCapacityEstimator:
    def test_detects_and_clears_with_hysteresis(self):
        estimator = FleetCapacityEstimator(interval=1.0)
        replica = _FakeReplica("replica0")
        _tick(estimator, 0.0, [replica])  # baseline counters
        events = []
        for step in range(1, 4):
            replica.advance(1.0, 1.0)
            _, fresh = _tick(estimator, float(step), [replica])
            events.extend(fresh)
        assert events == []  # healthy: no transitions
        for step in range(4, 12):
            replica.advance(1.0, 0.4)
            _, fresh = _tick(estimator, float(step), [replica])
            events.extend(fresh)
        assert [e.kind for e in events] == ["gray-detect"]
        assert estimator.any_degraded()
        for step in range(12, 24):
            replica.advance(1.0, 1.0)
            _, fresh = _tick(estimator, float(step), [replica])
            events.extend(fresh)
        assert [e.kind for e in events] == ["gray-detect", "gray-clear"]
        assert not estimator.any_degraded()

    def test_idle_windows_hold_the_last_estimate(self):
        estimator = FleetCapacityEstimator(interval=1.0)
        replica = _FakeReplica("replica0")
        _tick(estimator, 0.0, [replica])
        replica.advance(1.0, 1.0)
        snap, _ = _tick(estimator, 1.0, [replica])
        before = snap.ratio_for("replica0")
        # Ten ticks with no work at all: a silent replica is not evidence
        # of a slow replica.
        for step in range(2, 12):
            snap, _ = _tick(estimator, float(step), [replica])
        assert snap.ratio_for("replica0") == pytest.approx(before)

    def test_declared_capacity_captured_before_mutation(self):
        estimator = FleetCapacityEstimator(interval=1.0)
        replica = _FakeReplica("replica0", capacity=2.0)
        _tick(estimator, 0.0, [replica])
        replica.capacity = 1.3  # apply-mode mutation must not re-anchor
        replica.advance(1.0, 2.0)
        snap, _ = _tick(estimator, 1.0, [replica])
        cap = snap.capacities[0]
        assert cap.declared == 2.0
        assert cap.ratio == pytest.approx(1.0)

    def test_health_is_fleet_estimated_over_declared(self):
        estimator = FleetCapacityEstimator(interval=1.0)
        healthy = _FakeReplica("replica0")
        slow = _FakeReplica("replica1")
        _tick(estimator, 0.0, [healthy, slow])
        for step in range(1, 12):
            healthy.advance(1.0, 1.0)
            slow.advance(1.0, 0.5)
            _tick(estimator, float(step), [healthy, slow])
        assert estimator.health() == pytest.approx(0.75, abs=0.02)

    @given(slowdown=st.floats(min_value=0.05, max_value=1.0))
    @settings(max_examples=40, deadline=None)
    def test_estimate_monotone_in_injected_slowdown(self, slowdown):
        # Satellite property: a replica made strictly slower never
        # estimates higher than a faster one after the same history.
        def final_estimate(rate):
            estimator = FleetCapacityEstimator(interval=1.0)
            replica = _FakeReplica("replica0")
            _tick(estimator, 0.0, [replica])
            for step in range(1, 10):
                replica.advance(1.0, rate)
                _tick(estimator, float(step), [replica])
            return estimator.estimate_for("replica0")

        assert final_estimate(slowdown) <= final_estimate(
            min(1.0, slowdown + 0.1)
        ) + 1e-9

    def test_attribution_ranks_resources(self):
        estimator = FleetCapacityEstimator(interval=1.0)
        replica = _FakeReplica("replica0")
        _tick(estimator, 0.0, [replica])
        replica.advance(1.0, 1.0)
        replica.disk.busy -= 0.6  # CPU ran hotter than disk
        _tick(estimator, 1.0, [replica])
        signals = estimator.attribution(top=2)
        assert [s.component for s in signals] == [
            "replica0.cpu", "replica0.disk",
        ]


# ---------------------------------------------------------------------
# Drift monitoring and the perf monitor glue
# ---------------------------------------------------------------------

def _drift_monitor(predicted_throughput):
    config = SimpleNamespace(with_replicas=lambda n: n)
    monitor = ModelDriftMonitor("multi-master", object(), config)
    monitor._predict = lambda design, profile, cfg: SimpleNamespace(
        throughput=predicted_throughput, response_time=0.1
    )
    return monitor


class TestModelDriftMonitor:
    def test_on_model_ticks_never_conclude_drift(self):
        monitor = _drift_monitor(100.0)
        for tick in range(5):
            point = monitor.observe(float(tick), 2, 120.0, 98.0, 0.2)
            assert point is not None and not point.breach
        assert not any(p.verdict for p in monitor.points)

    def test_offered_load_caps_the_prediction(self):
        monitor = _drift_monitor(100.0)
        point = monitor.observe(0.0, 2, 40.0, 39.0, 0.2)
        assert point.predicted_throughput == pytest.approx(40.0)
        assert not point.breach

    def test_verdict_needs_consecutive_breaches(self):
        monitor = _drift_monitor(100.0)
        first = monitor.observe(0.0, 2, 120.0, 50.0, 0.2)
        assert first.breach and not first.verdict
        second = monitor.observe(1.0, 2, 120.0, 50.0, 0.2)
        assert second.verdict  # patience = 2 consecutive breaches

    def test_recovery_resets_the_streak(self):
        monitor = _drift_monitor(100.0)
        monitor.observe(0.0, 2, 120.0, 50.0, 0.2)
        monitor.observe(1.0, 2, 120.0, 99.0, 0.2)
        third = monitor.observe(2.0, 2, 120.0, 50.0, 0.2)
        assert third.breach and not third.verdict

    def test_empty_fleet_is_skipped(self):
        monitor = _drift_monitor(100.0)
        assert monitor.observe(0.0, 0, 120.0, 0.0, 0.0) is None


class TestPerfMonitor:
    def _degrade(self, monitor, replica, rate, ticks=8):
        for step in range(1, ticks + 1):
            replica.advance(1.0, rate)
            monitor.on_tick(
                float(step), [replica], members=1,
                offered_rate=10.0, throughput=10.0, p95=0.1,
            )

    def test_observe_only_mode_never_touches_capacity(self):
        monitor = PerfMonitor(interval=1.0, pillar="simulator", apply=False)
        replica = _FakeReplica("replica0")
        monitor.on_tick(0.0, [replica], members=1,
                        offered_rate=10.0, throughput=10.0, p95=0.1)
        self._degrade(monitor, replica, 0.4)
        assert replica.capacity == 1.0
        assert monitor.adjust_target(4) == 4

    def test_apply_mode_pushes_estimates_into_lb_weights(self):
        monitor = PerfMonitor(interval=1.0, pillar="simulator", apply=True)
        replica = _FakeReplica("replica0")
        monitor.on_tick(0.0, [replica], members=1,
                        offered_rate=10.0, throughput=10.0, p95=0.1)
        self._degrade(monitor, replica, 0.4)
        assert replica.capacity < DETECT_RATIO

    def test_target_inflation_is_gated_on_detection(self):
        monitor = PerfMonitor(interval=1.0, pillar="simulator", apply=True)
        replica = _FakeReplica("replica0")
        monitor.on_tick(0.0, [replica], members=1,
                        offered_rate=10.0, throughput=10.0, p95=0.1)
        # Mild measurement noise (95% of declared) must not inflate.
        self._degrade(monitor, replica, 0.95)
        assert monitor.adjust_target(4) == 4
        self._degrade(monitor, replica, 0.4)
        health = monitor.estimator.health()
        assert monitor.adjust_target(4) == int(math.ceil(4 / health))

    def test_event_sink_receives_detections(self):
        seen = []
        monitor = PerfMonitor(
            interval=1.0, pillar="simulator", apply=True,
            event_sink=lambda t, kind, name: seen.append((kind, name)),
        )
        replica = _FakeReplica("replica0")
        monitor.on_tick(0.0, [replica], members=1,
                        offered_rate=10.0, throughput=10.0, p95=0.1)
        self._degrade(monitor, replica, 0.4)
        assert ("gray-detect", "replica0") in seen

    def test_report_freezes_source_and_detections(self):
        monitor = PerfMonitor(interval=1.0, pillar="simulator", apply=True)
        replica = _FakeReplica("replica0")
        monitor.on_tick(0.0, [replica], members=1,
                        offered_rate=10.0, throughput=10.0, p95=0.1)
        self._degrade(monitor, replica, 0.4)
        report = monitor.report()
        assert report.source == ESTIMATED
        assert report.detection_latency(0.0, "replica0") is not None
        assert "gray-failure detections" in report.to_text()


# ---------------------------------------------------------------------
# End-to-end: the estimator rides a real autoscale run
# ---------------------------------------------------------------------

def _autoscale(seed, capacity_source=None, telemetry=None):
    spec = tpcw.SHOPPING
    config = spec.replication_config(1)
    rate = 40.0
    trace = DiurnalTrace(base_rate=rate, peak_rate=rate, period=24.0)
    plan = OpsPlan(faults=(brownout_fault(1, 10.0, 10.0, severity=0.5),))
    return autoscale_sim(
        spec, trace, FixedPolicy(replicas=2),
        design="multi-master", seed=seed, warmup=4.0, duration=24.0,
        control_interval=2.0, slo_response=3.0, max_replicas=4,
        config=config, ops=plan,
        capacity_source=capacity_source, telemetry=telemetry,
    )


class TestEstimatorOnAutoscaleRuns:
    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=3, deadline=None)
    def test_observing_estimator_keeps_des_bit_identical(self, seed):
        # Satellite property: engaging the estimator (via telemetry)
        # must not move a single event in the deterministic run.
        from repro.telemetry import TelemetryConfig

        on = _autoscale(seed, telemetry=TelemetryConfig())
        off = _autoscale(seed)
        assert on.perf is not None and off.perf is None
        assert dataclasses.replace(on, telemetry=None, perf=None) == (
            dataclasses.replace(off, telemetry=None, perf=None)
        )

    def test_estimated_mode_detects_the_brownout(self):
        result = _autoscale(7, capacity_source="estimated")
        assert result.perf is not None
        assert result.perf.source == ESTIMATED
        assert result.perf.detection_latency(10.0, "replica1") is not None
        kinds = {event.kind for event in result.ops_events}
        assert {"brownout", "gray-detect"} <= kinds
        summary = summarize(result)
        assert summary.gray_failures == 1
        assert summary.gray_detected == 1
        assert summary.mean_gray_detection_latency is not None

    def test_estimated_mode_scales_out_around_the_brownout(self):
        declared = _autoscale(7)
        estimated = _autoscale(7, capacity_source="estimated")
        peak = max(p.members for p in estimated.timeline)
        assert peak > max(p.members for p in declared.timeline)
