"""Unit tests for the exact MVA solver against known queueing results."""


import pytest

from repro.core.errors import ConfigurationError
from repro.queueing.bounds import asymptotic_bounds
from repro.queueing.mva import (
    MVAStepper,
    approximate_mva,
    solve_mva,
)
from repro.queueing.network import (
    ClosedNetwork,
    delay_center,
    queueing_center,
)


def single_center(demand=0.1, think=1.0):
    return ClosedNetwork(
        centers=(queueing_center("cpu", demand),), think_time=think
    )


class TestSingleCenterClosedForm:
    """One queueing center + think time has a classic machine-repair form."""

    def test_one_customer_no_queueing(self):
        # With a single customer, R = D exactly.
        solution = solve_mva(single_center(demand=0.1, think=1.0), 1)
        assert solution.response_time == pytest.approx(0.1)
        assert solution.throughput == pytest.approx(1 / 1.1)

    def test_two_customers_recurrence(self):
        # Hand-rolled MVA: n=1: R=0.1, X=1/1.1, Q=0.1/1.1
        # n=2: R=0.1*(1+0.1/1.1), X=2/(1+R), Q=X*R
        solution = solve_mva(single_center(demand=0.1, think=1.0), 2)
        r2 = 0.1 * (1 + 0.1 / 1.1)
        assert solution.response_time == pytest.approx(r2)
        assert solution.throughput == pytest.approx(2 / (1.0 + r2))

    def test_saturation_throughput_approaches_capacity(self):
        solution = solve_mva(single_center(demand=0.1, think=1.0), 500)
        assert solution.throughput == pytest.approx(10.0, rel=1e-3)

    def test_heavy_load_response_time_linear_growth(self):
        # At saturation each extra client adds ~D to the response time.
        r100 = solve_mva(single_center(0.1, 1.0), 100).response_time
        r101 = solve_mva(single_center(0.1, 1.0), 101).response_time
        assert r101 - r100 == pytest.approx(0.1, rel=0.01)


class TestDelayCenters:
    def test_pure_delay_network_scales_linearly(self):
        network = ClosedNetwork(
            centers=(delay_center("net", 0.05),), think_time=1.0
        )
        for n in (1, 10, 100):
            solution = solve_mva(network, n)
            assert solution.throughput == pytest.approx(n / 1.05)
            assert solution.response_time == pytest.approx(0.05)

    def test_delay_center_adds_constant_residence(self):
        base = ClosedNetwork(
            centers=(queueing_center("cpu", 0.1),), think_time=1.0
        )
        with_delay = ClosedNetwork(
            centers=(queueing_center("cpu", 0.1), delay_center("lb", 0.02)),
            think_time=1.0,
        )
        r_base = solve_mva(base, 5)
        r_delay = solve_mva(with_delay, 5)
        # The delay perturbs queueing slightly, but residence at the delay
        # center is exactly its demand.
        assert r_delay.residence_times["lb"] == pytest.approx(0.02)
        assert r_delay.response_time > r_base.response_time


class TestMVAProperties:
    def network(self):
        return ClosedNetwork(
            centers=(
                queueing_center("cpu", 0.030),
                queueing_center("disk", 0.012),
                delay_center("lb", 0.001),
            ),
            think_time=1.0,
        )

    def test_throughput_monotone_in_population(self):
        previous = 0.0
        for n in range(1, 80):
            x = solve_mva(self.network(), n).throughput
            assert x >= previous
            previous = x

    def test_response_monotone_in_population(self):
        previous = 0.0
        for n in range(1, 80):
            r = solve_mva(self.network(), n).response_time
            assert r >= previous - 1e-12
            previous = r

    def test_respects_asymptotic_bounds(self):
        for n in (1, 5, 20, 50, 200):
            network = self.network()
            solution = solve_mva(network, n)
            bounds = asymptotic_bounds(network, n)
            assert solution.throughput <= bounds.throughput_upper + 1e-9
            assert solution.response_time >= bounds.response_time_lower - 1e-9

    def test_utilization_law_consistency(self):
        solution = solve_mva(self.network(), 40)
        assert solution.utilization["cpu"] == pytest.approx(
            min(1.0, solution.throughput * 0.030)
        )

    def test_littles_law_at_each_center(self):
        solution = solve_mva(self.network(), 25)
        for name in ("cpu", "disk"):
            assert solution.queue_lengths[name] == pytest.approx(
                solution.throughput * solution.residence_times[name]
            )

    def test_population_conservation(self):
        n = 30
        solution = solve_mva(self.network(), n)
        in_centers = sum(solution.queue_lengths.values())
        thinking = solution.throughput * 1.0  # X * Z
        assert in_centers + thinking == pytest.approx(n)

    def test_population_zero(self):
        solution = solve_mva(self.network(), 0)
        assert solution.throughput == 0.0
        assert solution.response_time == 0.0

    def test_negative_population_rejected(self):
        with pytest.raises(ConfigurationError):
            solve_mva(self.network(), -1)

    def test_fractional_population_interpolates(self):
        low = solve_mva(self.network(), 10).throughput
        high = solve_mva(self.network(), 11).throughput
        mid = solve_mva(self.network(), 10.5).throughput
        assert mid == pytest.approx((low + high) / 2)

    def test_fractional_population_between_neighbours(self):
        mid = solve_mva(self.network(), 10.25)
        low = solve_mva(self.network(), 10)
        high = solve_mva(self.network(), 11)
        assert low.throughput <= mid.throughput <= high.throughput


class TestMVAStepper:
    def test_stepper_matches_solve(self):
        network = ClosedNetwork(
            centers=(queueing_center("cpu", 0.04), queueing_center("disk", 0.02)),
            think_time=0.5,
        )
        stepper = MVAStepper(network)
        for n in range(1, 21):
            stepped = stepper.step()
            direct = solve_mva(network, n)
            assert stepped.throughput == pytest.approx(direct.throughput)
            assert stepped.response_time == pytest.approx(direct.response_time)

    def test_set_demands_unknown_center_rejected(self):
        stepper = MVAStepper(single_center())
        with pytest.raises(ConfigurationError):
            stepper.set_demands({"disk": 0.1})

    def test_set_demands_negative_rejected(self):
        stepper = MVAStepper(single_center())
        with pytest.raises(ConfigurationError):
            stepper.set_demands({"cpu": -0.1})

    def test_demands_can_change_between_steps(self):
        stepper = MVAStepper(single_center(demand=0.1))
        first = stepper.step()
        stepper.set_demands({"cpu": 0.2})
        second = stepper.step()
        # The second step uses the new demand.
        assert second.residence_times["cpu"] > 2 * first.residence_times["cpu"] * 0.9

    def test_arrival_queue_is_previous_queue(self):
        network = single_center(demand=0.1)
        stepper = MVAStepper(network)
        first = stepper.step()
        second = stepper.step()
        assert second.arrival_queue_lengths["cpu"] == pytest.approx(
            first.queue_lengths["cpu"]
        )

    def test_residence_seen_by_uses_arrival_theorem(self):
        network = single_center(demand=0.1)
        solution = solve_mva(network, 10)
        seen = solution.residence_seen_by({"cpu": 0.2})
        expected = 0.2 * (1.0 + solution.arrival_queue_lengths["cpu"])
        assert seen == pytest.approx(expected)

    def test_residence_seen_by_queue_cap(self):
        solution = solve_mva(single_center(demand=0.1), 200)
        uncapped = solution.residence_seen_by({"cpu": 0.1})
        capped = solution.residence_seen_by({"cpu": 0.1}, queue_cap=9.0)
        assert capped == pytest.approx(0.1 * 10.0)
        assert capped < uncapped

    def test_residence_seen_by_unknown_center(self):
        solution = solve_mva(single_center(), 1)
        with pytest.raises(ConfigurationError):
            solution.residence_seen_by({"gpu": 0.1})


class TestSchweitzerApproximation:
    def test_close_to_exact_at_moderate_population(self):
        network = ClosedNetwork(
            centers=(queueing_center("cpu", 0.03), queueing_center("disk", 0.015)),
            think_time=1.0,
        )
        for n in (5, 20, 60):
            exact = solve_mva(network, n).throughput
            approx = approximate_mva(network, n).throughput
            assert approx == pytest.approx(exact, rel=0.05)

    def test_population_zero(self):
        assert approximate_mva(single_center(), 0).throughput == 0.0

    def test_single_customer_exact(self):
        # With n=1 Schweitzer sees an empty queue: identical to exact MVA.
        exact = solve_mva(single_center(0.1, 1.0), 1)
        approx = approximate_mva(single_center(0.1, 1.0), 1)
        assert approx.throughput == pytest.approx(exact.throughput)

    def test_negative_population_rejected(self):
        with pytest.raises(ConfigurationError):
            approximate_mva(single_center(), -2)
