"""Partial replication on the simulator pillar: routing, propagation, churn."""

import pytest

from repro.core import rng as rng_util
from repro.core.errors import ConfigurationError, SimulationError
from repro.partition import PartitionMap
from repro.simulator.des import Environment
from repro.simulator.faults import ReplicaFault
from repro.simulator.runner import MULTI_MASTER, SINGLE_MASTER, simulate
from repro.simulator.sampling import WorkloadSampler
from repro.simulator.stats import MetricsCollector
from repro.simulator.systems import (
    PARTITION_AWARE,
    MultiMasterSystem,
    select_replica,
)
from repro.workloads import tpcw


@pytest.fixture(scope="module")
def part_spec():
    """TPC-W shopping split into 4 partitions with 10% cross traffic."""
    return tpcw.SHOPPING.with_partitions(4, 0.1)


@pytest.fixture(scope="module")
def ring_map():
    return PartitionMap.ring(4, 4, 2)


def run_partial(spec, pm, design=MULTI_MASTER, replicas=4, seed=7,
                faults=()):
    return simulate(
        spec,
        spec.replication_config(replicas),
        design=design,
        seed=seed,
        warmup=2.0,
        duration=10.0,
        lb_policy=PARTITION_AWARE,
        partition_map=pm,
        faults=faults,
    )


class TestSamplerPartitions:
    def test_unpartitioned_spec_draws_nothing(self, shopping_spec):
        sampler = WorkloadSampler(shopping_spec, rng_util.make_rng(1))
        assert sampler.sample_partition_set(True) == ()
        ws = sampler.sample_writeset(0)
        assert ws.partitions == ()

    def test_unpartitioned_rng_stream_is_byte_identical(self, shopping_spec):
        # The partition plumbing must not perturb existing workloads:
        # the same seed yields the same writesets with and without the
        # new code paths armed.
        a = WorkloadSampler(shopping_spec, rng_util.make_rng(3))
        b = WorkloadSampler(shopping_spec, rng_util.make_rng(3))
        a.sample_partition_set(True)  # no-op draw
        assert a.sample_writeset(0).keys == b.sample_writeset(0).keys

    def test_partitioned_updates_get_partition_sets(self, part_spec, ring_map):
        sampler = WorkloadSampler(part_spec, rng_util.make_rng(2),
                                  partition_map=ring_map)
        seen_sizes = set()
        for _ in range(300):
            pset = sampler.sample_partition_set(True)
            assert 1 <= len(pset) <= 2
            seen_sizes.add(len(pset))
            for p in pset:
                assert 0 <= p < 4
            if len(pset) == 2:
                # Cross-partition pairs are co-located under the map.
                assert ring_map.common_hosts(pset)
        assert seen_sizes == {1, 2}  # cross fraction > 0 actually fires

    def test_reads_touch_one_partition(self, part_spec, ring_map):
        sampler = WorkloadSampler(part_spec, rng_util.make_rng(2),
                                  partition_map=ring_map)
        for _ in range(50):
            assert len(sampler.sample_partition_set(False)) == 1

    def test_partitioned_writeset_keys_are_qualified(self, part_spec):
        sampler = WorkloadSampler(part_spec, rng_util.make_rng(2))
        ws = sampler.sample_writeset(0, (1, 2))
        assert ws.partitions == (1, 2)
        per_partition = part_spec.conflict.db_update_size // 4
        for key in ws.keys:
            table, partition, row = key
            assert table == "updatable"
            assert partition in (1, 2)
            assert 0 <= row < per_partition

    def test_weighted_primary_draws(self):
        spec = tpcw.SHOPPING.with_partitions(
            2, partition_weights=(10.0, 1.0)
        )
        sampler = WorkloadSampler(spec, rng_util.make_rng(5))
        counts = [0, 0]
        for _ in range(400):
            (p,) = sampler.sample_partition_set(False)
            counts[p] += 1
        assert counts[0] > 5 * counts[1]


class TestPartitionRouting:
    class _FakeReplica:
        def __init__(self, name, hosted, active=0):
            self.name = name
            self.hosted_partitions = hosted
            self.active = active
            self.available = True
            self.applied_version = 0
            self.capacity = 1.0

    def test_routes_to_common_host(self):
        rng = rng_util.make_rng(1)
        replicas = [
            self._FakeReplica("r0", frozenset({0, 1})),
            self._FakeReplica("r1", frozenset({1, 2})),
            self._FakeReplica("r2", frozenset({2, 3})),
        ]
        pick = select_replica(PARTITION_AWARE, replicas, 0, True, rng,
                              partitions=(1, 2))
        assert pick.name == "r1"

    def test_falls_back_to_any_host(self):
        rng = rng_util.make_rng(1)
        replicas = [
            self._FakeReplica("r0", frozenset({0})),
            self._FakeReplica("r1", frozenset({1})),
        ]
        pick = select_replica(PARTITION_AWARE, replicas, 0, True, rng,
                              partitions=(0, 1))
        assert pick.name in ("r0", "r1")

    def test_least_loaded_among_hosts(self):
        rng = rng_util.make_rng(1)
        replicas = [
            self._FakeReplica("r0", frozenset({0}), active=5),
            self._FakeReplica("r1", frozenset({0}), active=1),
            self._FakeReplica("r2", frozenset({1}), active=0),
        ]
        pick = select_replica(PARTITION_AWARE, replicas, 0, False, rng,
                              partitions=(0,))
        assert pick.name == "r1"

    def test_filter_applies_to_every_policy(self):
        rng = rng_util.make_rng(1)
        replicas = [
            self._FakeReplica("r0", frozenset({0}), active=0),
            self._FakeReplica("r1", frozenset({1}), active=9),
        ]
        for policy in ("least-loaded", "pinned", "random",
                       "capacity-weighted"):
            pick = select_replica(policy, replicas, 3, False, rng,
                                  partitions=(1,))
            assert pick.name == "r1", policy


class TestPartialPropagationSim:
    def _build(self, spec, pm, seed=11):
        env = Environment()
        metrics = MetricsCollector()
        system = MultiMasterSystem(
            env, spec, spec.replication_config(4), seed, metrics,
            lb_policy=PARTITION_AWARE, partition_map=pm,
        )
        return env, system

    def test_partial_applies_fewer_writesets_than_full(self, part_spec,
                                                       ring_map):
        env, system = self._build(part_spec, ring_map)
        system.start_clients(system.config.total_clients)
        env.run_until(20.0)
        commits = system.certifier.commits
        assert commits > 0
        applied = sum(r.writesets_applied for r in system.replicas)
        # Full replication would apply each writeset at N-1 = 3 remote
        # replicas; a factor-2 ring applies at about h-1 ~ 1.1 of them.
        assert applied < 2.0 * commits
        assert applied >= commits  # at least one remote application each

    def test_all_watermarks_converge(self, part_spec, ring_map):
        env, system = self._build(part_spec, ring_map)
        system.start_clients(system.config.total_clients)
        env.run_until(20.0)
        system.stop_arrivals()
        env.run_until(30.0)
        latest = system.certifier.latest_version
        for replica in system.replicas:
            assert replica.applied_version == latest

    def test_partial_beats_full_on_update_heavy_mix(self):
        spec = tpcw.ORDERING.with_partitions(4, 0.1)
        pm = PartitionMap.ring(4, 4, 2)
        full = run_partial(spec, None)
        partial = run_partial(spec, pm)
        assert partial.throughput >= full.throughput

    def test_churned_routing_loses_nothing(self, part_spec, ring_map):
        # A drain fault takes one replica out mid-run; deferred
        # writesets must flush on recovery and every watermark converge.
        fault = ReplicaFault(replica_index=1, start=4.0, downtime=3.0)
        result = run_partial(part_spec, ring_map, faults=(fault,))
        assert result.throughput > 0

    def test_crash_faults_rejected_under_partial_map(self, part_spec,
                                                     ring_map):
        # A crash permanently loses the replica's partition copies and
        # replacement cannot run (elastic membership is rejected), so the
        # combination must fail loudly instead of silently dropping data.
        crash = ReplicaFault(replica_index=1, start=4.0, kind="crash")
        with pytest.raises(ConfigurationError):
            run_partial(part_spec, ring_map, faults=(crash,))
        # Full replication keeps crash faults available.
        result = run_partial(part_spec, None, faults=(crash,))
        assert result.throughput > 0

    def test_elastic_membership_rejected_under_partial_map(self, part_spec,
                                                           ring_map):
        env, system = self._build(part_spec, ring_map)
        with pytest.raises(SimulationError):
            system.add_replica()
        with pytest.raises(SimulationError):
            system.remove_replica()

    def test_full_map_keeps_membership_elastic(self, part_spec):
        env, system = self._build(part_spec, None)  # defaults to full
        replica = system.add_replica()
        assert replica in system.replicas


class TestPartialSingleMasterSim:
    def test_single_master_runs_partitioned(self, part_spec, ring_map):
        result = run_partial(part_spec, ring_map, design=SINGLE_MASTER)
        assert result.throughput > 0

    def test_simulate_validates_map(self, part_spec):
        with pytest.raises(ConfigurationError):
            run_partial(part_spec, PartitionMap.ring(4, 5, 2))
