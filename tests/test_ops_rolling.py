"""Rolling upgrades: cycle every replica through drain → detach → rejoin."""

import pytest

from repro.control.autoscale import autoscale_sim
from repro.control.controller import FixedPolicy
from repro.control.trace import DiurnalTrace
from repro.ops import OpsPlan, summarize
from repro.simulator.runner import MULTI_MASTER, SINGLE_MASTER


def _steady(rate, period=100.0):
    return DiurnalTrace(base_rate=rate, peak_rate=rate, period=period)


def _rolling_run(spec, design, rate=25.0):
    return autoscale_sim(
        spec,
        _steady(rate),
        FixedPolicy(replicas=3),
        design=design,
        seed=9,
        warmup=10.0,
        duration=110.0,
        control_interval=5.0,
        slo_response=1.5,
        max_replicas=6,
        ops=OpsPlan(rolling_start=25.0, rolling_settle=5.0),
    )


class TestRollingUpgradeSim:
    @pytest.fixture(scope="class", params=[MULTI_MASTER, SINGLE_MASTER])
    def result(self, request, shopping_spec):
        return _rolling_run(shopping_spec, request.param)

    def test_whole_fleet_cycled(self, result):
        # Multi-master cycles all 3 replicas; single-master its 2 slaves.
        expected = 3 if result.design == MULTI_MASTER else 2
        assert summarize(result).upgrades == expected
        assert any(e.kind == "rolling-complete" for e in result.ops_events)

    def test_one_at_a_time(self, result):
        # The fleet is never more than one replica short of its target.
        assert min(p.members for p in result.timeline) >= 2
        assert result.final_members == 3

    def test_drain_precedes_rejoin_each_cycle(self, result):
        ordered = [e.kind for e in result.ops_events
                   if e.kind in ("drain", "detach", "rejoin", "upgraded")]
        for i in range(0, len(ordered), 4):
            assert ordered[i:i + 4] == ["drain", "detach", "rejoin",
                                        "upgraded"]

    def test_converged_after_upgrade(self, result):
        assert result.converged
        assert len(set(result.final_versions)) <= 1

    def test_slo_unharmed_at_modest_load(self, result):
        # At ~45% load a single-replica-out fleet still clears the SLO,
        # so the rolling sweep must not produce a violation spike.
        assert result.slo_violation_fraction <= 0.02


class TestRollingIsSerialized:
    def test_no_overlapping_cycles(self, shopping_spec):
        result = _rolling_run(shopping_spec, MULTI_MASTER)
        out = 0
        for event in result.ops_events:
            if event.kind == "drain":
                out += 1
                assert out == 1  # never two replicas leaving at once
            elif event.kind == "upgraded":
                out -= 1
