"""Tests for failure injection and the failover experiment."""

import pytest

from repro.core.errors import ConfigurationError
from repro.experiments.failover import failover_experiment
from repro.simulator.faults import (
    CRASH,
    ReplicaFault,
    crash_fault,
    install_faults,
    validate_faults,
)
from repro.simulator.runner import MULTI_MASTER, SINGLE_MASTER, simulate


class TestReplicaFault:
    def test_end_time(self):
        fault = ReplicaFault(replica_index=1, start=10.0, downtime=5.0)
        assert fault.end == 15.0

    def test_rejects_negative_index(self):
        with pytest.raises(ConfigurationError):
            ReplicaFault(replica_index=-1, start=0.0, downtime=1.0)

    def test_rejects_zero_downtime(self):
        with pytest.raises(ConfigurationError):
            ReplicaFault(replica_index=0, start=0.0, downtime=0.0)

    def test_validate_rejects_out_of_range_replica(self):
        fault = ReplicaFault(replica_index=5, start=0.0, downtime=1.0)
        with pytest.raises(ConfigurationError):
            validate_faults([fault], replicas=4, design=MULTI_MASTER)

    def test_validate_rejects_master_fault(self):
        fault = ReplicaFault(replica_index=0, start=0.0, downtime=1.0)
        with pytest.raises(ConfigurationError):
            validate_faults([fault], replicas=4, design=SINGLE_MASTER)

    def test_validate_allows_slave_fault(self):
        fault = ReplicaFault(replica_index=1, start=0.0, downtime=1.0)
        assert validate_faults([fault], replicas=4, design=SINGLE_MASTER)

    def test_validate_rejects_standalone(self):
        fault = ReplicaFault(replica_index=0, start=0.0, downtime=1.0)
        with pytest.raises(ConfigurationError):
            validate_faults([fault], replicas=1, design="standalone")


class TestFaultedSimulation:
    def test_throughput_dips_during_outage(self, shopping_spec):
        config = shopping_spec.replication_config(3)
        fault = ReplicaFault(replica_index=0, start=14.0, downtime=12.0)
        result = simulate(
            shopping_spec, config, design=MULTI_MASTER, seed=3,
            warmup=4.0, duration=32.0, faults=[fault],
        )
        timeline = list(result.throughput_timeline)
        # Fault covers window seconds [10, 22).
        healthy = sum(timeline[0:9]) / 9
        degraded = sum(timeline[12:21]) / 9
        assert degraded < 0.85 * healthy

    def test_throughput_recovers_after_outage(self, shopping_spec):
        config = shopping_spec.replication_config(3)
        fault = ReplicaFault(replica_index=0, start=10.0, downtime=8.0)
        result = simulate(
            shopping_spec, config, design=MULTI_MASTER, seed=4,
            warmup=4.0, duration=40.0, faults=[fault],
        )
        timeline = list(result.throughput_timeline)
        healthy = sum(timeline[0:5]) / 5
        recovered = sum(timeline[22:40]) / 18
        assert recovered > 0.9 * healthy

    def test_replica_catches_up_after_recovery(self, shopping_spec):
        from repro.simulator.des import Environment
        from repro.simulator.stats import MetricsCollector
        from repro.simulator.systems import MultiMasterSystem

        env = Environment()
        metrics = MetricsCollector()
        config = shopping_spec.replication_config(3)
        system = MultiMasterSystem(env, shopping_spec, config, 5, metrics)
        system.start_clients(config.total_clients)
        victim = system.replicas[1]
        env.schedule(5.0, lambda: setattr(victim, "available", False))
        env.schedule(15.0, lambda: setattr(victim, "available", True))
        env.run_until(12.0)
        backlog_while_down = victim.apply_backlog
        env.run_until(40.0)
        assert backlog_while_down > 0  # missed writesets queued while down
        # Caught up after recovery, modulo the few writesets always in
        # flight (propagation delay + application time).
        assert victim.apply_backlog <= 10
        assert victim.apply_backlog < backlog_while_down

    def test_fault_in_standalone_rejected(self, shopping_spec):
        with pytest.raises(ConfigurationError):
            simulate(
                shopping_spec,
                shopping_spec.replication_config(1),
                design="standalone",
                faults=[ReplicaFault(0, 1.0, 1.0)],
                warmup=1.0,
                duration=2.0,
            )

    def test_timeline_present_without_faults(self, shopping_spec):
        result = simulate(
            shopping_spec, shopping_spec.replication_config(1),
            design="standalone", seed=6, warmup=2.0, duration=10.0,
        )
        timeline = list(result.throughput_timeline)
        assert len(timeline) == 10
        assert sum(timeline) == result.committed_transactions


class TestFaultEdgeCases:
    def test_fault_after_run_end_has_no_effect(self, shopping_spec):
        config = shopping_spec.replication_config(2)
        kwargs = dict(design=MULTI_MASTER, seed=11, warmup=2.0,
                      duration=10.0)
        baseline = simulate(shopping_spec, config, **kwargs)
        late = simulate(
            shopping_spec, config,
            faults=[ReplicaFault(0, start=500.0, downtime=5.0)],
            **kwargs,
        )
        # The callbacks never fire inside the horizon: byte-identical run.
        assert late.committed_transactions == baseline.committed_transactions
        assert late.throughput == baseline.throughput

    def test_overlapping_faults_nest(self, shopping_spec):
        from repro.simulator.des import Environment
        from repro.simulator.stats import MetricsCollector
        from repro.simulator.systems import MultiMasterSystem

        env = Environment()
        system = MultiMasterSystem(
            env, shopping_spec, shopping_spec.replication_config(3), 2,
            MetricsCollector(),
        )
        victim = system.replicas[1]
        install_faults(env, system, [
            ReplicaFault(1, start=5.0, downtime=10.0),   # [5, 15)
            ReplicaFault(1, start=10.0, downtime=10.0),  # [10, 20)
        ])
        env.run_until(12.0)
        assert not victim.available
        env.run_until(17.0)
        # The first fault ended at 15, but the second is still open: the
        # replica must stay down until the *last* overlapping outage ends.
        assert not victim.available
        env.run_until(21.0)
        assert victim.available

    def test_single_master_master_crash_rejected(self):
        with pytest.raises(ConfigurationError):
            validate_faults(
                [crash_fault(0, 5.0)], replicas=4, design=SINGLE_MASTER
            )

    def test_single_master_slave_crash_allowed(self):
        checked = validate_faults(
            [crash_fault(2, 5.0)], replicas=4, design=SINGLE_MASTER
        )
        assert checked[0].kind == CRASH

    def test_crash_fault_needs_no_downtime(self):
        fault = crash_fault(1, 3.0)
        assert fault.downtime == 0.0

    def test_drain_fault_still_requires_downtime(self):
        with pytest.raises(ConfigurationError):
            ReplicaFault(1, start=3.0, downtime=0.0, kind="drain")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            ReplicaFault(1, start=3.0, downtime=1.0, kind="meteor")

    def test_crashed_replica_drops_writesets(self, shopping_spec):
        from repro.simulator.des import Environment
        from repro.simulator.stats import MetricsCollector
        from repro.simulator.systems import MultiMasterSystem

        env = Environment()
        system = MultiMasterSystem(
            env, shopping_spec, shopping_spec.replication_config(3), 3,
            MetricsCollector(),
        )
        system.start_clients(system.config.total_clients)
        victim = system.replicas[1]
        install_faults(env, system, [crash_fault(1, 5.0)])
        env.run_until(30.0)
        assert victim.failed
        assert not victim.available
        # Crash = stopped consuming writesets: nothing was deferred for
        # catch-up, and the applied watermark froze at crash time.
        assert victim._deferred == []
        assert victim.applied_version < system.certifier.latest_version


class TestFailoverExperiment:
    @pytest.fixture(scope="class")
    def result(self, shopping_spec, tiny_settings):
        return failover_experiment(
            shopping_spec, replicas=4, settings=tiny_settings,
            phase_length=18.0,
        )

    def test_dip_and_recovery(self, result):
        assert result.during < result.before
        assert result.recovered

    def test_model_tracks_both_phases(self, result):
        assert result.before == pytest.approx(result.predicted_healthy, rel=0.15)
        assert result.during == pytest.approx(result.predicted_degraded, rel=0.15)

    def test_dip_fraction_reasonable(self, result):
        # Losing 1 of 4 replicas costs roughly a quarter of capacity.
        assert 0.10 < result.dip_fraction < 0.40

    def test_to_text_renders(self, result):
        text = result.to_text()
        assert "failover" in text
        assert "recovered" in text

    def test_requires_two_replicas(self, shopping_spec, tiny_settings):
        with pytest.raises(ConfigurationError):
            failover_experiment(shopping_spec, replicas=1,
                                settings=tiny_settings)
