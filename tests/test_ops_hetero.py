"""Heterogeneous-capacity pools: resource rates, routing, and planning."""

import pytest

from repro.core.errors import ConfigurationError
from repro.models.planning import plan_deployment, plan_mixed_fleet
from repro.simulator.des import Environment
from repro.simulator.resources import FIFOResource, ProcessorSharingResource
from repro.simulator.runner import MULTI_MASTER, simulate
from repro.simulator.systems import (
    CAPACITY_WEIGHTED,
    check_capacities,
    select_replica,
)


class TestCapacityRates:
    def test_ps_resource_rate_halves_service_time(self):
        env = Environment()
        fast = ProcessorSharingResource(env, "fast", rate=2.0)
        done = []
        fast.submit(1.0, lambda: done.append(env.now))
        env.run_until(10.0)
        assert done == [pytest.approx(0.5)]

    def test_fifo_resource_rate_halves_service_time(self):
        env = Environment()
        fast = FIFOResource(env, "fast", rate=2.0)
        done = []
        fast.submit(1.0, lambda: done.append(env.now))
        env.run_until(10.0)
        assert done == [pytest.approx(0.5)]

    def test_rate_must_be_positive(self):
        env = Environment()
        with pytest.raises(Exception):
            ProcessorSharingResource(env, "bad", rate=0.0)

    def test_check_capacities_validates_length(self):
        with pytest.raises(ConfigurationError):
            check_capacities((1.0, 2.0), replicas=3)

    def test_check_capacities_rejects_non_positive(self):
        with pytest.raises(ConfigurationError):
            check_capacities((1.0, 0.0, 1.0), replicas=3)

    def test_check_capacities_none_means_uniform(self):
        assert check_capacities(None, replicas=4) is None


class _FakeReplica:
    def __init__(self, name, active, capacity):
        self.name = name
        self.active = active
        self.capacity = capacity
        self.available = True
        self.applied_version = 0


class TestCapacityWeightedRouting:
    def test_prefers_fast_box_at_equal_queue(self):
        fast = _FakeReplica("fast", active=2, capacity=2.0)
        slow = _FakeReplica("slow", active=2, capacity=1.0)
        pick = select_replica(
            CAPACITY_WEIGHTED, [slow, fast], 0, False, rng=None
        )
        assert pick is fast

    def test_slow_box_wins_when_truly_idle(self):
        fast = _FakeReplica("fast", active=4, capacity=2.0)
        slow = _FakeReplica("slow", active=0, capacity=1.0)
        pick = select_replica(
            CAPACITY_WEIGHTED, [slow, fast], 0, False, rng=None
        )
        assert pick is slow


class TestHeterogeneousSimulation:
    @pytest.fixture(scope="class")
    def results(self, shopping_spec):
        # Open-loop load: a closed loop's think-time feedback would let
        # even capacity-oblivious policies self-correct.
        config = shopping_spec.replication_config(3)
        kwargs = dict(
            design=MULTI_MASTER, seed=3, warmup=5.0, duration=30.0,
            capacities=(2.0, 1.0, 0.5), arrival_rate=60.0,
        )
        return {
            policy: simulate(shopping_spec, config, lb_policy=policy,
                             **kwargs)
            for policy in ("least-loaded", CAPACITY_WEIGHTED, "random")
        }

    def test_capacity_weighted_cuts_response_time(self, results):
        # Least-loaded partially adapts through queue feedback but still
        # trails capacity weighting; a capacity-oblivious policy
        # saturates the half-speed box outright.
        assert (results[CAPACITY_WEIGHTED].response_time
                < results["least-loaded"].response_time)
        assert (results[CAPACITY_WEIGHTED].response_time
                < 0.25 * results["random"].response_time)

    def test_fast_box_carries_more_load(self, results):
        cpu = {
            name: busy for name, busy in
            results[CAPACITY_WEIGHTED].utilizations.items()
            if name.endswith(".cpu")
        }
        # Utilizations equalize under capacity weighting (each box runs
        # at its share), while the oblivious policy pins the slow box.
        assert max(cpu.values()) - min(cpu.values()) < 0.2
        random_cpu = results["random"].utilizations["replica2.cpu"]
        assert random_cpu > 0.9

    def test_capacities_rejected_for_standalone(self, shopping_spec):
        with pytest.raises(ConfigurationError):
            simulate(
                shopping_spec, shopping_spec.replication_config(1),
                design="standalone", warmup=1.0, duration=2.0,
                capacities=(1.0,),
            )

    def test_capacities_length_checked(self, shopping_spec):
        with pytest.raises(ConfigurationError):
            simulate(
                shopping_spec, shopping_spec.replication_config(3),
                design=MULTI_MASTER, warmup=1.0, duration=2.0,
                capacities=(1.0, 2.0),
            )


class TestMixedFleetPlanning:
    def test_takes_largest_machines_first(self, shopping_spec,
                                          shopping_profile):
        config = shopping_spec.replication_config(1)
        homogeneous = plan_deployment(
            shopping_profile, config, target_throughput=40.0,
            designs=(MULTI_MASTER,),
        )
        assert homogeneous is not None
        plan = plan_mixed_fleet(
            shopping_profile, config, target_throughput=40.0,
            capacities=(0.5, 2.0, 1.0, 1.0), design=MULTI_MASTER,
        )
        assert plan is not None
        assert plan.capacities[0] == 2.0  # largest first
        assert list(plan.capacities) == sorted(plan.capacities,
                                               reverse=True)
        # The mixed fleet needs no more machines than identical boxes.
        assert plan.machines <= homogeneous.replicas + 1

    def test_none_when_inventory_too_small(self, shopping_spec,
                                           shopping_profile):
        plan = plan_mixed_fleet(
            shopping_profile, shopping_spec.replication_config(1),
            target_throughput=1e6, capacities=(1.0, 1.0),
            design=MULTI_MASTER,
        )
        assert plan is None

    def test_effective_replicas_is_capacity_sum(self, shopping_spec,
                                                shopping_profile):
        plan = plan_mixed_fleet(
            shopping_profile, shopping_spec.replication_config(1),
            target_throughput=10.0, capacities=(2.0, 1.0),
            design=MULTI_MASTER,
        )
        assert plan is not None
        assert plan.effective_replicas == pytest.approx(
            sum(plan.capacities)
        )
        assert plan.load_factor <= 1.0
        assert "machines" in plan.to_text()

    def test_validation(self, shopping_spec, shopping_profile):
        config = shopping_spec.replication_config(1)
        with pytest.raises(ConfigurationError):
            plan_mixed_fleet(shopping_profile, config, 0.0, (1.0,))
        with pytest.raises(ConfigurationError):
            plan_mixed_fleet(shopping_profile, config, 10.0, ())
        with pytest.raises(ConfigurationError):
            plan_mixed_fleet(shopping_profile, config, 10.0, (1.0, -1.0))
        with pytest.raises(ConfigurationError):
            plan_mixed_fleet(shopping_profile, config, 10.0, (1.0,),
                             headroom=1.0)
