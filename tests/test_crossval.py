"""Tests for the three-pillar cross-validation harness and CLI."""

from __future__ import annotations

import pytest

from repro.core.errors import ConfigurationError
from repro.core.params import ConflictProfile, ReplicationConfig, WorkloadMix
from repro.experiments import cross_validate, resolve_workload
from repro.workloads.spec import WorkloadSpec, demands_ms


@pytest.fixture(scope="module")
def tiny_spec():
    return WorkloadSpec(
        benchmark="micro",
        mix_name="crossval-tiny",
        mix=WorkloadMix(read_fraction=0.6, write_fraction=0.4),
        demands=demands_ms(
            read_cpu=3.0, read_disk=1.0,
            write_cpu=2.0, write_disk=1.0,
            writeset_cpu=0.5, writeset_disk=0.3,
        ),
        clients_per_replica=6,
        think_time=0.05,
        conflict=ConflictProfile(db_update_size=500, updates_per_transaction=2),
    )


@pytest.fixture(scope="module")
def result(tiny_spec):
    config = ReplicationConfig(
        replicas=2,
        clients_per_replica=tiny_spec.clients_per_replica,
        think_time=tiny_spec.think_time,
        load_balancer_delay=0.0005,
        certifier_delay=0.002,
    )
    return cross_validate(
        tiny_spec,
        config,
        design="multi-master",
        profile=tiny_spec.ground_truth_profile(),
        sim_warmup=2.0,
        sim_duration=8.0,
        cluster_warmup=0.5,
        cluster_duration=2.5,
        time_scale=1.0,
    )


def test_resolve_workload_accepts_bare_benchmark_names():
    assert resolve_workload("tpcw").name == "tpcw/shopping"
    assert resolve_workload("rubis").name == "rubis/bidding"
    assert resolve_workload("tpcw/ordering").name == "tpcw/ordering"
    with pytest.raises(ConfigurationError):
        resolve_workload("tpce")


def test_crossval_compares_all_three_pillars(result):
    assert result.model.pillar == "model"
    assert result.simulator.pillar == "simulator"
    assert result.cluster.pillar == "cluster"
    for point in (result.model, result.simulator, result.cluster):
        assert point.throughput > 0
        assert point.response_time > 0
        assert 0.0 <= point.abort_rate < 0.5


def test_crossval_reports_deviations_vs_simulator(result):
    deviations = result.deviations()
    assert set(deviations) == {"model", "cluster"}
    for pillar in deviations.values():
        assert set(pillar) == {"throughput", "response_time", "abort_rate"}
        assert all(v >= 0.0 for v in pillar.values())
    assert result.cluster_throughput_deviation == (
        deviations["cluster"]["throughput"]
    )
    # The smoke criterion the live runtime is built to meet.
    assert result.cluster_throughput_deviation < 0.25


def test_crossval_checks_replication_correctness(result):
    assert result.converged
    assert result.state_converged
    assert len(set(result.final_versions)) == 1


def test_crossval_to_text_renders_deviation_table(result):
    text = result.to_text()
    assert "cross-validation" in text
    for pillar in ("model", "simulator", "cluster"):
        assert pillar in text
    assert "tput dev" in text
    assert "identical" in text


def test_cli_crossval_smoke(capsys):
    from repro.cli import main

    code = main([
        "crossval", "--workload", "tpcw", "--replicas", "2",
        "--warmup", "1", "--duration", "4", "--time-scale", "0.02",
        "--sim-warmup", "2", "--sim-duration", "8",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "cross-validation: tpcw/shopping on multi-master, N=2" in out
    assert "identical" in out
