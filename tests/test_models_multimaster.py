"""Unit tests for the multi-master analytical model."""

import pytest

from repro.core.errors import ConfigurationError
from repro.core.params import ReplicationConfig, StandaloneProfile, WorkloadMix
from repro.models.multimaster import (
    CW_FIXED_POINT,
    CW_ONE_STEP_LAG,
    MultiMasterOptions,
    predict_multimaster,
)
from repro.models.standalone import predict_standalone


def config(n, clients=20, **kwargs):
    return ReplicationConfig(replicas=n, clients_per_replica=clients, **kwargs)


class TestMultiMasterBasics:
    def test_throughput_positive(self, simple_profile):
        prediction = predict_multimaster(simple_profile, config(4))
        assert prediction.throughput > 0

    def test_replica_count_echoed(self, simple_profile):
        assert predict_multimaster(simple_profile, config(8)).replicas == 8

    def test_n1_close_to_standalone_plus_middleware(self, simple_profile):
        mm = predict_multimaster(
            simple_profile,
            config(1, load_balancer_delay=0.0, certifier_delay=0.0),
        )
        standalone = predict_standalone(simple_profile, clients=20)
        # Without middleware delays the MM model at N=1 is the standalone
        # model (abort-rate feedback differs only in the third decimal).
        assert mm.throughput == pytest.approx(standalone.throughput, rel=0.02)

    def test_throughput_increases_with_replicas(self, simple_profile):
        values = [
            predict_multimaster(simple_profile, config(n)).throughput
            for n in (1, 2, 4, 8)
        ]
        assert values == sorted(values)

    def test_speedup_sublinear_with_updates(self, simple_profile):
        x1 = predict_multimaster(simple_profile, config(1)).throughput
        x8 = predict_multimaster(simple_profile, config(8)).throughput
        assert x8 < 8 * x1

    def test_read_only_workload_scales_linearly(self, simple_demands):
        profile = StandaloneProfile(
            mix=WorkloadMix(read_fraction=1.0, write_fraction=0.0),
            demands=simple_demands,
        )
        x1 = predict_multimaster(profile, config(1)).throughput
        x8 = predict_multimaster(profile, config(8)).throughput
        assert x8 == pytest.approx(8 * x1, rel=1e-9)

    def test_read_only_has_zero_aborts_and_window(self, simple_demands):
        profile = StandaloneProfile(
            mix=WorkloadMix(read_fraction=1.0, write_fraction=0.0),
            demands=simple_demands,
        )
        prediction = predict_multimaster(profile, config(4))
        assert prediction.abort_rate == 0.0
        assert prediction.conflict_window == 0.0


class TestAbortBehaviour:
    def test_abort_rate_grows_with_replicas(self, simple_profile):
        values = [
            predict_multimaster(simple_profile, config(n)).abort_rate
            for n in (1, 2, 4, 8, 16)
        ]
        assert values == sorted(values)

    def test_conflict_window_at_least_certification(self, simple_profile):
        prediction = predict_multimaster(simple_profile, config(4))
        assert prediction.conflict_window >= 0.012

    def test_zero_a1_predicts_zero_an(self, simple_profile):
        profile = simple_profile.replace(abort_rate=0.0)
        prediction = predict_multimaster(profile, config(16))
        assert prediction.abort_rate == 0.0

    def test_higher_a1_higher_an(self, simple_profile):
        low = predict_multimaster(
            simple_profile.replace(abort_rate=0.001), config(8)
        ).abort_rate
        high = predict_multimaster(
            simple_profile.replace(abort_rate=0.01), config(8)
        ).abort_rate
        assert high > low

    def test_fixed_point_mode_at_least_one_step_lag(self, simple_profile):
        profile = simple_profile.replace(abort_rate=0.01)
        lag = predict_multimaster(
            profile, config(8),
            options=MultiMasterOptions(cw_mode=CW_ONE_STEP_LAG),
        ).abort_rate
        fp = predict_multimaster(
            profile, config(8),
            options=MultiMasterOptions(cw_mode=CW_FIXED_POINT),
        ).abort_rate
        # The paper notes the one-step lag slightly under-estimates AN.
        assert fp >= lag * 0.99

    def test_invalid_cw_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            MultiMasterOptions(cw_mode="psychic")


class TestMiddlewareDelays:
    def test_certifier_delay_only_affects_updates(self, simple_demands):
        read_only = StandaloneProfile(
            mix=WorkloadMix(read_fraction=1.0, write_fraction=0.0),
            demands=simple_demands,
        )
        fast = predict_multimaster(
            read_only, config(2, certifier_delay=0.0)
        ).throughput
        slow = predict_multimaster(
            read_only, config(2, certifier_delay=0.5)
        ).throughput
        assert fast == pytest.approx(slow)

    def test_certifier_delay_slows_update_mixes(self, simple_profile):
        fast = predict_multimaster(
            simple_profile, config(2, certifier_delay=0.0)
        ).response_time
        slow = predict_multimaster(
            simple_profile, config(2, certifier_delay=0.1)
        ).response_time
        assert slow > fast

    def test_lb_delay_increases_response(self, simple_profile):
        fast = predict_multimaster(
            simple_profile, config(2, load_balancer_delay=0.0)
        ).response_time
        slow = predict_multimaster(
            simple_profile, config(2, load_balancer_delay=0.05)
        ).response_time
        # The delay center adds 50 ms of residence, minus the queueing
        # relief from the slightly lower throughput it induces.
        assert 0.03 <= slow - fast <= 0.05 + 1e-9

    def test_unlimited_concurrency_allowed(self, simple_profile):
        prediction = predict_multimaster(
            simple_profile, config(4, max_concurrency=None)
        )
        assert prediction.throughput > 0

    def test_mpl_caps_conflict_window(self, simple_profile):
        # Saturated replica: small MPL bounds CW, large MPL lets it grow.
        cfg_small = config(8, clients=60, max_concurrency=4)
        cfg_large = config(8, clients=60, max_concurrency=1000)
        small = predict_multimaster(simple_profile, cfg_small).conflict_window
        large = predict_multimaster(simple_profile, cfg_large).conflict_window
        assert small <= large


class TestDiagnostics:
    def test_breakdown_has_one_replica_entry(self, simple_profile):
        prediction = predict_multimaster(simple_profile, config(4))
        assert len(prediction.breakdown) == 1
        assert prediction.breakdown[0].role == "replica"

    def test_system_throughput_is_n_times_replica(self, simple_profile):
        prediction = predict_multimaster(simple_profile, config(4))
        assert prediction.throughput == pytest.approx(
            4 * prediction.breakdown[0].throughput
        )

    def test_utilization_reported_and_bounded(self, simple_profile):
        prediction = predict_multimaster(simple_profile, config(4, clients=100))
        assert 0 < prediction.point.utilization["cpu"] <= 1.0

    def test_interactive_response_time_consistency(self, simple_profile):
        # X = C / (Z + R) per replica.
        cfg = config(4)
        prediction = predict_multimaster(simple_profile, cfg)
        per_replica = prediction.throughput / 4
        implied = cfg.clients_per_replica / (
            cfg.think_time + prediction.response_time
        )
        assert per_replica == pytest.approx(implied, rel=1e-6)


class TestPartialReplicationModel:
    """The partition-aware extension: per-replica update load as the sum
    over hosted partitions (writeset fan-in ``h - 1`` instead of
    ``N - 1``)."""

    def _maps(self):
        from repro.partition import PartitionMap

        return (
            PartitionMap.full(6, 6),
            PartitionMap.ring(6, 6, 2),
        )

    def test_partial_replication_raises_predicted_throughput(
        self, simple_profile
    ):
        full_map, ring_map = self._maps()
        full = predict_multimaster(simple_profile, config(6),
                                   partition_map=full_map)
        partial = predict_multimaster(simple_profile, config(6),
                                      partition_map=ring_map)
        assert partial.throughput > full.throughput

    def test_full_map_matches_unpartitioned_model(self, simple_profile):
        full_map, _ = self._maps()
        plain = predict_multimaster(simple_profile, config(6))
        mapped = predict_multimaster(simple_profile, config(6),
                                     partition_map=full_map)
        assert mapped.throughput == pytest.approx(plain.throughput)
        assert mapped.response_time == pytest.approx(plain.response_time)

    def test_cross_partition_fraction_costs_throughput(self, simple_profile):
        _, ring_map = self._maps()
        local = predict_multimaster(simple_profile, config(6),
                                    partition_map=ring_map,
                                    cross_partition_fraction=0.0)
        crossy = predict_multimaster(simple_profile, config(6),
                                     partition_map=ring_map,
                                     cross_partition_fraction=0.5)
        assert crossy.throughput < local.throughput

    def test_map_replica_count_must_match(self, simple_profile):
        _, ring_map = self._maps()
        with pytest.raises(ConfigurationError):
            predict_multimaster(simple_profile, config(4),
                                partition_map=ring_map)

    def test_api_rejects_partition_map_for_single_master(
        self, simple_profile
    ):
        from repro.models.api import predict
        from repro.partition import PartitionMap

        with pytest.raises(ConfigurationError):
            predict("single-master", simple_profile, config(4),
                    partition_map=PartitionMap.ring(4, 4, 2))


class TestCertifierModel:
    """The certifier axis: a global sequencer as one N-scaled service
    center vs per-partition shards (service demand divided by the
    effective shard count, cross-partition commits charged an extra
    coordination round)."""

    def _contended(self, simple_demands):
        return StandaloneProfile(
            mix=WorkloadMix(read_fraction=0.5, write_fraction=0.5),
            demands=simple_demands,
            abort_rate=0.001,
            update_response_time=0.050,
        )

    def _spec(self, kind, service_time=0.008):
        from repro.sidb.certifier_api import CertifierSpec

        return CertifierSpec(kind, service_time=service_time)

    def test_default_global_spec_is_byte_identical(self, simple_profile):
        plain = predict_multimaster(simple_profile, config(8))
        spec = predict_multimaster(simple_profile, config(8),
                                   certifier=self._spec("global", 0.0))
        named = predict_multimaster(simple_profile, config(8),
                                    certifier="global")
        assert spec == plain
        assert named == plain

    def test_zero_cost_sharding_matches_the_default(self, simple_profile):
        plain = predict_multimaster(simple_profile, config(8), partitions=8)
        sharded = predict_multimaster(simple_profile, config(8),
                                      certifier=self._spec("sharded", 0.0),
                                      partitions=8)
        assert sharded.throughput == pytest.approx(plain.throughput)

    def test_certifier_service_time_costs_throughput(self, simple_demands):
        profile = self._contended(simple_demands)
        free = predict_multimaster(profile, config(12))
        busy = predict_multimaster(profile, config(12),
                                   certifier=self._spec("global"))
        assert busy.throughput < free.throughput

    def test_sharded_dominates_contended_global(self, simple_demands):
        """The tentpole claim: at high Pw and many partitions, sharding
        the sequencer strictly beats the global certifier."""
        profile = self._contended(simple_demands)
        cfg = config(12, certifier_delay=0.012)
        global_ = predict_multimaster(profile, cfg,
                                      certifier=self._spec("global"),
                                      partitions=8)
        sharded = predict_multimaster(profile, cfg,
                                      certifier=self._spec("sharded"),
                                      partitions=8,
                                      cross_partition_fraction=0.2)
        assert sharded.throughput > global_.throughput

    def test_more_shards_never_hurt(self, simple_demands):
        profile = self._contended(simple_demands)
        cfg = config(12, certifier_delay=0.012)
        values = [
            predict_multimaster(profile, cfg,
                                certifier=self._spec("sharded"),
                                partitions=p).throughput
            for p in (2, 4, 8)
        ]
        assert values == sorted(values)

    def test_cross_partition_rounds_cost_sharded_throughput(
        self, simple_demands
    ):
        profile = self._contended(simple_demands)
        cfg = config(12, certifier_delay=0.012)
        local = predict_multimaster(profile, cfg,
                                    certifier=self._spec("sharded"),
                                    partitions=8,
                                    cross_partition_fraction=0.0)
        crossy = predict_multimaster(profile, cfg,
                                     certifier=self._spec("sharded"),
                                     partitions=8,
                                     cross_partition_fraction=0.5)
        assert crossy.throughput < local.throughput

    def test_skewed_shards_certify_worse_than_uniform(self, simple_demands):
        profile = self._contended(simple_demands)
        cfg = config(12, certifier_delay=0.012)
        uniform = predict_multimaster(profile, cfg,
                                      certifier=self._spec("sharded"),
                                      partitions=4)
        skewed = predict_multimaster(profile, cfg,
                                     certifier=self._spec("sharded"),
                                     partitions=4,
                                     partition_weights=(0.85, 0.05,
                                                        0.05, 0.05))
        assert skewed.throughput < uniform.throughput

    def test_unknown_certifier_rejected_with_suggestion(
        self, simple_profile
    ):
        from repro.sidb.certifier_api import UnknownCertifierError

        with pytest.raises(UnknownCertifierError, match="did you mean"):
            predict_multimaster(simple_profile, config(4),
                                certifier="shraded")

    def test_api_rejects_certifier_for_single_master(self, simple_profile):
        from repro.models.api import predict

        with pytest.raises(ConfigurationError, match="multi-master only"):
            predict("single-master", simple_profile, config(4),
                    certifier="sharded")

    def test_api_allows_default_spec_for_single_master(self, simple_profile):
        from repro.models.api import predict

        prediction = predict("single-master", simple_profile, config(4),
                             certifier="global")
        assert prediction.throughput > 0
