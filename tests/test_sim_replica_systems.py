"""Unit and integration tests for replicas and the simulated systems."""

import pytest

from repro.core import rng as rng_util
from repro.core.errors import ConfigurationError, SimulationError
from repro.simulator.des import Environment
from repro.simulator.replica import SimReplica
from repro.simulator.runner import (
    MULTI_MASTER,
    SINGLE_MASTER,
    STANDALONE,
    simulate,
)
from repro.simulator.sampling import WorkloadSampler
from repro.simulator.stats import MetricsCollector
from repro.simulator.systems import MultiMasterSystem, SingleMasterSystem


def make_replica(spec, seed=1):
    env = Environment()
    sampler = WorkloadSampler(spec, rng_util.make_rng(seed))
    return env, SimReplica(env, "r0", sampler)


class TestReplicaWatermark:
    def test_applied_version_advances_contiguously(self, shopping_spec):
        env, replica = make_replica(shopping_spec)
        replica.enqueue_writeset(1, charged=False)
        assert replica.applied_version == 1
        replica.enqueue_writeset(2, charged=False)
        replica.enqueue_writeset(3, charged=False)
        assert replica.applied_version == 3

    def test_charged_writeset_takes_time(self, shopping_spec):
        env, replica = make_replica(shopping_spec)
        replica.enqueue_writeset(1, charged=True)
        assert replica.applied_version == 0  # not applied yet
        env.run_until(5.0)
        assert replica.applied_version == 1
        assert replica.writesets_applied == 1

    def test_watermark_waits_for_gap(self, shopping_spec):
        env, replica = make_replica(shopping_spec)
        replica.enqueue_writeset(1, charged=True)  # slow (needs service)
        replica.enqueue_writeset(2, charged=False)  # instant, but gapped
        assert replica.applied_version == 0
        env.run_until(5.0)
        assert replica.applied_version == 2

    def test_out_of_order_enqueue_rejected(self, shopping_spec):
        env, replica = make_replica(shopping_spec)
        replica.enqueue_writeset(2, charged=False)
        with pytest.raises(SimulationError):
            replica.enqueue_writeset(1, charged=False)

    def test_duplicate_version_rejected(self, shopping_spec):
        env, replica = make_replica(shopping_spec)
        replica.enqueue_writeset(1, charged=False)
        with pytest.raises(SimulationError):
            replica.enqueue_writeset(1, charged=False)

    def test_backlog_counts_unapplied(self, shopping_spec):
        env, replica = make_replica(shopping_spec)
        replica.enqueue_writeset(1, charged=True)
        replica.enqueue_writeset(2, charged=True)
        assert replica.apply_backlog == 2
        env.run_until(10.0)
        assert replica.apply_backlog == 0


def quick_sim(spec, design, replicas=2, seed=7, duration=8.0, **kwargs):
    config = spec.replication_config(replicas)
    return simulate(
        spec, config, design=design, seed=seed, warmup=2.0,
        duration=duration, **kwargs,
    )


class TestStandaloneSimulation:
    def test_throughput_within_capacity(self, shopping_spec):
        result = quick_sim(shopping_spec, STANDALONE, replicas=1)
        demand = (
            shopping_spec.mix.read_fraction * shopping_spec.demands.read.cpu
            + shopping_spec.mix.write_fraction * shopping_spec.demands.write.cpu
        )
        # Capacity bound with ~10% sampling allowance.
        assert result.throughput <= 1.1 / demand

    def test_read_only_workload_has_no_aborts(self, rubis_browsing_spec):
        result = quick_sim(rubis_browsing_spec, STANDALONE, replicas=1)
        assert result.abort_rate == 0.0
        assert result.update_throughput == 0.0

    def test_littles_law_consistency(self, shopping_spec):
        result = quick_sim(shopping_spec, STANDALONE, replicas=1, duration=30.0)
        implied_clients = result.throughput * (1.0 + result.response_time)
        assert implied_clients == pytest.approx(
            shopping_spec.clients_per_replica, rel=0.15
        )

    def test_standalone_rejects_multiple_replicas(self, shopping_spec):
        with pytest.raises(ConfigurationError):
            quick_sim(shopping_spec, STANDALONE, replicas=2)

    def test_deterministic_given_seed(self, shopping_spec):
        a = quick_sim(shopping_spec, STANDALONE, replicas=1, seed=5)
        b = quick_sim(shopping_spec, STANDALONE, replicas=1, seed=5)
        assert a.throughput == b.throughput
        assert a.response_time == b.response_time

    def test_different_seeds_differ(self, shopping_spec):
        a = quick_sim(shopping_spec, STANDALONE, replicas=1, seed=5)
        b = quick_sim(shopping_spec, STANDALONE, replicas=1, seed=6)
        assert a.throughput != b.throughput


class TestMultiMasterSimulation:
    def test_replication_increases_throughput(self, shopping_spec):
        x2 = quick_sim(shopping_spec, MULTI_MASTER, replicas=2).throughput
        x4 = quick_sim(shopping_spec, MULTI_MASTER, replicas=4).throughput
        assert x4 > x2

    def test_writesets_propagate_to_all_other_replicas(self, shopping_spec):
        env = Environment()
        metrics = MetricsCollector()
        config = shopping_spec.replication_config(3)
        system = MultiMasterSystem(env, shopping_spec, config, 11, metrics)
        system.start_clients(config.total_clients)
        metrics.begin_window(0.0)
        env.run_until(10.0)
        metrics.end_window(10.0)
        commits = system.certifier.commits
        assert commits > 0
        for replica in system.replicas:
            # Every replica hears about every commit, except the handful
            # still inside the 12 ms certification delay at the horizon.
            assert replica._enqueued_version >= commits - 10
            assert replica._enqueued_version <= commits

    def test_snapshot_age_is_observed(self, shopping_spec):
        result = quick_sim(shopping_spec, MULTI_MASTER, replicas=4)
        assert result.mean_snapshot_age >= 0.0

    def test_certifier_rate_close_to_update_rate(self, shopping_spec):
        result = quick_sim(shopping_spec, MULTI_MASTER, replicas=2, duration=20.0)
        # Certifications = update attempts >= update commits.
        assert result.certifier_request_rate >= result.update_throughput * 0.9

    def test_utilizations_bounded(self, shopping_spec):
        result = quick_sim(shopping_spec, MULTI_MASTER, replicas=2)
        for value in result.utilizations.values():
            assert 0.0 <= value <= 1.0 + 1e-6

    def test_admission_cap_limits_residency(self, shopping_spec):
        env = Environment()
        metrics = MetricsCollector()
        config = shopping_spec.replication_config(1).with_replicas(1)
        config = shopping_spec.replication_config(1)
        import dataclasses

        config = dataclasses.replace(config, max_concurrency=4)
        system = MultiMasterSystem(env, shopping_spec, config, 3, metrics)
        system.start_clients(config.total_clients)
        env.run_until(5.0)
        for replica in system.replicas:
            assert replica.admission.in_use <= 4


class TestSingleMasterSimulation:
    def test_updates_only_execute_on_master(self, shopping_spec):
        env = Environment()
        metrics = MetricsCollector()
        config = shopping_spec.replication_config(3)
        system = SingleMasterSystem(env, shopping_spec, config, 13, metrics)
        system.start_clients(config.total_clients)
        metrics.begin_window(0.0)
        env.run_until(10.0)
        metrics.end_window(10.0)
        # Slaves apply writesets but never certify their own updates.
        assert system.certifier.commits > 0
        for slave in system.slaves:
            assert slave.writesets_applied > 0
        assert system.master.writesets_applied == 0

    def test_read_only_mix_uses_all_replicas(self, rubis_browsing_spec):
        env = Environment()
        metrics = MetricsCollector()
        config = rubis_browsing_spec.replication_config(3)
        system = SingleMasterSystem(env, rubis_browsing_spec, config, 17, metrics)
        system.start_clients(config.total_clients)
        env.run_until(5.0)
        busy = [r.cpu.stats.completions for r in system.replicas]
        assert all(count > 0 for count in busy)

    def test_sm_throughput_grows_with_slaves(self, shopping_spec):
        x2 = quick_sim(shopping_spec, SINGLE_MASTER, replicas=2).throughput
        x4 = quick_sim(shopping_spec, SINGLE_MASTER, replicas=4).throughput
        assert x4 > x2


class TestLBPolicies:
    def test_unknown_policy_rejected(self, shopping_spec):
        with pytest.raises(ConfigurationError):
            quick_sim(shopping_spec, MULTI_MASTER, lb_policy="sticky")

    def test_policies_produce_similar_throughput(self, shopping_spec):
        results = {
            policy: quick_sim(
                shopping_spec, MULTI_MASTER, replicas=2, lb_policy=policy
            ).throughput
            for policy in ("least-loaded", "pinned", "random")
        }
        base = results["least-loaded"]
        for value in results.values():
            assert value == pytest.approx(base, rel=0.25)

    def test_least_loaded_response_not_worse_than_random(self, shopping_spec):
        fast = quick_sim(
            shopping_spec, MULTI_MASTER, replicas=4, duration=16.0,
            lb_policy="least-loaded",
        ).response_time
        slow = quick_sim(
            shopping_spec, MULTI_MASTER, replicas=4, duration=16.0,
            lb_policy="random",
        ).response_time
        assert fast <= slow * 1.05
