"""Tests for the experiment harness (tables, figures, sensitivity)."""

import pytest

from repro.core.results import OperatingPoint, ValidationPoint, ValidationSeries
from repro.experiments import (
    ExperimentSettings,
    certifier_capacity,
    clear_cache,
    clear_sweep_cache,
    get_profile,
    mva_ablation,
    table2,
    table4,
)
from repro.experiments.figures import FigureResult
from repro.experiments.settings import PAPER_REPLICA_COUNTS
from repro.experiments.tables import DemandRow, DemandTable


class TestSettings:
    def test_paper_counts_go_to_sixteen(self):
        assert PAPER_REPLICA_COUNTS[0] == 1
        assert PAPER_REPLICA_COUNTS[-1] == 16

    def test_fast_settings_cheaper(self):
        full, fast = ExperimentSettings(), ExperimentSettings.fast()
        assert fast.sim_duration < full.sim_duration
        assert len(fast.replica_counts) < len(full.replica_counts)

    def test_with_replica_counts(self):
        settings = ExperimentSettings().with_replica_counts((1, 2))
        assert settings.replica_counts == (1, 2)


class TestParameterTables:
    def test_table2_rows_match_paper(self):
        table = table2()
        rows = {row.mix: row for row in table.rows}
        assert rows["browsing"].read_fraction == pytest.approx(0.95)
        assert rows["shopping"].clients_per_replica == 40
        assert rows["ordering"].write_fraction == pytest.approx(0.50)
        assert all(row.think_time_ms == 1000.0 for row in table.rows)

    def test_table4_rows_match_paper(self):
        table = table4()
        rows = {row.mix: row for row in table.rows}
        assert rows["browsing"].read_fraction == pytest.approx(1.0)
        assert rows["bidding"].write_fraction == pytest.approx(0.2)

    def test_to_text_renders(self):
        text = table2().to_text()
        assert "browsing" in text
        assert "95%" in text


class TestDemandTableFormatting:
    def make(self):
        row = DemandRow(
            mix="shopping", resource="cpu",
            read_truth=41.43, read_measured=42.0,
            write_truth=12.51, write_measured=12.4,
            writeset_truth=3.18, writeset_measured=3.3,
        )
        return DemandTable(table_id="table3", benchmark="TPC-W", rows=(row,))

    def test_max_relative_error(self):
        table = self.make()
        expected = max(
            abs(42.0 - 41.43) / 41.43,
            abs(12.4 - 12.51) / 12.51,
            abs(3.3 - 3.18) / 3.18,
        )
        assert table.max_relative_error() == pytest.approx(expected)

    def test_to_text_contains_measured_and_truth(self):
        text = self.make().to_text()
        assert "42.00" in text
        assert "41.43" in text


class TestFigureResultFormatting:
    def make(self):
        rows = [
            ValidationPoint(
                replicas=n,
                predicted=OperatingPoint(throughput=10.0 * n,
                                         response_time=0.2),
                measured=OperatingPoint(throughput=11.0 * n,
                                        response_time=0.22),
            )
            for n in (1, 2)
        ]
        series = ValidationSeries(label="tpcw/shopping", rows=rows)
        return FigureResult(
            figure_id="figure6",
            title="demo",
            metric="throughput",
            series={"shopping": series},
        )

    def test_max_error(self):
        assert self.make().max_error() == pytest.approx(1.0 / 11.0)

    def test_to_text_has_rows_per_replica_count(self):
        text = self.make().to_text()
        assert "figure6" in text
        assert "[shopping]" in text
        assert text.count("tps") >= 4

    def test_response_metric_renders_ms(self):
        figure = FigureResult(
            figure_id="figure7", title="demo", metric="response_time",
            series=self.make().series,
        )
        assert "ms" in figure.to_text()


class TestCertifierCapacity:
    def test_latency_flat_across_rates(self):
        result = certifier_capacity(
            rates=(25.0, 150.0, 500.0), duration=60.0
        )
        # §6.3.2: certification latency is insensitive to load thanks to
        # group commit; expect ~12 ms across two orders of magnitude of
        # load, varying by at most a few milliseconds.
        latencies = [p.mean_latency for p in result.points]
        assert all(0.008 <= lat <= 0.020 for lat in latencies)
        assert result.latency_spread() < 0.006

    def test_batches_grow_with_load(self):
        result = certifier_capacity(rates=(25.0, 500.0), duration=60.0)
        assert result.points[1].mean_batch_size > result.points[0].mean_batch_size

    def test_to_text(self):
        result = certifier_capacity(rates=(50.0,), duration=20.0)
        assert "certifier capacity" in result.to_text()


class TestMVAAblation:
    def test_schweitzer_close_at_all_populations(self):
        rows = mva_ablation(populations=(1, 10, 50))
        for row in rows:
            assert row.relative_error < 0.05

    def test_rows_cover_populations(self):
        rows = mva_ablation(populations=(2, 4))
        assert [row.population for row in rows] == [2, 4]


class TestProfileCache:
    def test_profile_cached_per_settings(self, shopping_spec, tiny_settings):
        clear_cache()
        a = get_profile(shopping_spec, tiny_settings)
        b = get_profile(shopping_spec, tiny_settings)
        assert a is b

    def test_clear_sweep_cache_is_idempotent(self):
        clear_sweep_cache()
        clear_sweep_cache()
