"""Unit tests for the abort-rate algebra of §3.3."""


import pytest

from repro.core.errors import ConfigurationError
from repro.core.params import ConflictProfile
from repro.models.aborts import (
    db_update_size_for_abort_rate,
    master_abort_rate,
    multimaster_abort_rate,
    retry_inflation,
    scale_abort_rate,
    standalone_abort_rate,
    success_probability,
)


class TestSuccessProbability:
    def test_matches_closed_form(self, simple_conflict):
        # Success = (1-p)^(L * W * U^2)
        value = success_probability(simple_conflict, 0.05, 10.0)
        expected = (1 - 1e-4) ** (0.05 * 10.0 * 9)
        assert value == pytest.approx(expected)

    def test_zero_window_always_succeeds(self, simple_conflict):
        assert success_probability(simple_conflict, 0.0, 100.0) == 1.0

    def test_zero_rate_always_succeeds(self, simple_conflict):
        assert success_probability(simple_conflict, 10.0, 0.0) == 1.0

    def test_monotone_decreasing_in_window(self, simple_conflict):
        values = [
            success_probability(simple_conflict, w, 10.0)
            for w in (0.01, 0.1, 1.0, 10.0)
        ]
        assert values == sorted(values, reverse=True)

    def test_negative_window_rejected(self, simple_conflict):
        with pytest.raises(ConfigurationError):
            success_probability(simple_conflict, -1.0, 1.0)


class TestStandaloneAbortRate:
    def test_complement_of_success(self, simple_conflict):
        a1 = standalone_abort_rate(simple_conflict, 0.05, 10.0)
        success = success_probability(simple_conflict, 0.05, 10.0)
        assert a1 == pytest.approx(1.0 - success)

    def test_small_for_paper_parameters(self, simple_conflict):
        # TPC-W-like: L(1)=50 ms, W=6 tps, U=3, DbUpdateSize=10k
        a1 = standalone_abort_rate(simple_conflict, 0.05, 6.0)
        assert a1 < 0.001  # the paper reports A1 < 0.023%


class TestScaleAbortRate:
    def test_identity_at_ratio_one(self):
        assert scale_abort_rate(0.01, 1.0) == pytest.approx(0.01)

    def test_zero_abort_stays_zero(self):
        assert scale_abort_rate(0.0, 100.0) == 0.0

    def test_zero_ratio_gives_zero(self):
        assert scale_abort_rate(0.5, 0.0) == 0.0

    def test_matches_power_formula(self):
        a1, ratio = 0.02, 7.5
        expected = 1.0 - (1.0 - a1) ** ratio
        assert scale_abort_rate(a1, ratio) == pytest.approx(expected)

    def test_monotone_in_ratio(self):
        values = [scale_abort_rate(0.01, r) for r in (0.5, 1, 2, 4, 16)]
        assert values == sorted(values)

    def test_stays_below_one(self):
        assert scale_abort_rate(0.5, 1000.0) < 1.0

    def test_rejects_abort_of_one(self):
        with pytest.raises(ConfigurationError):
            scale_abort_rate(1.0, 2.0)

    def test_rejects_negative_ratio(self):
        with pytest.raises(ConfigurationError):
            scale_abort_rate(0.1, -1.0)

    def test_numerically_stable_for_tiny_abort_rates(self):
        # 1-(1-a)^r ~= r*a for tiny a; naive powers would lose precision.
        a1 = 1e-12
        assert scale_abort_rate(a1, 10.0) == pytest.approx(1e-11, rel=1e-6)


class TestReplicatedAbortRates:
    def test_multimaster_formula(self):
        # (1-AN) = (1-A1)^(N*CW/L1)
        an = multimaster_abort_rate(0.005, 8, conflict_window=0.1,
                                    standalone_window=0.05)
        expected = 1 - (1 - 0.005) ** (8 * 0.1 / 0.05)
        assert an == pytest.approx(expected)

    def test_multimaster_n1_same_window_is_a1(self):
        assert multimaster_abort_rate(0.01, 1, 0.05, 0.05) == pytest.approx(0.01)

    def test_multimaster_grows_with_n(self):
        values = [
            multimaster_abort_rate(0.005, n, 0.08, 0.05) for n in (1, 2, 4, 8, 16)
        ]
        assert values == sorted(values)

    def test_master_formula(self):
        an = master_abort_rate(0.005, 8, master_latency=0.03,
                               standalone_window=0.05)
        expected = 1 - (1 - 0.005) ** (8 * 0.03 / 0.05)
        assert an == pytest.approx(expected)

    def test_zero_a1_short_circuits(self):
        assert multimaster_abort_rate(0.0, 16, 1.0, 0.0) == 0.0
        assert master_abort_rate(0.0, 16, 1.0, 0.0) == 0.0

    def test_positive_a1_needs_positive_l1(self):
        with pytest.raises(ConfigurationError):
            multimaster_abort_rate(0.01, 2, 0.1, 0.0)

    def test_replicas_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            multimaster_abort_rate(0.01, 0, 0.1, 0.05)
        with pytest.raises(ConfigurationError):
            master_abort_rate(0.01, 0, 0.1, 0.05)


class TestRetryInflation:
    def test_no_aborts_no_inflation(self):
        assert retry_inflation(0.0) == 1.0

    def test_matches_reciprocal(self):
        assert retry_inflation(0.2) == pytest.approx(1.25)

    def test_rejects_one(self):
        with pytest.raises(ConfigurationError):
            retry_inflation(1.0)

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            retry_inflation(-0.1)


class TestInverseCalibration:
    def test_round_trip_through_abort_formula(self):
        # Figure 14 calibration: find DbUpdateSize for a target A1, then
        # verify the forward formula reproduces the target.
        target = 0.0053
        size = db_update_size_for_abort_rate(
            target, updates_per_transaction=3,
            update_response_time=0.05, update_rate=6.0,
        )
        conflict = ConflictProfile(db_update_size=size,
                                   updates_per_transaction=3)
        achieved = standalone_abort_rate(conflict, 0.05, 6.0)
        assert achieved == pytest.approx(target, rel=0.05)

    def test_higher_target_needs_smaller_table(self):
        sizes = [
            db_update_size_for_abort_rate(a1, 3, 0.05, 6.0)
            for a1 in (0.0024, 0.0053, 0.0090)
        ]
        assert sizes == sorted(sizes, reverse=True)

    def test_rejects_target_out_of_range(self):
        with pytest.raises(ConfigurationError):
            db_update_size_for_abort_rate(0.0, 3, 0.05, 6.0)
        with pytest.raises(ConfigurationError):
            db_update_size_for_abort_rate(1.0, 3, 0.05, 6.0)

    def test_rejects_zero_operating_point(self):
        with pytest.raises(ConfigurationError):
            db_update_size_for_abort_rate(0.01, 3, 0.0, 6.0)
