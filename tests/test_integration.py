"""End-to-end integration tests: the paper's full pipeline in miniature.

These run the complete methodology — profile a standalone simulated
database, predict replicated performance with the analytical models, then
measure the replicated simulators — and assert the predictions land within
a coarse tolerance (the full-fidelity check is the benchmark suite).
"""

import pytest

from repro.core.results import relative_error
from repro.experiments.context import get_profiling_report
from repro.models.multimaster import predict_multimaster
from repro.models.singlemaster import predict_singlemaster
from repro.simulator.runner import MULTI_MASTER, SINGLE_MASTER, simulate


@pytest.fixture(scope="module")
def shopping_report(shopping_spec, tiny_settings):
    return get_profiling_report(shopping_spec, tiny_settings)


class TestPredictionAccuracy:
    @pytest.mark.parametrize("replicas", [1, 4])
    def test_multimaster_throughput_within_tolerance(
        self, shopping_spec, shopping_report, replicas
    ):
        profile = shopping_report.profile
        config = shopping_spec.replication_config(replicas)
        predicted = predict_multimaster(profile, config).throughput
        measured = simulate(
            shopping_spec, config, design=MULTI_MASTER,
            seed=101, warmup=3.0, duration=15.0,
        ).throughput
        assert relative_error(predicted, measured) < 0.15

    @pytest.mark.parametrize("replicas", [1, 4])
    def test_singlemaster_throughput_within_tolerance(
        self, shopping_spec, shopping_report, replicas
    ):
        profile = shopping_report.profile
        config = shopping_spec.replication_config(replicas)
        predicted = predict_singlemaster(profile, config).throughput
        measured = simulate(
            shopping_spec, config, design=SINGLE_MASTER,
            seed=102, warmup=3.0, duration=15.0,
        ).throughput
        assert relative_error(predicted, measured) < 0.15

    def test_response_time_same_ballpark(
        self, shopping_spec, shopping_report
    ):
        profile = shopping_report.profile
        config = shopping_spec.replication_config(4)
        predicted = predict_multimaster(profile, config).response_time
        measured = simulate(
            shopping_spec, config, design=MULTI_MASTER,
            seed=103, warmup=3.0, duration=15.0,
        ).response_time
        assert relative_error(predicted, measured) < 0.35


class TestScalabilityShapes:
    def test_mm_scales_further_than_sm_on_write_heavy_mix(
        self, ordering_spec, tiny_settings
    ):
        """The paper's headline qualitative result (Figures 6 vs 8)."""
        report = get_profiling_report(ordering_spec, tiny_settings)
        profile = report.profile
        mm16 = predict_multimaster(
            profile, ordering_spec.replication_config(16)
        ).throughput
        sm16 = predict_singlemaster(
            profile, ordering_spec.replication_config(16)
        ).throughput
        assert mm16 > 1.5 * sm16

    def test_sm_saturates_on_ordering_mix(self, ordering_spec, tiny_settings):
        """Figure 8: SM ordering saturates around 4 replicas."""
        report = get_profiling_report(ordering_spec, tiny_settings)
        profile = report.profile
        x4 = predict_singlemaster(
            profile, ordering_spec.replication_config(4)
        ).throughput
        x16 = predict_singlemaster(
            profile, ordering_spec.replication_config(16)
        ).throughput
        assert x16 < 1.2 * x4

    def test_browsing_mm_speedup_near_linear(
        self, browsing_spec, tiny_settings
    ):
        """Figure 6: browsing speedup ~15.7x at 16 replicas."""
        report = get_profiling_report(browsing_spec, tiny_settings)
        profile = report.profile
        x1 = predict_multimaster(
            profile, browsing_spec.replication_config(1)
        ).throughput
        x16 = predict_multimaster(
            profile, browsing_spec.replication_config(16)
        ).throughput
        assert x16 / x1 > 13.0

    def test_abort_rate_prediction_order_of_magnitude(
        self, shopping_spec, shopping_report
    ):
        """Model AN and simulated AN agree within ~3x (the paper's model
        'slightly underestimates' AN; Figure 14 shows the same bias)."""
        profile = shopping_report.profile
        config = shopping_spec.replication_config(8)
        predicted = predict_multimaster(profile, config).abort_rate
        measured = simulate(
            shopping_spec, config, design=MULTI_MASTER,
            seed=104, warmup=3.0, duration=20.0,
        ).abort_rate
        assert predicted > 0
        assert measured > 0
        assert predicted == pytest.approx(measured, rel=3.0)
