"""Quickstart: predict replicated-database scalability from a standalone profile.

This walks the paper's full methodology in four steps:

1. pick a workload (TPC-W shopping, the paper's primary mix);
2. profile it on a *standalone* database (the only measurement ever taken);
3. feed the profile to the analytical models to predict multi-master and
   single-master scalability;
4. (optional cross-check) measure the replicated systems in the
   discrete-event simulator and compare.

Run:  python examples/quickstart.py
"""

from repro import profiling, simulate, workloads
from repro.core.units import to_ms
from repro.models import predict_multimaster, predict_singlemaster

REPLICA_COUNTS = (1, 2, 4, 8, 16)


def main() -> None:
    # 1. The workload: 80% read-only / 20% update transactions, 40 clients
    #    per replica, 1 s think time (Table 2 of the paper).
    spec = workloads.get_workload("tpcw/shopping")
    print(f"workload: {spec.name} — {spec.description}")

    # 2. Profile the standalone database (§4): replay each transaction
    #    class and apply the Utilization Law, then measure L(1) and A1 on
    #    the full mix.  This is cheap — one machine, no replication.
    print("\nprofiling the standalone database ...")
    report = profiling.profile_standalone(spec)
    profile = report.profile
    print(f"  rc  = {to_ms(profile.demands.read.cpu):6.2f} ms cpu, "
          f"{to_ms(profile.demands.read.disk):5.2f} ms disk")
    print(f"  wc  = {to_ms(profile.demands.write.cpu):6.2f} ms cpu, "
          f"{to_ms(profile.demands.write.disk):5.2f} ms disk")
    print(f"  ws  = {to_ms(profile.demands.writeset.cpu):6.2f} ms cpu, "
          f"{to_ms(profile.demands.writeset.disk):5.2f} ms disk")
    print(f"  L(1) = {to_ms(profile.update_response_time):.1f} ms, "
          f"A1 = {profile.abort_rate:.4%}")

    # 3. Predict replicated performance — no replicated system needed.
    print(f"\n{'N':>3s} {'MM tps':>8s} {'MM ms':>7s} {'SM tps':>8s} {'SM ms':>7s}")
    for n in REPLICA_COUNTS:
        config = spec.replication_config(n)
        mm = predict_multimaster(profile, config)
        sm = predict_singlemaster(profile, config)
        print(f"{n:>3d} {mm.throughput:>8.1f} {to_ms(mm.response_time):>7.0f} "
              f"{sm.throughput:>8.1f} {to_ms(sm.response_time):>7.0f}")

    # 4. Cross-check one point against the simulated prototype.
    n = 8
    config = spec.replication_config(n)
    measured = simulate(spec, config, design="multi-master",
                        warmup=10.0, duration=60.0)
    predicted = predict_multimaster(profile, config)
    error = abs(predicted.throughput - measured.throughput) / measured.throughput
    print(f"\ncross-check at N={n} (multi-master):")
    print(f"  predicted {predicted.throughput:.1f} tps, "
          f"measured {measured.throughput:.1f} tps "
          f"-> error {error:.1%} (the paper reports <= 15%)")


if __name__ == "__main__":
    main()
