"""Walkthrough: live dynamic provisioning driven by the paper's predictors.

The paper's introduction names *dynamic service provisioning* in data
centers with diurnal load as a consumer of its scalability models.  This
example closes that loop end to end:

1. build a diurnal load trace (day/night sinusoid);
2. wrap the analytical model in a **feedforward controller** that sizes
   every upcoming window with ``plan_deployment`` — consuming only the
   standalone profile, exactly as the paper prescribes;
3. play the trace against the *elastic* discrete-event simulator, whose
   ``add_replica``/``remove_replica`` model join cost (bulk writeset
   replay) and drain-before-removal;
4. compare replica-hours and SLO violations against a reactive-threshold
   baseline and static peak provisioning.

Run with:  PYTHONPATH=src python examples/autoscale_diurnal.py
"""

from repro.control import (
    DiurnalTrace,
    FeedforwardPolicy,
    ReactivePolicy,
    StaticPeakPolicy,
    autoscale_sim,
    render_timeline,
)
from repro.experiments import ExperimentSettings, get_profile
from repro.models.api import predict
from repro.workloads import tpcw


def main() -> None:
    spec = tpcw.SHOPPING
    settings = ExperimentSettings.fast()

    # Step 1 — standalone profiling (the paper's only measurement).
    print("profiling the standalone database (measure once)...")
    profile = get_profile(spec, settings)

    # Step 2 — a diurnal trace anchored to predicted capacity at N=4.
    capacity = predict(
        "multi-master", profile, spec.replication_config(4)
    ).throughput
    trace = DiurnalTrace(
        base_rate=0.10 * capacity,
        peak_rate=0.85 * capacity,
        period=120.0,
    )
    print(f"trace: diurnal {trace.base_rate:.0f} -> {trace.peak_rate:.0f} tps "
          f"(period {trace.period:.0f}s)\n")

    # Step 3 — run the three policies on the elastic simulator.
    slo = 1.5
    results = []
    for policy in (
        FeedforwardPolicy(horizon=10.0, headroom=0.25),
        ReactivePolicy(initial_replicas=2),
        StaticPeakPolicy(headroom=0.25),
    ):
        result = autoscale_sim(
            spec, trace, policy,
            profile=profile,
            warmup=10.0, duration=240.0, control_interval=5.0,
            slo_response=slo, max_replicas=8,
        )
        results.append(result)
        print(result.to_text())

    # Step 4 — the comparison the controller exists for.
    static = results[-1]
    print()
    for result in results[:-1]:
        print(f"{result.policy}: {result.savings_vs(static):+.1%} "
              f"replica-hours vs static peak at "
              f"{result.slo_violation_fraction:.2%} SLO violations "
              f"(static: {static.slo_violation_fraction:.2%})")

    print()
    print(render_timeline(results[0]))


if __name__ == "__main__":
    main()
