"""Abort-rate study: how conflicts scale with replication (§6.3.3).

TPC-W and RUBiS barely conflict (A1 well below 0.1%), so this example
recreates the paper's Figure 14 setup: a high-conflict "heap table" is
grafted onto TPC-W shopping and sized to hit chosen standalone abort rates.
The multi-master model then predicts how those aborts grow with the replica
count, and the simulator measures the real growth.

Run:  python examples/abort_study.py
"""

from repro import simulate, workloads
from repro.models import predict_multimaster
from repro.profiling import profile_standalone
from repro.workloads import heap_table_spec

REPLICA_COUNTS = (1, 4, 8, 16)
TARGET_A1 = (0.0024, 0.0053, 0.0090)  # the paper's §6.3.3 targets


def main() -> None:
    base = workloads.get_workload("tpcw/shopping")
    print("calibrating against the standalone operating point ...")
    base_report = profile_standalone(base)
    l1 = base_report.profile.update_response_time
    update_rate = (
        base_report.standalone_throughput
        * base_report.profile.mix.write_fraction
    )
    print(f"  L(1) = {l1*1000:.1f} ms, W = {update_rate:.1f} updates/s\n")

    for target in TARGET_A1:
        spec = heap_table_spec(target, l1, update_rate, base=base)
        profile = profile_standalone(spec).profile
        print(f"heap table sized for A1 = {target:.2%} "
              f"(DbUpdateSize = {spec.conflict.db_update_size}, "
              f"measured A1 = {profile.abort_rate:.2%})")
        print(f"  {'N':>3s} {'measured AN':>12s} {'predicted AN':>13s}")
        for n in REPLICA_COUNTS:
            config = spec.replication_config(n)
            predicted = predict_multimaster(profile, config).abort_rate
            measured = simulate(
                spec, config, design="multi-master",
                warmup=10.0, duration=60.0,
            ).abort_rate
            print(f"  {n:>3d} {measured:>11.2%} {predicted:>12.2%}")
        print()

    print("observations (matching the paper):")
    print("  * the abort probability grows superlinearly with N — the")
    print("    conflict window widens as queueing and staleness grow;")
    print("  * the model captures the trend but under-estimates at high")
    print("    rates (its conflict window lags one MVA iteration, §4.1.1);")
    print("  * abort rates this high (10-30%) are far beyond what an")
    print("    application would tolerate — the paper uses them purely to")
    print("    stress the model.")


if __name__ == "__main__":
    main()
