"""Failover: what happens to throughput when a replica crashes?

The paper motivates replication with fault tolerance but evaluates only
steady-state performance.  This extension crashes one multi-master replica
mid-run and shows that the *same analytical model* predicts the degraded
plateau: the during-outage throughput is simply the N-1 replica prediction.

Run:  python examples/failover.py
"""

from repro.experiments import ExperimentSettings, failover_experiment
from repro.workloads import get_workload


def sparkline(values, width=60) -> str:
    """Render a throughput timeline as an ASCII strip chart."""
    if not values:
        return ""
    blocks = " .:-=+*#%@"
    top = max(values) or 1.0
    step = max(1, len(values) // width)
    sampled = [
        sum(values[i:i + step]) / len(values[i:i + step])
        for i in range(0, len(values), step)
    ]
    return "".join(
        blocks[min(len(blocks) - 1, int(v / top * (len(blocks) - 1)))]
        for v in sampled
    )


def main() -> None:
    spec = get_workload("tpcw/shopping")
    settings = ExperimentSettings(sim_warmup=10.0)
    result = failover_experiment(
        spec,
        design="multi-master",
        replicas=4,
        fault_replica=1,
        settings=settings,
        phase_length=30.0,
    )
    print(result.to_text())
    print()
    print("committed throughput per second (fault in the middle third):")
    print(f"  [{sparkline(result.timeline)}]")
    print()
    print(f"the outage cost {result.dip_fraction:.0%} of throughput — close "
          "to the 1/4 of capacity one of four replicas represents; the "
          "model's N-1 prediction called the degraded plateau to "
          f"{abs(result.during - result.predicted_degraded) / result.during:.1%}.")
    print("recovery includes the catch-up burst while the returning replica "
          "applies the writesets it missed.")


if __name__ == "__main__":
    main()
