"""Capacity planning: how many replicas, and which replication design?

The paper's motivating use case (§1): a data-center operator hosting an
e-commerce application must provision for a target load *before* deploying
the replicated system.  This example answers three planning questions using
only a standalone profile:

* how many replicas does each design need to hit a throughput target?
* where does the single-master design stop scaling, and why?
* what response time should clients expect at the chosen size?

Run:  python examples/capacity_planning.py
"""

from repro import workloads
from repro.core.units import to_ms
from repro.models import (
    MULTI_MASTER,
    SINGLE_MASTER,
    compare_designs,
    predict,
    provisioning_schedule,
    replicas_for_throughput,
)
from repro.profiling import profile_standalone

#: Peak load the operator must serve (committed transactions per second).
TARGET_TPS = 250.0


def main() -> None:
    spec = workloads.get_workload("tpcw/ordering")
    print(f"workload: {spec.name} (50% updates — the hard case for "
          "single-master)\n")
    profile = profile_standalone(spec).profile

    # Question 1: replicas needed per design.
    base_config = spec.replication_config(1)
    for design in (MULTI_MASTER, SINGLE_MASTER):
        needed = replicas_for_throughput(
            design, profile, base_config, TARGET_TPS, max_replicas=32
        )
        if needed is None:
            print(f"{design:>14s}: cannot reach {TARGET_TPS:.0f} tps with "
                  "up to 32 replicas")
        else:
            prediction = predict(
                design, profile, base_config.with_replicas(needed)
            )
            print(f"{design:>14s}: {needed} replicas "
                  f"-> {prediction.throughput:.1f} tps at "
                  f"{to_ms(prediction.response_time):.0f} ms")

    # Question 2: the scalability ceiling of each design.
    print("\npredicted scalability (tps by replica count):")
    curves = compare_designs(profile, base_config, (1, 2, 4, 8, 16, 24, 32))
    header = " ".join(f"{n:>7d}" for n in (1, 2, 4, 8, 16, 24, 32))
    print(f"{'design':>14s} {header}")
    for design, curve in curves.items():
        row = " ".join(f"{x:>7.0f}" for x in curve.throughputs)
        print(f"{design:>14s} {row}")

    sm_curve = curves[SINGLE_MASTER]
    print(f"\nsingle-master peaks at N={sm_curve.peak()}: every update "
          "executes on the one master, so adding slaves stops helping once "
          "the master saturates (§3.3.3).")
    print("multi-master keeps scaling because updates spread across "
          "replicas; its own ceiling is writeset application, which every "
          "replica must perform for every remote update (§3.3.2).")

    # Question 3: what does the abort rate look like at scale?
    mm32 = predict(MULTI_MASTER, profile, base_config.with_replicas(32))
    print(f"\nat 32 multi-master replicas the model predicts an update "
          f"abort probability of {mm32.abort_rate:.2%} "
          f"(conflict window {to_ms(mm32.conflict_window):.0f} ms).")

    # Question 4: dynamic provisioning over a diurnal cycle (§1).
    forecast = [
        ("00-06h", 60.0), ("06-09h", 140.0), ("09-12h", 220.0),
        ("12-15h", 250.0), ("15-18h", 230.0), ("18-21h", 180.0),
        ("21-24h", 110.0),
    ]
    schedule = provisioning_schedule(
        MULTI_MASTER, profile, base_config, forecast, headroom=0.1
    )
    print()
    print(schedule.to_text())


if __name__ == "__main__":
    main()
