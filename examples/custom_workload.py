"""Bring your own workload: model a custom application end to end.

The built-in TPC-W/RUBiS specs are just data.  This example defines a new
workload — a ticket-booking service with 10% updates and disk-heavy reads —
runs the whole pipeline on it, and uses the snapshot-isolated database
engine directly to show what the substrate underneath the simulator does.

Run:  python examples/custom_workload.py
"""

from repro.core.params import ConflictProfile, WorkloadMix
from repro.core.errors import TransactionAborted
from repro.models import predict_curve
from repro.profiling import profile_standalone
from repro.sidb import SIDatabase
from repro.workloads import WorkloadSpec, demands_ms


def build_workload() -> WorkloadSpec:
    """A ticket-booking service: searches are disk-heavy, bookings short."""
    return WorkloadSpec(
        benchmark="tickets",
        mix_name="booking",
        mix=WorkloadMix(read_fraction=0.90, write_fraction=0.10),
        demands=demands_ms(
            read_cpu=18.0, read_disk=22.0,       # catalogue searches
            write_cpu=9.0, write_disk=6.0,       # seat reservations
            writeset_cpu=2.5, writeset_disk=2.0,  # replicated reservation
        ),
        clients_per_replica=35,
        think_time=1.0,
        # 5,000 bookable seats; each booking touches 2 rows (seat + order).
        conflict=ConflictProfile(db_update_size=5_000,
                                 updates_per_transaction=2),
        writeset_bytes=180,
        description="ticket booking: 90% searches, 10% reservations",
    )


def demo_snapshot_isolation() -> None:
    """The concurrency model the whole study rests on, in five lines."""
    db = SIDatabase({("seat", 12): "free"})
    alice, bob = db.begin(), db.begin()
    alice.write(("seat", 12), "alice")
    bob.write(("seat", 12), "bob")
    db.commit(alice)  # first committer wins
    try:
        db.commit(bob)
    except TransactionAborted as exc:
        print(f"  second writer aborted as required: {exc}")


def main() -> None:
    spec = build_workload()
    print(f"workload: {spec.name} — {spec.description}\n")

    print("snapshot isolation under the hood:")
    demo_snapshot_isolation()

    print("\nprofiling the standalone database ...")
    profile = profile_standalone(spec).profile
    print(f"  measured mix: {profile.mix.read_fraction:.0%} reads, "
          f"A1 = {profile.abort_rate:.3%}")

    counts = (1, 2, 4, 8, 16)
    print("\npredicted scalability:")
    mm = predict_curve("multi-master", profile,
                       spec.replication_config(1), counts)
    sm = predict_curve("single-master", profile,
                       spec.replication_config(1), counts)
    print(f"  {'N':>3s} {'multi-master':>14s} {'single-master':>14s}")
    for n in counts:
        print(f"  {n:>3d} {mm.point_at(n).throughput:>10.1f} tps "
              f"{sm.point_at(n).throughput:>10.1f} tps")

    ratio = (mm.point_at(16).throughput / sm.point_at(16).throughput)
    print(f"\nat 16 replicas multi-master delivers {ratio:.2f}x the "
          "single-master throughput for this mix.")


if __name__ == "__main__":
    main()
