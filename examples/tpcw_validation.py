"""Reproduce the paper's TPC-W validation (Figures 6-9) in one script.

For each TPC-W mix and both replication designs, this predicts performance
from the standalone profile and measures it on the simulated prototypes —
the exact comparison behind the paper's "predictions within 15%" claim.

Runs the full sweep; expect a couple of minutes.

Run:  python examples/tpcw_validation.py [--fast]
"""

import sys

from repro.experiments import (
    ExperimentSettings,
    figure6,
    figure7,
    figure8,
    figure9,
)


def main() -> None:
    fast = "--fast" in sys.argv
    settings = ExperimentSettings.fast() if fast else ExperimentSettings()

    worst_throughput_error = 0.0
    for runner in (figure6, figure8):
        figure = runner(settings)
        print(figure.to_text())
        worst_throughput_error = max(worst_throughput_error,
                                     figure.max_error())
        print()
    for runner in (figure7, figure9):
        figure = runner(settings)
        print(figure.to_text())
        print()

    verdict = "PASS" if worst_throughput_error <= 0.15 else "FAIL"
    print(f"worst TPC-W throughput prediction error: "
          f"{worst_throughput_error:.1%} -> {verdict} "
          "(paper claims <= 15%)")


if __name__ == "__main__":
    main()
