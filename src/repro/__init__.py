"""repro — reproduction of "Predicting Replicated Database Scalability from
Standalone Database Profiling" (Elnikety, Dropsho, Cecchet, Zwaenepoel;
EuroSys 2009).

The library has two independent halves that the experiments compare:

* **prediction** (:mod:`repro.models` on :mod:`repro.queueing`): analytical
  MVA-based models that consume only standalone measurements;
* **measurement** (:mod:`repro.simulator` on :mod:`repro.sidb`): a
  discrete-event simulation of the paper's prototype multi-master and
  single-master systems, from which the standalone measurements are taken
  by :mod:`repro.profiling`.

Typical use::

    from repro import profiling, models, workloads

    spec = workloads.get_workload("tpcw/shopping")
    report = profiling.profile_standalone(spec)
    prediction = models.predict_multimaster(
        report.profile, spec.replication_config(replicas=8)
    )
    print(prediction.throughput, prediction.response_time)
"""

from . import core, models, profiling, queueing, sidb, simulator, workloads
from .core import (
    ConflictProfile,
    OperatingPoint,
    Prediction,
    ReplicationConfig,
    ResourceDemand,
    ScalabilityCurve,
    ServiceDemands,
    StandaloneProfile,
    WorkloadMix,
)
from .models import (
    predict,
    predict_curve,
    predict_multimaster,
    predict_singlemaster,
    predict_standalone,
)
from .profiling import profile_standalone
from .simulator import measure_curve, simulate
from .workloads import get_workload, workload_names

__version__ = "1.0.0"

__all__ = [
    "ConflictProfile",
    "OperatingPoint",
    "Prediction",
    "ReplicationConfig",
    "ResourceDemand",
    "ScalabilityCurve",
    "ServiceDemands",
    "StandaloneProfile",
    "WorkloadMix",
    "__version__",
    "core",
    "get_workload",
    "measure_curve",
    "models",
    "predict",
    "predict_curve",
    "predict_multimaster",
    "predict_singlemaster",
    "predict_standalone",
    "profile_standalone",
    "profiling",
    "queueing",
    "sidb",
    "simulate",
    "simulator",
    "workload_names",
]
