"""Per-partition certifier shards with a cross-partition coordinator.

The global certifier funnels every commit through one service and one
version sequence.  :class:`ShardedCertifier` splits it: each partition
gets its own *shard* — an independent lock domain owning conflict
history, version clock, and certification for that partition — so
transactions touching disjoint partitions certify with no shared state
at all.  Commit versions become per-partition sequences (version
vectors) instead of one global order.

Cross-partition protocol: **certification-forwarding to a deterministic
home shard** (the lowest touched partition id).  The coordinator
acquires every touched shard's lock in canonical (ascending) order —
deadlock-free by construction — checks each shard's history against the
transaction's per-shard snapshot floors, and on success appends the
writeset to *all* touched shards atomically, each shard assigning its
own next version.  One decision point, no prepare logs and no in-doubt
window, which is why it is preferred here over 2PC: the shards share a
process (or a simulated service), so the classic 2PC failure mode —
a coordinator dying between prepare and commit — reduces to the
all-or-nothing append this class enforces under its locks, at half the
message rounds.  Its latency cost (one extra coordination round) is
what the executable pillars charge cross-partition transactions via
``cross_partition_fraction``.

Safety argument: a transaction's writes on partition ``p`` can only
conflict with committed writes on ``p`` (partition-qualified keys never
collide across partitions), and every commit on ``p`` appends to ``p``'s
shard under ``p``'s lock.  Checking each touched shard against the
snapshot floor for that shard therefore sees every concurrent committed
writer — first-committer-wins is preserved exactly, which is what the
property tests assert against the global certifier.

Fault injection: the ``fault_injector`` hook runs at the coordinator's
most vulnerable point — after every shard has passed its conflict check,
before any shard has appended — and an exception raised there (or by an
append) must leave every shard's history and clock untouched.  The
hypothesis atomicity tests drive this seam.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, Dict, FrozenSet, List, Optional, Set, Tuple

from ..core.errors import ConfigurationError
from .certifier_api import CertificationOutcome
from .writeset import Writeset


class _Shard:
    """One partition's certifier: lock, history, and version clock."""

    __slots__ = ("lock", "history", "next_version", "oldest_retained",
                 "max_history")

    def __init__(self, max_history: int) -> None:
        self.lock = threading.RLock()
        #: (shard version, keys) per retained commit on this partition.
        self.history: Deque[Tuple[int, FrozenSet[object]]] = deque()
        self.next_version = 1
        self.oldest_retained = 1
        self.max_history = max_history

    def find_conflicts(
        self, floor: int, keys: FrozenSet[object]
    ) -> Set[object]:
        """Keys of *keys* written by commits newer than *floor* (the
        caller holds :attr:`lock`)."""
        if floor + 1 < self.oldest_retained:
            # The history an exact answer needs was pruned; conservatively
            # conflict on every key (forces a retry with a fresher
            # snapshot — never unsafe, only slow for very stale reads).
            return set(keys)
        conflicts: Set[object] = set()
        for version, committed_keys in reversed(self.history):
            if version <= floor:
                break
            conflicts.update(keys & committed_keys)
        return conflicts

    def append(self, keys: FrozenSet[object]) -> int:
        """Commit *keys* at this shard's next version (lock held)."""
        version = self.next_version
        self.next_version += 1
        self.history.append((version, keys))
        while len(self.history) > self.max_history:
            self._popleft()
        return version

    def unappend(self, version: int) -> None:
        """Roll back :meth:`append` (coordinator abort paths; lock held)."""
        if self.history and self.history[-1][0] == version:
            self.history.pop()
            self.next_version = version

    def prune(self, floor: int) -> None:
        with self.lock:
            while self.history and self.history[0][0] <= floor:
                self._popleft()

    def _popleft(self) -> None:
        version, _ = self.history.popleft()
        self.oldest_retained = version + 1

    @property
    def latest_version(self) -> int:
        return self.next_version - 1


class ShardedCertifier:
    """Partition-local certification behind :class:`CertifierProtocol`.

    *partitions* bounds the shard ids this certifier accepts (``None``
    creates shards lazily for whatever partition ids arrive — handy in
    tests).  ``max_history`` bounds each shard's retained history, like
    the global certifier's bound on its single history.
    """

    def __init__(
        self,
        partitions: Optional[int] = None,
        max_history: int = 100_000,
    ) -> None:
        if max_history < 1:
            raise ConfigurationError("max_history must be >= 1")
        if partitions is not None and partitions < 1:
            raise ConfigurationError("partitions must be >= 1")
        self._partitions = partitions
        self._max_history = max_history
        self._shards: Dict[int, _Shard] = {}
        # Guards shard creation and the statistics counters; never held
        # while a shard lock is taken, so it cannot invert lock order.
        self._admin_lock = threading.Lock()
        if partitions is not None:
            for p in range(partitions):
                self._shards[p] = _Shard(max_history)
        self.certifications = 0
        self.commits = 0
        self.aborts = 0
        #: Optional :class:`repro.telemetry.Telemetry` hook.
        self.telemetry = None
        #: Coordinator-fault seam: called with the writeset after every
        #: touched shard passed its conflict check and before any shard
        #: appended; raising must (and does) leave all shards untouched.
        self.fault_injector = None

    # ------------------------------------------------------------------
    # Shard access
    # ------------------------------------------------------------------

    def _shard(self, partition: int) -> _Shard:
        shard = self._shards.get(partition)
        if shard is not None:
            return shard
        if self._partitions is not None:
            raise ConfigurationError(
                f"partition {partition} is outside the configured "
                f"{self._partitions} certifier shards"
            )
        with self._admin_lock:
            return self._shards.setdefault(partition, _Shard(self._max_history))

    @property
    def shard_count(self) -> int:
        return len(self._shards)

    def shard_version(self, partition: int) -> int:
        """Partition *partition*'s latest assigned shard version."""
        return self._shard(partition).latest_version

    def version_vector(self) -> Tuple[Tuple[int, int], ...]:
        """Every shard's latest version as sorted ``(partition, version)``."""
        return tuple(
            (p, self._shards[p].latest_version) for p in sorted(self._shards)
        )

    # ------------------------------------------------------------------
    # CertifierProtocol surface
    # ------------------------------------------------------------------

    @property
    def latest_version(self) -> int:
        """Total commits across all shards: the scalar version clock the
        telemetry layer compares replica apply progress against."""
        return sum(s.latest_version for s in self._shards.values())

    @property
    def history_size(self) -> int:
        return sum(len(s.history) for s in self._shards.values())

    def certify(self, writeset: Writeset) -> CertificationOutcome:
        """Coordinate one writeset's certification across its shards."""
        parts = sorted(writeset.partition_set)
        if not parts:
            raise ConfigurationError(
                "the sharded certifier requires partitioned writesets "
                "(an empty partition set has no home shard); run the "
                "workload with partitions >= 1 or use --certifier global"
            )
        floors = dict(writeset.snapshot_vector)
        keys_by = self._keys_by_partition(writeset, parts)
        shards = [(p, self._shard(p)) for p in parts]
        with self._admin_lock:
            self.certifications += 1
        telemetry = self.telemetry
        # Canonical-order acquisition: every coordinator locks its shard
        # set in ascending partition order, so no cycle can form.
        acquired: List[_Shard] = []
        try:
            for _, shard in shards:
                shard.lock.acquire()
                acquired.append(shard)
            conflicts: Set[object] = set()
            for p, shard in shards:
                floor = floors.get(p, 0)
                if floor > shard.latest_version:
                    raise ConfigurationError(
                        f"snapshot floor {floor} on partition {p} is newer "
                        f"than the shard clock {shard.latest_version}"
                    )
                conflicts.update(shard.find_conflicts(floor, keys_by[p]))
            if conflicts:
                with self._admin_lock:
                    self.aborts += 1
                if telemetry is not None:
                    telemetry.on_certification(False, len(conflicts))
                return CertificationOutcome(
                    committed=False,
                    commit_version=-1,
                    conflicting_keys=frozenset(conflicts),
                )
            # All-or-nothing append: a coordinator fault here (the
            # injected seam) or a failed append rolls every shard back.
            appended: List[Tuple[_Shard, int]] = []
            try:
                if self.fault_injector is not None:
                    self.fault_injector(writeset)
                shard_versions = []
                for p, shard in shards:
                    version = shard.append(keys_by[p])
                    appended.append((shard, version))
                    shard_versions.append((p, version))
            except BaseException:
                for shard, version in reversed(appended):
                    shard.unappend(version)
                raise
            with self._admin_lock:
                self.commits += 1
            if telemetry is not None:
                telemetry.on_certification(True, 0)
            return CertificationOutcome(
                committed=True,
                commit_version=shard_versions[0][1],
                shard_versions=tuple(shard_versions),
            )
        finally:
            for shard in reversed(acquired):
                shard.lock.release()

    @staticmethod
    def _keys_by_partition(
        writeset: Writeset, parts: List[int]
    ) -> Dict[int, Set[object]]:
        """Split the writeset's keys over its touched partitions.

        Partition-qualified keys — ``("updatable", partition, row)``,
        the sampler's convention that :meth:`Writeset.writes_for` also
        relies on — go to their own shard; anything else (tests with
        plain keys, single-partition writesets) goes to the home shard.
        """
        home = parts[0]
        by: Dict[int, Set[object]] = {p: set() for p in parts}
        for key in writeset.keys:
            partition = home
            if isinstance(key, tuple) and len(key) > 2 and key[1] in by:
                partition = key[1]
            by[partition].add(key)
        return {p: frozenset(keys) for p, keys in by.items()}

    def observe_snapshot(self, oldest_active_snapshot) -> None:
        """Prune shard histories below per-shard snapshot floors.

        Accepts a mapping (or iterable of pairs) ``partition -> oldest
        shard version still in use``.  A plain integer — the global
        certifier's calling convention — is honoured only while a single
        shard exists; anything else is ambiguous and raises loudly.
        """
        if isinstance(oldest_active_snapshot, int):
            if len(self._shards) <= 1:
                for shard in self._shards.values():
                    shard.prune(oldest_active_snapshot)
                return
            raise ConfigurationError(
                "a sharded certifier needs per-partition snapshot floors; "
                "pass a {partition: version} mapping"
            )
        floors = dict(oldest_active_snapshot)
        for partition, floor in floors.items():
            shard = self._shards.get(partition)
            if shard is not None:
                shard.prune(floor)

    @property
    def abort_fraction(self) -> float:
        if self.certifications == 0:
            return 0.0
        return self.aborts / self.certifications

    def reset_statistics(self) -> None:
        with self._admin_lock:
            self.certifications = 0
            self.commits = 0
            self.aborts = 0
