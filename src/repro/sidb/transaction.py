"""Transactions over a snapshot: buffered writes, read-your-own-writes.

A transaction reads from the snapshot it was given at begin time and buffers
its writes privately; the writes become visible to others only if the
transaction commits (§2).  Read-only transactions always commit.
"""

from __future__ import annotations

from enum import Enum
from typing import Dict, Iterator, Optional

from ..core.errors import ConfigurationError
from .versionstore import VersionedStore
from .writeset import Writeset


class TransactionStatus(Enum):
    """Lifecycle of a transaction."""

    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


class Transaction:
    """One snapshot-isolated transaction.

    Created by :class:`repro.sidb.engine.SIDatabase.begin`; do not construct
    directly unless testing the class in isolation.
    """

    def __init__(self, txn_id: int, store: VersionedStore, snapshot_version: int):
        if snapshot_version < 0:
            raise ConfigurationError("snapshot version must be >= 0")
        self.txn_id = txn_id
        self.snapshot_version = snapshot_version
        self._store = store
        self._writes: Dict[object, object] = {}
        self._read_keys: set = set()
        self.status = TransactionStatus.ACTIVE
        #: Commit version assigned at commit (-1 until then).
        self.commit_version = -1
        #: Data partitions the buffered writes touch (partial replication);
        #: empty means unpartitioned.
        self.partitions: tuple = ()

    def _require_active(self) -> None:
        if self.status is not TransactionStatus.ACTIVE:
            raise ConfigurationError(
                f"transaction {self.txn_id} is {self.status.value}, not active"
            )

    def read(self, key: object) -> object:
        """Read *key*: own writes first, then the snapshot."""
        self._require_active()
        self._read_keys.add(key)
        if key in self._writes:
            return self._writes[key]
        return self._store.read(key, self.snapshot_version)

    def get(self, key: object, default: object = None) -> object:
        """Like :meth:`read` but with a default for missing keys."""
        try:
            return self.read(key)
        except KeyError:
            return default

    def write(self, key: object, value: object) -> None:
        """Buffer a write; visible to this transaction immediately."""
        self._require_active()
        self._writes[key] = value

    def delete(self, key: object) -> None:
        """Buffer a deletion (modelled as writing a tombstone ``None``)."""
        self.write(key, None)

    @property
    def is_read_only(self) -> bool:
        """True when the transaction buffered no writes."""
        return not self._writes

    @property
    def write_keys(self) -> frozenset:
        """Keys written so far (the conflict footprint)."""
        return frozenset(self._writes)

    @property
    def read_keys(self) -> frozenset:
        """Keys read so far (diagnostics; SI does not validate reads)."""
        return frozenset(self._read_keys)

    def writeset(self) -> Optional[Writeset]:
        """Extract the writeset, or ``None`` for a read-only transaction."""
        if self.is_read_only:
            return None
        return Writeset.from_dict(
            self.txn_id, self.snapshot_version, self._writes,
            partitions=self.partitions,
        )

    def pending_writes(self) -> Iterator:
        """Iterate buffered (key, value) pairs (engine internal)."""
        return iter(self._writes.items())

    def mark_committed(self, version: int) -> None:
        """Engine callback: transition to COMMITTED at *version*."""
        self._require_active()
        self.status = TransactionStatus.COMMITTED
        self.commit_version = version

    def mark_aborted(self) -> None:
        """Engine callback: transition to ABORTED."""
        self._require_active()
        self.status = TransactionStatus.ABORTED
