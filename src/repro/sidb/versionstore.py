"""Multi-version storage: the heart of snapshot isolation.

Every committed update transaction installs a new *version* of the rows it
wrote; readers address the store through a snapshot version and see, for
each key, the newest value whose version does not exceed the snapshot
(§2 of the paper: "When a transaction begins, it receives a logical copy,
called snapshot, of the database").

Versions are dense integers assigned by the commit path (the engine for a
standalone database, the certifier for a replicated one).  Version 0 is the
initial database state.

Locking discipline
------------------
The live cluster runtime (:mod:`repro.cluster`) reads a replica's store
from many client threads while one applier thread installs propagated
writesets, so all access goes through one internal re-entrant lock: reads
(:meth:`read`, :meth:`get`, :meth:`contains`, :meth:`snapshot_view`) and
writes (:meth:`install`, :meth:`vacuum`) each hold it for their whole
duration.  Holding the lock across ``install`` keeps the per-key parallel
``versions``/``values`` lists and the ``latest_version`` watermark mutually
consistent — a reader can never observe a version list that is longer than
its value list, or a watermark ahead of the installed data.  The lock is a
leaf: no store method calls out while holding it, so callers may freely
hold their own locks (the engine's commit lock, the certifier's lock)
around store calls.
"""

from __future__ import annotations

import threading
from bisect import bisect_right
from typing import Dict, Iterator, List, Optional

from ..core.errors import ConfigurationError

#: Sentinel for "key was never written".
_MISSING = object()


class VersionedStore:
    """An in-memory multi-version key/value store.

    Keys are arbitrary hashables (the library uses ``(table, row_id)``
    tuples); values are arbitrary objects.  The store keeps the full version
    chain per key until :meth:`vacuum` trims versions older than the oldest
    active snapshot — the space-for-concurrency trade SI makes (§2).
    """

    def __init__(self, initial: Optional[Dict[object, object]] = None) -> None:
        # Guards every read and write; see the module docstring.
        self._lock = threading.RLock()
        # key -> parallel lists of (versions, values), versions ascending.
        self._versions: Dict[object, List[int]] = {}
        self._values: Dict[object, List[object]] = {}
        self._latest_version = 0
        if initial:
            for key, value in initial.items():
                self._versions[key] = [0]
                self._values[key] = [value]

    @property
    def latest_version(self) -> int:
        """The newest committed version number."""
        return self._latest_version

    def read(self, key: object, version: int) -> object:
        """Return the value of *key* visible at snapshot *version*.

        Raises :class:`KeyError` when the key does not exist at that
        snapshot (never written, or written only by later versions).
        """
        with self._lock:
            versions = self._versions.get(key)
            if not versions:
                raise KeyError(key)
            index = bisect_right(versions, version) - 1
            if index < 0:
                raise KeyError(key)
            return self._values[key][index]

    def get(self, key: object, version: int, default: object = None) -> object:
        """Like :meth:`read` but returning *default* instead of raising."""
        try:
            return self.read(key, version)
        except KeyError:
            return default

    def contains(self, key: object, version: int) -> bool:
        """True when *key* is visible at snapshot *version*."""
        return self.get(key, version, _MISSING) is not _MISSING

    def install(self, version: int, writes: Dict[object, object]) -> None:
        """Install the writes of a committed transaction at *version*.

        Versions must be installed in increasing order (the commit path
        serialises them); installing out of order is a bug.
        """
        with self._lock:
            if version <= self._latest_version:
                raise ConfigurationError(
                    f"version {version} not newer than latest "
                    f"{self._latest_version}"
                )
            for key, value in writes.items():
                self._versions.setdefault(key, []).append(version)
                self._values.setdefault(key, []).append(value)
            self._latest_version = version

    def version_of(self, key: object) -> Optional[int]:
        """Version of the newest committed write to *key* (None if never)."""
        with self._lock:
            versions = self._versions.get(key)
            return versions[-1] if versions else None

    def keys(self) -> Iterator[object]:
        """Iterate over all keys ever written (a point-in-time snapshot)."""
        with self._lock:
            return iter(list(self._versions))

    def version_count(self, key: object) -> int:
        """Number of retained versions of *key* (for space diagnostics)."""
        with self._lock:
            return len(self._versions.get(key, ()))

    def retained_versions(self) -> int:
        """Total retained row versions across all keys.

        The space cost of SI's space-for-concurrency trade, sampled by
        the telemetry layer as ``version_store_versions`` and driven
        back down by :meth:`vacuum`.
        """
        with self._lock:
            return sum(len(versions) for versions in self._versions.values())

    def vacuum(self, oldest_active_snapshot: int) -> int:
        """Drop versions no snapshot can see anymore; return versions freed.

        For each key we must keep the newest version <= the oldest active
        snapshot (it is still visible) and everything newer.
        """
        with self._lock:
            freed = 0
            for key, versions in self._versions.items():
                keep_from = bisect_right(versions, oldest_active_snapshot) - 1
                if keep_from > 0:
                    freed += keep_from
                    self._versions[key] = versions[keep_from:]
                    self._values[key] = self._values[key][keep_from:]
            return freed

    def snapshot_view(self, version: int) -> Dict[object, object]:
        """Materialise the full database state at *version* (tests/debugging)."""
        with self._lock:
            view: Dict[object, object] = {}
            for key in self._versions:
                value = self.get(key, version, _MISSING)
                if value is not _MISSING:
                    view[key] = value
            return view
