"""A standalone snapshot-isolated database engine.

Ties together the version store, transactions, and the certification logic
into the concurrency-control model of §2:

* ``begin()`` hands out a snapshot of the latest committed state;
* read-only transactions always commit;
* an update transaction commits iff none of its written keys were written
  by a transaction that committed after its snapshot (first-committer-wins,
  enforced by the shared :class:`~repro.sidb.certifier.Certifier` logic);
* a commit installs a new version and returns the writeset, which replicated
  deployments propagate to other replicas.

This engine is *functional*, not timed: the discrete-event simulator charges
CPU/disk costs around these calls, and the profiler replays captured logs
against it.  The live cluster runtime (:mod:`repro.cluster`) charges
wall-clock costs instead and drives the same engine from many threads.

Locking discipline
------------------
One re-entrant engine lock guards the transaction table
(``_active``/``_snapshots``), the id counter, and the statistics counters;
:meth:`begin`, :meth:`abort`, and :meth:`finish_remote` hold it for their
whole duration.  :meth:`commit` additionally holds it across *certify +
install*, making first-committer-wins atomic when several threads commit
against the same engine (a master replica): without that span, two
certifications could assign versions 5 and 6 and then install them out of
order, which the version store rejects.  The engine lock nests *outside*
the certifier and store locks (both leaves); no engine method is called
with either of those held, so the order is acyclic.  :meth:`apply_writeset`
takes the engine lock too, serialising remote installs against local
commits on the same engine.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Set

from ..core.errors import ConfigurationError, TransactionAborted
from .certifier import GlobalCertifier
from .certifier_api import CertifierProtocol
from .transaction import Transaction, TransactionStatus
from .versionstore import VersionedStore
from .writeset import Writeset


class SIDatabase:
    """An in-memory database running (generalized) snapshot isolation."""

    def __init__(
        self,
        initial: Optional[Dict[object, object]] = None,
        certifier: Optional[CertifierProtocol] = None,
    ) -> None:
        self._store = VersionedStore(initial)
        self._certifier = certifier or GlobalCertifier()
        # Guards transaction bookkeeping and spans certify+install in
        # commit(); see the module docstring for the locking discipline.
        self._lock = threading.RLock()
        self._next_txn_id = 1
        self._active: Set[int] = set()
        self._snapshots: Dict[int, int] = {}
        # Statistics.
        self.read_only_commits = 0
        self.update_commits = 0
        self.update_aborts = 0

    @property
    def store(self) -> VersionedStore:
        """The underlying version store (read-mostly; tests inspect it)."""
        return self._store

    @property
    def certifier(self) -> CertifierProtocol:
        """The conflict-detection service used by the commit path."""
        return self._certifier

    @property
    def latest_version(self) -> int:
        """Newest committed version visible to new snapshots."""
        return self._store.latest_version

    def begin(self, snapshot_version: Optional[int] = None) -> Transaction:
        """Start a transaction.

        By default the snapshot is the latest committed version (plain SI).
        Replicated callers pass an explicit, possibly older, version to model
        GSI's locally-latest snapshots.
        """
        with self._lock:
            if snapshot_version is None:
                snapshot_version = self._store.latest_version
            if snapshot_version > self._store.latest_version:
                raise ConfigurationError(
                    f"snapshot {snapshot_version} is in the future "
                    f"(latest is {self._store.latest_version})"
                )
            txn = Transaction(self._next_txn_id, self._store, snapshot_version)
            self._next_txn_id += 1
            self._active.add(txn.txn_id)
            self._snapshots[txn.txn_id] = snapshot_version
            return txn

    def commit(self, txn: Transaction) -> Optional[Writeset]:
        """Commit *txn*; returns its writeset (None for read-only).

        Raises :class:`TransactionAborted` on a write-write conflict.  The
        transaction object is finalised either way.
        """
        with self._lock:
            if txn.status is not TransactionStatus.ACTIVE:
                raise ConfigurationError(
                    f"cannot commit transaction {txn.txn_id}: {txn.status.value}"
                )
            self._finish(txn.txn_id)
            writeset = txn.writeset()
            if writeset is None:
                txn.mark_committed(txn.snapshot_version)
                self.read_only_commits += 1
                return None

            outcome = self._certifier.certify(writeset)
            if not outcome.committed:
                txn.mark_aborted()
                self.update_aborts += 1
                raise TransactionAborted(txn.txn_id, outcome.conflicting_keys)

            self._store.install(outcome.commit_version, writeset.as_dict)
            txn.mark_committed(outcome.commit_version)
            self.update_commits += 1
            self._prune()
            return writeset.committed(outcome.commit_version)

    def abort(self, txn: Transaction) -> None:
        """Abort *txn* voluntarily (client-side rollback)."""
        with self._lock:
            if txn.status is not TransactionStatus.ACTIVE:
                raise ConfigurationError(
                    f"cannot abort transaction {txn.txn_id}: {txn.status.value}"
                )
            self._finish(txn.txn_id)
            txn.mark_aborted()

    def finish_remote(self, txn: Transaction, commit_version: Optional[int] = None) -> None:
        """Finalise a transaction certified *outside* this engine.

        The multi-master cluster runtime certifies writesets at a shared
        certifier service and installs them through the replication channel
        (:meth:`apply_writeset`), not through :meth:`commit`.  This call
        releases the transaction's snapshot and records its outcome:
        committed at *commit_version*, or aborted when ``None``.
        """
        with self._lock:
            if txn.status is not TransactionStatus.ACTIVE:
                raise ConfigurationError(
                    f"cannot finish transaction {txn.txn_id}: {txn.status.value}"
                )
            self._finish(txn.txn_id)
            if commit_version is None:
                txn.mark_aborted()
                if not txn.is_read_only:
                    self.update_aborts += 1
                return
            txn.mark_committed(commit_version)
            if txn.is_read_only:
                self.read_only_commits += 1
            else:
                self.update_commits += 1

    def apply_writeset(
        self, writeset: Writeset, hosted_partitions=None
    ) -> None:
        """Apply a remotely-certified writeset (replica update propagation).

        The writeset must already carry its global commit version; versions
        must arrive in order, which the propagation channel guarantees.
        *hosted_partitions* scopes the install to this replica's share of
        a cross-partition writeset (see :meth:`Writeset.writes_for`);
        ``None`` installs everything.
        """
        with self._lock:
            if writeset.commit_version <= 0:
                raise ConfigurationError("writeset has no commit version")
            self._store.install(
                writeset.commit_version,
                writeset.writes_for(hosted_partitions),
            )

    def apply_shard_rows(self, version: int, rows: Dict[object, object]) -> None:
        """Install one shard lane's rows at a locally-assigned *version*.

        The sharded live cluster orders installs per certifier shard, not
        globally, so each replica assigns its own monotone local versions
        as deliveries land (safe: concurrently committed writesets have
        disjoint keys, so the final state is order-independent across
        lanes while each key still installs in its shard's commit order).
        """
        with self._lock:
            if version <= 0:
                raise ConfigurationError("shard rows need a positive version")
            self._store.install(version, dict(rows))

    def apply_version_marker(self, commit_version: int) -> None:
        """Advance the version clock without installing any data.

        Partial replication: a replica that hosts none of a writeset's
        partitions skips the data (it will never be read here) but must
        still account for the global commit version, or every later
        *hosted* writeset would be rejected as out of order.  Installing
        an empty write batch is exactly that lightweight commit-log
        marker.
        """
        with self._lock:
            if commit_version <= 0:
                raise ConfigurationError("marker needs a positive version")
            self._store.install(commit_version, {})

    def run(self, operations) -> Optional[Writeset]:
        """Execute a whole transaction from an operation list and commit it.

        *operations* is an iterable of ``("read", key)`` / ``("write", key,
        value)`` tuples — the shape produced by the workload log replayer.
        """
        txn = self.begin()
        for op in operations:
            if op[0] == "read":
                txn.get(op[1])
            elif op[0] == "write":
                txn.write(op[1], op[2])
            else:
                self.abort(txn)
                raise ConfigurationError(f"unknown operation {op[0]!r}")
        return self.commit(txn)

    def clone_state(self) -> "tuple[int, Dict[object, object]]":
        """Snapshot this database for state transfer to a joining replica.

        Returns ``(version, state)``: the latest committed version and the
        full visible state at it.  Taken under the engine lock so the pair
        is consistent with respect to concurrent commits and applies; the
        caller replays newer writesets on top (elastic join).
        """
        with self._lock:
            version = self._store.latest_version
            return version, self._store.snapshot_view(version)

    def seed_state(self, version: int, state: Dict[object, object]) -> None:
        """Install a transferred state snapshot into a *fresh* database.

        The counterpart of :meth:`clone_state`: the whole snapshot lands
        as one bulk install at *version*, after which
        :meth:`apply_writeset` accepts versions above it — exactly the
        snapshot-then-replay join protocol.
        """
        with self._lock:
            if self._store.latest_version != 0 or self._active:
                raise ConfigurationError(
                    "can only seed a fresh database (no commits, no "
                    "active transactions)"
                )
            if version < 0:
                raise ConfigurationError(f"negative seed version {version}")
            if version > 0:
                self._store.install(version, state)

    def oldest_active_snapshot(self) -> int:
        """Oldest snapshot still held by an active transaction."""
        with self._lock:
            if not self._snapshots:
                return self._store.latest_version
            return min(self._snapshots.values())

    def _finish(self, txn_id: int) -> None:
        self._active.discard(txn_id)
        self._snapshots.pop(txn_id, None)

    def _prune(self) -> None:
        oldest = self.oldest_active_snapshot()
        self._certifier.observe_snapshot(oldest - 1 if oldest > 0 else 0)

    def vacuum(self) -> int:
        """Garbage-collect versions invisible to every active snapshot."""
        return self._store.vacuum(self.oldest_active_snapshot())

    def retained_versions(self) -> int:
        """Total row versions currently held by the version store."""
        return self._store.retained_versions()

    @property
    def measured_abort_rate(self) -> float:
        """Observed update abort fraction: aborts / (aborts + commits)."""
        attempts = self.update_commits + self.update_aborts
        if attempts == 0:
            return 0.0
        return self.update_aborts / attempts

    def reset_statistics(self) -> None:
        """Zero the commit/abort counters (end of warm-up)."""
        with self._lock:
            self.read_only_commits = 0
            self.update_commits = 0
            self.update_aborts = 0
            self._certifier.reset_statistics()
