"""An in-memory snapshot-isolated (SI/GSI) database engine (§2 of the paper)."""

from .certifier import Certifier, GlobalCertifier
from .certifier_api import (
    CERTIFIER_KINDS,
    CertificationOutcome,
    CertifierProtocol,
    CertifierSpec,
    UnknownCertifierError,
    resolve_certifier_spec,
)
from .engine import SIDatabase
from .sharded import ShardedCertifier
from .tables import Catalog, Table, TableSchema
from .transaction import Transaction, TransactionStatus
from .versionstore import VersionedStore
from .writeset import Writeset

__all__ = [
    "CERTIFIER_KINDS",
    "CertificationOutcome",
    "Certifier",
    "CertifierProtocol",
    "CertifierSpec",
    "Catalog",
    "GlobalCertifier",
    "SIDatabase",
    "ShardedCertifier",
    "Table",
    "TableSchema",
    "Transaction",
    "TransactionStatus",
    "UnknownCertifierError",
    "VersionedStore",
    "Writeset",
    "resolve_certifier_spec",
]
