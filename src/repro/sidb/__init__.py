"""An in-memory snapshot-isolated (SI/GSI) database engine (§2 of the paper)."""

from .certifier import CertificationOutcome, Certifier
from .engine import SIDatabase
from .tables import Catalog, Table, TableSchema
from .transaction import Transaction, TransactionStatus
from .versionstore import VersionedStore
from .writeset import Writeset

__all__ = [
    "CertificationOutcome",
    "Certifier",
    "Catalog",
    "SIDatabase",
    "Table",
    "TableSchema",
    "Transaction",
    "TransactionStatus",
    "VersionedStore",
    "Writeset",
]
