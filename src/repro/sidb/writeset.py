"""Writesets: the unit of certification and update propagation.

A writeset captures the effects of an update transaction [Kemme 2000]: the
keys it modified and their new values.  The certifier compares writesets to
detect write-write conflicts, and replicas apply writesets to propagate
updates (§2 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Tuple

from ..core.errors import ConfigurationError

#: Rough per-row encoding overhead used by :meth:`Writeset.encoded_size`
#: (key, value, and framing).  TPC-W writesets average 275 bytes over a
#: handful of rows, which this approximation matches.
_BYTES_PER_ROW = 64
_HEADER_BYTES = 24


@dataclass(frozen=True)
class Writeset:
    """The committed effects of one update transaction."""

    #: Transaction id that produced this writeset (for tracing).
    txn_id: int
    #: Snapshot version the transaction read from.
    snapshot_version: int
    #: The modified keys and their new values.
    writes: Tuple[Tuple[object, object], ...]
    #: Commit version; assigned by the certifier/master at commit, -1 before.
    commit_version: int = -1
    #: Data partitions the writes touch (partial replication: certification
    #: is scoped to these and propagation covers only their hosting
    #: replicas).  Empty means *unpartitioned* — the full-replication
    #: default, which conflicts with and propagates to everything.
    partitions: Tuple[int, ...] = ()
    #: Per-shard snapshot floors for the sharded certifier, as sorted
    #: ``(partition, shard version)`` pairs: the transaction has seen all
    #: commits at or below each floor on that partition.  Empty — the
    #: default — on the global path, where :attr:`snapshot_version`
    #: carries the single global snapshot; a missing partition is a
    #: floor of 0, which is conservative (more conflicts, never fewer).
    snapshot_vector: Tuple[Tuple[int, int], ...] = ()

    @classmethod
    def from_dict(
        cls,
        txn_id: int,
        snapshot_version: int,
        writes: Dict[object, object],
        partitions: Tuple[int, ...] = (),
    ) -> "Writeset":
        """Build a writeset from a plain dict of writes."""
        items = tuple(sorted(writes.items(), key=lambda kv: repr(kv[0])))
        return cls(
            txn_id=txn_id,
            snapshot_version=snapshot_version,
            writes=items,
            partitions=tuple(sorted(set(partitions))),
        )

    def __post_init__(self) -> None:
        if not self.writes:
            raise ConfigurationError("a writeset must contain at least one write")
        if self.snapshot_version < 0:
            raise ConfigurationError("snapshot version must be >= 0")

    @property
    def keys(self) -> FrozenSet[object]:
        """The set of modified keys (conflict-detection granularity: a row)."""
        return frozenset(key for key, _ in self.writes)

    @property
    def partition_set(self) -> FrozenSet[int]:
        """The touched partitions as a set (empty = unpartitioned)."""
        return frozenset(self.partitions)

    @property
    def as_dict(self) -> Dict[object, object]:
        """The writes as a dict (last write wins is already resolved)."""
        return dict(self.writes)

    def writes_for(self, hosted_partitions) -> Dict[object, object]:
        """The writes landing in *hosted_partitions* (partial replication).

        Partitioned writesets qualify every key with its partition as the
        second tuple element — ``("updatable", partition, row)``, the
        convention the workload sampler establishes — so a replica
        hosting only some of a cross-partition writeset's partitions can
        install exactly its own rows.  Unpartitioned writesets (and
        ``hosted_partitions=None``) return everything.
        """
        if hosted_partitions is None or not self.partitions:
            return self.as_dict
        return {
            key: value
            for key, value in self.writes
            if key[1] in hosted_partitions
        }

    def encoded_size(self) -> int:
        """Approximate wire size in bytes (for network-budget experiments)."""
        return _HEADER_BYTES + _BYTES_PER_ROW * len(self.writes)

    def conflicts_with(self, other: "Writeset") -> bool:
        """True when the two writesets touch a common key."""
        return not self.keys.isdisjoint(other.keys)

    def committed(self, version: int) -> "Writeset":
        """Return a copy stamped with its commit version."""
        if version <= 0:
            raise ConfigurationError("commit version must be positive")
        return Writeset(
            txn_id=self.txn_id,
            snapshot_version=self.snapshot_version,
            writes=self.writes,
            commit_version=version,
            partitions=self.partitions,
            snapshot_vector=self.snapshot_vector,
        )

    def with_snapshot_vector(self, floors) -> "Writeset":
        """Return a copy carrying per-shard snapshot floors.

        *floors* is a ``{partition: shard version}`` mapping (or pair
        iterable); the sharded pillars stamp sampled writesets with the
        originating replica's applied vector before certification.
        """
        return Writeset(
            txn_id=self.txn_id,
            snapshot_version=self.snapshot_version,
            writes=self.writes,
            commit_version=self.commit_version,
            partitions=self.partitions,
            snapshot_vector=tuple(sorted(dict(floors).items())),
        )
