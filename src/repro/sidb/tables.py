"""A relational layer over the snapshot-isolated engine.

The raw engine stores opaque key/value pairs; real e-commerce workloads
(TPC-W's bookstore, RUBiS's auctions) think in tables with schemas and
secondary lookups.  This module provides both:

* :class:`TableSchema` — column names, a primary key, optional indexed
  columns;
* :class:`Table` — typed row operations (insert/get/update/delete/scan)
  executed *inside* a snapshot-isolated transaction, with secondary indexes
  maintained transactionally (index rows are ordinary versioned keys, so
  index reads see the same snapshot as row reads).

Conflict granularity remains one row (§2: "the granularity of conflict
detection is typically a row in a database table"): index maintenance
writes index *entry* keys, so two inserts indexing the same value conflict
only if the schema declares the index ``unique``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from ..core.errors import ConfigurationError
from .engine import SIDatabase
from .transaction import Transaction

#: Key-space tags (first tuple element) used by the relational layer.
_ROW = "row"
_INDEX = "idx"
_UNIQUE = "uidx"


@dataclass(frozen=True)
class TableSchema:
    """Schema of one table: columns, primary key, secondary indexes."""

    name: str
    columns: Tuple[str, ...]
    primary_key: str
    #: Columns with non-unique secondary indexes.
    indexes: Tuple[str, ...] = ()
    #: Columns with unique secondary indexes.
    unique_indexes: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("table name must not be empty")
        if len(set(self.columns)) != len(self.columns):
            raise ConfigurationError(f"duplicate columns in {self.columns}")
        if self.primary_key not in self.columns:
            raise ConfigurationError(
                f"primary key {self.primary_key!r} is not a column"
            )
        for col in self.indexes + self.unique_indexes:
            if col not in self.columns:
                raise ConfigurationError(f"indexed column {col!r} is not a column")
            if col == self.primary_key:
                raise ConfigurationError(
                    "the primary key is implicitly indexed; do not re-index it"
                )
        overlap = set(self.indexes) & set(self.unique_indexes)
        if overlap:
            raise ConfigurationError(
                f"columns {sorted(overlap)} are both unique and non-unique"
            )

    def validate_row(self, row: Dict[str, object]) -> None:
        """Check a row dict matches the schema exactly."""
        if set(row) != set(self.columns):
            raise ConfigurationError(
                f"row columns {sorted(row)} do not match schema "
                f"{sorted(self.columns)}"
            )


class Table:
    """Typed operations on one table within snapshot-isolated transactions.

    All methods take the :class:`~repro.sidb.transaction.Transaction` to
    operate in; the caller owns begin/commit so multi-table transactions
    compose naturally::

        txn = db.begin()
        items.update(txn, item_id, stock=stock - 1)
        orders.insert(txn, {...})
        db.commit(txn)
    """

    def __init__(self, database: SIDatabase, schema: TableSchema) -> None:
        self._db = database
        self.schema = schema

    # -- key construction ------------------------------------------------

    def _row_key(self, pk: object) -> Tuple:
        return (_ROW, self.schema.name, pk)

    def _index_key(self, column: str, value: object, pk: object) -> Tuple:
        return (_INDEX, self.schema.name, column, value, pk)

    def _unique_key(self, column: str, value: object) -> Tuple:
        return (_UNIQUE, self.schema.name, column, value)

    # -- operations --------------------------------------------------------

    def insert(self, txn: Transaction, row: Dict[str, object]) -> None:
        """Insert *row*; fails if the primary key already exists."""
        self.schema.validate_row(row)
        pk = row[self.schema.primary_key]
        if txn.get(self._row_key(pk)) is not None:
            raise ConfigurationError(
                f"{self.schema.name}: duplicate primary key {pk!r}"
            )
        txn.write(self._row_key(pk), dict(row))
        self._write_index_entries(txn, row, pk)

    def get(self, txn: Transaction, pk: object) -> Optional[Dict[str, object]]:
        """Fetch a row by primary key (None when absent at this snapshot)."""
        value = txn.get(self._row_key(pk))
        return dict(value) if value is not None else None

    def update(self, txn: Transaction, pk: object, **changes: object) -> None:
        """Update columns of an existing row."""
        current = txn.get(self._row_key(pk))
        if current is None:
            raise ConfigurationError(
                f"{self.schema.name}: no row with primary key {pk!r}"
            )
        unknown = set(changes) - set(self.schema.columns)
        if unknown:
            raise ConfigurationError(f"unknown columns {sorted(unknown)}")
        if self.schema.primary_key in changes:
            raise ConfigurationError("cannot change the primary key; "
                                     "delete and re-insert instead")
        updated = dict(current)
        self._remove_index_entries(txn, current, pk, touched=set(changes))
        updated.update(changes)
        txn.write(self._row_key(pk), updated)
        self._write_index_entries(txn, updated, pk, touched=set(changes))

    def delete(self, txn: Transaction, pk: object) -> None:
        """Delete a row (tombstones the row and its index entries)."""
        current = txn.get(self._row_key(pk))
        if current is None:
            raise ConfigurationError(
                f"{self.schema.name}: no row with primary key {pk!r}"
            )
        self._remove_index_entries(txn, current, pk)
        txn.write(self._row_key(pk), None)

    def lookup(
        self, txn: Transaction, column: str, value: object
    ) -> List[Dict[str, object]]:
        """Fetch the rows whose indexed *column* equals *value*."""
        if column in self.schema.unique_indexes:
            pk = txn.get(self._unique_key(column, value))
            if pk is None:
                return []
            row = self.get(txn, pk)
            return [row] if row is not None else []
        if column not in self.schema.indexes:
            raise ConfigurationError(
                f"{self.schema.name}.{column} is not indexed"
            )
        rows: List[Dict[str, object]] = []
        for key in self._scan_index_keys(txn, column, value):
            pk = key[-1]
            row = self.get(txn, pk)
            if row is not None:
                rows.append(row)
        return rows

    def scan(self, txn: Transaction) -> Iterator[Dict[str, object]]:
        """Iterate every live row visible to the transaction's snapshot.

        A full scan over the key space — adequate for the library's test
        and example scales, documented as O(all keys ever written).
        """
        store = self._db.store
        for key in list(store.keys()):
            if (
                isinstance(key, tuple)
                and len(key) == 3
                and key[0] == _ROW
                and key[1] == self.schema.name
            ):
                value = txn.get(key)
                if value is not None:
                    yield dict(value)

    def count(self, txn: Transaction) -> int:
        """Number of live rows at the transaction's snapshot."""
        return sum(1 for _ in self.scan(txn))

    # -- index maintenance -------------------------------------------------

    def _write_index_entries(
        self, txn: Transaction, row: Dict[str, object], pk: object,
        touched: Optional[set] = None,
    ) -> None:
        for column in self.schema.indexes:
            if touched is None or column in touched:
                txn.write(self._index_key(column, row[column], pk), True)
        for column in self.schema.unique_indexes:
            if touched is not None and column not in touched:
                continue
            key = self._unique_key(column, row[column])
            existing = txn.get(key)
            if existing is not None and existing != pk:
                raise ConfigurationError(
                    f"{self.schema.name}.{column}: unique value "
                    f"{row[column]!r} already taken by {existing!r}"
                )
            txn.write(key, pk)

    def _remove_index_entries(
        self, txn: Transaction, row: Dict[str, object], pk: object,
        touched: Optional[set] = None,
    ) -> None:
        for column in self.schema.indexes:
            if touched is None or column in touched:
                txn.write(self._index_key(column, row[column], pk), None)
        for column in self.schema.unique_indexes:
            if touched is None or column in touched:
                txn.write(self._unique_key(column, row[column]), None)

    def _scan_index_keys(self, txn, column: str, value: object) -> Iterator[Tuple]:
        store = self._db.store
        prefix = (_INDEX, self.schema.name, column, value)
        for key in list(store.keys()):
            if (
                isinstance(key, tuple)
                and len(key) == 5
                and key[:4] == prefix
                and txn.get(key) is not None
            ):
                yield key


class Catalog:
    """A named collection of tables over one database."""

    def __init__(self, database: SIDatabase) -> None:
        self.database = database
        self._tables: Dict[str, Table] = {}

    def create_table(self, schema: TableSchema) -> Table:
        """Register a table; names must be unique."""
        if schema.name in self._tables:
            raise ConfigurationError(f"table {schema.name!r} already exists")
        table = Table(self.database, schema)
        self._tables[schema.name] = table
        return table

    def table(self, name: str) -> Table:
        """Look up a table by name."""
        try:
            return self._tables[name]
        except KeyError:
            raise ConfigurationError(
                f"no table {name!r}; have {sorted(self._tables)}"
            ) from None

    def names(self) -> List[str]:
        """Sorted table names."""
        return sorted(self._tables)
