"""Certification: system-wide write-write conflict detection (§2, §5.1).

The certifier is a lightweight stateful service.  It keeps the writesets of
recently committed update transactions together with their commit versions.
To certify a transaction it compares the transaction's writeset against the
writesets of every transaction that committed *after* the snapshot the
transaction read from; any key overlap is a write-write conflict and the
transaction must abort (first-committer-wins).

Partial replication scopes certification *per partition set*: a writeset
carrying a non-empty ``partitions`` tuple is compared only against
history entries whose partition sets intersect it — writesets touching
disjoint partition sets can never conflict, no matter their keys.  (An
empty partition set is the unpartitioned wildcard: it certifies against
everything, preserving the full-replication behaviour byte for byte.)
Commit versions stay a single global sequence either way: the version
store and the replication channel rely on one total commit order, so
partitioning narrows the *conflict check*, not the version clock.

The same logic certifies commits on a standalone/master database, where the
"service" is the local concurrency-control subsystem.

Locking discipline
------------------
The certifier is shared by every replica thread of the live cluster runtime
(:mod:`repro.cluster`), so all mutation happens under a single internal
re-entrant lock: :meth:`certify`, :meth:`observe_snapshot`, and
:meth:`reset_statistics` each take it for their whole duration, making
certify-and-assign-version atomic.  Callers that must keep the *published
order* of writesets aligned with the assigned commit versions (the
replication channel) take their own ordering lock **around** ``certify`` +
publish; the certifier lock is always innermost and no certifier method
calls back out, so there is no lock-ordering hazard.  The statistics
counters are only written under the lock; readers tolerate a slightly stale
view.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, FrozenSet, Set, Tuple

from ..core.errors import ConfigurationError
from .certifier_api import CertificationOutcome
from .writeset import Writeset

__all__ = ["CertificationOutcome", "Certifier", "GlobalCertifier"]


class GlobalCertifier:
    """Detects write-write conflicts and assigns global commit versions.

    The history is pruned in two ways:

    * :meth:`observe_snapshot` lets the caller report the oldest snapshot
      still in use, allowing exact pruning;
    * ``max_history`` bounds memory regardless (certifying against a
      snapshot older than the retained history conservatively aborts, which
      never violates safety — only liveness of very stale transactions).
    """

    def __init__(self, max_history: int = 100_000) -> None:
        if max_history < 1:
            raise ConfigurationError("max_history must be >= 1")
        # Guards all mutable state; see the module docstring for the
        # locking discipline shared with the live cluster runtime.
        self._lock = threading.RLock()
        # (version, keys, partition set) per retained commit; an empty
        # partition set is the unpartitioned wildcard.
        self._history: Deque[
            Tuple[int, FrozenSet[object], FrozenSet[int]]
        ] = deque()
        self._max_history = max_history
        self._next_version = 1
        self._oldest_retained = 1
        # Statistics (§6.3.2 sensitivity analysis reads these).
        self.certifications = 0
        self.commits = 0
        self.aborts = 0
        #: Optional :class:`repro.telemetry.Telemetry` hook.  ``None``
        #: (the default) keeps the commit path allocation-free; a
        #: telemetry-enabled run sets it after construction.
        self.telemetry = None

    @property
    def latest_version(self) -> int:
        """The most recently assigned commit version."""
        return self._next_version - 1

    @property
    def history_size(self) -> int:
        """Writesets currently retained for conflict checks."""
        with self._lock:
            return len(self._history)

    def certify(self, writeset: Writeset) -> CertificationOutcome:
        """Certify *writeset* against transactions concurrent with it."""
        with self._lock:
            self.certifications += 1
            snapshot = writeset.snapshot_version
            if snapshot >= self._next_version:
                raise ConfigurationError(
                    f"snapshot {snapshot} is newer than the latest commit "
                    f"{self.latest_version}"
                )
            conflicts = self._find_conflicts(
                snapshot, writeset.keys, writeset.partition_set
            )
            telemetry = self.telemetry
            if conflicts:
                self.aborts += 1
                if telemetry is not None:
                    telemetry.on_certification(False, len(conflicts))
                return CertificationOutcome(
                    committed=False,
                    commit_version=-1,
                    conflicting_keys=frozenset(conflicts),
                )
            version = self._next_version
            self._next_version += 1
            self._history.append(
                (version, writeset.keys, writeset.partition_set)
            )
            self._trim()
            self.commits += 1
            if telemetry is not None:
                telemetry.on_certification(True, 0)
            return CertificationOutcome(committed=True, commit_version=version)

    def _find_conflicts(
        self,
        snapshot: int,
        keys: FrozenSet[object],
        partitions: FrozenSet[int],
    ) -> Set[object]:
        if snapshot + 1 < self._oldest_retained:
            # History needed for an exact answer was pruned; conservatively
            # report a conflict on every key (forces a retry with a fresher
            # snapshot — safe, and only possible for extremely stale reads).
            return set(keys)
        conflicts: Set[object] = set()
        # History is version-ordered; scan newest-first and stop at the
        # snapshot boundary.
        for version, committed_keys, committed_partitions in reversed(
            self._history
        ):
            if version <= snapshot:
                break
            if (
                partitions
                and committed_partitions
                and partitions.isdisjoint(committed_partitions)
            ):
                # Disjoint partition sets cannot write-write conflict;
                # the key comparison is skipped entirely (per-partition
                # certification).
                continue
            overlap = keys & committed_keys
            conflicts.update(overlap)
        return conflicts

    def observe_snapshot(self, oldest_active_snapshot: int) -> None:
        """Prune history that no active snapshot can conflict with."""
        with self._lock:
            while self._history and self._history[0][0] <= oldest_active_snapshot:
                self._popleft()

    def _trim(self) -> None:
        while len(self._history) > self._max_history:
            self._popleft()

    def _popleft(self) -> None:
        version, _, _ = self._history.popleft()
        self._oldest_retained = version + 1

    @property
    def abort_fraction(self) -> float:
        """Observed abort fraction over all certifications so far."""
        if self.certifications == 0:
            return 0.0
        return self.aborts / self.certifications

    def reset_statistics(self) -> None:
        """Zero the counters (used at the end of a warm-up period)."""
        with self._lock:
            self.certifications = 0
            self.commits = 0
            self.aborts = 0


#: Deprecation alias: the concrete class every call site imported before
#: the :mod:`repro.sidb.certifier_api` seam existed.  New code should
#: depend on :class:`~repro.sidb.certifier_api.CertifierProtocol` and
#: name :class:`GlobalCertifier` explicitly.
Certifier = GlobalCertifier
