"""The certification seam: protocol, outcome, and deployment spec.

Every component that *uses* certification — the SI engine
(:mod:`repro.sidb.engine`), the simulator assemblies
(:mod:`repro.simulator.systems`), and the live cluster runtime
(:mod:`repro.cluster.cluster`) — depends on :class:`CertifierProtocol`,
not on a concrete class.  Two implementations satisfy it:

* :class:`~repro.sidb.certifier.GlobalCertifier` — one service, one
  global commit-version sequence (the paper's design, and the default);
* :class:`~repro.sidb.sharded.ShardedCertifier` — partition-local
  certifier shards, each owning certification and version assignment
  for its partition, coordinated for cross-partition transactions by
  certification-forwarding to a deterministic home shard.

Which one a run gets is described by :class:`CertifierSpec`, a frozen
dataclass that rides the engine cache key exactly like
:class:`~repro.telemetry.TelemetryConfig`: the default spec drops out
of sweep-point options entirely, so every pre-existing cache entry
stays byte-identical.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass
from typing import FrozenSet, Optional, Protocol, Tuple, runtime_checkable

from ..core.errors import ConfigurationError

#: Certifier deployment kinds selectable on the scenario surface.
GLOBAL = "global"
SHARDED = "sharded"
CERTIFIER_KINDS = (GLOBAL, SHARDED)


@dataclass(frozen=True)
class CertificationOutcome:
    """Result of certifying one writeset."""

    committed: bool
    #: Commit version assigned on success; -1 on abort.  On the sharded
    #: path this is the *home shard's* version (the coordinator's
    #: decision point); the full assignment is :attr:`shard_versions`.
    commit_version: int
    #: Keys that conflicted on failure (empty on success).
    conflicting_keys: FrozenSet[object] = frozenset()
    #: Per-shard versions assigned on the sharded path: sorted
    #: ``(partition, version)`` pairs.  Empty on the global path and on
    #: aborts, so the global certifier's outcomes are unchanged.
    shard_versions: Tuple[Tuple[int, int], ...] = ()

    @property
    def home_shard(self) -> Optional[int]:
        """The coordinating shard of a sharded commit (``None`` on the
        global path: there is only one version sequence)."""
        if not self.shard_versions:
            return None
        return self.shard_versions[0][0]


@runtime_checkable
class CertifierProtocol(Protocol):
    """What the engine, simulator, and cluster require of a certifier.

    Implementations must make :meth:`certify` atomic (check + version
    assignment under internal locking, re-entrant with respect to the
    callers' own ordering locks), keep the statistics counters
    monotone between :meth:`reset_statistics` calls, and treat
    :attr:`telemetry` as an optional post-construction hook.
    """

    certifications: int
    commits: int
    aborts: int
    telemetry: object

    @property
    def latest_version(self) -> int:
        """The version clock: latest assigned commit version (global),
        or the sum of the shard clocks (sharded)."""
        ...

    @property
    def history_size(self) -> int:
        """Writesets currently retained for conflict checks."""
        ...

    def certify(self, writeset) -> CertificationOutcome:
        """Certify one writeset and assign its version(s) on success."""
        ...

    def observe_snapshot(self, oldest_active_snapshot) -> None:
        """Prune history no active snapshot can conflict with."""
        ...

    @property
    def abort_fraction(self) -> float:
        """Observed abort fraction over all certifications so far."""
        ...

    def reset_statistics(self) -> None:
        """Zero the counters (used at the end of a warm-up period)."""
        ...


class UnknownCertifierError(ConfigurationError):
    """A certifier kind that is not in :data:`CERTIFIER_KINDS`.

    Mirrors :class:`repro.engine.registry.UnknownScenarioError`: carries
    close-match ``suggestions`` so the CLI can say "did you mean ...?"
    and exit 2 instead of dumping a traceback.
    """

    def __init__(self, kind: str, suggestions: Tuple[str, ...] = ()) -> None:
        message = f"unknown certifier {kind!r}"
        if suggestions:
            message += "; did you mean " + " or ".join(suggestions) + "?"
        known = ", ".join(CERTIFIER_KINDS)
        message += f" (known certifiers: {known})"
        super().__init__(message)
        self.kind = kind
        self.suggestions = suggestions


def _check_kind(kind: str) -> None:
    if kind in CERTIFIER_KINDS:
        return
    key = str(kind).strip().lower()
    suggestions = tuple(
        difflib.get_close_matches(key, CERTIFIER_KINDS, n=3, cutoff=0.5)
    )
    raise UnknownCertifierError(kind, suggestions)


@dataclass(frozen=True)
class CertifierSpec:
    """How a run deploys its certifier (frozen: a cache-key citizen).

    ``service_time`` is the per-certification occupancy of one certifier
    service in seconds: the certifier stops being an infinite-capacity
    pure delay and becomes a real service center — one center total on
    the global path, one per shard on the sharded path (which is where
    sharding's throughput win comes from).  ``0.0``, the default, keeps
    the pure-delay behaviour byte-identical to the pre-spec code.
    """

    kind: str = GLOBAL
    service_time: float = 0.0

    def __post_init__(self) -> None:
        _check_kind(self.kind)
        if self.service_time < 0.0:
            raise ConfigurationError(
                f"certifier service_time must be >= 0, got {self.service_time}"
            )

    @property
    def is_default(self) -> bool:
        """True for the spec that must not perturb cache keys."""
        return self.kind == GLOBAL and self.service_time == 0.0

    @property
    def is_sharded(self) -> bool:
        return self.kind == SHARDED


def resolve_certifier_spec(value) -> Optional[CertifierSpec]:
    """Normalise a ``certifier`` argument to a spec or ``None``.

    Accepts ``None`` (the global default, dropping out of cache keys),
    a kind name (``"global"`` / ``"sharded"``), or a
    :class:`CertifierSpec`.  Unknown kinds raise
    :class:`UnknownCertifierError` with did-you-mean suggestions.
    """
    if value is None:
        return None
    if isinstance(value, CertifierSpec):
        return value
    if isinstance(value, str):
        key = value.strip().lower()
        _check_kind(key)
        return CertifierSpec(kind=key)
    raise ConfigurationError(
        f"certifier must be None, a kind name, or a CertifierSpec, "
        f"not {type(value).__name__}"
    )


def shard_version_key(shard: int, version: int) -> str:
    """The telemetry key of one per-shard version.

    Per-shard sequences all start at 1, so raw integers collide across
    shards; the tracer's version→trace map, commit-time table, and
    apply spans key sharded versions with this string instead (the
    global path keeps plain integers, preserving its telemetry output
    byte for byte).
    """
    return f"s{shard}v{version}"
