"""Failure detection and automatic replacement of crashed replicas.

The :class:`HealthMonitor` is pillar-agnostic: it is bound to a system (a
DES assembly or a live cluster) through three callables — list the
replicas, force-remove one, add a fresh one — the same inversion the
autoscale reconciliation loop uses.  The control loop ticks it once per
interval; on each tick it

1. scans for replicas whose ``failed`` flag is set (the crash fault set
   it: the replica stopped consuming writesets and its state is lost),
2. force-detaches them (no drain — there is nothing to drain), and
3. rejoins a replacement of the same ``capacity`` via state transfer,

stamping every step into the run's event log so MTTR and the
unavailability window can be read off afterwards.  A replacement that
cannot be placed this tick (e.g. the replication history no longer
reaches back to any donor snapshot) is retried next tick rather than
failing the run.
"""

from __future__ import annotations

from typing import Callable, List, Sequence

from ..core.errors import ReproError
from .events import DETACH, DETECT, REPLACE, RESTORED, OpsEvent


class HealthMonitor:
    """Replaces crashed replicas through the elastic membership ops."""

    def __init__(
        self,
        replicas: Callable[[], Sequence],
        remove: Callable[[object], None],
        add: Callable[[float], object],
        events: List[OpsEvent],
        ) -> None:
        """*remove* force-detaches its argument; *add* takes the
        replacement's capacity multiplier and returns the new replica."""
        self._replicas = replicas
        self._remove = remove
        self._add = add
        self._events = events
        #: (capacity, crashed-name) replacements still waiting to be
        #: placed (their add raised last tick).
        self._backlog: List[tuple] = []
        #: (replica, crashed-name) joins in flight, watched for the
        #: moment they enter rotation.
        self._joining: List[tuple] = []

    def tick(self, now: float) -> None:
        """One health-check pass (called once per control interval)."""
        for replica in list(self._replicas()):
            if not getattr(replica, "failed", False):
                continue
            self._events.append(OpsEvent(now, DETECT, replica.name))
            try:
                self._remove(replica)
            except ReproError as exc:
                # Nothing healthy to fail over to; keep the replica
                # listed and retry next tick.
                self._events.append(OpsEvent(
                    now, "detach-failed", replica.name, detail=str(exc)
                ))
                continue
            self._events.append(OpsEvent(now, DETACH, replica.name))
            self._backlog.append(
                (getattr(replica, "capacity", 1.0), replica.name)
            )
        self._place_backlog(now)
        self._watch_joins(now)

    def _place_backlog(self, now: float) -> None:
        remaining: List[tuple] = []
        for capacity, crashed in self._backlog:
            try:
                replacement = self._add(capacity)
            except ReproError as exc:
                self._events.append(OpsEvent(
                    now, "replace-deferred", crashed, detail=str(exc)
                ))
                remaining.append((capacity, crashed))
                continue
            self._events.append(OpsEvent(
                now, REPLACE, replacement.name, detail=f"replaces {crashed}"
            ))
            self._joining.append((replacement, crashed))
        self._backlog = remaining

    def _watch_joins(self, now: float) -> None:
        still_joining: List[tuple] = []
        for replica, crashed in self._joining:
            if replica.available:
                self._events.append(OpsEvent(
                    now, RESTORED, replica.name, detail=f"replaces {crashed}"
                ))
            else:
                still_joining.append((replica, crashed))
        self._joining = still_joining

    @property
    def settled(self) -> bool:
        """True when no replacement is pending or joining."""
        return not self._backlog and not self._joining
