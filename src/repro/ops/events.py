"""Operations events and the availability summary derived from them.

Every action the operations layer takes — a fault firing, a crash being
detected, a forced detach, a replacement joining, a rolling cycle — is
stamped into the run's event log as an :class:`OpsEvent`.
:func:`summarize` folds the log and the run timeline into the numbers an
operator actually asks about: mean time to repair, how long the fleet ran
degraded, and how much throughput the outage cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

# The fault layer stamps crash/brownout events with its own kind
# constants; one definition keeps summarize()'s matching and the
# recorder in lockstep.
from ..simulator.faults import BROWNOUT, CRASH
from ..telemetry.events import TelemetryEvent

#: Event kinds, in roughly the order they occur in a replacement.
DETECT = "detect"
DETACH = "detach"
REPLACE = "replace"
RESTORED = "restored"
DRAIN = "drain"
REJOIN = "rejoin"
UPGRADED = "upgraded"
ROLLING_DONE = "rolling-complete"
#: Gray-failure detections stamped by the online capacity estimator.
GRAY_DETECT = "gray-detect"
GRAY_CLEAR = "gray-clear"
#: Stamped by the fault layer when a brownout ends.
BROWNOUT_END = "brownout-end"


class OpsEvent(TelemetryEvent):
    """One timestamped operations action.

    Originally its own dataclass; now a
    :class:`~repro.telemetry.events.TelemetryEvent` so the ``repro ops``
    and ``repro metrics`` timelines share one event schema and renderer.
    The historical ``replica`` field survives as an alias of
    ``subject`` — third positional constructor argument included — so
    existing call sites, tests, and cached results keep working.
    """

    def __init__(self, time: float, kind: str, replica: str = "",
                 detail: str = "", *, subject: Optional[str] = None) -> None:
        TelemetryEvent.__init__(
            self, time=time, kind=kind,
            subject=replica if subject is None else subject,
            detail=detail,
        )

    @property
    def replica(self) -> str:
        """The replica the event concerns (alias of ``subject``)."""
        return self.subject

    def __setstate__(self, state):
        # Pickles from before the telemetry layer stored the subject
        # under the old field name.
        if isinstance(state, dict) and "replica" in state:
            state = dict(state)
            state.setdefault("subject", state.pop("replica"))
        self.__dict__.update(state)


@dataclass(frozen=True)
class OpsSummary:
    """Availability arithmetic of one operations run."""

    #: Replicas crashed / replacements that completed (back in rotation).
    crashes: int
    replacements: int
    #: Mean and worst crash-to-back-in-rotation repair time (seconds);
    #: ``None`` when no replacement completed.
    mttr: Optional[float]
    worst_mttr: Optional[float]
    #: Total time some replica was crashed and its replacement was not
    #: yet serving (overlapping windows merged).
    unavailability: float
    #: Committed throughput shortfall during the repair windows, against
    #: the pre-fault baseline (transactions, >= 0).
    lost_throughput: float
    #: Mean committed throughput before the first crash and after the
    #: last repair (tps); recovery_ratio is their quotient.
    baseline_throughput: float
    recovered_throughput: float
    #: Rolling-restart cycles completed.
    upgrades: int
    #: MTTR breakdown: mean crash-to-detect and detect-to-restored times
    #: (seconds; ``None`` without completed repairs).  Detection latency
    #: is bounded by the monitor's detect interval, repair latency by
    #: state-transfer time — the split the ``detect_interval`` knob of
    #: :class:`~repro.ops.plan.OpsPlan` exists to expose.
    mean_detection_latency: Optional[float] = None
    mean_repair_latency: Optional[float] = None
    #: Gray failures: brownout faults injected, how many the capacity
    #: estimator caught, and the mean brownout-onset-to-gray-detect
    #: latency (seconds; ``None`` when nothing was caught).  Defaults
    #: keep summaries from older cached runs loading unchanged.
    gray_failures: int = 0
    gray_detected: int = 0
    mean_gray_detection_latency: Optional[float] = None

    @property
    def recovery_ratio(self) -> float:
        """Post-repair throughput as a fraction of the pre-fault baseline."""
        if self.baseline_throughput <= 0:
            return 1.0
        return self.recovered_throughput / self.baseline_throughput

    def to_text(self) -> str:
        """Render the operator-facing summary."""
        lines = [
            f"ops summary: {self.crashes} crash(es), "
            f"{self.replacements} replacement(s), {self.upgrades} "
            f"rolling upgrade(s)"
        ]
        if self.mttr is not None:
            lines.append(
                f"  MTTR {self.mttr:.1f}s (worst {self.worst_mttr:.1f}s), "
                f"degraded for {self.unavailability:.1f}s"
            )
        if (self.mean_detection_latency is not None
                and self.mean_repair_latency is not None):
            lines.append(
                f"  breakdown: {self.mean_detection_latency:.1f}s "
                f"detection + {self.mean_repair_latency:.1f}s repair"
            )
        if self.crashes:
            lines.append(
                f"  lost ~{self.lost_throughput:.0f} committed txns during "
                f"repair; throughput recovered to "
                f"{self.recovery_ratio:.0%} of the pre-fault "
                f"{self.baseline_throughput:.1f} tps"
            )
        if self.gray_failures:
            if self.mean_gray_detection_latency is not None:
                latency = (
                    f"mean detection latency "
                    f"{self.mean_gray_detection_latency:.1f}s"
                )
            else:
                latency = "UNDETECTED"
            lines.append(
                f"  gray failures: {self.gray_detected}/"
                f"{self.gray_failures} brownout(s) caught by the "
                f"capacity estimator, {latency}"
            )
        return "\n".join(lines)


def _merged_windows(
    pairs: Sequence[Tuple[float, float]]
) -> List[Tuple[float, float]]:
    """Merge overlapping (start, end) repair windows."""
    merged: List[Tuple[float, float]] = []
    for start, end in sorted(pairs):
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


def summarize(result) -> OpsSummary:
    """Fold an :class:`~repro.control.autoscale.AutoscaleResult`'s event
    log and timeline into an :class:`OpsSummary`.

    Crash-to-repair pairs are matched by replica name: a ``restored``
    event's detail names the member it replaced.  A crash whose
    replacement never completed contributes an open window ending at the
    last timeline point.
    """
    events = list(getattr(result, "ops_events", ()) or ())
    timeline = list(getattr(result, "timeline", ()) or ())
    horizon = timeline[-1].time if timeline else (
        events[-1].time if events else 0.0
    )

    crash_at: Dict[str, float] = {}
    detect_at: Dict[str, float] = {}
    repairs: List[Tuple[float, float]] = []
    detection_legs: List[float] = []
    repair_legs: List[float] = []
    brownouts: List[Tuple[str, float]] = []
    gray_detects: Dict[str, List[float]] = {}
    upgrades = 0
    for event in events:
        if event.kind == CRASH:
            crash_at.setdefault(event.replica, event.time)
        elif event.kind == BROWNOUT:
            brownouts.append((event.replica, event.time))
        elif event.kind == GRAY_DETECT:
            gray_detects.setdefault(event.replica, []).append(event.time)
        elif event.kind == DETECT:
            detect_at.setdefault(event.replica, event.time)
        elif event.kind == RESTORED and event.detail.startswith("replaces "):
            name = event.detail[len("replaces "):]
            if name in crash_at:
                crashed = crash_at.pop(name)
                repairs.append((crashed, event.time))
                detected = detect_at.pop(name, None)
                if detected is not None:
                    detection_legs.append(detected - crashed)
                    repair_legs.append(event.time - detected)
        elif event.kind == UPGRADED:
            upgrades += 1
    # Pair each brownout onset with the first gray-detect on the same
    # replica at or after it (each detection credits one brownout).
    gray_latencies: List[float] = []
    for name, onset in sorted(brownouts, key=lambda pair: pair[1]):
        times = gray_detects.get(name, [])
        match = next((t for t in times if t >= onset), None)
        if match is not None:
            times.remove(match)
            gray_latencies.append(match - onset)
    crashes = len(repairs) + len(crash_at)
    open_windows = [(t, max(t, horizon)) for t in crash_at.values()]

    durations = [end - start for start, end in repairs]
    mttr = sum(durations) / len(durations) if durations else None
    worst = max(durations) if durations else None
    windows = _merged_windows(repairs + open_windows)
    unavailability = sum(end - start for start, end in windows)

    first_crash = min(
        (start for start, _ in repairs + open_windows), default=None
    )
    last_repair = max((end for _, end in repairs), default=None)
    before = [
        p for p in timeline
        if first_crash is None or p.time <= first_crash
    ]
    after = [
        p for p in timeline
        if last_repair is not None and p.time > last_repair
    ]
    baseline = (
        sum(p.throughput for p in before) / len(before) if before else 0.0
    )
    recovered = (
        sum(p.throughput for p in after) / len(after) if after else baseline
    )

    lost = 0.0
    for point in timeline:
        for start, end in windows:
            if start < point.time <= end + result.control_interval:
                lost += max(0.0, baseline - point.throughput) * (
                    result.control_interval
                )
                break

    return OpsSummary(
        crashes=crashes,
        replacements=len(repairs),
        mttr=mttr,
        worst_mttr=worst,
        unavailability=unavailability,
        lost_throughput=lost,
        baseline_throughput=baseline,
        recovered_throughput=recovered,
        upgrades=upgrades,
        mean_detection_latency=(
            sum(detection_legs) / len(detection_legs)
            if detection_legs else None
        ),
        mean_repair_latency=(
            sum(repair_legs) / len(repair_legs) if repair_legs else None
        ),
        gray_failures=len(brownouts),
        gray_detected=len(gray_latencies),
        mean_gray_detection_latency=(
            sum(gray_latencies) / len(gray_latencies)
            if gray_latencies else None
        ),
    )
