"""Self-healing operations over both execution pillars.

The paper motivates replication with fault tolerance but evaluates only
performance; PR 1 added fault injection and PR 3 added elastic membership.
This package closes the loop between them, turning the reproduction into
an *operable* system:

* **failure detection + replacement** — a :class:`~repro.ops.health.
  HealthMonitor` rides the autoscale control loop, spots crashed replicas
  (crash = stopped consuming writesets, not just load-balancer drain),
  force-detaches them (no drain: there is nothing left to drain) and
  rejoins a fresh member via PR 3's snapshot + writeset-replay state
  transfer — recording MTTR, the unavailability window, and the lost
  throughput in the run timeline;
* **rolling upgrades** — :mod:`repro.ops.rolling` cycles replicas one at
  a time (drain → detach → rejoin via state transfer) while SLOs are
  tracked, in both the DES systems and the live clusters;
* **heterogeneous-capacity pools** — replicas carry a ``capacity``
  multiplier threaded through the simulator's service-time scaling, the
  clusters' scaled clocks, the capacity-weighted load-balancer policy,
  and :func:`repro.models.planning.plan_mixed_fleet`.

Everything an operation *does* to a run is declared up front in a frozen
:class:`~repro.ops.plan.OpsPlan`, so operations scenarios are cache-key
citizens of the sweep engine like any other point.  The registered
scenarios (``selfheal-crashstorm``, ``rolling-upgrade``, ``hetero-fleet``
and their ``-live`` variants) live in :mod:`repro.ops.scenarios`; the CLI
front end is ``repro ops``.
"""

from .events import OpsEvent, OpsSummary, summarize
from .health import HealthMonitor
from .plan import OpsPlan
from .rolling import rolling_restart_cluster, rolling_restart_sim

__all__ = [
    "HealthMonitor",
    "OpsEvent",
    "OpsPlan",
    "OpsSummary",
    "rolling_restart_cluster",
    "rolling_restart_sim",
    "summarize",
]
