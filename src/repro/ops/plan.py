"""The declarative operations plan attached to an autoscale run.

An :class:`OpsPlan` says everything the operations layer will do to a run
— which faults to inject, whether the health monitor replaces crashed
replicas, and when (if at all) a rolling restart sweeps the fleet.  It is
a frozen dataclass whose ``repr`` is a stable function of its fields, so
operations runs ride inside engine sweep points and content-addressed
cache keys exactly like traces and controller policies do.

While a plan is attached, the *operations layer* is the only membership
authority: the controller still observes (its targets land in the
timeline) but does not reconcile, so a replacement join and an autoscale
join can never race each other.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..core.errors import ConfigurationError
from ..simulator.faults import BROWNOUT, ReplicaFault


@dataclass(frozen=True)
class OpsPlan:
    """What the operations layer does during one run."""

    #: Fault schedule (crash or drain kinds), times relative to run start.
    faults: Tuple[ReplicaFault, ...] = ()
    #: Replace crashed replicas automatically (force-detach + state
    #: transfer join) as soon as the health monitor detects them.
    self_heal: bool = False
    #: Start a rolling restart at this time (``None`` disables): every
    #: replica is cycled once — drain, detach, rejoin via state transfer.
    rolling_start: Optional[float] = None
    #: Pause between consecutive rolling cycles, letting the fleet settle.
    rolling_settle: float = 2.0
    #: Bulk-replay charge of every state-transfer join the plan performs.
    transfer_writesets: int = 16
    #: Health-monitor detection cadence (virtual seconds).  ``None``
    #: keeps the historical behaviour — detection rides the control
    #: interval — while an explicit value runs detection on its own
    #: timer, so MTTR reports can separate detection latency (crash →
    #: detect, bounded by this knob) from repair latency (detect →
    #: back in rotation, bounded by state-transfer time).
    detect_interval: Optional[float] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))
        if self.rolling_start is not None and self.rolling_start < 0:
            raise ConfigurationError("rolling_start must be >= 0")
        if self.rolling_settle < 0:
            raise ConfigurationError("rolling_settle must be >= 0")
        if self.transfer_writesets < 0:
            raise ConfigurationError("transfer_writesets must be >= 0")
        if self.detect_interval is not None and self.detect_interval <= 0:
            raise ConfigurationError("detect_interval must be positive")

    @property
    def active(self) -> bool:
        """True when the plan does anything at all."""
        return bool(
            self.faults or self.self_heal or self.rolling_start is not None
        )

    @property
    def manages_membership(self) -> bool:
        """True when the plan takes over membership authority.

        Self-healing and rolling restarts perform joins/removals, and
        drain/crash faults change who is serving — while any of those
        are in play the controller must not reconcile concurrently.  A
        *brownout-only* plan degrades speed without ever touching
        membership, so the controller keeps reconciling (estimated-
        capacity mode relies on that to scale out around the slow
        replica).
        """
        return bool(
            self.self_heal
            or self.rolling_start is not None
            or any(fault.kind != BROWNOUT for fault in self.faults)
        )
