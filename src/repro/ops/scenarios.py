"""Registered operations scenarios: availability under churn.

Three scenario families, each with a deterministic simulator cell and a
live-cluster validation cell:

* ``selfheal-crashstorm`` — two staggered replica crashes under steady
  load; the health monitor force-detaches each casualty and rejoins a
  replacement via state transfer.  The artifact carries MTTR, the
  unavailability window, and the lost throughput per design.
* ``rolling-upgrade`` — a rolling restart sweeps the whole fleet (drain →
  detach → rejoin) mid-run while the SLO accounting keeps scoring; the
  fleet is never more than one replica short.
* ``hetero-fleet`` — a mixed-capacity fleet served by the plain
  least-loaded policy vs the capacity-weighted one, plus the model's
  :func:`~repro.models.planning.plan_mixed_fleet` sizing of the same
  inventory.

All cells are ordinary engine sweep points: simulator cells are cached
and fan out over ``--jobs``; live cells re-execute (they measure real
wall-clock behaviour).  The CLI front end is ``repro ops``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..control.autoscale import AutoscaleResult
from ..control.controller import FixedPolicy
from ..control.scenarios import (
    LIVE_SPEC,
    SLO_RESPONSE,
    _design_capacity,
    _live_design_capacity,
)
from ..control.trace import DiurnalTrace
from ..engine import CLUSTER, Scenario, register_scenario
from ..engine.scenario import (
    autoscale_point,
    cluster_point,
    profile_point,
    sim_point,
)
from ..simulator.faults import crash_fault
from ..simulator.runner import MULTI_MASTER, SINGLE_MASTER
from ..simulator.systems import CAPACITY_WEIGHTED, LEAST_LOADED, RANDOM
from ..workloads import tpcw
from .events import OpsSummary, summarize
from .plan import OpsPlan

#: Fleet size the self-heal and rolling scenarios pin (FixedPolicy).
FLEET = 4
#: Offered load as a fraction of the model-predicted fleet capacity.
SELFHEAL_LOAD = 0.50
ROLLING_LOAD = 0.45
#: Capacity inventory of the heterogeneous-fleet scenarios, and the
#: open-loop offered load as a fraction of the fleet's predicted
#: capacity.  Open-loop matters: a closed loop's think-time feedback lets
#: even capacity-oblivious policies self-correct, hiding the difference.
HETERO_CAPACITIES = (2.0, 1.0, 1.0, 0.5)
HETERO_LOAD = 0.75

#: Live-cell dimensions (the live workload is millisecond-scale).
LIVE_FLEET = 3
LIVE_TIME_SCALE = 0.25
LIVE_WARMUP = 2.0
LIVE_DURATION = 24.0
LIVE_CONTROL_INTERVAL = 1.0
LIVE_HETERO_CAPACITIES = (1.5, 1.0, 0.5)


# ----------------------------------------------------------------------
# Artifacts
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class OpsRunReport:
    """One ops run plus its availability summary."""

    result: AutoscaleResult
    summary: OpsSummary

    @property
    def converged(self) -> bool:
        """Replication correctness of the underlying run."""
        return self.result.converged


@dataclass(frozen=True)
class OpsComparison:
    """The artifact of a self-heal / rolling-upgrade scenario."""

    name: str
    workload: str
    pillar: str
    results: Tuple[OpsRunReport, ...]

    def report_for(self, design: str) -> Optional[OpsRunReport]:
        """Look up one design's run."""
        for report in self.results:
            if report.result.design == design:
                return report
        return None

    def to_text(self) -> str:
        """Render per-design run lines and availability summaries."""
        lines = [f"{self.name} — {self.workload}, {self.pillar} pillar"]
        for report in self.results:
            lines.append("  " + report.result.to_text())
            for line in report.summary.to_text().splitlines():
                lines.append("  " + line)
        return "\n".join(lines)


@dataclass(frozen=True)
class HeteroFleetComparison:
    """The artifact of a heterogeneous-fleet scenario."""

    workload: str
    pillar: str
    capacities: Tuple[float, ...]
    #: (lb policy, result) per cell; results are SimulationResult or
    #: ClusterResult (field-compatible where it matters here).
    cells: Tuple[Tuple[str, object], ...]
    #: Model sizing of the same inventory (``None`` when unavailable).
    plan_text: str = ""

    @property
    def results(self) -> Tuple[object, ...]:
        """The raw per-policy results (for convergence screening)."""
        return tuple(result for _, result in self.cells)

    def cell(self, policy: str) -> Optional[object]:
        """Result of one load-balancing policy."""
        for name, result in self.cells:
            if name == policy:
                return result
        return None

    def to_text(self) -> str:
        """Render the policy comparison table."""
        fleet = " + ".join(f"{c:g}x" for c in self.capacities)
        lines = [
            f"heterogeneous fleet [{fleet}] — {self.workload}, "
            f"{self.pillar} pillar",
            f"  {'lb policy':<18s} {'throughput':>11s} {'response':>9s} "
            f"{'aborts':>7s}",
        ]
        for name, result in self.cells:
            lines.append(
                f"  {name:<18s} {result.throughput:>7.1f} tps "
                f"{result.response_time * 1000:>6.0f} ms "
                f"{result.abort_rate:>6.2%}"
            )
        if self.plan_text:
            lines.append(f"  model sizing: {self.plan_text}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Simulator cells
# ----------------------------------------------------------------------

def _steady_trace(rate: float, duration: float) -> DiurnalTrace:
    """A constant-rate trace (a diurnal curve with zero swing)."""
    return DiurnalTrace(base_rate=rate, peak_rate=rate, period=duration)


def _ops_sim_points(settings, spec, load_fraction: float,
                    plan_for) -> List:
    points = []
    duration = settings.autoscale_duration
    for design in (MULTI_MASTER, SINGLE_MASTER):
        capacity = _design_capacity(design, spec, settings)
        trace = _steady_trace(load_fraction * capacity, duration)
        points.append(autoscale_point(
            spec,
            spec.replication_config(
                1,
                load_balancer_delay=settings.load_balancer_delay,
                certifier_delay=settings.certifier_delay,
            ),
            design,
            seed=settings.seed,
            trace=trace,
            policy=FixedPolicy(replicas=FLEET),
            slo_response=SLO_RESPONSE,
            warmup=settings.autoscale_warmup,
            duration=duration,
            control_interval=settings.autoscale_control_interval,
            max_replicas=2 * FLEET,
            ops=plan_for(settings),
            telemetry=getattr(settings, "telemetry", None),
            tag=design,
        ))
    return points


def _selfheal_plan(settings) -> OpsPlan:
    # Two staggered crashes (replica indices 1 and 2 are valid for both
    # designs: index 0 is the single-master master), each detected and
    # replaced before the next lands.
    horizon = settings.autoscale_warmup + settings.autoscale_duration
    return OpsPlan(
        faults=(
            crash_fault(1, 0.30 * horizon),
            crash_fault(2, 0.60 * horizon),
        ),
        self_heal=True,
        transfer_writesets=16,
    )


def _rolling_plan(settings) -> OpsPlan:
    horizon = settings.autoscale_warmup + settings.autoscale_duration
    return OpsPlan(
        rolling_start=0.25 * horizon,
        rolling_settle=settings.autoscale_control_interval,
        transfer_writesets=16,
    )


def _assemble_ops(name, spec, pillar, results) -> OpsComparison:
    reports = tuple(
        OpsRunReport(result=result, summary=summarize(result))
        for result in results
    )
    return OpsComparison(
        name=name, workload=spec.name, pillar=pillar, results=reports
    )


def _register_ops_sim(name: str, title: str, load_fraction: float,
                      plan_for, aliases=()) -> Scenario:
    spec = tpcw.SHOPPING

    return register_scenario(Scenario(
        name=name,
        title=title,
        kind="ops",
        metrics=("mttr", "unavailability", "slo_violation_fraction"),
        points=lambda settings: _ops_sim_points(
            settings, spec, load_fraction, plan_for
        ),
        assemble=lambda settings, pts, results: _assemble_ops(
            name, spec, "simulator", results
        ),
        aliases=aliases,
    ))


SELFHEAL = _register_ops_sim(
    "selfheal-crashstorm",
    "Self-healing: crash storm with automatic replica replacement",
    SELFHEAL_LOAD,
    _selfheal_plan,
    aliases=("selfheal",),
)

ROLLING = _register_ops_sim(
    "rolling-upgrade",
    "Rolling upgrade: cycle every replica through drain/rejoin under load",
    ROLLING_LOAD,
    _rolling_plan,
    aliases=("rolling",),
)


def _hetero_rate(settings, capacities: Sequence[float]) -> float:
    """Offered open-loop rate for a mixed fleet: HETERO_LOAD of the
    homogeneous capacity curve evaluated at the summed multipliers."""
    spec = tpcw.SHOPPING
    effective = sum(capacities)
    per_replica = _design_capacity(MULTI_MASTER, spec, settings) / (
        settings.autoscale_peak_replicas
    )
    return HETERO_LOAD * per_replica * effective


def _hetero_points(settings) -> List:
    spec = tpcw.SHOPPING
    points = [profile_point(spec, settings, tag="profile")]
    config = spec.replication_config(
        len(HETERO_CAPACITIES),
        load_balancer_delay=settings.load_balancer_delay,
        certifier_delay=settings.certifier_delay,
    )
    rate = _hetero_rate(settings, HETERO_CAPACITIES)
    # RANDOM is the capacity-oblivious control: without feedback or
    # weighting it saturates the slowest box and collapses.
    for policy in (LEAST_LOADED, CAPACITY_WEIGHTED, RANDOM):
        points.append(sim_point(
            spec,
            config,
            MULTI_MASTER,
            seed=settings.seed,
            warmup=settings.sim_warmup,
            duration=settings.sim_duration,
            lb_policy=policy,
            capacities=HETERO_CAPACITIES,
            arrival_rate=rate,
            telemetry=getattr(settings, "telemetry", None),
            tag=policy,
        ))
    return points


def _assemble_hetero(settings, points, results) -> HeteroFleetComparison:
    from ..models.planning import plan_mixed_fleet

    report, cells = results[0], results[1:]
    named = tuple(
        (point.option("lb_policy"), result)
        for point, result in zip(points[1:], cells)
    )
    best = max(cells, key=lambda r: r.throughput)
    plan = plan_mixed_fleet(
        report.profile,
        points[1].config,
        target_throughput=0.9 * best.throughput,
        capacities=HETERO_CAPACITIES,
        design=MULTI_MASTER,
        headroom=0.1,
    )
    return HeteroFleetComparison(
        workload=tpcw.SHOPPING.name,
        pillar="simulator",
        capacities=HETERO_CAPACITIES,
        cells=named,
        plan_text="" if plan is None else plan.to_text(),
    )


HETERO = register_scenario(Scenario(
    name="hetero-fleet",
    title="Heterogeneous-capacity fleet: capacity-weighted vs least-loaded",
    kind="ops",
    metrics=("throughput", "response_time"),
    points=_hetero_points,
    assemble=_assemble_hetero,
    aliases=("hetero",),
))


# ----------------------------------------------------------------------
# Live-cluster cells
# ----------------------------------------------------------------------

def _ops_live_points(settings, load_fraction: float, plan) -> List:
    capacity = _live_design_capacity(settings)
    trace = _steady_trace(load_fraction * capacity, LIVE_DURATION)
    return [autoscale_point(
        LIVE_SPEC,
        LIVE_SPEC.replication_config(
            1, load_balancer_delay=0.0005, certifier_delay=0.002,
        ),
        MULTI_MASTER,
        seed=settings.seed,
        trace=trace,
        policy=FixedPolicy(replicas=LIVE_FLEET),
        slo_response=SLO_RESPONSE,
        warmup=LIVE_WARMUP,
        duration=LIVE_DURATION,
        control_interval=LIVE_CONTROL_INTERVAL,
        pillar=CLUSTER,
        time_scale=LIVE_TIME_SCALE,
        max_replicas=2 * LIVE_FLEET,
        transfer_writesets=8,
        ops=plan,
        telemetry=getattr(settings, "telemetry", None),
        tag="live",
    )]


_LIVE_SELFHEAL_PLAN = OpsPlan(
    faults=(crash_fault(1, 0.35 * (LIVE_WARMUP + LIVE_DURATION)),),
    self_heal=True,
    transfer_writesets=8,
)

_LIVE_ROLLING_PLAN = OpsPlan(
    rolling_start=0.25 * (LIVE_WARMUP + LIVE_DURATION),
    rolling_settle=LIVE_CONTROL_INTERVAL,
    transfer_writesets=8,
)


SELFHEAL_LIVE = register_scenario(Scenario(
    name="selfheal-crashstorm-live",
    title="Live-cluster self-healing: crash, detect, replace on real threads",
    kind="ops",
    metrics=("mttr", "unavailability", "converged"),
    points=lambda settings: _ops_live_points(
        settings, SELFHEAL_LOAD, _LIVE_SELFHEAL_PLAN
    ),
    assemble=lambda settings, pts, results: _assemble_ops(
        "selfheal-crashstorm-live", LIVE_SPEC, "cluster", results
    ),
    aliases=("selfheal-live",),
    tags=("live",),
))

ROLLING_LIVE = register_scenario(Scenario(
    name="rolling-upgrade-live",
    title="Live-cluster rolling upgrade: drain/rejoin the whole fleet",
    kind="ops",
    metrics=("slo_violation_fraction", "converged"),
    points=lambda settings: _ops_live_points(
        settings, ROLLING_LOAD, _LIVE_ROLLING_PLAN
    ),
    assemble=lambda settings, pts, results: _assemble_ops(
        "rolling-upgrade-live", LIVE_SPEC, "cluster", results
    ),
    aliases=("rolling-live",),
    tags=("live",),
))


def _hetero_live_points(settings) -> List:
    points = []
    config = LIVE_SPEC.replication_config(
        len(LIVE_HETERO_CAPACITIES),
        load_balancer_delay=0.0005, certifier_delay=0.002,
    )
    # Open-loop at HETERO_LOAD of the fleet's predicted capacity, like
    # the simulator cell (the live fleet sums to 3.0 equivalents, the
    # anchor deployment's size).
    rate = HETERO_LOAD * _live_design_capacity(settings) * (
        sum(LIVE_HETERO_CAPACITIES) / 3.0
    )
    for policy in (LEAST_LOADED, CAPACITY_WEIGHTED, RANDOM):
        points.append(cluster_point(
            LIVE_SPEC,
            config,
            MULTI_MASTER,
            seed=settings.seed,
            warmup=LIVE_WARMUP,
            duration=LIVE_DURATION,
            time_scale=LIVE_TIME_SCALE,
            lb_policy=policy,
            capacities=LIVE_HETERO_CAPACITIES,
            arrival_rate=rate,
            telemetry=getattr(settings, "telemetry", None),
            tag=policy,
        ))
    return points


def _assemble_hetero_live(settings, points, results) -> HeteroFleetComparison:
    named = tuple(
        (point.option("lb_policy"), result)
        for point, result in zip(points, results)
    )
    return HeteroFleetComparison(
        workload=LIVE_SPEC.name,
        pillar="cluster",
        capacities=LIVE_HETERO_CAPACITIES,
        cells=named,
    )


HETERO_LIVE = register_scenario(Scenario(
    name="hetero-fleet-live",
    title="Live heterogeneous fleet: capacity-weighted vs least-loaded",
    kind="ops",
    metrics=("throughput", "response_time", "converged"),
    points=_hetero_live_points,
    assemble=_assemble_hetero_live,
    aliases=("hetero-live",),
    tags=("live",),
))

#: Scenario names grouped for the ``repro ops`` verb.
SIM_SCENARIOS = ("selfheal-crashstorm", "rolling-upgrade", "hetero-fleet")
LIVE_SCENARIOS = (
    "selfheal-crashstorm-live",
    "rolling-upgrade-live",
    "hetero-fleet-live",
)
