"""Registered operations scenarios: availability under churn.

Three scenario families, each with a deterministic simulator cell and a
live-cluster validation cell:

* ``selfheal-crashstorm`` — two staggered replica crashes under steady
  load; the health monitor force-detaches each casualty and rejoins a
  replacement via state transfer.  The artifact carries MTTR, the
  unavailability window, and the lost throughput per design.
* ``rolling-upgrade`` — a rolling restart sweeps the whole fleet (drain →
  detach → rejoin) mid-run while the SLO accounting keeps scoring; the
  fleet is never more than one replica short.
* ``hetero-fleet`` — a mixed-capacity fleet served by the plain
  least-loaded policy vs the capacity-weighted one, plus the model's
  :func:`~repro.models.planning.plan_mixed_fleet` sizing of the same
  inventory.

All cells are ordinary engine sweep points: simulator cells are cached
and fan out over ``--jobs``; live cells re-execute (they measure real
wall-clock behaviour).  The CLI front end is ``repro ops``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..control.autoscale import AutoscaleResult
from ..control.controller import FeedforwardPolicy, FixedPolicy
from ..control.estimator import ESTIMATED
from ..control.scenarios import (
    LIVE_PEAK_REPLICAS,
    LIVE_SPEC,
    SLO_RESPONSE,
    _design_capacity,
    _live_design_capacity,
)
from ..control.trace import DiurnalTrace
from ..engine import CLUSTER, Scenario, register_scenario
from ..engine.scenario import (
    autoscale_point,
    cluster_point,
    profile_point,
    profile_task,
    sim_point,
)
from ..simulator.faults import brownout_fault, crash_fault
from ..simulator.runner import MULTI_MASTER, SINGLE_MASTER
from ..simulator.systems import CAPACITY_WEIGHTED, LEAST_LOADED, RANDOM
from ..workloads import tpcw
from .events import OpsSummary, summarize
from .plan import OpsPlan

#: Fleet size the self-heal and rolling scenarios pin (FixedPolicy).
FLEET = 4
#: Offered load as a fraction of the model-predicted fleet capacity.
SELFHEAL_LOAD = 0.50
ROLLING_LOAD = 0.45
#: Capacity inventory of the heterogeneous-fleet scenarios, and the
#: open-loop offered load as a fraction of the fleet's predicted
#: capacity.  Open-loop matters: a closed loop's think-time feedback lets
#: even capacity-oblivious policies self-correct, hiding the difference.
HETERO_CAPACITIES = (2.0, 1.0, 1.0, 0.5)
HETERO_LOAD = 0.75

#: Gray-failure scenarios: the brownout runs every resource on the
#: afflicted replica at this fraction of its declared rate.
BROWNOUT_SEVERITY = 0.5
BROWNOUT_LOAD = 0.50
#: Capacity-estimation recovery scenario: a two-replica anchor fleet is
#: offered 95% of its predicted capacity with almost no feedforward
#: head-room, so silently losing half a replica saturates the
#: declared-capacity arm while the estimated arm detects the shortfall
#: and scales out around it.
CAPEST_FLEET = 2
CAPEST_LOAD = 0.95
CAPEST_HEADROOM = 0.05
#: Brownout onset and span as fractions of the run horizon, and the
#: recovery window (post-onset settle to end, fractions of the horizon)
#: over which the two arms' throughput is compared.
BROWNOUT_START = 0.35
BROWNOUT_SPAN = 0.55
RECOVERY_SETTLE = 0.15
RECOVERY_END = 0.90

#: Live-cell dimensions (the live workload is millisecond-scale).
LIVE_FLEET = 3
LIVE_TIME_SCALE = 0.25
LIVE_WARMUP = 2.0
LIVE_DURATION = 24.0
LIVE_CONTROL_INTERVAL = 1.0
LIVE_HETERO_CAPACITIES = (1.5, 1.0, 0.5)
#: Live capacity-estimation cell: offered load as a multiple of the
#: model-predicted two-replica capacity.  The analytic model is
#: deliberately conservative about the millisecond-scale live pillar
#: (thread scheduling overlaps it cannot see), so saturating the live
#: anchor fleet takes ~1.5x its predicted capacity — calibrated so the
#: declared arm is genuinely capacity-bound during the brownout.
LIVE_CAPEST_LOAD = 1.5


# ----------------------------------------------------------------------
# Artifacts
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class OpsRunReport:
    """One ops run plus its availability summary."""

    result: AutoscaleResult
    summary: OpsSummary

    @property
    def converged(self) -> bool:
        """Replication correctness of the underlying run."""
        return self.result.converged


@dataclass(frozen=True)
class OpsComparison:
    """The artifact of a self-heal / rolling-upgrade scenario."""

    name: str
    workload: str
    pillar: str
    results: Tuple[OpsRunReport, ...]

    def report_for(self, design: str) -> Optional[OpsRunReport]:
        """Look up one design's run."""
        for report in self.results:
            if report.result.design == design:
                return report
        return None

    def to_text(self) -> str:
        """Render per-design run lines and availability summaries."""
        lines = [f"{self.name} — {self.workload}, {self.pillar} pillar"]
        for report in self.results:
            lines.append("  " + report.result.to_text())
            for line in report.summary.to_text().splitlines():
                lines.append("  " + line)
        return "\n".join(lines)


@dataclass(frozen=True)
class HeteroFleetComparison:
    """The artifact of a heterogeneous-fleet scenario."""

    workload: str
    pillar: str
    capacities: Tuple[float, ...]
    #: (lb policy, result) per cell; results are SimulationResult or
    #: ClusterResult (field-compatible where it matters here).
    cells: Tuple[Tuple[str, object], ...]
    #: Model sizing of the same inventory (``None`` when unavailable).
    plan_text: str = ""

    @property
    def results(self) -> Tuple[object, ...]:
        """The raw per-policy results (for convergence screening)."""
        return tuple(result for _, result in self.cells)

    def cell(self, policy: str) -> Optional[object]:
        """Result of one load-balancing policy."""
        for name, result in self.cells:
            if name == policy:
                return result
        return None

    def to_text(self) -> str:
        """Render the policy comparison table."""
        fleet = " + ".join(f"{c:g}x" for c in self.capacities)
        lines = [
            f"heterogeneous fleet [{fleet}] — {self.workload}, "
            f"{self.pillar} pillar",
            f"  {'lb policy':<18s} {'throughput':>11s} {'response':>9s} "
            f"{'aborts':>7s}",
        ]
        for name, result in self.cells:
            lines.append(
                f"  {name:<18s} {result.throughput:>7.1f} tps "
                f"{result.response_time * 1000:>6.0f} ms "
                f"{result.abort_rate:>6.2%}"
            )
        if self.plan_text:
            lines.append(f"  model sizing: {self.plan_text}")
        return "\n".join(lines)


@dataclass(frozen=True)
class CapacityRecoveryComparison:
    """The artifact of a capacity-estimation scenario: the same brownout
    run twice, once routing/scaling on declared capacities and once on
    the online estimator's live values."""

    name: str
    workload: str
    pillar: str
    #: Brownout rate multiplier and onset time (virtual seconds).
    severity: float
    onset: float
    #: Recovery window (start, end) the arms are compared over.
    window: Tuple[float, float]
    declared: OpsRunReport
    estimated: OpsRunReport

    @property
    def results(self) -> Tuple[AutoscaleResult, ...]:
        """The raw per-arm results (for convergence screening)."""
        return (self.declared.result, self.estimated.result)

    def _window_throughput(self, report: OpsRunReport) -> float:
        lo, hi = self.window
        points = [p for p in report.result.timeline if lo <= p.time <= hi]
        if not points:
            return 0.0
        return sum(p.throughput for p in points) / len(points)

    @property
    def declared_throughput(self) -> float:
        """Mean committed throughput of the declared arm in the window."""
        return self._window_throughput(self.declared)

    @property
    def estimated_throughput(self) -> float:
        """Mean committed throughput of the estimated arm in the window."""
        return self._window_throughput(self.estimated)

    @property
    def recovery(self) -> float:
        """Relative throughput gained by estimating capacities."""
        base = self.declared_throughput
        if base <= 0:
            return 0.0
        return (self.estimated_throughput - base) / base

    @property
    def detection_latency(self) -> Optional[float]:
        """Brownout onset to the estimator's gray-detect (seconds)."""
        perf = self.estimated.result.perf
        if perf is None:
            return None
        return perf.detection_latency(self.onset)

    @property
    def drift_verdict(self) -> bool:
        """Did the estimated arm's drift monitor flag the model?"""
        perf = self.estimated.result.perf
        return bool(perf is not None and perf.drift_verdict)

    def to_text(self) -> str:
        """Render the two-arm recovery comparison."""
        lo, hi = self.window
        lines = [
            f"{self.name} — {self.workload}, {self.pillar} pillar",
            f"  {self.severity:g}x brownout at t={self.onset:.0f}s; "
            f"recovery window [{lo:.0f}s, {hi:.0f}s]",
            f"  declared  capacities: {self.declared_throughput:7.1f} tps",
            f"  estimated capacities: {self.estimated_throughput:7.1f} tps "
            f"({self.recovery:+.1%} recovery)",
        ]
        if self.detection_latency is not None:
            lines.append(
                f"  gray failure detected {self.detection_latency:.1f}s "
                f"after onset"
            )
        else:
            lines.append("  gray failure UNDETECTED")
        lines.append(
            "  model drift: "
            + ("DRIFT (prediction off-envelope)" if self.drift_verdict
               else "on-model")
        )
        for label, report in (("declared", self.declared),
                              ("estimated", self.estimated)):
            lines.append(f"  [{label}] " + report.result.to_text())
            for line in report.summary.to_text().splitlines():
                lines.append("    " + line)
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Simulator cells
# ----------------------------------------------------------------------

def _steady_trace(rate: float, duration: float) -> DiurnalTrace:
    """A constant-rate trace (a diurnal curve with zero swing)."""
    return DiurnalTrace(base_rate=rate, peak_rate=rate, period=duration)


def _ops_sim_points(settings, spec, load_fraction: float, plan_for,
                    capacity_source: Optional[str] = None,
                    with_profile: bool = False) -> List:
    points = []
    duration = settings.autoscale_duration
    task = profile_task(spec, settings) if with_profile else None
    for design in (MULTI_MASTER, SINGLE_MASTER):
        capacity = _design_capacity(design, spec, settings)
        trace = _steady_trace(load_fraction * capacity, duration)
        points.append(autoscale_point(
            spec,
            spec.replication_config(
                1,
                load_balancer_delay=settings.load_balancer_delay,
                certifier_delay=settings.certifier_delay,
            ),
            design,
            seed=settings.seed,
            trace=trace,
            policy=FixedPolicy(replicas=FLEET),
            slo_response=SLO_RESPONSE,
            warmup=settings.autoscale_warmup,
            duration=duration,
            control_interval=settings.autoscale_control_interval,
            max_replicas=2 * FLEET,
            ops=plan_for(settings),
            telemetry=getattr(settings, "telemetry", None),
            capacity_source=(
                capacity_source if capacity_source is not None
                else getattr(settings, "capacity_source", None)
            ),
            profile=task,
            tag=design,
        ))
    return points


def _selfheal_plan(settings) -> OpsPlan:
    # Two staggered crashes (replica indices 1 and 2 are valid for both
    # designs: index 0 is the single-master master), each detected and
    # replaced before the next lands.
    horizon = settings.autoscale_warmup + settings.autoscale_duration
    return OpsPlan(
        faults=(
            crash_fault(1, 0.30 * horizon),
            crash_fault(2, 0.60 * horizon),
        ),
        self_heal=True,
        transfer_writesets=16,
    )


def _rolling_plan(settings) -> OpsPlan:
    horizon = settings.autoscale_warmup + settings.autoscale_duration
    return OpsPlan(
        rolling_start=0.25 * horizon,
        rolling_settle=settings.autoscale_control_interval,
        transfer_writesets=16,
    )


def _assemble_ops(name, spec, pillar, results) -> OpsComparison:
    reports = tuple(
        OpsRunReport(result=result, summary=summarize(result))
        for result in results
    )
    return OpsComparison(
        name=name, workload=spec.name, pillar=pillar, results=reports
    )


def _register_ops_sim(name: str, title: str, load_fraction: float,
                      plan_for, aliases=(),
                      metrics=("mttr", "unavailability",
                               "slo_violation_fraction"),
                      capacity_source: Optional[str] = None,
                      with_profile: bool = False) -> Scenario:
    spec = tpcw.SHOPPING

    return register_scenario(Scenario(
        name=name,
        title=title,
        kind="ops",
        metrics=metrics,
        points=lambda settings: _ops_sim_points(
            settings, spec, load_fraction, plan_for,
            capacity_source=capacity_source, with_profile=with_profile,
        ),
        assemble=lambda settings, pts, results: _assemble_ops(
            name, spec, "simulator", results
        ),
        aliases=aliases,
    ))


SELFHEAL = _register_ops_sim(
    "selfheal-crashstorm",
    "Self-healing: crash storm with automatic replica replacement",
    SELFHEAL_LOAD,
    _selfheal_plan,
    aliases=("selfheal",),
)

ROLLING = _register_ops_sim(
    "rolling-upgrade",
    "Rolling upgrade: cycle every replica through drain/rejoin under load",
    ROLLING_LOAD,
    _rolling_plan,
    aliases=("rolling",),
)


def _brownout_plan(settings) -> OpsPlan:
    # One replica silently degrades to half speed mid-run and recovers
    # before the end; nothing crashes, so membership never changes and
    # only the capacity estimator can notice.
    horizon = settings.autoscale_warmup + settings.autoscale_duration
    return OpsPlan(faults=(brownout_fault(
        1, 0.30 * horizon, BROWNOUT_SPAN * horizon,
        severity=BROWNOUT_SEVERITY,
    ),))


BROWNOUT_DETECTION = _register_ops_sim(
    "brownout-detection",
    "Gray failure: a silent brownout caught by the capacity estimator",
    BROWNOUT_LOAD,
    _brownout_plan,
    aliases=("brownout",),
    metrics=("gray_detected", "mean_gray_detection_latency",
             "slo_violation_fraction"),
    capacity_source=ESTIMATED,
    with_profile=True,
)


def _capest_policy(settings) -> FeedforwardPolicy:
    return FeedforwardPolicy(
        horizon=2.0 * settings.autoscale_control_interval,
        headroom=CAPEST_HEADROOM,
    )


def _capest_plan(warmup: float, duration: float) -> OpsPlan:
    horizon = warmup + duration
    return OpsPlan(faults=(brownout_fault(
        1, BROWNOUT_START * horizon, BROWNOUT_SPAN * horizon,
        severity=BROWNOUT_SEVERITY,
    ),))


def _capest_sim_points(settings) -> List:
    spec = tpcw.SHOPPING
    task = profile_task(spec, settings)
    warmup = settings.autoscale_warmup
    duration = settings.autoscale_duration
    capacity = CAPEST_FLEET * _design_capacity(
        MULTI_MASTER, spec, settings
    ) / settings.autoscale_peak_replicas
    trace = _steady_trace(CAPEST_LOAD * capacity, duration)
    plan = _capest_plan(warmup, duration)
    points = []
    for source in (None, ESTIMATED):
        points.append(autoscale_point(
            spec,
            spec.replication_config(
                1,
                load_balancer_delay=settings.load_balancer_delay,
                certifier_delay=settings.certifier_delay,
            ),
            MULTI_MASTER,
            seed=settings.seed,
            trace=trace,
            policy=_capest_policy(settings),
            slo_response=SLO_RESPONSE,
            warmup=warmup,
            duration=duration,
            control_interval=settings.autoscale_control_interval,
            max_replicas=3 * CAPEST_FLEET,
            ops=plan,
            telemetry=getattr(settings, "telemetry", None),
            capacity_source=source,
            profile=task,
            tag="declared" if source is None else "estimated",
        ))
    return points


def _assemble_capest(name, spec, pillar, warmup, duration,
                     results) -> CapacityRecoveryComparison:
    horizon = warmup + duration
    onset = BROWNOUT_START * horizon
    window = (onset + RECOVERY_SETTLE * horizon, RECOVERY_END * horizon)
    declared, estimated = results
    return CapacityRecoveryComparison(
        name=name,
        workload=spec.name,
        pillar=pillar,
        severity=BROWNOUT_SEVERITY,
        onset=onset,
        window=window,
        declared=OpsRunReport(result=declared, summary=summarize(declared)),
        estimated=OpsRunReport(result=estimated,
                               summary=summarize(estimated)),
    )


CAPACITY_ESTIMATION = register_scenario(Scenario(
    name="capacity-estimation",
    title="Online capacity estimation: recover throughput from a brownout",
    kind="ops",
    metrics=("recovery", "detection_latency", "throughput"),
    points=_capest_sim_points,
    assemble=lambda settings, pts, results: _assemble_capest(
        "capacity-estimation", tpcw.SHOPPING, "simulator",
        settings.autoscale_warmup, settings.autoscale_duration, results,
    ),
    aliases=("capest",),
))


def _hetero_rate(settings, capacities: Sequence[float]) -> float:
    """Offered open-loop rate for a mixed fleet: HETERO_LOAD of the
    homogeneous capacity curve evaluated at the summed multipliers."""
    spec = tpcw.SHOPPING
    effective = sum(capacities)
    per_replica = _design_capacity(MULTI_MASTER, spec, settings) / (
        settings.autoscale_peak_replicas
    )
    return HETERO_LOAD * per_replica * effective


def _hetero_points(settings) -> List:
    spec = tpcw.SHOPPING
    points = [profile_point(spec, settings, tag="profile")]
    config = spec.replication_config(
        len(HETERO_CAPACITIES),
        load_balancer_delay=settings.load_balancer_delay,
        certifier_delay=settings.certifier_delay,
    )
    rate = _hetero_rate(settings, HETERO_CAPACITIES)
    # RANDOM is the capacity-oblivious control: without feedback or
    # weighting it saturates the slowest box and collapses.
    for policy in (LEAST_LOADED, CAPACITY_WEIGHTED, RANDOM):
        points.append(sim_point(
            spec,
            config,
            MULTI_MASTER,
            seed=settings.seed,
            warmup=settings.sim_warmup,
            duration=settings.sim_duration,
            lb_policy=policy,
            capacities=HETERO_CAPACITIES,
            arrival_rate=rate,
            telemetry=getattr(settings, "telemetry", None),
            tag=policy,
        ))
    return points


def _assemble_hetero(settings, points, results) -> HeteroFleetComparison:
    from ..models.planning import plan_mixed_fleet

    report, cells = results[0], results[1:]
    named = tuple(
        (point.option("lb_policy"), result)
        for point, result in zip(points[1:], cells)
    )
    best = max(cells, key=lambda r: r.throughput)
    plan = plan_mixed_fleet(
        report.profile,
        points[1].config,
        target_throughput=0.9 * best.throughput,
        capacities=HETERO_CAPACITIES,
        design=MULTI_MASTER,
        headroom=0.1,
    )
    return HeteroFleetComparison(
        workload=tpcw.SHOPPING.name,
        pillar="simulator",
        capacities=HETERO_CAPACITIES,
        cells=named,
        plan_text="" if plan is None else plan.to_text(),
    )


HETERO = register_scenario(Scenario(
    name="hetero-fleet",
    title="Heterogeneous-capacity fleet: capacity-weighted vs least-loaded",
    kind="ops",
    metrics=("throughput", "response_time"),
    points=_hetero_points,
    assemble=_assemble_hetero,
    aliases=("hetero",),
))


# ----------------------------------------------------------------------
# Live-cluster cells
# ----------------------------------------------------------------------

def _ops_live_points(settings, load_fraction: float, plan,
                     capacity_source: Optional[str] = None,
                     with_profile: bool = False) -> List:
    capacity = _live_design_capacity(settings)
    trace = _steady_trace(load_fraction * capacity, LIVE_DURATION)
    task = profile_task(LIVE_SPEC, settings) if with_profile else None
    return [autoscale_point(
        LIVE_SPEC,
        LIVE_SPEC.replication_config(
            1, load_balancer_delay=0.0005, certifier_delay=0.002,
        ),
        MULTI_MASTER,
        seed=settings.seed,
        trace=trace,
        policy=FixedPolicy(replicas=LIVE_FLEET),
        slo_response=SLO_RESPONSE,
        warmup=LIVE_WARMUP,
        duration=LIVE_DURATION,
        control_interval=LIVE_CONTROL_INTERVAL,
        pillar=CLUSTER,
        time_scale=LIVE_TIME_SCALE,
        max_replicas=2 * LIVE_FLEET,
        transfer_writesets=8,
        ops=plan,
        telemetry=getattr(settings, "telemetry", None),
        capacity_source=(
            capacity_source if capacity_source is not None
            else getattr(settings, "capacity_source", None)
        ),
        profile=task,
        tag="live",
    )]


_LIVE_SELFHEAL_PLAN = OpsPlan(
    faults=(crash_fault(1, 0.35 * (LIVE_WARMUP + LIVE_DURATION)),),
    self_heal=True,
    transfer_writesets=8,
)

_LIVE_ROLLING_PLAN = OpsPlan(
    rolling_start=0.25 * (LIVE_WARMUP + LIVE_DURATION),
    rolling_settle=LIVE_CONTROL_INTERVAL,
    transfer_writesets=8,
)


SELFHEAL_LIVE = register_scenario(Scenario(
    name="selfheal-crashstorm-live",
    title="Live-cluster self-healing: crash, detect, replace on real threads",
    kind="ops",
    metrics=("mttr", "unavailability", "converged"),
    points=lambda settings: _ops_live_points(
        settings, SELFHEAL_LOAD, _LIVE_SELFHEAL_PLAN
    ),
    assemble=lambda settings, pts, results: _assemble_ops(
        "selfheal-crashstorm-live", LIVE_SPEC, "cluster", results
    ),
    aliases=("selfheal-live",),
    tags=("live",),
))

ROLLING_LIVE = register_scenario(Scenario(
    name="rolling-upgrade-live",
    title="Live-cluster rolling upgrade: drain/rejoin the whole fleet",
    kind="ops",
    metrics=("slo_violation_fraction", "converged"),
    points=lambda settings: _ops_live_points(
        settings, ROLLING_LOAD, _LIVE_ROLLING_PLAN
    ),
    assemble=lambda settings, pts, results: _assemble_ops(
        "rolling-upgrade-live", LIVE_SPEC, "cluster", results
    ),
    aliases=("rolling-live",),
    tags=("live",),
))


def _hetero_live_points(settings) -> List:
    points = []
    config = LIVE_SPEC.replication_config(
        len(LIVE_HETERO_CAPACITIES),
        load_balancer_delay=0.0005, certifier_delay=0.002,
    )
    # Open-loop at HETERO_LOAD of the fleet's predicted capacity, like
    # the simulator cell (the live fleet sums to 3.0 equivalents, the
    # anchor deployment's size).
    rate = HETERO_LOAD * _live_design_capacity(settings) * (
        sum(LIVE_HETERO_CAPACITIES) / 3.0
    )
    for policy in (LEAST_LOADED, CAPACITY_WEIGHTED, RANDOM):
        points.append(cluster_point(
            LIVE_SPEC,
            config,
            MULTI_MASTER,
            seed=settings.seed,
            warmup=LIVE_WARMUP,
            duration=LIVE_DURATION,
            time_scale=LIVE_TIME_SCALE,
            lb_policy=policy,
            capacities=LIVE_HETERO_CAPACITIES,
            arrival_rate=rate,
            telemetry=getattr(settings, "telemetry", None),
            tag=policy,
        ))
    return points


def _assemble_hetero_live(settings, points, results) -> HeteroFleetComparison:
    named = tuple(
        (point.option("lb_policy"), result)
        for point, result in zip(points, results)
    )
    return HeteroFleetComparison(
        workload=LIVE_SPEC.name,
        pillar="cluster",
        capacities=LIVE_HETERO_CAPACITIES,
        cells=named,
    )


HETERO_LIVE = register_scenario(Scenario(
    name="hetero-fleet-live",
    title="Live heterogeneous fleet: capacity-weighted vs least-loaded",
    kind="ops",
    metrics=("throughput", "response_time", "converged"),
    points=_hetero_live_points,
    assemble=_assemble_hetero_live,
    aliases=("hetero-live",),
    tags=("live",),
))

_LIVE_HORIZON = LIVE_WARMUP + LIVE_DURATION

_LIVE_BROWNOUT_PLAN = OpsPlan(faults=(brownout_fault(
    1, 0.30 * _LIVE_HORIZON, BROWNOUT_SPAN * _LIVE_HORIZON,
    severity=BROWNOUT_SEVERITY,
),))


BROWNOUT_DETECTION_LIVE = register_scenario(Scenario(
    name="brownout-detection-live",
    title="Live-cluster gray failure: brownout on real threads, caught live",
    kind="ops",
    metrics=("gray_detected", "mean_gray_detection_latency", "converged"),
    points=lambda settings: _ops_live_points(
        settings, BROWNOUT_LOAD, _LIVE_BROWNOUT_PLAN,
        capacity_source=ESTIMATED, with_profile=True,
    ),
    assemble=lambda settings, pts, results: _assemble_ops(
        "brownout-detection-live", LIVE_SPEC, "cluster", results
    ),
    aliases=("brownout-live",),
    tags=("live",),
))


def _capest_live_points(settings) -> List:
    task = profile_task(LIVE_SPEC, settings)
    capacity = CAPEST_FLEET * _live_design_capacity(settings) / (
        LIVE_PEAK_REPLICAS
    )
    trace = _steady_trace(LIVE_CAPEST_LOAD * capacity, LIVE_DURATION)
    plan = _capest_plan(LIVE_WARMUP, LIVE_DURATION)
    # The live cell pins the base fleet: the model's conservative live
    # prediction would make a feedforward target absorb the brownout by
    # over-provisioning both arms.  The estimated arm still scales out —
    # the estimator's fleet-health factor inflates the pinned target.
    policy = FixedPolicy(replicas=CAPEST_FLEET)
    points = []
    for source in (None, ESTIMATED):
        points.append(autoscale_point(
            LIVE_SPEC,
            LIVE_SPEC.replication_config(
                1, load_balancer_delay=0.0005, certifier_delay=0.002,
            ),
            MULTI_MASTER,
            seed=settings.seed,
            trace=trace,
            policy=policy,
            slo_response=SLO_RESPONSE,
            warmup=LIVE_WARMUP,
            duration=LIVE_DURATION,
            control_interval=LIVE_CONTROL_INTERVAL,
            pillar=CLUSTER,
            time_scale=LIVE_TIME_SCALE,
            max_replicas=3 * CAPEST_FLEET,
            transfer_writesets=8,
            ops=plan,
            telemetry=getattr(settings, "telemetry", None),
            capacity_source=source,
            profile=task,
            tag="declared" if source is None else "estimated",
        ))
    return points


CAPACITY_ESTIMATION_LIVE = register_scenario(Scenario(
    name="capacity-estimation-live",
    title="Live online capacity estimation: brownout recovery on threads",
    kind="ops",
    metrics=("recovery", "detection_latency", "converged"),
    points=_capest_live_points,
    assemble=lambda settings, pts, results: _assemble_capest(
        "capacity-estimation-live", LIVE_SPEC, "cluster",
        LIVE_WARMUP, LIVE_DURATION, results,
    ),
    aliases=("capest-live",),
    tags=("live",),
))

#: Scenario names grouped for the ``repro ops`` verb.
SIM_SCENARIOS = (
    "selfheal-crashstorm",
    "rolling-upgrade",
    "hetero-fleet",
    "brownout-detection",
    "capacity-estimation",
)
LIVE_SCENARIOS = (
    "selfheal-crashstorm-live",
    "rolling-upgrade-live",
    "hetero-fleet-live",
    "brownout-detection-live",
    "capacity-estimation-live",
)
