"""Rolling restarts: cycle every replica through drain → detach → rejoin.

The software-upgrade primitive the elastic membership operations were
built to enable: one replica at a time leaves rotation gracefully (drain:
in-flight transactions finish), detaches, and rejoins as a fresh member
via snapshot + writeset-replay state transfer — while the rest of the
fleet keeps serving and the run's SLO accounting keeps scoring.  At no
point is the fleet more than one replica short of its target.

Two realisations of the same cycle:

* :func:`rolling_restart_sim` — a DES process (generator) started on the
  simulator's event loop;
* :func:`rolling_restart_cluster` — a plain function run on a worker
  thread against the live cluster runtime.

Single-master systems cycle their slaves only (the master cannot be
detached without a promotion protocol the paper does not describe).
"""

from __future__ import annotations

import time
from typing import List

from ..core.errors import ReproError
from ..simulator.des import Timeout
from .events import DETACH, DRAIN, REJOIN, ROLLING_DONE, UPGRADED, OpsEvent

#: How often the sim process re-checks drain/join completion (seconds).
_POLL = 0.1


def rolling_restart_sim(
    env,
    system,
    events: List[OpsEvent],
    transfer_writesets: int = 16,
    settle: float = 2.0,
):
    """DES process: cycle every current replica once (one at a time)."""
    for replica in list(system.upgrade_targets()):
        if replica not in system.replicas or replica.failed:
            continue  # crashed (and maybe replaced) since we planned
        events.append(OpsEvent(env.now, DRAIN, replica.name))
        try:
            system.remove_replica(replica=replica)
        except ReproError as exc:
            events.append(OpsEvent(
                env.now, "cycle-skipped", replica.name, detail=str(exc)
            ))
            continue
        while replica in system.replicas:
            yield Timeout(_POLL)
        events.append(OpsEvent(env.now, DETACH, replica.name))
        replacement = system.add_replica(
            transfer_writesets, capacity=replica.capacity
        )
        events.append(OpsEvent(
            env.now, REJOIN, replacement.name,
            detail=f"replaces {replica.name}",
        ))
        while not replacement.available:
            yield Timeout(_POLL)
        events.append(OpsEvent(env.now, UPGRADED, replacement.name))
        if settle > 0:
            yield Timeout(settle)
    events.append(OpsEvent(env.now, ROLLING_DONE, ""))


def rolling_restart_cluster(
    cluster,
    events: List[OpsEvent],
    stop,
    transfer_writesets: int = 16,
    settle: float = 2.0,
    drain_timeout: float = 30.0,
) -> None:
    """Worker-thread body: cycle every current live replica once.

    *stop* is the run's stop event; the sweep ends early (leaving the
    fleet whole) if the run is over.  Event timestamps are virtual
    seconds from the cluster's clock; *settle* and *drain_timeout* are
    virtual and wall seconds respectively, matching the membership API.
    """
    clock = cluster.clock
    for replica in list(cluster.upgrade_targets()):
        if stop.is_set():
            return
        if replica not in cluster.replicas or replica.failed:
            continue
        events.append(OpsEvent(clock.now(), DRAIN, replica.name))
        try:
            cluster.remove_replica(drain_timeout, replica=replica)
        except ReproError as exc:
            events.append(OpsEvent(
                clock.now(), "cycle-skipped", replica.name, detail=str(exc)
            ))
            continue
        events.append(OpsEvent(clock.now(), DETACH, replica.name))
        replacement = cluster.add_replica(
            transfer_writesets, capacity=replica.capacity
        )
        events.append(OpsEvent(
            clock.now(), REJOIN, replacement.name,
            detail=f"replaces {replica.name}",
        ))
        while not replacement.available and not stop.is_set():
            if replacement.applier_error is not None:
                raise replacement.applier_error
            time.sleep(0.005)
        events.append(OpsEvent(clock.now(), UPGRADED, replacement.name))
        if settle > 0 and stop.wait(clock.to_wall(settle)):
            return
    events.append(OpsEvent(clock.now(), ROLLING_DONE, ""))
