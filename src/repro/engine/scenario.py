"""Declarative scenarios: the unit of work of the sweep engine.

A :class:`Scenario` says *what* to run — a grid of
(:class:`~repro.workloads.spec.WorkloadSpec` ×
:class:`~repro.core.params.ReplicationConfig` × sweep axes) points, each
tagged with the execution pillar (*backend*) that should produce it — and
how to assemble the per-point results into the finished artifact (a figure,
a table, an ablation row set).  It says nothing about *how* the points are
executed: :func:`repro.engine.runner.run_scenario` may run them serially,
fan them out over a process pool, or satisfy them from the result cache,
and the assembled artifact is identical in every case.

Every point is a self-contained, picklable description: the workload spec
and replication config ride along by value, the seed is explicit (derived
from the experiment settings exactly as the old serial loops derived it),
and model points name the standalone profile they need either as a
:class:`ProfileTask` (measure it — the engine deduplicates and caches) or
as a literal :class:`~repro.core.params.StandaloneProfile`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple

from ..core.params import ReplicationConfig
from ..core.rng import DEFAULT_SEED
from ..workloads.spec import WorkloadSpec

#: Execution pillars a sweep point can run on.
MODEL = "model"
SIMULATOR = "simulator"
CLUSTER = "cluster"
PROFILE = "profile"
#: Autoscale points carry their pillar (simulator/cluster) as an option.
AUTOSCALE = "autoscale"
BACKENDS = (MODEL, SIMULATOR, CLUSTER, PROFILE, AUTOSCALE)

#: Scenario kinds used for grouping in ``repro scenarios``.  Each kind is
#: also an implicit tag for ``repro scenarios --tag``.
KINDS = ("figure", "table", "sensitivity", "ablation", "extension",
         "crossval", "autoscale", "ops", "partition")


@dataclass(frozen=True)
class ProfileTask:
    """A standalone profiling run a model point depends on.

    Keyed by content: two points naming the same task share one profiling
    run (and one cache entry), mirroring the paper's measure-once,
    predict-many-times methodology.
    """

    spec: WorkloadSpec
    seed: int
    replay_duration: float
    mixed_duration: float


@dataclass(frozen=True)
class SweepPoint:
    """One executable point of a scenario's sweep grid."""

    #: Which pillar produces this point (``model`` | ``simulator`` |
    #: ``cluster`` | ``profile``).
    backend: str
    spec: WorkloadSpec
    #: Deployment the point runs (``None`` only for profile points).
    config: Optional[ReplicationConfig] = None
    #: System design (``multi-master`` | ``single-master`` | ``standalone``).
    design: str = ""
    seed: int = DEFAULT_SEED
    #: Backend keyword arguments as a sorted tuple (stable cache keys).
    options: Tuple[Tuple[str, object], ...] = ()
    #: Standalone profile dependency: a :class:`ProfileTask` to measure, a
    #: literal :class:`~repro.core.params.StandaloneProfile`, or ``None``.
    profile: object = None
    #: Free-form label used by the scenario's assemble step; not part of
    #: the cache key, so figures sharing a sweep share cached results.
    tag: str = ""
    #: Disk/memo caching eligibility (live-cluster points opt out: they
    #: measure wall-clock behaviour and should never be replayed stale).
    cacheable: bool = True

    @property
    def replicas(self) -> int:
        """Replica count of the point's deployment (1 for profile points)."""
        return 1 if self.config is None else self.config.replicas

    def option(self, name: str, default: object = None) -> object:
        """Look up one backend option."""
        for key, value in self.options:
            if key == name:
                return value
        return default

    def options_dict(self) -> Dict[str, object]:
        """The backend options as a plain dict."""
        return dict(self.options)


@dataclass(frozen=True)
class Scenario:
    """A declarative experiment: a point grid plus an assembly step."""

    #: Canonical registry name, e.g. ``"figure6"``.
    name: str
    #: Human-readable title shown by ``repro scenarios``.
    title: str
    #: Grouping kind (one of :data:`KINDS`).
    kind: str
    #: Metrics the artifact reports (documentation metadata).
    metrics: Tuple[str, ...]
    #: ``points(settings) -> [SweepPoint, ...]`` — builds the sweep grid.
    points: Callable[[object], Sequence[SweepPoint]]
    #: ``assemble(settings, points, results) -> artifact`` — *results* is
    #: aligned index-for-index with *points*.
    assemble: Callable[[object, Sequence[SweepPoint], Sequence[object]], object]
    #: Alternate lookup names, e.g. ``("fig06", "fig6")``.
    aliases: Tuple[str, ...] = ()
    #: Extra filter tags for ``repro scenarios --tag`` (the kind is
    #: always an implicit tag; ``live`` marks cluster-backed cells).
    tags: Tuple[str, ...] = ()

    @property
    def all_tags(self) -> Tuple[str, ...]:
        """The kind plus any explicit tags, deduplicated and sorted."""
        return tuple(sorted({self.kind, *self.tags}))


def _freeze_options(options: Dict[str, object]) -> Tuple[Tuple[str, object], ...]:
    return tuple(sorted((k, v) for k, v in options.items() if v is not None))


def profile_task(spec: WorkloadSpec, settings) -> ProfileTask:
    """The profiling run *settings* prescribes for *spec*."""
    return ProfileTask(
        spec=spec,
        seed=settings.seed,
        replay_duration=settings.profile_duration,
        mixed_duration=settings.profile_mixed_duration,
    )


def profile_point(spec: WorkloadSpec, settings, tag: str = "") -> SweepPoint:
    """A point whose result is the workload's :class:`ProfilingReport`."""
    return SweepPoint(
        backend=PROFILE,
        spec=spec,
        seed=settings.seed,
        profile=profile_task(spec, settings),
        tag=tag,
    )


def model_point(
    spec: WorkloadSpec,
    config: ReplicationConfig,
    design: str,
    *,
    profile: object,
    tag: str = "",
    cw_mode: Optional[str] = None,
    partition_map: object = None,
    certifier: object = None,
) -> SweepPoint:
    """An analytical-model prediction point.

    *partition_map* (a frozen
    :class:`~repro.partition.placement.PartitionMap`) switches the
    multi-master model to partial replication; like traces and ops
    plans, its stable ``repr`` makes it a cache-key citizen.
    *certifier* (a frozen :class:`~repro.sidb.certifier_api.CertifierSpec`)
    selects the certification protocol; ``None`` — the default — drops
    out of the options, preserving every pre-sharding cache key.
    """
    return SweepPoint(
        backend=MODEL,
        spec=spec,
        config=config,
        design=design,
        options=_freeze_options({"cw_mode": cw_mode,
                                 "partition_map": partition_map,
                                 "certifier": certifier}),
        profile=profile,
        tag=tag,
    )


def sim_point(
    spec: WorkloadSpec,
    config: ReplicationConfig,
    design: str,
    *,
    seed: int,
    warmup: float,
    duration: float,
    distribution: str = "exponential",
    lb_policy: str = "least-loaded",
    faults: Tuple = (),
    arrival_rate: Optional[float] = None,
    capacities: Optional[Tuple[float, ...]] = None,
    partition_map: object = None,
    telemetry: object = None,
    certifier: object = None,
    tag: str = "",
) -> SweepPoint:
    """A discrete-event-simulator measurement point.

    *telemetry* (a frozen :class:`repro.telemetry.TelemetryConfig`) opts
    the point into the observability layer; ``None`` — the default —
    drops out of the options entirely, so every pre-telemetry cache key
    is preserved byte-for-byte.  *certifier* (a frozen
    :class:`~repro.sidb.certifier_api.CertifierSpec`) selects the
    certification protocol with the same ``None``-drop-out guarantee.
    """
    options = {
        "warmup": warmup,
        "duration": duration,
        "distribution": distribution,
        "lb_policy": lb_policy,
    }
    if faults:
        options["faults"] = tuple(faults)
    if arrival_rate is not None:
        options["arrival_rate"] = arrival_rate
    if capacities is not None:
        options["capacities"] = tuple(capacities)
    if partition_map is not None:
        options["partition_map"] = partition_map
    if telemetry is not None:
        options["telemetry"] = telemetry
    if certifier is not None:
        options["certifier"] = certifier
    return SweepPoint(
        backend=SIMULATOR,
        spec=spec,
        config=config,
        design=design,
        seed=seed,
        options=_freeze_options(options),
        tag=tag,
    )


def autoscale_point(
    spec: WorkloadSpec,
    config: ReplicationConfig,
    design: str,
    *,
    seed: int,
    trace: object,
    policy: object,
    slo_response: float,
    warmup: float,
    duration: float,
    control_interval: float,
    pillar: str = SIMULATOR,
    time_scale: float = 0.25,
    min_replicas: int = 1,
    max_replicas: int = 16,
    transfer_writesets: int = 16,
    ops: object = None,
    capacities: Optional[Tuple[float, ...]] = None,
    telemetry: object = None,
    capacity_source: Optional[str] = None,
    profile: object = None,
    tag: str = "",
) -> SweepPoint:
    """An autoscale-run point: a trace × controller policy × design cell.

    *trace* and *policy* are the frozen dataclasses of
    :mod:`repro.control` — their stable ``repr`` makes them cache-key
    citizens like every other point input, and so is the optional *ops*
    plan (:class:`repro.ops.plan.OpsPlan`: crash faults, self-healing,
    rolling restarts) and the *capacities* vector of a heterogeneous
    fleet.  ``pillar`` picks the elastic execution engine: simulator
    points are deterministic and cacheable, live-cluster points measure
    wall-clock behaviour and are not.  *telemetry* (a frozen
    :class:`repro.telemetry.TelemetryConfig`) opts the run into the
    observability layer — and, with ``audit=True``, the online invariant
    auditor; ``None`` drops out of the options, preserving every
    pre-telemetry cache key byte-for-byte.  *capacity_source*
    (``"estimated"``) replaces declared replica capacities with the
    online estimator's live values in the LB and controller; ``None``
    (declared) drops out the same way.
    """
    options = {
        "trace": trace,
        "policy": policy,
        "slo_response": slo_response,
        "warmup": warmup,
        "duration": duration,
        "control_interval": control_interval,
        "pillar": pillar,
        "min_replicas": min_replicas,
        "max_replicas": max_replicas,
        "transfer_writesets": transfer_writesets,
    }
    if ops is not None:
        options["ops"] = ops
    if capacities is not None:
        options["capacities"] = tuple(capacities)
    if telemetry is not None:
        options["telemetry"] = telemetry
    if capacity_source is not None:
        options["capacity_source"] = capacity_source
    if pillar == CLUSTER:
        options["time_scale"] = time_scale
    return SweepPoint(
        backend=AUTOSCALE,
        spec=spec,
        config=config,
        design=design,
        seed=seed,
        options=_freeze_options(options),
        profile=profile,
        tag=tag,
        cacheable=pillar != CLUSTER,
    )


def cluster_point(
    spec: WorkloadSpec,
    config: ReplicationConfig,
    design: str,
    *,
    seed: int,
    warmup: float,
    duration: float,
    time_scale: float,
    distribution: str = "exponential",
    lb_policy: str = "least-loaded",
    capacities: Optional[Tuple[float, ...]] = None,
    arrival_rate: Optional[float] = None,
    partition_map: object = None,
    telemetry: object = None,
    certifier: object = None,
    tag: str = "",
) -> SweepPoint:
    """A live-cluster execution point (never cached: it measures real
    wall-clock behaviour, which must not be replayed stale)."""
    options = {
        "warmup": warmup,
        "duration": duration,
        "time_scale": time_scale,
        "distribution": distribution,
        "lb_policy": lb_policy,
    }
    if capacities is not None:
        options["capacities"] = tuple(capacities)
    if arrival_rate is not None:
        options["arrival_rate"] = arrival_rate
    if partition_map is not None:
        options["partition_map"] = partition_map
    if telemetry is not None:
        options["telemetry"] = telemetry
    if certifier is not None:
        options["certifier"] = certifier
    return SweepPoint(
        backend=CLUSTER,
        spec=spec,
        config=config,
        design=design,
        seed=seed,
        options=_freeze_options(options),
        tag=tag,
        cacheable=False,
    )
