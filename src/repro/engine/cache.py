"""On-disk result cache for sweep points and profiling runs.

Completed sweep points are persisted keyed by their *content* — backend,
design, seed, the full workload spec and replication config, the backend
options, and (for model points) the profile dependency — so:

* re-running a figure after an interrupt only executes the missing points;
* tweaking one replica count re-runs one point, not the whole sweep;
* figure pairs that share a sweep (6/7, 8/9, ...) share every entry;
* any code- or parameter-relevant change lands on a different key: the
  dataclass ``repr`` of every input participates in the hash, and so does
  a fingerprint of the ``repro`` package's own source — editing the
  simulator or the models invalidates every stale artifact automatically
  (:data:`CACHE_VERSION` additionally guards format changes).

Values are pickled dataclasses (``SimulationResult``, ``Prediction``,
``ProfilingReport``); unreadable or truncated entries are treated as
misses, so a killed run never poisons the cache.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from pathlib import Path
from typing import Optional, Tuple, Union

from .scenario import ProfileTask, SweepPoint

#: Bump when the meaning of cached results changes.
CACHE_VERSION = 1

#: Environment variable overriding the default cache directory.
ENV_CACHE_DIR = "REPRO_CACHE_DIR"

_MISS = object()


def default_cache_dir() -> str:
    """The cache root: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro-engine``."""
    override = os.environ.get(ENV_CACHE_DIR)
    if override:
        return override
    return os.path.join(os.path.expanduser("~"), ".cache", "repro-engine")


_fingerprint: Optional[str] = None


def source_fingerprint() -> str:
    """A hash of every ``repro/**/*.py`` source file (computed once).

    Mixed into every cache key so that editing the simulator, the models,
    or any other library code automatically invalidates cached results —
    contributors never have to remember to bump :data:`CACHE_VERSION` for
    behavioural changes, only for cache-format changes.
    """
    global _fingerprint
    if _fingerprint is None:
        package_root = Path(__file__).resolve().parent.parent
        digest = hashlib.sha256()
        for path in sorted(package_root.rglob("*.py")):
            digest.update(str(path.relative_to(package_root)).encode())
            try:
                digest.update(path.read_bytes())
            except OSError:
                pass
        _fingerprint = digest.hexdigest()
    return _fingerprint


def _digest(payload: str) -> str:
    return hashlib.sha256(
        (source_fingerprint() + payload).encode("utf-8")
    ).hexdigest()


def _profile_part(profile: object) -> str:
    """Canonical text for a point's profile dependency."""
    if profile is None:
        return "none"
    if isinstance(profile, ProfileTask):
        return profile_key(profile)
    return repr(profile)


def profile_key(task: ProfileTask) -> str:
    """Stable key for one profiling run."""
    return _digest(repr((
        CACHE_VERSION,
        "profile",
        repr(task.spec),
        task.seed,
        task.replay_duration,
        task.mixed_duration,
    )))


def point_key(point: SweepPoint) -> str:
    """Stable key for one sweep point (the tag is a label, not an input)."""
    if point.backend == "profile":
        return profile_key(point.profile)
    return _digest(repr((
        CACHE_VERSION,
        point.backend,
        point.design,
        point.seed,
        repr(point.spec),
        repr(point.config),
        point.options,
        _profile_part(point.profile),
    )))


class ResultCache:
    """A content-addressed pickle store under one root directory."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def get(self, key: str) -> Tuple[bool, object]:
        """``(True, value)`` on a hit, ``(False, None)`` otherwise."""
        try:
            with open(self._path(key), "rb") as handle:
                value = pickle.load(handle)
        except (OSError, pickle.PickleError, EOFError, AttributeError,
                ImportError, IndexError):
            self.misses += 1
            return False, None
        self.hits += 1
        return True, value

    def put(self, key: str, value: object) -> None:
        """Persist *value* atomically (write-to-temp, rename).

        Best-effort: a value that cannot be pickled (or a full disk) must
        not fail the run whose computation already succeeded — the entry
        is simply not cached.
        """
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except Exception:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.pkl"))

    def clear(self) -> None:
        """Remove every cached entry."""
        for entry in self.root.glob("*/*.pkl"):
            try:
                entry.unlink()
            except OSError:
                pass


def resolve_cache(cache: object) -> Optional[ResultCache]:
    """Normalise a cache argument.

    ``None`` disables disk caching; ``"default"`` / ``True`` opens the
    default directory; a string/path opens that directory; a
    :class:`ResultCache` passes through.
    """
    if cache is None or cache is False:
        return None
    if isinstance(cache, ResultCache):
        return cache
    if cache is True or cache == "default":
        return ResultCache(default_cache_dir())
    return ResultCache(cache)
