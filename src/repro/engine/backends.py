"""The three execution pillars behind one protocol.

A :class:`Backend` turns one :class:`~repro.engine.scenario.SweepPoint`
into a result object:

* :class:`ModelBackend` — the analytical models
  (:func:`repro.models.api.predict`), fed only by a standalone profile;
* :class:`SimulatorBackend` — the discrete-event simulator
  (:func:`repro.simulator.runner.simulate`);
* :class:`ClusterBackend` — the live replicated cluster
  (:func:`repro.cluster.run_cluster`), real threads against real SI
  engines;
* :class:`ProfileBackend` — standalone profiling
  (:func:`repro.profiling.profile_standalone`), the measurement step every
  model point depends on.

:func:`execute_point` is the single dispatch used by the sweep runner —
both inline and inside pool workers — so serial and parallel execution are
the same code path.
"""

from __future__ import annotations

from typing import Optional, Protocol

from ..cluster import run_cluster
from ..core.errors import ConfigurationError
from ..models.api import predict
from ..models.multimaster import MultiMasterOptions
from ..profiling.profiler import ProfilingReport, profile_standalone
from ..simulator.runner import simulate
from .scenario import AUTOSCALE, CLUSTER, MODEL, PROFILE, SIMULATOR, SweepPoint


class Backend(Protocol):
    """One execution pillar: turns a sweep point into a result."""

    name: str

    def run(self, point: SweepPoint, profile: object = None) -> object:
        """Execute *point*; *profile* is its resolved profile dependency."""
        ...


def _standalone_profile(profile: object):
    """Accept either a ProfilingReport or a bare StandaloneProfile."""
    if profile is None:
        raise ConfigurationError("model point has no resolved profile")
    if isinstance(profile, ProfilingReport):
        return profile.profile
    return profile


class ModelBackend:
    """Analytical prediction from a standalone profile."""

    name = MODEL

    def run(self, point: SweepPoint, profile: object = None) -> object:
        cw_mode = point.option("cw_mode")
        mm_options = None if cw_mode is None else MultiMasterOptions(cw_mode=cw_mode)
        return predict(
            point.design,
            _standalone_profile(profile),
            point.config,
            mm_options=mm_options,
            partition_map=point.option("partition_map"),
            cross_partition_fraction=point.spec.cross_partition_fraction,
            partition_weights=point.spec.partition_weights,
            certifier=point.option("certifier"),
            partitions=point.spec.partitions,
        )


class SimulatorBackend:
    """Discrete-event measurement of the replicated (or standalone) system."""

    name = SIMULATOR

    def run(self, point: SweepPoint, profile: object = None) -> object:
        opts = point.options_dict()
        return simulate(
            point.spec,
            point.config,
            design=point.design,
            seed=point.seed,
            warmup=opts["warmup"],
            duration=opts["duration"],
            distribution=opts.get("distribution", "exponential"),
            lb_policy=opts.get("lb_policy", "least-loaded"),
            faults=opts.get("faults", ()),
            arrival_rate=opts.get("arrival_rate"),
            capacities=opts.get("capacities"),
            partition_map=opts.get("partition_map"),
            telemetry=opts.get("telemetry"),
            certifier=opts.get("certifier"),
        )


class ClusterBackend:
    """Live execution on the threaded replicated-cluster runtime."""

    name = CLUSTER

    def run(self, point: SweepPoint, profile: object = None) -> object:
        opts = point.options_dict()
        return run_cluster(
            point.spec,
            point.config,
            design=point.design,
            seed=point.seed,
            warmup=opts["warmup"],
            duration=opts["duration"],
            time_scale=opts["time_scale"],
            distribution=opts.get("distribution", "exponential"),
            lb_policy=opts.get("lb_policy", "least-loaded"),
            capacities=opts.get("capacities"),
            arrival_rate=opts.get("arrival_rate"),
            partition_map=opts.get("partition_map"),
            telemetry=opts.get("telemetry"),
            certifier=opts.get("certifier"),
        )


class AutoscaleBackend:
    """Elastic autoscale runs on either execution pillar.

    One backend covers both pillars (the point's ``pillar`` option picks
    simulator vs live cluster) so a policy-comparison grid mixes cacheable
    deterministic simulator cells with live validation cells freely.
    """

    name = AUTOSCALE

    def run(self, point: SweepPoint, profile: object = None) -> object:
        # Imported lazily: repro.control imports the simulator and the
        # cluster runtime, which must not load during engine import.
        from ..control.autoscale import autoscale_cluster, autoscale_sim

        opts = point.options_dict()
        resolved = None if profile is None else _standalone_profile(profile)
        kwargs = dict(
            profile=resolved,
            seed=point.seed,
            warmup=opts["warmup"],
            duration=opts["duration"],
            control_interval=opts["control_interval"],
            slo_response=opts["slo_response"],
            min_replicas=opts.get("min_replicas", 1),
            max_replicas=opts.get("max_replicas", 16),
            transfer_writesets=opts.get("transfer_writesets", 16),
            config=point.config,
            ops=opts.get("ops"),
            capacities=opts.get("capacities"),
            telemetry=opts.get("telemetry"),
            capacity_source=opts.get("capacity_source"),
        )
        if opts.get("pillar") == CLUSTER:
            return autoscale_cluster(
                point.spec, opts["trace"], opts["policy"],
                design=point.design,
                time_scale=opts.get("time_scale", 0.25),
                **kwargs,
            )
        return autoscale_sim(
            point.spec, opts["trace"], opts["policy"],
            design=point.design, **kwargs,
        )


class ProfileBackend:
    """Standalone profiling: measure the paper's model inputs."""

    name = PROFILE

    def run(self, point: SweepPoint, profile: object = None) -> ProfilingReport:
        task = point.profile
        return profile_standalone(
            task.spec,
            seed=task.seed,
            replay_duration=task.replay_duration,
            mixed_duration=task.mixed_duration,
        )


BACKENDS = {
    backend.name: backend
    for backend in (ModelBackend(), SimulatorBackend(), ClusterBackend(),
                    ProfileBackend(), AutoscaleBackend())
}


def execute_point(point: SweepPoint, profile: object = None) -> object:
    """Run one sweep point on its backend (inline or in a pool worker)."""
    try:
        backend: Optional[Backend] = BACKENDS[point.backend]
    except KeyError:
        raise ConfigurationError(
            f"unknown backend {point.backend!r}; one of {sorted(BACKENDS)}"
        ) from None
    return backend.run(point, profile)
