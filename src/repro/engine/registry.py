"""Scenario registry: every reproducible artifact under one namespace.

Mirrors :mod:`repro.workloads.registry`: experiment modules register their
scenarios at import time, and the CLI (``repro scenarios``, ``repro figure
fig06 --jobs 4``) resolves names — including aliases like ``fig06`` for
``figure6`` — through one lookup.  Adding a new scenario is one
:func:`register_scenario` call; the sweep runner, parallelism, and caching
come for free.
"""

from __future__ import annotations

import difflib
from typing import Dict, List, Tuple

from ..core.errors import ReproError
from .scenario import Scenario

_SCENARIOS: Dict[str, Scenario] = {}
_ALIASES: Dict[str, str] = {}


class UnknownTagError(ReproError, KeyError):
    """Lookup of a tag no registered scenario carries.

    Carries close-match ``suggestions`` so the CLI can say "did you
    mean ...?" for misspelt tags (``repro scenarios --tag abblation``).
    """

    def __init__(self, tag: str, suggestions: Tuple[str, ...]) -> None:
        message = f"unknown tag {tag!r}"
        if suggestions:
            quoted = ", ".join(repr(s) for s in suggestions)
            message += f"; did you mean {quoted}?"
        known = ", ".join(known_tags())
        message += f" (known tags: {known})"
        super(KeyError, self).__init__(message)
        self.tag = tag
        self.suggestions = suggestions

    def __str__(self) -> str:
        return self.args[0]


class UnknownScenarioError(ReproError, KeyError):
    """Lookup of a name that is not in the scenario registry.

    Subclasses :class:`KeyError` so pre-existing ``except KeyError``
    callers keep working; carries close-match ``suggestions`` so the CLI
    can say "did you mean ...?" instead of dumping a traceback.
    """

    def __init__(self, name: str, suggestions: Tuple[str, ...]) -> None:
        message = f"unknown scenario {name!r}"
        if suggestions:
            quoted = ", ".join(repr(s) for s in suggestions)
            message += f"; did you mean {quoted}?"
        message += " (see: repro scenarios)"
        # KeyError renders its first arg with repr(); going through the
        # ReproError path keeps the readable message.
        super(KeyError, self).__init__(message)
        self.name = name
        self.suggestions = suggestions

    def __str__(self) -> str:
        return self.args[0]


def register_scenario(scenario: Scenario) -> Scenario:
    """Add *scenario* to the registry (idempotent per name).

    Returns the scenario so modules can register and keep a reference in
    one expression.
    """
    _SCENARIOS[scenario.name] = scenario
    for alias in scenario.aliases:
        _ALIASES[alias] = scenario.name
    return scenario


def _ensure_loaded() -> None:
    """Import the experiment modules so their registrations run."""
    from .. import experiments  # noqa: F401 — import for side effects


def get_scenario(name: str) -> Scenario:
    """Look up a scenario by canonical name or alias.

    Raises :class:`UnknownScenarioError` (a ``KeyError``) carrying
    close-match suggestions for misspelt names.
    """
    _ensure_loaded()
    key = name.strip().lower()
    key = _ALIASES.get(key, key)
    try:
        return _SCENARIOS[key]
    except KeyError:
        candidates = sorted(set(_SCENARIOS) | set(_ALIASES))
        suggestions = tuple(
            difflib.get_close_matches(key, candidates, n=3, cutoff=0.5)
        )
        raise UnknownScenarioError(name, suggestions) from None


def scenario_names() -> List[str]:
    """Sorted canonical names of every registered scenario."""
    _ensure_loaded()
    return sorted(_SCENARIOS)


def known_tags() -> List[str]:
    """Sorted union of every registered scenario's tags (kinds included)."""
    _ensure_loaded()
    tags = set()
    for scenario in _SCENARIOS.values():
        tags.update(scenario.all_tags)
    return sorted(tags)


def scenario_names_with_tag(tag: str) -> List[str]:
    """Names of the scenarios carrying *tag* (kind or explicit tag).

    Raises :class:`UnknownTagError` — with did-you-mean suggestions —
    when no scenario carries the tag.
    """
    _ensure_loaded()
    key = tag.strip().lower()
    names = sorted(
        name for name, scenario in _SCENARIOS.items()
        if key in scenario.all_tags
    )
    if not names:
        suggestions = tuple(
            difflib.get_close_matches(key, known_tags(), n=3, cutoff=0.5)
        )
        raise UnknownTagError(tag, suggestions)
    return names


def all_scenarios() -> Dict[str, Scenario]:
    """Every registered scenario keyed by canonical name (a copy)."""
    _ensure_loaded()
    return dict(_SCENARIOS)
