"""Scenario registry: every reproducible artifact under one namespace.

Mirrors :mod:`repro.workloads.registry`: experiment modules register their
scenarios at import time, and the CLI (``repro scenarios``, ``repro figure
fig06 --jobs 4``) resolves names — including aliases like ``fig06`` for
``figure6`` — through one lookup.  Adding a new scenario is one
:func:`register_scenario` call; the sweep runner, parallelism, and caching
come for free.
"""

from __future__ import annotations

from typing import Dict, List

from .scenario import Scenario

_SCENARIOS: Dict[str, Scenario] = {}
_ALIASES: Dict[str, str] = {}


def register_scenario(scenario: Scenario) -> Scenario:
    """Add *scenario* to the registry (idempotent per name).

    Returns the scenario so modules can register and keep a reference in
    one expression.
    """
    _SCENARIOS[scenario.name] = scenario
    for alias in scenario.aliases:
        _ALIASES[alias] = scenario.name
    return scenario


def _ensure_loaded() -> None:
    """Import the experiment modules so their registrations run."""
    from .. import experiments  # noqa: F401 — import for side effects


def get_scenario(name: str) -> Scenario:
    """Look up a scenario by canonical name or alias."""
    _ensure_loaded()
    key = name.strip().lower()
    key = _ALIASES.get(key, key)
    try:
        return _SCENARIOS[key]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; choose from {scenario_names()}"
        ) from None


def scenario_names() -> List[str]:
    """Sorted canonical names of every registered scenario."""
    _ensure_loaded()
    return sorted(_SCENARIOS)


def all_scenarios() -> Dict[str, Scenario]:
    """Every registered scenario keyed by canonical name (a copy)."""
    _ensure_loaded()
    return dict(_SCENARIOS)
