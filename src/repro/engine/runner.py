"""The shared sweep runner: execute any scenario on any pillar.

:func:`run_scenario` is the one API every experiment goes through:

1. build the scenario's point grid from the experiment settings;
2. resolve the distinct profiling runs the grid depends on (deduplicated,
   parallelised, cached — the paper's measure-once step);
3. execute every remaining point, satisfying what it can from the
   in-process memo and the on-disk result cache and fanning the misses out
   over a ``ProcessPoolExecutor`` when ``jobs > 1``;
4. hand the aligned results to the scenario's assemble step.

Determinism: every point carries its own explicit seed (derived from the
settings exactly as the old serial loops derived it) and is executed by the
same :func:`~repro.engine.backends.execute_point` dispatch whether inline
or in a worker, so serial, parallel, and cache-served runs produce
identical artifacts.  Failures inside workers are shipped back as text and
re-raised in the parent as :class:`~repro.core.errors.EngineError` carrying
the failed point's description, so a crashing sweep point always fails the
run (and the CLI exits non-zero) instead of hanging or being silently
dropped.  Inline execution (``jobs=1``) deliberately lets the original
library exception propagate unchanged — callers keep the exact exception
contracts (``ConfigurationError`` etc.) the pre-engine serial loops had.
"""

from __future__ import annotations

import os
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..core.errors import EngineError
from .backends import execute_point
from .cache import ResultCache, point_key, profile_key, resolve_cache
from .scenario import PROFILE, ProfileTask, Scenario, SweepPoint

#: In-process memo of completed points, keyed like the disk cache.  This is
#: what lets figure pairs that share a sweep (6/7, 8/9, ...) pay for it
#: once per process even with disk caching disabled.
_memo: Dict[str, object] = {}


@dataclass(frozen=True)
class PointTiming:
    """Wall-clock spent producing one sweep point (``repro scenarios
    --profile`` reads these to show where a scenario's time goes)."""

    description: str
    backend: str
    seconds: float
    #: True when the point was served from the memo or the disk cache.
    cached: bool


#: Per-point wall-clock, in completion order, scoped to one scenario run:
#: :func:`run_scenario` clears it on entry, so the log never accumulates
#: across the many scenarios of a long-lived process (``repro
#: reproduce``, the test session).  For pool workers the time is measured
#: inside the worker, so it excludes queueing and pickling overhead.
_timings: List[PointTiming] = []


def point_timings() -> List[PointTiming]:
    """Timings of the most recent scenario run (see :data:`_timings`)."""
    return list(_timings)


def clear_point_timings() -> None:
    """Reset the per-point timing log (scoping it to one scenario)."""
    _timings.clear()


def clear_memo() -> None:
    """Drop all memoized point results (tests use this for isolation)."""
    _memo.clear()


def memo_size() -> int:
    """Number of memoized point results."""
    return len(_memo)


def default_jobs() -> int:
    """Worker count used when ``jobs`` is ``None``: one per CPU."""
    return os.cpu_count() or 1


def _describe(point: SweepPoint) -> str:
    what = point.backend
    if point.design:
        what += f"/{point.design}"
    return f"{what} {point.spec.name} N={point.replicas} seed={point.seed}"


def _pool_worker(payload: Tuple[int, SweepPoint, object]):
    """Execute one point in a worker; failures travel back as text."""
    index, point, profile = payload
    started = time.perf_counter()
    try:
        result = execute_point(point, profile)
        return index, True, result, time.perf_counter() - started
    except Exception as exc:  # noqa: BLE001 — shipped to the parent
        detail = f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}"
        return index, False, detail, time.perf_counter() - started


def _record_timing(point: SweepPoint, seconds: float, cached: bool) -> None:
    _timings.append(PointTiming(
        description=_describe(point), backend=point.backend,
        seconds=seconds, cached=cached,
    ))


def _run_batch(
    payloads: List[Tuple[int, SweepPoint, object]],
    jobs: int,
    on_result: Callable[[int, object], None],
) -> None:
    """Run payloads inline (jobs==1) or over a process pool."""
    if not payloads:
        return
    if jobs <= 1 or len(payloads) == 1:
        for index, point, profile in payloads:
            started = time.perf_counter()
            result = execute_point(point, profile)
            _record_timing(point, time.perf_counter() - started, False)
            on_result(index, result)
        return
    workers = min(jobs, len(payloads))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = {pool.submit(_pool_worker, payload): payload
                   for payload in payloads}
        try:
            pending = set(futures)
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    index, ok, value, seconds = future.result()
                    point = futures[future][1]
                    if not ok:
                        raise EngineError(
                            f"sweep point failed in worker "
                            f"[{_describe(point)}]:\n{value}",
                            point=point,
                        )
                    _record_timing(point, seconds, False)
                    on_result(index, value)
        except BaseException:
            pool.shutdown(wait=True, cancel_futures=True)
            raise


def _resolve_profiles(
    points: Sequence[SweepPoint],
    jobs: int,
    cache: Optional[ResultCache],
) -> Dict[str, object]:
    """Measure (or recall) every distinct profiling run the grid needs."""
    from ..experiments import context

    tasks: Dict[str, ProfileTask] = {}
    for point in points:
        if isinstance(point.profile, ProfileTask):
            tasks.setdefault(profile_key(point.profile), point.profile)

    resolved: Dict[str, object] = {}
    missing: List[Tuple[str, ProfileTask]] = []
    for key, task in tasks.items():
        report = context.peek_report(task)
        if report is None and cache is not None:
            hit, value = cache.get(key)
            if hit:
                report = value
        if report is None:
            missing.append((key, task))
        else:
            resolved[key] = report
            context.seed_report(task, report)

    if missing:
        payloads = [
            (i, SweepPoint(backend=PROFILE, spec=task.spec, seed=task.seed,
                           profile=task), None)
            for i, (_, task) in enumerate(missing)
        ]

        def record(index: int, report: object) -> None:
            key, task = missing[index]
            resolved[key] = report
            context.seed_report(task, report)
            if cache is not None:
                cache.put(key, report)

        _run_batch(payloads, jobs, record)
    return resolved


def execute_points(
    points: Sequence[SweepPoint],
    *,
    jobs: Optional[int] = 1,
    cache: object = None,
    progress: Optional[Callable[[str], None]] = None,
) -> List[object]:
    """Execute a point grid; returns results aligned with *points*.

    ``jobs=None`` uses one worker per CPU; ``cache`` accepts anything
    :func:`repro.engine.cache.resolve_cache` does.  Points already present
    in the in-process memo or the disk cache are served without running.
    """
    disk = resolve_cache(cache)
    jobs = default_jobs() if jobs is None else max(1, int(jobs))
    points = list(points)
    profiles = _resolve_profiles(points, jobs, disk)

    def profile_for(point: SweepPoint) -> object:
        if isinstance(point.profile, ProfileTask):
            return profiles[profile_key(point.profile)]
        return point.profile

    results: List[object] = [None] * len(points)
    pending: List[Tuple[int, SweepPoint, object]] = []
    keys: Dict[int, str] = {}
    for i, point in enumerate(points):
        if point.backend == PROFILE:
            results[i] = profiles[profile_key(point.profile)]
            continue
        key = point_key(point)
        keys[i] = key
        if point.cacheable and key in _memo:
            results[i] = _memo[key]
            _record_timing(point, 0.0, True)
            continue
        if point.cacheable and disk is not None:
            hit, value = disk.get(key)
            if hit:
                results[i] = value
                _memo[key] = value
                _record_timing(point, 0.0, True)
                continue
        pending.append((i, point, profile_for(point)))

    if progress is not None and points:
        served = len(points) - len(pending)
        progress(f"{len(points)} points: {served} cached, "
                 f"{len(pending)} to run (jobs={jobs})")

    def record(index: int, value: object) -> None:
        results[index] = value
        point = points[index]
        if point.cacheable:
            _memo[keys[index]] = value
            if disk is not None:
                disk.put(keys[index], value)

    _run_batch(pending, jobs, record)
    return results


def run_scenario(
    scenario: Union[str, Scenario],
    settings=None,
    *,
    jobs: Optional[int] = 1,
    cache: object = None,
    progress: Optional[Callable[[str], None]] = None,
):
    """Build, execute, and assemble one scenario; returns its artifact.

    *scenario* is a :class:`~repro.engine.scenario.Scenario` or a registry
    name/alias.  The disk cache (if any) is also visible to profiling done
    while the point grid is being built, so interrupted runs resume
    incrementally.
    """
    from ..experiments import context
    from ..experiments.settings import ExperimentSettings
    from .registry import get_scenario

    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    if settings is None:
        settings = ExperimentSettings()
    clear_point_timings()  # scope the per-point timing log to this run
    disk = resolve_cache(cache)
    previous = context.set_disk_cache(disk)
    try:
        points = list(scenario.points(settings))
        results = execute_points(points, jobs=jobs, cache=disk,
                                 progress=progress)
    finally:
        context.set_disk_cache(previous)
    return scenario.assemble(settings, points, results)
