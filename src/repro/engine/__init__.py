"""Unified scenario engine: one declarative sweep runner over all pillars.

Every experiment in this repo — paper figures and tables, sensitivity
analyses, ablations, the open-loop and failover extensions, and the
three-pillar cross-validation — is a :class:`~repro.engine.scenario.Scenario`:
a declarative grid of sweep points, each naming the execution pillar
(analytical model, discrete-event simulator, or live cluster) that
produces it.  :func:`~repro.engine.runner.run_scenario` executes any
scenario on any pillar through one API, fanning points out over a process
pool and caching completed points on disk, with results identical to
serial execution.
"""

from .backends import (
    BACKENDS,
    AutoscaleBackend,
    Backend,
    ClusterBackend,
    ModelBackend,
    ProfileBackend,
    SimulatorBackend,
    execute_point,
)
from .cache import (
    CACHE_VERSION,
    ResultCache,
    default_cache_dir,
    point_key,
    profile_key,
    resolve_cache,
)
from .registry import (
    UnknownScenarioError,
    UnknownTagError,
    all_scenarios,
    get_scenario,
    known_tags,
    register_scenario,
    scenario_names,
    scenario_names_with_tag,
)
from .runner import (
    PointTiming,
    clear_memo,
    clear_point_timings,
    default_jobs,
    execute_points,
    memo_size,
    point_timings,
    run_scenario,
)
from .scenario import (
    AUTOSCALE,
    CLUSTER,
    MODEL,
    PROFILE,
    SIMULATOR,
    ProfileTask,
    Scenario,
    SweepPoint,
    autoscale_point,
    cluster_point,
    model_point,
    profile_point,
    profile_task,
    sim_point,
)

__all__ = [
    "AUTOSCALE",
    "AutoscaleBackend",
    "BACKENDS",
    "Backend",
    "CACHE_VERSION",
    "CLUSTER",
    "ClusterBackend",
    "MODEL",
    "ModelBackend",
    "PROFILE",
    "PointTiming",
    "ProfileBackend",
    "ProfileTask",
    "ResultCache",
    "SIMULATOR",
    "Scenario",
    "SimulatorBackend",
    "SweepPoint",
    "UnknownScenarioError",
    "UnknownTagError",
    "all_scenarios",
    "autoscale_point",
    "clear_memo",
    "clear_point_timings",
    "cluster_point",
    "default_cache_dir",
    "default_jobs",
    "execute_point",
    "execute_points",
    "get_scenario",
    "known_tags",
    "memo_size",
    "model_point",
    "point_key",
    "point_timings",
    "profile_key",
    "profile_point",
    "profile_task",
    "register_scenario",
    "resolve_cache",
    "run_scenario",
    "scenario_names",
    "scenario_names_with_tag",
    "sim_point",
]
