"""Reproduction of Tables 2-5 as declarative engine scenarios.

Tables 2 and 4 are *inputs* (the benchmark definitions); regenerating them
verifies the workload specs carry the paper's parameters — their scenarios
have empty sweep grids.  Tables 3 and 5 are *measurements*: each mix is one
profiling point in the scenario grid (the profiler replays each transaction
class on the standalone simulator and recovers the per-class CPU/disk
demands via the Utilization Law), so ``--jobs N`` profiles the mixes in
parallel and the reproduced table reports measured next to ground truth,
with the recovery error.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Dict, List, Optional, Sequence

from ..core.units import to_ms
from ..engine import Scenario, profile_point, register_scenario
from ..workloads import rubis, tpcw
from ..workloads.spec import WorkloadSpec
from .settings import ExperimentSettings


@dataclass(frozen=True)
class ParameterRow:
    """One row of Table 2 / Table 4."""

    mix: str
    read_fraction: float
    write_fraction: float
    clients_per_replica: int
    think_time_ms: float


@dataclass(frozen=True)
class ParameterTable:
    """A reproduced parameters table."""

    table_id: str
    benchmark: str
    rows: Sequence[ParameterRow]

    def to_text(self) -> str:
        """Render as a paper-style text table."""
        lines = [f"{self.table_id}: {self.benchmark} parameters"]
        lines.append(
            f"  {'mix':<10s} {'Pr':>6s} {'Pw':>6s} {'C':>4s} {'Z':>8s}"
        )
        for row in self.rows:
            lines.append(
                f"  {row.mix:<10s} {row.read_fraction:>5.0%} "
                f"{row.write_fraction:>5.0%} {row.clients_per_replica:>4d} "
                f"{row.think_time_ms:>6.0f}ms"
            )
        return "\n".join(lines)


def _parameter_table(table_id: str, benchmark: str, mixes) -> ParameterTable:
    rows = [
        ParameterRow(
            mix=spec.mix_name,
            read_fraction=spec.mix.read_fraction,
            write_fraction=spec.mix.write_fraction,
            clients_per_replica=spec.clients_per_replica,
            think_time_ms=spec.think_time * 1000.0,
        )
        for spec in mixes.values()
    ]
    return ParameterTable(table_id=table_id, benchmark=benchmark, rows=rows)


def table2() -> ParameterTable:
    """Table 2: TPC-W parameters."""
    return _parameter_table("table2", "TPC-W", tpcw.MIXES)


def table4() -> ParameterTable:
    """Table 4: RUBiS parameters."""
    return _parameter_table("table4", "RUBiS", rubis.MIXES)


@dataclass(frozen=True)
class DemandRow:
    """One (mix, resource) row of Table 3 / Table 5, measured vs truth (ms)."""

    mix: str
    resource: str
    read_truth: float
    read_measured: float
    write_truth: float
    write_measured: float
    writeset_truth: float
    writeset_measured: float

    def max_relative_error(self) -> float:
        """Worst profiling error across the three classes on this resource."""
        errors = []
        for truth, measured in (
            (self.read_truth, self.read_measured),
            (self.write_truth, self.write_measured),
            (self.writeset_truth, self.writeset_measured),
        ):
            if truth > 0:
                errors.append(abs(measured - truth) / truth)
        return max(errors) if errors else 0.0


@dataclass(frozen=True)
class DemandTable:
    """A reproduced service-demand table."""

    table_id: str
    benchmark: str
    rows: Sequence[DemandRow]

    def max_relative_error(self) -> float:
        """Worst profiling error in the whole table."""
        return max(row.max_relative_error() for row in self.rows)

    def to_text(self) -> str:
        """Render as a paper-style text table (measured values, truth in parens)."""
        lines = [
            f"{self.table_id}: measured service demands (ms) for "
            f"{self.benchmark} — profiler vs ground truth"
        ]
        lines.append(
            f"  {'mix':<10s} {'res':<5s} {'read':>16s} {'write':>16s} "
            f"{'writeset':>16s}"
        )
        for row in self.rows:
            lines.append(
                f"  {row.mix:<10s} {row.resource:<5s} "
                f"{row.read_measured:>7.2f} ({row.read_truth:>5.2f}) "
                f"{row.write_measured:>7.2f} ({row.write_truth:>5.2f}) "
                f"{row.writeset_measured:>7.2f} ({row.writeset_truth:>5.2f})"
            )
        return "\n".join(lines)


def _demand_points(
    mixes: Dict[str, WorkloadSpec], settings: ExperimentSettings
) -> List:
    return [
        profile_point(spec, settings, tag=spec.name)
        for spec in mixes.values()
    ]


def _assemble_demands(
    table_id: str,
    benchmark: str,
    settings: ExperimentSettings,
    points: Sequence,
    results: Sequence,
) -> DemandTable:
    rows: List[DemandRow] = []
    for point, report in zip(points, results):
        spec = point.spec
        measured = report.profile.demands
        truth = spec.demands
        for resource in ("cpu", "disk"):
            rows.append(
                DemandRow(
                    mix=spec.mix_name,
                    resource=resource,
                    read_truth=to_ms(truth.read.get(resource)),
                    read_measured=to_ms(measured.read.get(resource)),
                    write_truth=to_ms(truth.write.get(resource)),
                    write_measured=to_ms(measured.write.get(resource)),
                    writeset_truth=to_ms(truth.writeset.get(resource)),
                    writeset_measured=to_ms(measured.writeset.get(resource)),
                )
            )
    return DemandTable(table_id=table_id, benchmark=benchmark, rows=rows)


_TABLE_SCENARIOS: Dict[str, Scenario] = {}

for _table_id, _benchmark, _mixes in (
    ("table3", "TPC-W", tpcw.MIXES),
    ("table5", "RUBiS", rubis.MIXES),
):
    _TABLE_SCENARIOS[_table_id] = register_scenario(Scenario(
        name=_table_id,
        title=f"{_benchmark} measured service demands",
        kind="table",
        metrics=("service_demand",),
        points=partial(_demand_points, dict(_mixes)),
        assemble=partial(_assemble_demands, _table_id, _benchmark),
    ))

for _table_id, _benchmark, _builder in (
    ("table2", "TPC-W", table2),
    ("table4", "RUBiS", table4),
):
    _TABLE_SCENARIOS[_table_id] = register_scenario(Scenario(
        name=_table_id,
        title=f"{_benchmark} workload parameters",
        kind="table",
        metrics=("parameters",),
        points=lambda settings: (),
        assemble=(lambda builder: lambda settings, points, results: builder())(
            _builder
        ),
    ))


def table3(
    settings: ExperimentSettings = ExperimentSettings(),
    *,
    jobs: Optional[int] = 1,
    cache: object = None,
) -> DemandTable:
    """Table 3: measured service demands for TPC-W."""
    from ..engine.runner import run_scenario

    return run_scenario(_TABLE_SCENARIOS["table3"], settings, jobs=jobs,
                        cache=cache)


def table5(
    settings: ExperimentSettings = ExperimentSettings(),
    *,
    jobs: Optional[int] = 1,
    cache: object = None,
) -> DemandTable:
    """Table 5: measured service demands for RUBiS."""
    from ..engine.runner import run_scenario

    return run_scenario(_TABLE_SCENARIOS["table5"], settings, jobs=jobs,
                        cache=cache)
