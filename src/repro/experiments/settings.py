"""Experiment configuration shared by all figure/table runners.

The paper measures 15-minute steady-state windows on real hardware; the
simulated equivalents below are shorter but still collect thousands of
transactions per point.  ``ExperimentSettings.fast()`` is used by the test
suite; benchmarks default to ``ExperimentSettings()``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Tuple

from ..core.rng import DEFAULT_SEED

#: Replica counts the paper sweeps (x-axis of Figures 6-13).
PAPER_REPLICA_COUNTS: Tuple[int, ...] = (1, 2, 4, 6, 8, 12, 16)


@dataclass(frozen=True)
class ExperimentSettings:
    """Knobs controlling experiment fidelity vs runtime."""

    replica_counts: Tuple[int, ...] = PAPER_REPLICA_COUNTS
    seed: int = DEFAULT_SEED
    #: Simulated warm-up discarded before measurement (paper: 600 s).
    sim_warmup: float = 10.0
    #: Simulated measurement window (paper: 900 s).
    sim_duration: float = 60.0
    #: Replay duration for each profiling stage (§4).
    profile_duration: float = 120.0
    #: Mixed-run duration for L(1)/A1 measurement.
    profile_mixed_duration: float = 120.0
    #: Load-balancer + network delay (§6.3.1).
    load_balancer_delay: float = 0.001
    #: Certification delay (§6.3.2).
    certifier_delay: float = 0.012
    #: Autoscale scenarios: warm-up, trace length, and control period
    #: (virtual seconds), plus the replica count whose capacity anchors
    #: the trace's peak rate.
    autoscale_warmup: float = 20.0
    autoscale_duration: float = 480.0
    autoscale_control_interval: float = 10.0
    autoscale_peak_replicas: int = 6
    #: Optional frozen :class:`repro.telemetry.TelemetryConfig` threaded
    #: into every executable scenario point (simulator, cluster, and
    #: autoscale cells).  ``None`` — the default — keeps telemetry out of
    #: the point options entirely, so pre-telemetry cache keys are
    #: preserved byte-for-byte.
    telemetry: object = None
    #: Optional frozen :class:`repro.sidb.certifier_api.CertifierSpec`
    #: threaded into every multi-master scenario point
    #: (``repro ... --certifier sharded``).  ``None`` — the default —
    #: keeps the spec out of the point options entirely, so pre-sharding
    #: cache keys are preserved byte-for-byte.
    certifier: object = None
    #: Capacity source for autoscale points (``repro ...
    #: --capacity-source estimated``): ``"estimated"`` routes and scales
    #: on the online estimator's live per-replica capacities instead of
    #: the declared ones.  ``None`` — the default, aka ``declared`` —
    #: keeps the knob out of the point options entirely, preserving
    #: pre-estimator cache keys byte-for-byte.
    capacity_source: object = None

    @classmethod
    def fast(cls) -> "ExperimentSettings":
        """Cheap settings for CI: fewer points, shorter windows."""
        return cls(
            replica_counts=(1, 4, 8),
            sim_warmup=4.0,
            sim_duration=16.0,
            profile_duration=40.0,
            profile_mixed_duration=40.0,
            autoscale_warmup=8.0,
            autoscale_duration=160.0,
            autoscale_control_interval=5.0,
            autoscale_peak_replicas=4,
        )

    def with_replica_counts(self, counts: Tuple[int, ...]) -> "ExperimentSettings":
        """Return a copy sweeping different replica counts."""
        return replace(self, replica_counts=tuple(counts))

    def audited(self) -> "ExperimentSettings":
        """Return a copy that runs every executable point under the
        online invariant auditor (``repro ... --audit``)."""
        from ..telemetry import TelemetryConfig

        return replace(self, telemetry=TelemetryConfig(audit=True))

    def with_certifier(self, certifier: object) -> "ExperimentSettings":
        """Return a copy running multi-master points under *certifier*
        (``repro ... --certifier sharded``).

        The default global spec normalises to ``None`` so that
        ``--certifier global`` produces byte-identical point options —
        and therefore cache keys — to omitting the flag entirely.
        """
        from ..sidb.certifier_api import resolve_certifier_spec

        spec = resolve_certifier_spec(certifier)
        if spec is not None and spec.is_default:
            spec = None
        return replace(self, certifier=spec)

    def with_capacity_source(self, source: object) -> "ExperimentSettings":
        """Return a copy running autoscale points under *source*
        (``repro ... --capacity-source estimated``).

        ``declared`` — the default — normalises to ``None`` so that
        spelling it out produces byte-identical point options (and
        cache keys) to omitting the flag entirely.
        """
        from ..control.estimator import resolve_capacity_source

        return replace(self, capacity_source=resolve_capacity_source(source))
