"""Failover experiment: throughput through a replica crash and recovery.

An extension beyond the paper's evaluation (the paper motivates replication
with fault tolerance but measures only steady state): crash one replica
mid-run, watch the committed throughput dip while the survivors absorb the
load, and watch the recovery — including the multi-master catch-up burst
while the returning replica applies the writesets it missed.

The analytical model supplies the reference lines: the steady-state
prediction for N replicas (before/after) and for N-1 replicas scaled to the
same client population bound (during).

As an engine scenario the grid is three points — the fault-injected
simulation plus the healthy/degraded model predictions — so the expensive
simulation, its reference predictions, and the profiling they share are
scheduled by the same runner as every other experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..core.errors import ConfigurationError
from ..engine import (
    Scenario,
    model_point,
    profile_task,
    register_scenario,
    sim_point,
)
from ..simulator.faults import ReplicaFault
from ..workloads import tpcw
from ..workloads.spec import WorkloadSpec
from .settings import ExperimentSettings


@dataclass(frozen=True)
class FailoverResult:
    """Measured throughput phases around one replica fault."""

    design: str
    replicas: int
    fault: ReplicaFault
    #: Mean committed tps before / during / after the outage.
    before: float
    during: float
    after: float
    #: Steady-state model predictions with N and N-1 replicas.
    predicted_healthy: float
    predicted_degraded: float
    #: Per-second committed throughput over the measurement window.
    timeline: Sequence[float]

    @property
    def dip_fraction(self) -> float:
        """Fractional throughput lost while the replica was down."""
        if self.before <= 0:
            raise ConfigurationError("no pre-fault throughput measured")
        return max(0.0, 1.0 - self.during / self.before)

    @property
    def recovered(self) -> bool:
        """True when post-recovery throughput is within 10% of pre-fault."""
        return self.after >= 0.9 * self.before

    def to_text(self) -> str:
        """Render a small report."""
        lines = [
            f"failover: {self.design}, N={self.replicas}, replica "
            f"{self.fault.replica_index} down "
            f"[{self.fault.start:.0f}s, {self.fault.end:.0f}s)",
            f"  before {self.before:7.1f} tps   (model N:   "
            f"{self.predicted_healthy:7.1f} tps)",
            f"  during {self.during:7.1f} tps   (model N-1: "
            f"{self.predicted_degraded:7.1f} tps)",
            f"  after  {self.after:7.1f} tps   -> "
            f"{'recovered' if self.recovered else 'NOT recovered'}",
        ]
        return "\n".join(lines)


def _failover_points(
    spec: WorkloadSpec,
    design: str,
    replicas: int,
    fault_replica: int,
    phase_length: float,
    settings: ExperimentSettings,
) -> List:
    warmup = settings.sim_warmup
    fault = ReplicaFault(
        replica_index=fault_replica,
        start=warmup + phase_length,
        downtime=phase_length,
    )
    config = spec.replication_config(
        replicas,
        load_balancer_delay=settings.load_balancer_delay,
        certifier_delay=settings.certifier_delay,
    )
    task = profile_task(spec, settings)
    return [
        sim_point(
            spec, config, design,
            seed=settings.seed,
            warmup=warmup,
            duration=3 * phase_length,
            faults=(fault,),
            tag="run",
        ),
        model_point(spec, config, design, profile=task, tag="healthy"),
        model_point(spec, config.with_replicas(replicas - 1), design,
                    profile=task, tag="degraded"),
    ]


def _failover_assemble(
    design: str,
    replicas: int,
    phase_length: float,
    settings: ExperimentSettings,
    points: Sequence,
    results: Sequence,
) -> FailoverResult:
    by_tag = dict(zip((p.tag for p in points), results))
    sim_result = by_tag["run"]
    run_point = next(p for p in points if p.tag == "run")
    fault = run_point.option("faults")[0]
    timeline = list(sim_result.throughput_timeline)

    def phase_mean(start: float, end: float) -> float:
        # Phase means skip 5 s of settling after each transition.
        lo, hi = int(start) + 5, int(end)
        values = timeline[lo:hi]
        return sum(values) / len(values) if values else 0.0

    return FailoverResult(
        design=design,
        replicas=replicas,
        fault=fault,
        before=phase_mean(0, phase_length),
        during=phase_mean(phase_length, 2 * phase_length),
        after=phase_mean(2 * phase_length, 3 * phase_length),
        predicted_healthy=by_tag["healthy"].throughput,
        predicted_degraded=by_tag["degraded"].throughput,
        timeline=tuple(timeline),
    )


def _failover_scenario(
    spec: WorkloadSpec,
    design: str,
    replicas: int,
    fault_replica: int,
    phase_length: float,
    name: str = "ext-failover",
) -> Scenario:
    def points(settings):
        return _failover_points(
            spec, design, replicas, fault_replica, phase_length, settings
        )

    def assemble(settings, pts, results):
        return _failover_assemble(
            design, replicas, phase_length, settings, pts, results
        )

    return Scenario(
        name=name,
        title=f"Replica crash/recovery throughput ({spec.name}, {design})",
        kind="extension",
        metrics=("throughput",),
        points=points,
        assemble=assemble,
        aliases=("failover",),
    )


register_scenario(
    _failover_scenario(tpcw.SHOPPING, "multi-master", 4, 1, 30.0)
)


def failover_experiment(
    spec: WorkloadSpec,
    design: str = "multi-master",
    replicas: int = 4,
    fault_replica: int = 1,
    settings: ExperimentSettings = ExperimentSettings(),
    phase_length: float = 30.0,
    *,
    jobs: Optional[int] = 1,
    cache: object = None,
) -> FailoverResult:
    """Crash one replica for *phase_length* seconds mid-run and measure.

    The run has three equal phases: healthy, degraded, recovered.  Phase
    means skip 5 s of settling after each transition.
    """
    if replicas < 2:
        raise ConfigurationError("failover needs at least 2 replicas")
    from ..engine.runner import run_scenario

    scenario = _failover_scenario(
        spec, design, replicas, fault_replica, phase_length
    )
    return run_scenario(scenario, settings, jobs=jobs, cache=cache)
