"""Ablations for the design choices called out in DESIGN.md.

* :func:`mva_ablation` — exact MVA vs Schweitzer's approximation at the
  populations the experiments use.
* :func:`conflict_window_ablation` — the paper's one-step-lag conflict
  window vs a converged per-population fixed point (§4.1.1 notes the lag
  "slightly underestimates the abort probability").
* :func:`distribution_ablation` — MVA assumes exponential service demands
  (§3.4 assumption 6); the simulator can draw deterministic or lognormal
  demands instead to probe how much the prediction error moves.
* :func:`lb_policy_ablation` — the prototypes route to the least-loaded
  replica while the model statically partitions clients (§3.4 assumption
  6, "perfect load balancing").  Least-loaded routing outperforms static
  partitioning at high utilization, which is why measured response times
  can undercut predictions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..core.params import CPU, DISK
from ..models.demands import standalone_demand
from ..models.multimaster import (
    CW_FIXED_POINT,
    CW_ONE_STEP_LAG,
    MultiMasterOptions,
    predict_multimaster,
)
from ..queueing.mva import approximate_mva, solve_mva
from ..queueing.network import ClosedNetwork, queueing_center
from ..simulator.runner import simulate
from ..workloads import tpcw
from .context import get_profile
from .figures import MULTI_MASTER
from .settings import ExperimentSettings


@dataclass(frozen=True)
class MVAAblationRow:
    """Exact vs approximate MVA at one population."""

    population: int
    exact_throughput: float
    approximate_throughput: float

    @property
    def relative_error(self) -> float:
        """Approximation error relative to the exact solution."""
        return (
            abs(self.approximate_throughput - self.exact_throughput)
            / self.exact_throughput
        )


def mva_ablation(
    populations: Sequence[int] = (1, 5, 10, 20, 40, 80, 200),
) -> List[MVAAblationRow]:
    """Compare exact MVA against Schweitzer on the TPC-W shopping network."""
    spec = tpcw.SHOPPING
    demand = standalone_demand(spec.demands, spec.mix, abort_rate=0.0)
    network = ClosedNetwork(
        centers=(
            queueing_center(CPU, demand.cpu),
            queueing_center(DISK, demand.disk),
        ),
        think_time=spec.think_time,
    )
    rows = []
    for n in populations:
        exact = solve_mva(network, n).throughput
        approx = approximate_mva(network, n).throughput
        rows.append(
            MVAAblationRow(
                population=n,
                exact_throughput=exact,
                approximate_throughput=approx,
            )
        )
    return rows


@dataclass(frozen=True)
class ConflictWindowAblationRow:
    """Predicted abort rate under the two conflict-window schemes."""

    replicas: int
    one_step_lag_abort: float
    fixed_point_abort: float


def conflict_window_ablation(
    settings: ExperimentSettings = ExperimentSettings(),
    replica_counts: Sequence[int] = (2, 4, 8, 16),
) -> List[ConflictWindowAblationRow]:
    """One-step-lag (paper) vs converged conflict-window fixed point."""
    spec = tpcw.SHOPPING
    profile = get_profile(spec, settings)
    rows = []
    for n in replica_counts:
        config = spec.replication_config(n)
        lag = predict_multimaster(
            profile, config, options=MultiMasterOptions(cw_mode=CW_ONE_STEP_LAG)
        ).abort_rate
        fp = predict_multimaster(
            profile, config, options=MultiMasterOptions(cw_mode=CW_FIXED_POINT)
        ).abort_rate
        rows.append(
            ConflictWindowAblationRow(
                replicas=n, one_step_lag_abort=lag, fixed_point_abort=fp
            )
        )
    return rows


@dataclass(frozen=True)
class DistributionAblationRow:
    """Prediction error when the simulator draws non-exponential demands."""

    distribution: str
    measured_throughput: float
    predicted_throughput: float

    @property
    def relative_error(self) -> float:
        """Prediction error against this distribution's measurement."""
        return (
            abs(self.predicted_throughput - self.measured_throughput)
            / self.measured_throughput
        )


@dataclass(frozen=True)
class LBPolicyAblationRow:
    """Measured performance under one load-balancer routing policy."""

    policy: str
    measured_throughput: float
    measured_response_time: float
    predicted_throughput: float
    predicted_response_time: float


def lb_policy_ablation(
    settings: ExperimentSettings = ExperimentSettings(),
    replicas: int = 8,
    policies: Sequence[str] = ("least-loaded", "pinned", "random"),
) -> List[LBPolicyAblationRow]:
    """Compare LB routing policies against the model's static partition."""
    spec = tpcw.SHOPPING
    profile = get_profile(spec, settings)
    config = spec.replication_config(
        replicas,
        load_balancer_delay=settings.load_balancer_delay,
        certifier_delay=settings.certifier_delay,
    )
    prediction = predict_multimaster(profile, config)
    rows = []
    for policy in policies:
        result = simulate(
            spec,
            config,
            design=MULTI_MASTER,
            seed=settings.seed,
            warmup=settings.sim_warmup,
            duration=settings.sim_duration,
            lb_policy=policy,
        )
        rows.append(
            LBPolicyAblationRow(
                policy=policy,
                measured_throughput=result.throughput,
                measured_response_time=result.response_time,
                predicted_throughput=prediction.throughput,
                predicted_response_time=prediction.response_time,
            )
        )
    return rows


def distribution_ablation(
    settings: ExperimentSettings = ExperimentSettings(),
    replicas: int = 4,
    distributions: Sequence[str] = ("exponential", "deterministic", "lognormal"),
) -> List[DistributionAblationRow]:
    """Probe MVA's exponential-service assumption (§3.4, assumption 6)."""
    spec = tpcw.SHOPPING
    profile = get_profile(spec, settings)
    config = spec.replication_config(
        replicas,
        load_balancer_delay=settings.load_balancer_delay,
        certifier_delay=settings.certifier_delay,
    )
    predicted = predict_multimaster(profile, config).throughput
    rows = []
    for distribution in distributions:
        measured = simulate(
            spec,
            config,
            design=MULTI_MASTER,
            seed=settings.seed,
            warmup=settings.sim_warmup,
            duration=settings.sim_duration,
            distribution=distribution,
        ).throughput
        rows.append(
            DistributionAblationRow(
                distribution=distribution,
                measured_throughput=measured,
                predicted_throughput=predicted,
            )
        )
    return rows
