"""Ablations for the design choices called out in DESIGN.md.

* :func:`mva_ablation` — exact MVA vs Schweitzer's approximation at the
  populations the experiments use.
* :func:`conflict_window_ablation` — the paper's one-step-lag conflict
  window vs a converged per-population fixed point (§4.1.1 notes the lag
  "slightly underestimates the abort probability").
* :func:`distribution_ablation` — MVA assumes exponential service demands
  (§3.4 assumption 6); the simulator can draw deterministic or lognormal
  demands instead to probe how much the prediction error moves.
* :func:`lb_policy_ablation` — the prototypes route to the least-loaded
  replica while the model statically partitions clients (§3.4 assumption
  6, "perfect load balancing").  Least-loaded routing outperforms static
  partitioning at high utilization, which is why measured response times
  can undercut predictions.

Each ablation is a registered engine scenario: the sweep grid declares the
model and simulator points, the shared runner executes them (parallel and
cached like every other scenario), and the assemble step pairs them into
the ablation rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import List, Optional, Sequence

from ..core.params import CPU, DISK
from ..engine import (
    Scenario,
    execute_points,
    model_point,
    profile_task,
    register_scenario,
    sim_point,
)
from ..models.demands import standalone_demand
from ..models.multimaster import CW_FIXED_POINT, CW_ONE_STEP_LAG
from ..queueing.mva import approximate_mva, solve_mva
from ..queueing.network import ClosedNetwork, queueing_center
from ..workloads import tpcw
from .figures import MULTI_MASTER
from .settings import ExperimentSettings


@dataclass(frozen=True)
class MVAAblationRow:
    """Exact vs approximate MVA at one population."""

    population: int
    exact_throughput: float
    approximate_throughput: float

    @property
    def relative_error(self) -> float:
        """Approximation error relative to the exact solution."""
        return (
            abs(self.approximate_throughput - self.exact_throughput)
            / self.exact_throughput
        )


def mva_ablation(
    populations: Sequence[int] = (1, 5, 10, 20, 40, 80, 200),
) -> List[MVAAblationRow]:
    """Compare exact MVA against Schweitzer on the TPC-W shopping network."""
    spec = tpcw.SHOPPING
    demand = standalone_demand(spec.demands, spec.mix, abort_rate=0.0)
    network = ClosedNetwork(
        centers=(
            queueing_center(CPU, demand.cpu),
            queueing_center(DISK, demand.disk),
        ),
        think_time=spec.think_time,
    )
    rows = []
    for n in populations:
        exact = solve_mva(network, n).throughput
        approx = approximate_mva(network, n).throughput
        rows.append(
            MVAAblationRow(
                population=n,
                exact_throughput=exact,
                approximate_throughput=approx,
            )
        )
    return rows


@dataclass(frozen=True)
class ConflictWindowAblationRow:
    """Predicted abort rate under the two conflict-window schemes."""

    replicas: int
    one_step_lag_abort: float
    fixed_point_abort: float


def _conflict_window_points(
    replica_counts: Sequence[int], settings: ExperimentSettings
) -> List:
    spec = tpcw.SHOPPING
    task = profile_task(spec, settings)
    points = []
    for n in replica_counts:
        config = spec.replication_config(n)
        for mode in (CW_ONE_STEP_LAG, CW_FIXED_POINT):
            points.append(
                model_point(spec, config, MULTI_MASTER, profile=task,
                            cw_mode=mode, tag=mode)
            )
    return points


def _conflict_window_assemble(
    replica_counts: Sequence[int],
    settings: ExperimentSettings,
    points: Sequence,
    results: Sequence,
) -> List[ConflictWindowAblationRow]:
    aborts = {
        (point.tag, point.replicas): result.abort_rate
        for point, result in zip(points, results)
    }
    return [
        ConflictWindowAblationRow(
            replicas=n,
            one_step_lag_abort=aborts[(CW_ONE_STEP_LAG, n)],
            fixed_point_abort=aborts[(CW_FIXED_POINT, n)],
        )
        for n in replica_counts
    ]


def conflict_window_ablation(
    settings: ExperimentSettings = ExperimentSettings(),
    replica_counts: Sequence[int] = (2, 4, 8, 16),
    *,
    jobs: Optional[int] = 1,
    cache: object = None,
) -> List[ConflictWindowAblationRow]:
    """One-step-lag (paper) vs converged conflict-window fixed point."""
    counts = tuple(replica_counts)
    points = _conflict_window_points(counts, settings)
    results = execute_points(points, jobs=jobs, cache=cache)
    return _conflict_window_assemble(counts, settings, points, results)


@dataclass(frozen=True)
class DistributionAblationRow:
    """Prediction error when the simulator draws non-exponential demands."""

    distribution: str
    measured_throughput: float
    predicted_throughput: float

    @property
    def relative_error(self) -> float:
        """Prediction error against this distribution's measurement."""
        return (
            abs(self.predicted_throughput - self.measured_throughput)
            / self.measured_throughput
        )


@dataclass(frozen=True)
class LBPolicyAblationRow:
    """Measured performance under one load-balancer routing policy."""

    policy: str
    measured_throughput: float
    measured_response_time: float
    predicted_throughput: float
    predicted_response_time: float


def _axis_points(
    axis: str,
    values: Sequence[str],
    replicas: int,
    settings: ExperimentSettings,
) -> List:
    """One model point plus one simulator point per axis value
    (*axis* is the ``sim_point`` keyword being swept)."""
    spec = tpcw.SHOPPING
    config = spec.replication_config(
        replicas,
        load_balancer_delay=settings.load_balancer_delay,
        certifier_delay=settings.certifier_delay,
    )
    points = [
        model_point(spec, config, MULTI_MASTER,
                    profile=profile_task(spec, settings), tag="model")
    ]
    for value in values:
        points.append(
            sim_point(
                spec, config, MULTI_MASTER,
                seed=settings.seed,
                warmup=settings.sim_warmup,
                duration=settings.sim_duration,
                tag=value,
                **{axis: value},
            )
        )
    return points


def _lb_policy_assemble(
    policies: Sequence[str],
    settings: ExperimentSettings,
    points: Sequence,
    results: Sequence,
) -> List[LBPolicyAblationRow]:
    by_tag = dict(zip((p.tag for p in points), results))
    prediction = by_tag["model"]
    return [
        LBPolicyAblationRow(
            policy=policy,
            measured_throughput=by_tag[policy].throughput,
            measured_response_time=by_tag[policy].response_time,
            predicted_throughput=prediction.throughput,
            predicted_response_time=prediction.response_time,
        )
        for policy in policies
    ]


def lb_policy_ablation(
    settings: ExperimentSettings = ExperimentSettings(),
    replicas: int = 8,
    policies: Sequence[str] = ("least-loaded", "pinned", "random"),
    *,
    jobs: Optional[int] = 1,
    cache: object = None,
) -> List[LBPolicyAblationRow]:
    """Compare LB routing policies against the model's static partition."""
    policies = tuple(policies)
    points = _axis_points("lb_policy", policies, replicas, settings)
    results = execute_points(points, jobs=jobs, cache=cache)
    return _lb_policy_assemble(policies, settings, points, results)


def _distribution_assemble(
    distributions: Sequence[str],
    settings: ExperimentSettings,
    points: Sequence,
    results: Sequence,
) -> List[DistributionAblationRow]:
    by_tag = dict(zip((p.tag for p in points), results))
    predicted = by_tag["model"].throughput
    return [
        DistributionAblationRow(
            distribution=distribution,
            measured_throughput=by_tag[distribution].throughput,
            predicted_throughput=predicted,
        )
        for distribution in distributions
    ]


def distribution_ablation(
    settings: ExperimentSettings = ExperimentSettings(),
    replicas: int = 4,
    distributions: Sequence[str] = ("exponential", "deterministic", "lognormal"),
    *,
    jobs: Optional[int] = 1,
    cache: object = None,
) -> List[DistributionAblationRow]:
    """Probe MVA's exponential-service assumption (§3.4, assumption 6)."""
    distributions = tuple(distributions)
    points = _axis_points("distribution", distributions, replicas, settings)
    results = execute_points(points, jobs=jobs, cache=cache)
    return _distribution_assemble(distributions, settings, points, results)


# ---------------------------------------------------------------------------
# Registry entries (default parameterisations)
# ---------------------------------------------------------------------------

register_scenario(Scenario(
    name="ablation-mva",
    title="Exact MVA vs Schweitzer approximation",
    kind="ablation",
    metrics=("throughput",),
    points=lambda settings: (),
    assemble=lambda settings, points, results: mva_ablation(),
    aliases=("mva",),
))

register_scenario(Scenario(
    name="ablation-conflict-window",
    title="Conflict window: one-step lag vs fixed point",
    kind="ablation",
    metrics=("abort_rate",),
    points=partial(_conflict_window_points, (2, 4, 8, 16)),
    assemble=partial(_conflict_window_assemble, (2, 4, 8, 16)),
    aliases=("conflict-window",),
))

register_scenario(Scenario(
    name="ablation-distributions",
    title="Service-demand distribution vs MVA's exponential assumption",
    kind="ablation",
    metrics=("throughput",),
    points=lambda settings: _axis_points(
        "distribution", ("exponential", "deterministic", "lognormal"), 4,
        settings,
    ),
    assemble=partial(
        _distribution_assemble, ("exponential", "deterministic", "lognormal")
    ),
    aliases=("distributions",),
))

register_scenario(Scenario(
    name="ablation-lb-policy",
    title="Load-balancer routing policy vs static partitioning",
    kind="ablation",
    metrics=("throughput", "response_time"),
    points=lambda settings: _axis_points(
        "lb_policy", ("least-loaded", "pinned", "random"), 8, settings,
    ),
    assemble=partial(
        _lb_policy_assemble, ("least-loaded", "pinned", "random")
    ),
    aliases=("lb-policy",),
))
