"""Experiment harness: regenerate every table and figure of §6."""

from .ablations import (
    conflict_window_ablation,
    distribution_ablation,
    lb_policy_ablation,
    mva_ablation,
)
from .context import clear_cache, get_profile, get_profiling_report
from .crossval import (
    CrossValidationResult,
    PillarPoint,
    cross_validate,
    resolve_workload,
)
from .failover import FailoverResult, failover_experiment
from .figures import (
    AbortCurve,
    Figure14Result,
    FigureResult,
    clear_sweep_cache,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    figure11,
    figure12,
    figure13,
    figure14,
    validation_sweep,
)
from .openloop import OpenClosedResult, open_vs_closed
from .report import FIGURE_RUNNERS, full_report, summary_table
from .sensitivity import (
    CertifierCapacityResult,
    DelaySensitivityResult,
    ErrorMarginResult,
    certifier_capacity,
    certifier_delay_sensitivity,
    error_margin,
    lb_delay_sensitivity,
)
from .settings import PAPER_REPLICA_COUNTS, ExperimentSettings
from .tables import DemandTable, ParameterTable, table2, table3, table4, table5

# isort: split
# Imported last (they read .context and the engine): register the
# autoscale, operations, and partition scenario families alongside the
# figure/table/ablation ones.
from ..control import scenarios as autoscale_scenarios  # noqa: E402,F401
from ..ops import scenarios as ops_scenarios  # noqa: E402,F401
from ..partition import scenarios as partition_scenarios  # noqa: E402,F401

__all__ = [
    "AbortCurve",
    "CertifierCapacityResult",
    "DelaySensitivityResult",
    "DemandTable",
    "ErrorMarginResult",
    "ExperimentSettings",
    "FailoverResult",
    "failover_experiment",
    "Figure14Result",
    "FigureResult",
    "PAPER_REPLICA_COUNTS",
    "ParameterTable",
    "CrossValidationResult",
    "PillarPoint",
    "certifier_capacity",
    "certifier_delay_sensitivity",
    "clear_cache",
    "clear_sweep_cache",
    "conflict_window_ablation",
    "cross_validate",
    "resolve_workload",
    "distribution_ablation",
    "error_margin",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "figure11",
    "figure12",
    "figure13",
    "figure14",
    "full_report",
    "FIGURE_RUNNERS",
    "summary_table",
    "get_profile",
    "get_profiling_report",
    "lb_policy_ablation",
    "lb_delay_sensitivity",
    "mva_ablation",
    "open_vs_closed",
    "OpenClosedResult",
    "table2",
    "table3",
    "table4",
    "table5",
    "validation_sweep",
]
