"""Sensitivity analyses of §6.3 and the §6.2 error-margin claim.

* :func:`lb_delay_sensitivity` — §6.3.1: the combined load-balancer and
  network delay is ~1 ms; sweeping it shows predictions are insensitive in
  the sub-millisecond regime.
* :func:`certifier_capacity` — §6.3.2: the certification service time is
  dominated by batched disk writes and stays nearly constant with load,
  justifying modelling the certifier as a *delay* center.  This runs a
  dedicated discrete-event model of the group-committing certifier disk.
* :func:`certifier_delay_sensitivity` — how predictions move when the
  certification delay changes (6/12/24 ms).
* :func:`error_margin` — aggregates |predicted - measured| / measured over
  every point of Figures 6-13 and checks the paper's "within 15%" claim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..core import rng as rng_util
from ..core.results import ValidationSeries
from ..models.api import predict as model_predict
from ..simulator.des import Environment, Timeout
from ..simulator.runner import simulate
from ..simulator.stats import RunningStats
from ..workloads import tpcw
from .context import get_profile
from .figures import MULTI_MASTER, SINGLE_MASTER, validation_sweep
from .settings import ExperimentSettings


# ---------------------------------------------------------------------------
# §6.3.1 — load balancer and network delays
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DelaySensitivityRow:
    """Model and simulator throughput at one injected delay."""

    delay: float
    predicted_throughput: float
    measured_throughput: float


@dataclass(frozen=True)
class DelaySensitivityResult:
    """Throughput sensitivity to a delay parameter."""

    parameter: str
    replicas: int
    rows: Sequence[DelaySensitivityRow]

    def max_throughput_drop(self) -> float:
        """Largest fractional throughput drop relative to the first row."""
        base = self.rows[0].predicted_throughput
        return max(
            (base - row.predicted_throughput) / base for row in self.rows
        )

    def to_text(self) -> str:
        """Render as a text table."""
        lines = [
            f"{self.parameter} sensitivity (TPC-W shopping, MM, "
            f"N={self.replicas})"
        ]
        lines.append(f"  {'delay':>8s} {'predicted':>10s} {'measured':>10s}")
        for row in self.rows:
            lines.append(
                f"  {row.delay*1000:>6.1f}ms {row.predicted_throughput:>8.1f} "
                f"tps {row.measured_throughput:>8.1f} tps"
            )
        return "\n".join(lines)


def _delay_sweep(
    parameter: str,
    delays: Sequence[float],
    replicas: int,
    settings: ExperimentSettings,
) -> DelaySensitivityResult:
    spec = tpcw.SHOPPING
    profile = get_profile(spec, settings)
    rows: List[DelaySensitivityRow] = []
    for delay in delays:
        kwargs = {
            "load_balancer_delay": settings.load_balancer_delay,
            "certifier_delay": settings.certifier_delay,
            parameter: delay,
        }
        config = spec.replication_config(replicas, **kwargs)
        predicted = model_predict(MULTI_MASTER, profile, config).throughput
        measured = simulate(
            spec,
            config,
            design=MULTI_MASTER,
            seed=settings.seed,
            warmup=settings.sim_warmup,
            duration=settings.sim_duration,
        ).throughput
        rows.append(
            DelaySensitivityRow(
                delay=delay,
                predicted_throughput=predicted,
                measured_throughput=measured,
            )
        )
    return DelaySensitivityResult(
        parameter=parameter, replicas=replicas, rows=tuple(rows)
    )


def lb_delay_sensitivity(
    settings: ExperimentSettings = ExperimentSettings(),
    delays: Sequence[float] = (0.0, 0.001, 0.005, 0.010),
    replicas: int = 8,
) -> DelaySensitivityResult:
    """§6.3.1: sweep the load-balancer/network delay."""
    return _delay_sweep("load_balancer_delay", delays, replicas, settings)


def certifier_delay_sensitivity(
    settings: ExperimentSettings = ExperimentSettings(),
    delays: Sequence[float] = (0.006, 0.012, 0.024),
    replicas: int = 8,
) -> DelaySensitivityResult:
    """§6.3.2 follow-up: sweep the certification delay."""
    return _delay_sweep("certifier_delay", delays, replicas, settings)


# ---------------------------------------------------------------------------
# §6.3.2 — the certifier as a delay center
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CertifierLoadPoint:
    """Measured certifier behaviour at one request rate."""

    request_rate: float
    mean_latency: float
    mean_batch_size: float


@dataclass(frozen=True)
class CertifierCapacityResult:
    """Latency of the group-committing certifier across loads."""

    write_time: float
    points: Sequence[CertifierLoadPoint]

    def latency_spread(self) -> float:
        """(max - min) mean latency across the probed rates, in seconds."""
        latencies = [p.mean_latency for p in self.points]
        return max(latencies) - min(latencies)

    def to_text(self) -> str:
        """Render as a text table."""
        lines = [
            f"certifier capacity (leader disk write = "
            f"{self.write_time*1000:.0f} ms, group commit)"
        ]
        lines.append(f"  {'rate':>8s} {'latency':>9s} {'batch':>7s}")
        for p in self.points:
            lines.append(
                f"  {p.request_rate:>6.0f}/s {p.mean_latency*1000:>7.1f}ms "
                f"{p.mean_batch_size:>7.1f}"
            )
        return "\n".join(lines)


def certifier_capacity(
    rates: Sequence[float] = (25.0, 50.0, 150.0, 300.0, 500.0),
    write_time: float = 0.008,
    duration: float = 120.0,
    seed: int = rng_util.DEFAULT_SEED,
) -> CertifierCapacityResult:
    """Simulate the certifier's batched persistent log under open load.

    Requests arrive Poisson at each rate; the leader batches all pending
    writesets into one disk write of ``write_time`` (6-8 ms in the paper).
    A request therefore waits half a write on average plus its own write —
    about 12 ms — *independent of load*, because batching absorbs bursts:
    the paper's justification for modelling certification as a delay center.
    """
    points: List[CertifierLoadPoint] = []
    for rate in rates:
        env = Environment()
        rng = rng_util.spawn(seed, "certifier-capacity", rate)
        latencies = RunningStats()
        batches = RunningStats()
        pending: List[float] = []
        busy = [False]

        def writer():
            while pending:
                batch = pending[:]
                pending.clear()
                yield Timeout(write_time)
                batches.add(len(batch))
                for arrived in batch:
                    latencies.add(env.now - arrived)
            busy[0] = False

        def arrivals():
            while True:
                yield Timeout(float(rng.exponential(1.0 / rate)))
                pending.append(env.now)
                if not busy[0]:
                    busy[0] = True
                    env.start(writer())

        env.start(arrivals())
        env.run_until(duration)
        points.append(
            CertifierLoadPoint(
                request_rate=rate,
                mean_latency=latencies.mean,
                mean_batch_size=batches.mean,
            )
        )
    return CertifierCapacityResult(write_time=write_time, points=tuple(points))


# ---------------------------------------------------------------------------
# §6.2 — the "within 15%" error-margin claim
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ErrorMarginResult:
    """Aggregate prediction error over all validation figures."""

    per_series: Dict[str, float]
    mean_throughput_error: float
    max_throughput_error: float

    def to_text(self) -> str:
        """Render as a text table."""
        lines = ["prediction error margins (throughput, |pred-meas|/meas)"]
        for label, err in sorted(self.per_series.items()):
            lines.append(f"  {label:<28s} max {err:6.1%}")
        lines.append(f"  {'MEAN over all points':<28s} {self.mean_throughput_error:10.1%}")
        lines.append(f"  {'MAX over all points':<28s} {self.max_throughput_error:10.1%}")
        return "\n".join(lines)


def error_margin(
    settings: ExperimentSettings = ExperimentSettings(),
) -> ErrorMarginResult:
    """Aggregate throughput errors over Figures 6, 8, 10 and 12."""
    per_series: Dict[str, float] = {}
    all_errors: List[float] = []
    for benchmark in ("tpcw", "rubis"):
        for design in (MULTI_MASTER, SINGLE_MASTER):
            sweep = validation_sweep(benchmark, design, settings)
            for mix, series in sweep.items():
                errors = [row.throughput_error for row in series.rows]
                per_series[f"{benchmark}/{mix} {design}"] = max(errors)
                all_errors.extend(errors)
    return ErrorMarginResult(
        per_series=per_series,
        mean_throughput_error=sum(all_errors) / len(all_errors),
        max_throughput_error=max(all_errors),
    )
