"""Sensitivity analyses of §6.3 and the §6.2 error-margin claim.

* :func:`lb_delay_sensitivity` — §6.3.1: the combined load-balancer and
  network delay is ~1 ms; sweeping it shows predictions are insensitive in
  the sub-millisecond regime.
* :func:`certifier_capacity` — §6.3.2: the certification service time is
  dominated by batched disk writes and stays nearly constant with load,
  justifying modelling the certifier as a *delay* center.  This runs a
  dedicated discrete-event model of the group-committing certifier disk.
* :func:`certifier_delay_sensitivity` — how predictions move when the
  certification delay changes (6/12/24 ms).
* :func:`error_margin` — aggregates |predicted - measured| / measured over
  every point of Figures 6-13 and checks the paper's "within 15%" claim.

The delay sweeps and the error margin are engine scenarios; the error
margin's grid is exactly the union of the four validation sweeps, so after
the figures have run it assembles entirely from cached points.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Dict, List, Optional, Sequence

from ..core import rng as rng_util
from ..engine import (
    Scenario,
    execute_points,
    model_point,
    profile_task,
    register_scenario,
    sim_point,
)
from ..simulator.des import Environment, Timeout
from ..simulator.stats import RunningStats
from ..workloads import tpcw
from .figures import MULTI_MASTER, SINGLE_MASTER, assemble_sweep, sweep_points
from .settings import ExperimentSettings


# ---------------------------------------------------------------------------
# §6.3.1 — load balancer and network delays
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DelaySensitivityRow:
    """Model and simulator throughput at one injected delay."""

    delay: float
    predicted_throughput: float
    measured_throughput: float


@dataclass(frozen=True)
class DelaySensitivityResult:
    """Throughput sensitivity to a delay parameter."""

    parameter: str
    replicas: int
    rows: Sequence[DelaySensitivityRow]

    def max_throughput_drop(self) -> float:
        """Largest fractional throughput drop relative to the first row."""
        base = self.rows[0].predicted_throughput
        return max(
            (base - row.predicted_throughput) / base for row in self.rows
        )

    def to_text(self) -> str:
        """Render as a text table."""
        lines = [
            f"{self.parameter} sensitivity (TPC-W shopping, MM, "
            f"N={self.replicas})"
        ]
        lines.append(f"  {'delay':>8s} {'predicted':>10s} {'measured':>10s}")
        for row in self.rows:
            lines.append(
                f"  {row.delay*1000:>6.1f}ms {row.predicted_throughput:>8.1f} "
                f"tps {row.measured_throughput:>8.1f} tps"
            )
        return "\n".join(lines)


def _delay_points(
    parameter: str,
    delays: Sequence[float],
    replicas: int,
    settings: ExperimentSettings,
) -> List:
    spec = tpcw.SHOPPING
    task = profile_task(spec, settings)
    points = []
    for delay in delays:
        kwargs = {
            "load_balancer_delay": settings.load_balancer_delay,
            "certifier_delay": settings.certifier_delay,
            parameter: delay,
        }
        config = spec.replication_config(replicas, **kwargs)
        tag = f"{delay:.6f}"
        points.append(
            model_point(spec, config, MULTI_MASTER, profile=task, tag=tag)
        )
        points.append(
            sim_point(
                spec, config, MULTI_MASTER,
                seed=settings.seed,
                warmup=settings.sim_warmup,
                duration=settings.sim_duration,
                tag=tag,
            )
        )
    return points


def _delay_assemble(
    parameter: str,
    delays: Sequence[float],
    replicas: int,
    settings: ExperimentSettings,
    points: Sequence,
    results: Sequence,
) -> DelaySensitivityResult:
    predicted: Dict[str, float] = {}
    measured: Dict[str, float] = {}
    for point, result in zip(points, results):
        if point.backend == "model":
            predicted[point.tag] = result.throughput
        else:
            measured[point.tag] = result.throughput
    rows = [
        DelaySensitivityRow(
            delay=delay,
            predicted_throughput=predicted[f"{delay:.6f}"],
            measured_throughput=measured[f"{delay:.6f}"],
        )
        for delay in delays
    ]
    return DelaySensitivityResult(
        parameter=parameter, replicas=replicas, rows=tuple(rows)
    )


def _delay_sweep(
    parameter: str,
    delays: Sequence[float],
    replicas: int,
    settings: ExperimentSettings,
    jobs: Optional[int] = 1,
    cache: object = None,
) -> DelaySensitivityResult:
    delays = tuple(delays)
    points = _delay_points(parameter, delays, replicas, settings)
    results = execute_points(points, jobs=jobs, cache=cache)
    return _delay_assemble(parameter, delays, replicas, settings, points,
                           results)


def lb_delay_sensitivity(
    settings: ExperimentSettings = ExperimentSettings(),
    delays: Sequence[float] = (0.0, 0.001, 0.005, 0.010),
    replicas: int = 8,
    *,
    jobs: Optional[int] = 1,
    cache: object = None,
) -> DelaySensitivityResult:
    """§6.3.1: sweep the load-balancer/network delay."""
    return _delay_sweep("load_balancer_delay", delays, replicas, settings,
                        jobs, cache)


def certifier_delay_sensitivity(
    settings: ExperimentSettings = ExperimentSettings(),
    delays: Sequence[float] = (0.006, 0.012, 0.024),
    replicas: int = 8,
    *,
    jobs: Optional[int] = 1,
    cache: object = None,
) -> DelaySensitivityResult:
    """§6.3.2 follow-up: sweep the certification delay."""
    return _delay_sweep("certifier_delay", delays, replicas, settings,
                        jobs, cache)


register_scenario(Scenario(
    name="sens-lb-delay",
    title="Throughput sensitivity to load-balancer/network delay",
    kind="sensitivity",
    metrics=("throughput",),
    points=partial(_delay_points, "load_balancer_delay",
                   (0.0, 0.001, 0.005, 0.010), 8),
    assemble=partial(_delay_assemble, "load_balancer_delay",
                     (0.0, 0.001, 0.005, 0.010), 8),
    aliases=("lb-delay",),
))

register_scenario(Scenario(
    name="sens-certifier-delay",
    title="Throughput sensitivity to certification delay",
    kind="sensitivity",
    metrics=("throughput",),
    points=partial(_delay_points, "certifier_delay", (0.006, 0.012, 0.024), 8),
    assemble=partial(_delay_assemble, "certifier_delay",
                     (0.006, 0.012, 0.024), 8),
    aliases=("certifier-delay",),
))


# ---------------------------------------------------------------------------
# §6.3.2 — the certifier as a delay center
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CertifierLoadPoint:
    """Measured certifier behaviour at one request rate."""

    request_rate: float
    mean_latency: float
    mean_batch_size: float


@dataclass(frozen=True)
class CertifierCapacityResult:
    """Latency of the group-committing certifier across loads."""

    write_time: float
    points: Sequence[CertifierLoadPoint]

    def latency_spread(self) -> float:
        """(max - min) mean latency across the probed rates, in seconds."""
        latencies = [p.mean_latency for p in self.points]
        return max(latencies) - min(latencies)

    def to_text(self) -> str:
        """Render as a text table."""
        lines = [
            f"certifier capacity (leader disk write = "
            f"{self.write_time*1000:.0f} ms, group commit)"
        ]
        lines.append(f"  {'rate':>8s} {'latency':>9s} {'batch':>7s}")
        for p in self.points:
            lines.append(
                f"  {p.request_rate:>6.0f}/s {p.mean_latency*1000:>7.1f}ms "
                f"{p.mean_batch_size:>7.1f}"
            )
        return "\n".join(lines)


def certifier_capacity(
    rates: Sequence[float] = (25.0, 50.0, 150.0, 300.0, 500.0),
    write_time: float = 0.008,
    duration: float = 120.0,
    seed: int = rng_util.DEFAULT_SEED,
) -> CertifierCapacityResult:
    """Simulate the certifier's batched persistent log under open load.

    Requests arrive Poisson at each rate; the leader batches all pending
    writesets into one disk write of ``write_time`` (6-8 ms in the paper).
    A request therefore waits half a write on average plus its own write —
    about 12 ms — *independent of load*, because batching absorbs bursts:
    the paper's justification for modelling certification as a delay center.
    """
    points: List[CertifierLoadPoint] = []
    for rate in rates:
        env = Environment()
        rng = rng_util.spawn(seed, "certifier-capacity", rate)
        latencies = RunningStats()
        batches = RunningStats()
        pending: List[float] = []
        busy = [False]

        def writer():
            while pending:
                batch = pending[:]
                pending.clear()
                yield Timeout(write_time)
                batches.add(len(batch))
                for arrived in batch:
                    latencies.add(env.now - arrived)
            busy[0] = False

        def arrivals():
            while True:
                yield Timeout(float(rng.exponential(1.0 / rate)))
                pending.append(env.now)
                if not busy[0]:
                    busy[0] = True
                    env.start(writer())

        env.start(arrivals())
        env.run_until(duration)
        points.append(
            CertifierLoadPoint(
                request_rate=rate,
                mean_latency=latencies.mean,
                mean_batch_size=batches.mean,
            )
        )
    return CertifierCapacityResult(write_time=write_time, points=tuple(points))


register_scenario(Scenario(
    name="sens-certifier-capacity",
    title="Group-committing certifier latency across load",
    kind="sensitivity",
    metrics=("latency", "batch_size"),
    points=lambda settings: (),
    assemble=lambda settings, points, results: certifier_capacity(),
    aliases=("certifier-capacity",),
))


# ---------------------------------------------------------------------------
# §6.2 — the "within 15%" error-margin claim
# ---------------------------------------------------------------------------

#: The validation sweeps the error margin aggregates (Figures 6, 8, 10, 12).
_ERROR_MARGIN_COMBOS = (
    ("tpcw", MULTI_MASTER),
    ("tpcw", SINGLE_MASTER),
    ("rubis", MULTI_MASTER),
    ("rubis", SINGLE_MASTER),
)


@dataclass(frozen=True)
class ErrorMarginResult:
    """Aggregate prediction error over all validation figures."""

    per_series: Dict[str, float]
    mean_throughput_error: float
    max_throughput_error: float

    def to_text(self) -> str:
        """Render as a text table."""
        lines = ["prediction error margins (throughput, |pred-meas|/meas)"]
        for label, err in sorted(self.per_series.items()):
            lines.append(f"  {label:<28s} max {err:6.1%}")
        lines.append(f"  {'MEAN over all points':<28s} {self.mean_throughput_error:10.1%}")
        lines.append(f"  {'MAX over all points':<28s} {self.max_throughput_error:10.1%}")
        return "\n".join(lines)


def _error_margin_points(settings: ExperimentSettings) -> List:
    points = []
    for benchmark, design in _ERROR_MARGIN_COMBOS:
        points.extend(sweep_points(benchmark, design, settings))
    return points


def _error_margin_assemble(
    settings: ExperimentSettings, points: Sequence, results: Sequence
) -> ErrorMarginResult:
    per_series: Dict[str, float] = {}
    all_errors: List[float] = []
    for benchmark, design in _ERROR_MARGIN_COMBOS:
        subset = [
            (point, result)
            for point, result in zip(points, results)
            if point.design == design
            and point.spec.name.split("/")[0] == benchmark
        ]
        sweep = assemble_sweep(
            settings, [p for p, _ in subset], [r for _, r in subset]
        )
        for mix, series in sweep.items():
            errors = [row.throughput_error for row in series.rows]
            per_series[f"{benchmark}/{mix} {design}"] = max(errors)
            all_errors.extend(errors)
    return ErrorMarginResult(
        per_series=per_series,
        mean_throughput_error=sum(all_errors) / len(all_errors),
        max_throughput_error=max(all_errors),
    )


_ERROR_MARGIN_SCENARIO = register_scenario(Scenario(
    name="error-margin",
    title="Aggregate prediction error over Figures 6/8/10/12 (§6.2, <=15%)",
    kind="sensitivity",
    metrics=("throughput_error",),
    points=_error_margin_points,
    assemble=_error_margin_assemble,
    aliases=("validate",),
))


def error_margin(
    settings: ExperimentSettings = ExperimentSettings(),
    *,
    jobs: Optional[int] = 1,
    cache: object = None,
) -> ErrorMarginResult:
    """Aggregate throughput errors over Figures 6, 8, 10 and 12."""
    from ..engine.runner import run_scenario

    return run_scenario(_ERROR_MARGIN_SCENARIO, settings, jobs=jobs,
                        cache=cache)
