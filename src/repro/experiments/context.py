"""Shared profiling context: measure once, predict many times.

Every figure needs the standalone profile of its workloads.  Profiling is
the expensive step (four simulation runs per workload), so results are
cached per (workload, settings) within the process — mirroring how the
paper measures the standalone system once and reuses the numbers for every
prediction.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..core.params import StandaloneProfile
from ..profiling.profiler import ProfilingReport, profile_standalone
from ..workloads.spec import WorkloadSpec
from .settings import ExperimentSettings

_cache: Dict[Tuple, ProfilingReport] = {}


def _cache_key(spec: WorkloadSpec, settings: ExperimentSettings) -> Tuple:
    conflict = spec.conflict
    return (
        spec.name,
        None if conflict is None else (conflict.db_update_size,
                                       conflict.updates_per_transaction),
        settings.seed,
        settings.profile_duration,
        settings.profile_mixed_duration,
    )


def get_profiling_report(
    spec: WorkloadSpec, settings: ExperimentSettings
) -> ProfilingReport:
    """Profile *spec* on the standalone simulator (cached)."""
    key = _cache_key(spec, settings)
    if key not in _cache:
        _cache[key] = profile_standalone(
            spec,
            seed=settings.seed,
            replay_duration=settings.profile_duration,
            mixed_duration=settings.profile_mixed_duration,
        )
    return _cache[key]


def get_profile(spec: WorkloadSpec, settings: ExperimentSettings) -> StandaloneProfile:
    """The measured standalone profile for *spec* (cached)."""
    return get_profiling_report(spec, settings).profile


def clear_cache() -> None:
    """Drop all cached profiles (tests use this for isolation)."""
    _cache.clear()


def cache_size() -> int:
    """Number of cached profiling reports."""
    return len(_cache)
