"""Shared profiling context: measure once, predict many times.

Every figure needs the standalone profile of its workloads.  Profiling is
the expensive step (four simulation runs per workload), so results are
memoized per (workload, settings) within the process — mirroring how the
paper measures the standalone system once and reuses the numbers for every
prediction — and, when the scenario engine has a disk cache active,
persisted across processes so an interrupted ``repro reproduce`` resumes
incrementally instead of re-profiling.

The memo key is the engine's :func:`~repro.engine.cache.profile_key`: the
full workload spec plus the profiling parameters, so two distinct specs
can never collide even if they share a name.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..core.params import StandaloneProfile
from ..engine.cache import ResultCache, profile_key
from ..engine.scenario import ProfileTask, profile_task
from ..profiling.profiler import ProfilingReport, profile_standalone
from ..workloads.spec import WorkloadSpec
from .settings import ExperimentSettings

_cache: Dict[str, ProfilingReport] = {}

#: Disk cache the scenario engine currently has active (may be ``None``).
_disk: Optional[ResultCache] = None


def set_disk_cache(cache: Optional[ResultCache]) -> Optional[ResultCache]:
    """Install *cache* as the profiling disk cache; returns the previous
    one so callers can restore it (the engine scopes this per run)."""
    global _disk
    previous = _disk
    _disk = cache
    return previous


def peek_report(task: ProfileTask) -> Optional[ProfilingReport]:
    """The memoized report for *task*, if this process already has it."""
    return _cache.get(profile_key(task))


def seed_report(task: ProfileTask, report: ProfilingReport) -> None:
    """Record a report measured elsewhere (e.g. by a pool worker)."""
    _cache[profile_key(task)] = report


def resolve_profile_task(task: ProfileTask) -> ProfilingReport:
    """Measure *task* — or recall it from the memo or the disk cache."""
    key = profile_key(task)
    report = _cache.get(key)
    if report is not None:
        return report
    if _disk is not None:
        hit, value = _disk.get(key)
        if hit:
            _cache[key] = value
            return value
    report = profile_standalone(
        task.spec,
        seed=task.seed,
        replay_duration=task.replay_duration,
        mixed_duration=task.mixed_duration,
    )
    _cache[key] = report
    if _disk is not None:
        _disk.put(key, report)
    return report


def get_profiling_report(
    spec: WorkloadSpec, settings: ExperimentSettings
) -> ProfilingReport:
    """Profile *spec* on the standalone simulator (cached)."""
    return resolve_profile_task(profile_task(spec, settings))


def get_profile(spec: WorkloadSpec, settings: ExperimentSettings) -> StandaloneProfile:
    """The measured standalone profile for *spec* (cached)."""
    return get_profiling_report(spec, settings).profile


def clear_cache() -> None:
    """Drop all cached profiles (tests use this for isolation)."""
    _cache.clear()


def cache_size() -> int:
    """Number of cached profiling reports."""
    return len(_cache)
