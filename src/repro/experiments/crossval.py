"""Cross-validation: model vs simulator vs live cluster on one config.

The paper validates its analytical model against real prototype systems;
this harness makes that comparison a first-class, testable artifact inside
the repo.  All three pillars consume the *same*
:class:`~repro.core.params.ReplicationConfig` and workload spec:

1. **model** — :func:`repro.models.api.predict` from a standalone profile;
2. **simulator** — :func:`repro.simulator.runner.simulate`;
3. **live cluster** — :func:`repro.cluster.run_cluster`, which actually
   executes the transactions on threads against real SI engines.

The comparison is an engine scenario whose grid is one point per pillar —
the canonical demonstration that any scenario runs on any backend through
the same :func:`~repro.engine.runner.run_scenario` API.  With ``jobs=3``
the three pillars execute concurrently; the live-cluster point is never
cached (it measures real wall-clock behaviour).

The result reports per-metric deviation of the model and the live cluster
against the simulator (the common reference both were built to match), and
carries the live cluster's replication-correctness evidence: whether every
replica converged to the identical version after quiesce.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from ..cluster import ClusterResult
from ..core.errors import ConfigurationError
from ..core.params import ReplicationConfig, StandaloneProfile
from ..core.rng import DEFAULT_SEED
from ..core.units import to_ms
from ..engine import (
    Scenario,
    cluster_point,
    model_point,
    profile_task,
    register_scenario,
    sim_point,
)
from ..simulator.runner import MULTI_MASTER
from ..simulator.sampling import EXPONENTIAL
from ..simulator.systems import LEAST_LOADED
from ..workloads import get_workload, tpcw
from ..workloads.spec import WorkloadSpec
from .settings import ExperimentSettings

#: Bare benchmark names accepted by the CLI, mapped to their primary mix.
DEFAULT_MIXES = {
    "tpcw": "tpcw/shopping",
    "rubis": "rubis/bidding",
}


def resolve_workload(name: str) -> WorkloadSpec:
    """Look up a workload, accepting a bare benchmark name for its
    primary mix (``tpcw`` → ``tpcw/shopping``)."""
    try:
        return get_workload(DEFAULT_MIXES.get(name, name))
    except KeyError as exc:
        raise ConfigurationError(str(exc)) from None


@dataclass(frozen=True)
class PillarPoint:
    """One pillar's measurement of the shared operating point."""

    pillar: str
    throughput: float
    response_time: float
    abort_rate: float


@dataclass(frozen=True)
class CrossValidationResult:
    """Three-pillar comparison on one (workload, design, N) point."""

    workload: str
    design: str
    replicas: int
    model: PillarPoint
    simulator: PillarPoint
    cluster: PillarPoint
    #: The live run's full result, including the replication-correctness
    #: evidence (convergence flag and per-replica final versions).
    live_result: ClusterResult
    #: The simulator's full result; with telemetry enabled the two
    #: pillars' :class:`~repro.telemetry.TelemetryResult` objects hang
    #: off ``sim_result.telemetry`` / ``live_result.telemetry`` and emit
    #: one shared metric-name schema (the DES-vs-live parity contract).
    sim_result: object = None

    @property
    def converged(self) -> bool:
        """Whether every live replica applied every certified commit
        within the quiesce timeout."""
        return self.live_result.converged

    @property
    def final_versions(self) -> Tuple[int, ...]:
        """Each live replica's final version (identical when replication
        was correct)."""
        return self.live_result.final_versions

    def deviations(self) -> Dict[str, Dict[str, float]]:
        """Relative deviation of model and cluster vs the simulator.

        Throughput and response time are relative (``|x - sim| / sim``);
        abort rates are compared absolutely because the simulator's value
        is often within noise of zero.
        """
        out: Dict[str, Dict[str, float]] = {}
        for pillar in (self.model, self.cluster):
            out[pillar.pillar] = {
                "throughput": _relative(pillar.throughput,
                                        self.simulator.throughput),
                "response_time": _relative(pillar.response_time,
                                           self.simulator.response_time),
                "abort_rate": abs(pillar.abort_rate
                                  - self.simulator.abort_rate),
            }
        return out

    @property
    def cluster_throughput_deviation(self) -> float:
        """Live-cluster throughput deviation vs the simulator."""
        return _relative(self.cluster.throughput, self.simulator.throughput)

    @property
    def state_converged(self) -> bool:
        """True when all live replicas reached the identical version."""
        return self.live_result.state_converged

    def to_text(self) -> str:
        """Render the deviation table."""
        deviations = self.deviations()
        lines = [
            f"cross-validation: {self.workload} on {self.design}, "
            f"N={self.replicas}",
            f"  {'pillar':<12s} {'throughput':>12s} {'response':>10s} "
            f"{'aborts':>8s} {'tput dev':>9s} {'resp dev':>9s}",
        ]
        for point in (self.model, self.simulator, self.cluster):
            dev = deviations.get(point.pillar)
            dev_cols = (
                f" {dev['throughput']:>8.1%} {dev['response_time']:>8.1%}"
                if dev
                else f" {'—':>8s} {'—':>8s}"
            )
            lines.append(
                f"  {point.pillar:<12s} {point.throughput:>8.1f} tps "
                f"{to_ms(point.response_time):>7.1f} ms "
                f"{point.abort_rate:>7.3%}" + dev_cols
            )
        versions = ", ".join(str(v) for v in self.final_versions)
        lines.append(
            f"  replication: converged={self.converged} "
            f"final versions=[{versions}] "
            f"({'identical' if self.state_converged else 'DIVERGED'})"
        )
        return "\n".join(lines)


def _relative(value: float, reference: float) -> float:
    if reference == 0.0:
        return 0.0 if value == 0.0 else float("inf")
    return abs(value - reference) / reference


def _crossval_points(
    spec: WorkloadSpec,
    config: ReplicationConfig,
    design: str,
    seed: int,
    profile: object,
    sim_warmup: float,
    sim_duration: float,
    cluster_warmup: float,
    cluster_duration: float,
    time_scale: float,
    distribution: str,
    lb_policy: str,
    settings: ExperimentSettings,
    telemetry: object = None,
):
    if profile is None:
        profile = profile_task(spec, settings)
    return [
        model_point(spec, config, design, profile=profile, tag="model"),
        sim_point(
            spec, config, design,
            seed=seed,
            warmup=sim_warmup,
            duration=sim_duration,
            distribution=distribution,
            lb_policy=lb_policy,
            telemetry=telemetry,
            tag="simulator",
        ),
        cluster_point(
            spec, config, design,
            seed=seed,
            warmup=cluster_warmup,
            duration=cluster_duration,
            time_scale=time_scale,
            distribution=distribution,
            lb_policy=lb_policy,
            telemetry=telemetry,
            tag="cluster",
        ),
    ]


def _crossval_assemble(
    spec: WorkloadSpec,
    config: ReplicationConfig,
    design: str,
    settings: ExperimentSettings,
    points: Sequence,
    results: Sequence,
) -> CrossValidationResult:
    by_tag = dict(zip((p.tag for p in points), results))
    prediction = by_tag["model"]
    sim_result = by_tag["simulator"]
    live_result = by_tag["cluster"]
    return CrossValidationResult(
        workload=spec.name,
        design=design,
        replicas=config.replicas,
        model=PillarPoint(
            "model",
            prediction.throughput,
            prediction.response_time,
            prediction.abort_rate,
        ),
        simulator=PillarPoint(
            "simulator",
            sim_result.throughput,
            sim_result.response_time,
            sim_result.abort_rate,
        ),
        cluster=PillarPoint(
            "cluster",
            live_result.throughput,
            live_result.response_time,
            live_result.abort_rate,
        ),
        live_result=live_result,
        sim_result=sim_result,
    )


def _crossval_scenario(
    spec: WorkloadSpec,
    config: ReplicationConfig,
    design: str = MULTI_MASTER,
    seed: int = DEFAULT_SEED,
    profile: Optional[StandaloneProfile] = None,
    sim_warmup: float = 10.0,
    sim_duration: float = 40.0,
    cluster_warmup: float = 5.0,
    cluster_duration: float = 20.0,
    time_scale: float = 0.1,
    distribution: str = EXPONENTIAL,
    lb_policy: str = LEAST_LOADED,
    name: str = "crossval",
    telemetry: object = None,
) -> Scenario:
    def points(settings):
        return _crossval_points(
            spec, config, design, seed, profile, sim_warmup, sim_duration,
            cluster_warmup, cluster_duration, time_scale, distribution,
            lb_policy, settings, telemetry,
        )

    def assemble(settings, pts, results):
        return _crossval_assemble(spec, config, design, settings, pts,
                                  results)

    return Scenario(
        name=name,
        title=f"Three-pillar cross-validation ({spec.name}, {design}, "
        f"N={config.replicas})",
        kind="crossval",
        metrics=("throughput", "response_time", "abort_rate"),
        points=points,
        assemble=assemble,
        aliases=("cross-validation",),
        tags=("live",),
    )


register_scenario(_crossval_scenario(
    tpcw.SHOPPING,
    tpcw.SHOPPING.replication_config(2),
    sim_warmup=5.0,
    sim_duration=20.0,
    cluster_warmup=2.0,
    cluster_duration=10.0,
))


def cross_validate(
    spec: WorkloadSpec,
    config: ReplicationConfig,
    design: str = MULTI_MASTER,
    seed: int = DEFAULT_SEED,
    settings: Optional[ExperimentSettings] = None,
    profile: Optional[StandaloneProfile] = None,
    sim_warmup: float = 10.0,
    sim_duration: float = 40.0,
    cluster_warmup: float = 5.0,
    cluster_duration: float = 20.0,
    time_scale: float = 0.1,
    distribution: str = EXPONENTIAL,
    lb_policy: str = LEAST_LOADED,
    *,
    jobs: Optional[int] = 1,
    cache: object = None,
    telemetry: object = None,
) -> CrossValidationResult:
    """Run all three pillars on the same configuration and compare.

    *profile* short-circuits the standalone profiling step (tests pass a
    ground-truth profile); by default the profile is measured with
    :func:`repro.experiments.context.get_profile` under *settings*
    (default: :meth:`ExperimentSettings.fast`).  ``jobs=3`` runs the three
    pillars concurrently.  *telemetry* (a
    :class:`repro.telemetry.TelemetryConfig`) records both executable
    pillars with one shared metric-name schema.
    """
    from ..engine.runner import run_scenario

    scenario = _crossval_scenario(
        spec, config, design, seed, profile, sim_warmup, sim_duration,
        cluster_warmup, cluster_duration, time_scale, distribution,
        lb_policy, telemetry=telemetry,
    )
    return run_scenario(
        scenario, settings or ExperimentSettings.fast(), jobs=jobs,
        cache=cache,
    )
