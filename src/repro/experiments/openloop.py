"""Open vs. closed arrivals: why §3.1 adopts the closed-loop model.

The paper cites [Schroeder 2006] ("Open versus closed: a cautionary tale")
when fixing its workload model: e-commerce clients are *closed* — each
waits for its response before thinking and submitting again, so the
resident population is bounded and the system degrades gracefully.  An
*open* Poisson stream has no such feedback: past the capacity knee the
queue grows for as long as the overload lasts and response times explode.

This experiment drives the same workload both ways at matched loads and
reports the divergence — a validation that the simulator reproduces the
classic open/closed contrast, and a caution for anyone applying the
closed-loop models of this library to open traffic.

Implemented as an engine scenario: the grid holds one open-arrival and one
matched closed-population simulator point per load fraction (the closed
population is sized with the analytical model while the grid is built), so
all the simulations fan out in parallel.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..core.errors import ConfigurationError
from ..engine import Scenario, register_scenario, sim_point
from ..models.standalone import predict_standalone
from ..simulator.runner import STANDALONE
from ..workloads import tpcw
from ..workloads.spec import WorkloadSpec
from .context import get_profile
from .settings import ExperimentSettings


@dataclass(frozen=True)
class OpenClosedRow:
    """One matched-load comparison point."""

    #: Offered open-loop rate as a fraction of the capacity bound.
    load_fraction: float
    arrival_rate: float
    open_response: float
    #: Closed-loop response at (approximately) the same throughput.
    closed_response: float
    closed_clients: int


@dataclass(frozen=True)
class OpenClosedResult:
    """The open-vs-closed comparison for one workload."""

    workload: str
    capacity: float
    rows: Sequence[OpenClosedRow]

    def to_text(self) -> str:
        """Render as a text table."""
        lines = [
            f"open vs closed arrivals ({self.workload}, standalone, "
            f"capacity ≈ {self.capacity:.1f} tps)"
        ]
        lines.append(
            f"  {'load':>5s} {'rate':>7s} {'open R':>9s} {'closed R':>9s}"
            f" {'clients':>8s}"
        )
        for row in self.rows:
            lines.append(
                f"  {row.load_fraction:>4.0%} {row.arrival_rate:>6.1f}/s "
                f"{row.open_response*1000:>7.0f}ms "
                f"{row.closed_response*1000:>7.0f}ms {row.closed_clients:>8d}"
            )
        return "\n".join(lines)


def _capacity(profile) -> float:
    """Throughput bound from the busiest resource's aggregate demand."""
    demand_bound = max(
        profile.mix.read_fraction * profile.demands.read.cpu
        + profile.mix.write_fraction * profile.demands.write.cpu,
        profile.mix.read_fraction * profile.demands.read.disk
        + profile.mix.write_fraction * profile.demands.write.disk,
    )
    return 1.0 / demand_bound


def _openloop_points(
    spec: WorkloadSpec,
    load_fractions: Sequence[float],
    max_clients: int,
    settings: ExperimentSettings,
) -> List:
    profile = get_profile(spec, settings)
    capacity = _capacity(profile)
    base_config = spec.replication_config(1, load_balancer_delay=0.0)
    points = []
    for i, fraction in enumerate(load_fractions):
        rate = fraction * capacity
        points.append(
            sim_point(
                spec, base_config, STANDALONE,
                seed=settings.seed,
                warmup=settings.sim_warmup,
                duration=settings.sim_duration,
                arrival_rate=rate,
                tag=f"open:{i}",
            )
        )
        clients = _clients_for_rate(profile, spec, rate, max_clients)
        closed_config = dataclasses.replace(
            base_config, clients_per_replica=clients
        )
        points.append(
            sim_point(
                spec, closed_config, STANDALONE,
                seed=settings.seed,
                warmup=settings.sim_warmup,
                duration=settings.sim_duration,
                tag=f"closed:{i}",
            )
        )
    return points


def _openloop_assemble(
    spec: WorkloadSpec,
    load_fractions: Sequence[float],
    settings: ExperimentSettings,
    points: Sequence,
    results: Sequence,
) -> OpenClosedResult:
    capacity = _capacity(get_profile(spec, settings))
    by_tag = dict(zip((p.tag for p in points), zip(points, results)))
    rows: List[OpenClosedRow] = []
    for i, fraction in enumerate(load_fractions):
        open_point, open_result = by_tag[f"open:{i}"]
        closed_point, closed_result = by_tag[f"closed:{i}"]
        rows.append(
            OpenClosedRow(
                load_fraction=fraction,
                arrival_rate=open_point.option("arrival_rate"),
                open_response=open_result.response_time,
                closed_response=closed_result.response_time,
                closed_clients=closed_point.config.clients_per_replica,
            )
        )
    return OpenClosedResult(
        workload=spec.name, capacity=capacity, rows=tuple(rows)
    )


def _openloop_scenario(
    spec: WorkloadSpec,
    load_fractions: Sequence[float],
    max_clients: int,
    name: str = "ext-openloop",
) -> Scenario:
    fractions = tuple(load_fractions)

    def points(settings):
        return _openloop_points(spec, fractions, max_clients, settings)

    def assemble(settings, pts, results):
        return _openloop_assemble(spec, fractions, settings, pts, results)

    return Scenario(
        name=name,
        title=f"Open vs closed arrivals ({spec.name}, standalone)",
        kind="extension",
        metrics=("response_time",),
        points=points,
        assemble=assemble,
        aliases=("openloop", "open-vs-closed"),
    )


register_scenario(
    _openloop_scenario(tpcw.SHOPPING, (0.5, 0.8, 0.95, 1.1), 400)
)


def open_vs_closed(
    spec: WorkloadSpec,
    settings: ExperimentSettings = ExperimentSettings(),
    load_fractions: Sequence[float] = (0.5, 0.8, 0.95, 1.1),
    max_clients: int = 400,
    *,
    jobs: Optional[int] = 1,
    cache: object = None,
) -> OpenClosedResult:
    """Compare open and closed arrivals on the standalone system.

    For each load fraction f, the open side receives Poisson arrivals at
    ``f * capacity``; the closed side uses the smallest client population
    whose predicted throughput reaches the same rate (capped — beyond the
    knee a closed system cannot exceed capacity, which is the point).
    """
    if not load_fractions:
        raise ConfigurationError("need at least one load fraction")
    from ..engine.runner import run_scenario

    scenario = _openloop_scenario(spec, load_fractions, max_clients)
    return run_scenario(scenario, settings, jobs=jobs, cache=cache)


def _clients_for_rate(profile, spec, rate, max_clients):
    """Smallest closed population reaching *rate*, capped at the knee.

    Past the saturation knee a closed system cannot raise its throughput by
    adding clients — offered load self-throttles.  So for unreachable rates
    the comparison uses a knee-sized population (~20% past the knee): the
    closed system then runs *at* capacity with bounded response, which is
    precisely the contrast with the diverging open queue.
    """
    for clients in range(1, max_clients + 1):
        prediction = predict_standalone(
            profile, clients=clients, think_time=spec.think_time
        )
        if prediction.throughput >= rate:
            return clients
    # Unreachable: size to 1.2x the knee population.
    demand = (
        profile.mix.read_fraction * profile.demands.read.total
        + profile.mix.write_fraction * profile.demands.write.total
    )
    bottleneck = max(
        profile.mix.read_fraction * profile.demands.read.cpu
        + profile.mix.write_fraction * profile.demands.write.cpu,
        profile.mix.read_fraction * profile.demands.read.disk
        + profile.mix.write_fraction * profile.demands.write.disk,
    )
    knee = (demand + spec.think_time) / bottleneck
    return min(max_clients, int(math.ceil(1.2 * knee)))
