"""Full reproduction reports: regenerate every artifact into one document.

:func:`full_report` runs Tables 2-5, Figures 6-14, the §6.3 sensitivity
analyses, and the ablations, and renders them as one text report — the
program behind ``repro reproduce`` and ``scripts/run_all_experiments.py``.
Every artifact goes through the scenario engine, so ``jobs`` fans each
sweep out over a process pool and ``cache`` makes interrupted reports
resume incrementally; the progress heartbeat reports per-scenario
wall-clock so parallel speedup is visible.
:func:`summary_table` condenses the validation into the per-series error
table of EXPERIMENTS.md.
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional

from . import ablations, figures, sensitivity, tables
from .settings import ExperimentSettings

#: The figure runners in paper order.
FIGURE_RUNNERS = tuple(
    getattr(figures, f"figure{i}") for i in range(6, 14)
)


def summary_table(
    settings: ExperimentSettings,
    *,
    jobs: Optional[int] = 1,
    cache: object = None,
) -> str:
    """The §6.2 error-margin summary as a text table."""
    return sensitivity.error_margin(settings, jobs=jobs, cache=cache).to_text()


def full_report(
    settings: Optional[ExperimentSettings] = None,
    progress: Optional[Callable[[str], None]] = None,
    *,
    jobs: Optional[int] = 1,
    cache: object = None,
) -> str:
    """Regenerate every paper artifact; returns the combined text report.

    *progress* (if given) receives one line per completed artifact — total
    elapsed plus the artifact's own wall-clock — for long-running
    invocations that want a heartbeat.  ``jobs=None`` uses one worker per
    CPU.
    """
    settings = settings or ExperimentSettings()
    started = time.time()
    last = started
    sections: List[str] = []

    def note(name: str) -> None:
        nonlocal last
        now = time.time()
        if progress is not None:
            progress(
                f"[{now - started:6.0f}s] {name} done in {now - last:.1f}s"
            )
        last = now

    sections.append(tables.table2().to_text())
    sections.append(tables.table4().to_text())
    note("tables 2/4")

    for runner, name in ((tables.table3, "table3"), (tables.table5, "table5")):
        table = runner(settings, jobs=jobs, cache=cache)
        sections.append(table.to_text())
        sections.append(
            f"  -> max profiling error {table.max_relative_error():.2%}"
        )
        note(name)

    for runner in FIGURE_RUNNERS:
        figure = runner(settings, jobs=jobs, cache=cache)
        sections.append(figure.to_text())
        sections.append(
            f"  -> max {figure.metric} error {figure.max_error():.1%}"
        )
        note(runner.__name__)

    fig14 = figures.figure14(settings, jobs=jobs, cache=cache)
    sections.append(fig14.to_text())
    note("figure14")

    sections.append(
        sensitivity.lb_delay_sensitivity(settings, jobs=jobs,
                                         cache=cache).to_text()
    )
    sections.append(
        sensitivity.certifier_delay_sensitivity(settings, jobs=jobs,
                                                cache=cache).to_text()
    )
    sections.append(sensitivity.certifier_capacity().to_text())
    sections.append(summary_table(settings, jobs=jobs, cache=cache))
    note("sensitivity")

    sections.append(_ablation_section(settings, jobs=jobs, cache=cache))
    note("ablations")

    return "\n\n".join(sections)


def _ablation_section(
    settings: ExperimentSettings,
    *,
    jobs: Optional[int] = 1,
    cache: object = None,
) -> str:
    lines: List[str] = ["mva ablation (exact vs Schweitzer):"]
    for row in ablations.mva_ablation():
        lines.append(
            f"  n={row.population:>4d} exact={row.exact_throughput:8.2f} "
            f"schweitzer={row.approximate_throughput:8.2f} "
            f"err={row.relative_error:.2%}"
        )
    lines.append("conflict-window ablation (one-step lag vs fixed point):")
    for row in ablations.conflict_window_ablation(settings, jobs=jobs,
                                                  cache=cache):
        lines.append(
            f"  N={row.replicas:>2d} lag={row.one_step_lag_abort:.4%} "
            f"fixed={row.fixed_point_abort:.4%}"
        )
    lines.append("service-distribution ablation (MM, N=4):")
    for row in ablations.distribution_ablation(settings, jobs=jobs,
                                               cache=cache):
        lines.append(
            f"  {row.distribution:<14s} measured={row.measured_throughput:7.1f} "
            f"predicted={row.predicted_throughput:7.1f} "
            f"err={row.relative_error:.1%}"
        )
    lines.append("lb-policy ablation (MM, N=8):")
    for row in ablations.lb_policy_ablation(settings, jobs=jobs, cache=cache):
        lines.append(
            f"  {row.policy:<13s} measured X={row.measured_throughput:7.1f} "
            f"R={row.measured_response_time * 1000:6.1f}ms | predicted "
            f"X={row.predicted_throughput:7.1f} "
            f"R={row.predicted_response_time * 1000:6.1f}ms"
        )
    return "\n".join(lines)
