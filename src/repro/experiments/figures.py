"""Reproduction of Figures 6-14: predicted vs measured scalability curves.

Each ``figureN`` function regenerates the corresponding paper artifact:

====== ====================================================== =============
Figure Contents                                                Runner
====== ====================================================== =============
6      TPC-W throughput, multi-master, 3 mixes, N=1..16       :func:`figure6`
7      TPC-W response time, multi-master                      :func:`figure7`
8      TPC-W throughput, single-master                        :func:`figure8`
9      TPC-W response time, single-master                     :func:`figure9`
10     RUBiS throughput, multi-master                         :func:`figure10`
11     RUBiS response time, multi-master                      :func:`figure11`
12     RUBiS throughput, single-master                        :func:`figure12`
13     RUBiS response time, single-master                     :func:`figure13`
14     Multi-master abort probability at elevated A1          :func:`figure14`
====== ====================================================== =============

The *measured* side is the discrete-event simulation of the prototypes; the
*predicted* side is the analytical model fed only by standalone profiling.
Sweeps are cached per (benchmark, design, settings), so figure pairs that
share runs (6/7, 8/9, 10/11, 12/13) cost one sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..core.results import (
    OperatingPoint,
    ValidationPoint,
    ValidationSeries,
)
from ..core.units import to_ms
from ..models.api import predict as model_predict
from ..models.multimaster import predict_multimaster
from ..simulator.runner import simulate
from ..workloads import microbench, rubis, tpcw
from ..workloads.spec import WorkloadSpec
from .context import get_profile, get_profiling_report
from .settings import ExperimentSettings

MULTI_MASTER = "multi-master"
SINGLE_MASTER = "single-master"

_BENCHMARKS: Dict[str, Dict[str, WorkloadSpec]] = {
    "tpcw": dict(tpcw.MIXES),
    "rubis": dict(rubis.MIXES),
}

_sweep_cache: Dict[Tuple, Dict[str, ValidationSeries]] = {}


@dataclass(frozen=True)
class FigureResult:
    """One reproduced figure: a family of predicted-vs-measured curves."""

    figure_id: str
    title: str
    #: Which operating-point field the figure plots.
    metric: str  # "throughput" | "response_time"
    #: Mix name -> validation series (one curve pair per mix).
    series: Dict[str, ValidationSeries]

    def max_error(self) -> float:
        """Worst relative error of the plotted metric across all curves."""
        errors = []
        for validation in self.series.values():
            for row in validation.rows:
                if self.metric == "throughput":
                    errors.append(row.throughput_error)
                else:
                    errors.append(row.response_time_error)
        return max(errors)

    def to_text(self) -> str:
        """Render the figure as a paper-style text table."""
        lines = [f"{self.figure_id}: {self.title}"]
        unit = "tps" if self.metric == "throughput" else "ms"
        for mix, validation in self.series.items():
            lines.append(f"  [{mix}]")
            lines.append(
                f"    {'N':>3s} {'measured':>12s} {'predicted':>12s} {'err%':>7s}"
            )
            for row in validation.rows:
                measured, predicted = _metric_values(self.metric, row)
                err = abs(predicted - measured) / measured * 100.0
                lines.append(
                    f"    {row.replicas:>3d} {measured:>10.1f} {unit} "
                    f"{predicted:>9.1f} {unit} {err:>6.1f}%"
                )
        return "\n".join(lines)


def _metric_values(metric: str, row: ValidationPoint) -> Tuple[float, float]:
    if metric == "throughput":
        return row.measured.throughput, row.predicted.throughput
    return to_ms(row.measured.response_time), to_ms(row.predicted.response_time)


def validation_sweep(
    benchmark: str,
    design: str,
    settings: ExperimentSettings,
) -> Dict[str, ValidationSeries]:
    """Predicted and measured curves for every mix of *benchmark* (cached)."""
    key = (benchmark, design, settings)
    if key in _sweep_cache:
        return _sweep_cache[key]
    result: Dict[str, ValidationSeries] = {}
    for mix_name, spec in _BENCHMARKS[benchmark].items():
        result[mix_name] = _validate_mix(spec, design, settings)
    _sweep_cache[key] = result
    return result


def _validate_mix(
    spec: WorkloadSpec, design: str, settings: ExperimentSettings
) -> ValidationSeries:
    profile = get_profile(spec, settings)
    rows: List[ValidationPoint] = []
    for n in settings.replica_counts:
        config = spec.replication_config(
            n,
            load_balancer_delay=settings.load_balancer_delay,
            certifier_delay=settings.certifier_delay,
        )
        predicted = model_predict(design, profile, config).point
        measured = simulate(
            spec,
            config,
            design=design,
            seed=settings.seed,
            warmup=settings.sim_warmup,
            duration=settings.sim_duration,
        ).point
        rows.append(
            ValidationPoint(replicas=n, predicted=predicted, measured=measured)
        )
    return ValidationSeries(label=f"{spec.name} {design}", rows=rows)


def clear_sweep_cache() -> None:
    """Drop cached sweeps (tests use this for isolation)."""
    _sweep_cache.clear()


# ---------------------------------------------------------------------------
# Figures 6-13
# ---------------------------------------------------------------------------


def _figure(
    figure_id: str,
    title: str,
    benchmark: str,
    design: str,
    metric: str,
    settings: ExperimentSettings,
) -> FigureResult:
    return FigureResult(
        figure_id=figure_id,
        title=title,
        metric=metric,
        series=validation_sweep(benchmark, design, settings),
    )


def figure6(settings: ExperimentSettings = ExperimentSettings()) -> FigureResult:
    """TPC-W throughput on the multi-master system."""
    return _figure(
        "figure6", "TPC-W throughput on MM system", "tpcw",
        MULTI_MASTER, "throughput", settings,
    )


def figure7(settings: ExperimentSettings = ExperimentSettings()) -> FigureResult:
    """TPC-W response time on the multi-master system."""
    return _figure(
        "figure7", "TPC-W response time on MM system", "tpcw",
        MULTI_MASTER, "response_time", settings,
    )


def figure8(settings: ExperimentSettings = ExperimentSettings()) -> FigureResult:
    """TPC-W throughput on the single-master system."""
    return _figure(
        "figure8", "TPC-W throughput on SM system", "tpcw",
        SINGLE_MASTER, "throughput", settings,
    )


def figure9(settings: ExperimentSettings = ExperimentSettings()) -> FigureResult:
    """TPC-W response time on the single-master system."""
    return _figure(
        "figure9", "TPC-W response time on SM system", "tpcw",
        SINGLE_MASTER, "response_time", settings,
    )


def figure10(settings: ExperimentSettings = ExperimentSettings()) -> FigureResult:
    """RUBiS throughput on the multi-master system."""
    return _figure(
        "figure10", "RUBiS throughput on MM system", "rubis",
        MULTI_MASTER, "throughput", settings,
    )


def figure11(settings: ExperimentSettings = ExperimentSettings()) -> FigureResult:
    """RUBiS response time on the multi-master system."""
    return _figure(
        "figure11", "RUBiS response time on MM system", "rubis",
        MULTI_MASTER, "response_time", settings,
    )


def figure12(settings: ExperimentSettings = ExperimentSettings()) -> FigureResult:
    """RUBiS throughput on the single-master system."""
    return _figure(
        "figure12", "RUBiS throughput on SM system", "rubis",
        SINGLE_MASTER, "throughput", settings,
    )


def figure13(settings: ExperimentSettings = ExperimentSettings()) -> FigureResult:
    """RUBiS response time on the single-master system."""
    return _figure(
        "figure13", "RUBiS response time on SM system", "rubis",
        SINGLE_MASTER, "response_time", settings,
    )


# ---------------------------------------------------------------------------
# Figure 14: abort probability under artificially raised conflict rates
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AbortCurve:
    """One Figure-14 curve: abort probability vs N at a fixed A1."""

    target_a1: float
    measured_a1: float
    replica_counts: Sequence[int]
    measured: Sequence[float]
    predicted: Sequence[float]


@dataclass(frozen=True)
class Figure14Result:
    """All Figure-14 curves."""

    curves: Sequence[AbortCurve]

    def to_text(self) -> str:
        """Render as a paper-style text table."""
        lines = ["figure14: TPC-W shopping MM abort probabilities"]
        for curve in self.curves:
            lines.append(
                f"  [A1 target={curve.target_a1:.2%} "
                f"measured={curve.measured_a1:.2%}]"
            )
            lines.append(f"    {'N':>3s} {'measured AN':>12s} {'predicted AN':>13s}")
            for n, m, p in zip(curve.replica_counts, curve.measured, curve.predicted):
                lines.append(f"    {n:>3d} {m:>11.2%} {p:>12.2%}")
        return "\n".join(lines)


def figure14(
    settings: ExperimentSettings = ExperimentSettings(),
    abort_rates: Sequence[float] = microbench.FIGURE14_ABORT_RATES,
) -> Figure14Result:
    """Multi-master abort probability with an injected high-conflict table.

    Following §6.3.3: the conflict footprint of TPC-W shopping is shrunk
    (the "heap table") until the standalone abort rate A1 reaches each
    target; the model then predicts AN from the *measured* A1 while the
    simulator measures AN directly.
    """
    base = tpcw.SHOPPING
    base_report = get_profiling_report(base, settings)
    base_profile = base_report.profile
    update_rate = (
        base_report.standalone_throughput * base_profile.mix.write_fraction
    )

    curves: List[AbortCurve] = []
    for target in abort_rates:
        spec = microbench.heap_table_spec(
            target,
            update_response_time=base_profile.update_response_time,
            update_rate=update_rate,
            base=base,
        )
        report = get_profiling_report(spec, settings)
        profile = report.profile
        measured_an: List[float] = []
        predicted_an: List[float] = []
        for n in settings.replica_counts:
            config = spec.replication_config(
                n,
                load_balancer_delay=settings.load_balancer_delay,
                certifier_delay=settings.certifier_delay,
            )
            predicted_an.append(predict_multimaster(profile, config).abort_rate)
            measured_an.append(
                simulate(
                    spec,
                    config,
                    design=MULTI_MASTER,
                    seed=settings.seed,
                    warmup=settings.sim_warmup,
                    duration=settings.sim_duration,
                ).abort_rate
            )
        curves.append(
            AbortCurve(
                target_a1=target,
                measured_a1=profile.abort_rate,
                replica_counts=tuple(settings.replica_counts),
                measured=tuple(measured_an),
                predicted=tuple(predicted_an),
            )
        )
    return Figure14Result(curves=tuple(curves))
