"""Reproduction of Figures 6-14 as declarative engine scenarios.

Each ``figureN`` function regenerates the corresponding paper artifact:

====== ====================================================== =============
Figure Contents                                                Runner
====== ====================================================== =============
6      TPC-W throughput, multi-master, 3 mixes, N=1..16       :func:`figure6`
7      TPC-W response time, multi-master                      :func:`figure7`
8      TPC-W throughput, single-master                        :func:`figure8`
9      TPC-W response time, single-master                     :func:`figure9`
10     RUBiS throughput, multi-master                         :func:`figure10`
11     RUBiS response time, multi-master                      :func:`figure11`
12     RUBiS throughput, single-master                        :func:`figure12`
13     RUBiS response time, single-master                     :func:`figure13`
14     Multi-master abort probability at elevated A1          :func:`figure14`
====== ====================================================== =============

The *measured* side is the discrete-event simulation of the prototypes; the
*predicted* side is the analytical model fed only by standalone profiling.
Each figure is a :class:`~repro.engine.scenario.Scenario` — a declarative
(workload × design × replica-count) grid with one model point and one
simulator point per cell — registered in the scenario registry and executed
by the shared sweep runner.  Sweep points are keyed by content, so figure
pairs that share runs (6/7, 8/9, 10/11, 12/13) cost one sweep, and
``--jobs N`` fans the points out over a process pool with identical
results.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.results import (
    OperatingPoint,
    ValidationPoint,
    ValidationSeries,
)
from ..core.units import to_ms
from ..engine import (
    MODEL,
    Scenario,
    clear_memo,
    execute_points,
    model_point,
    profile_task,
    register_scenario,
    sim_point,
)
from ..workloads import microbench, rubis, tpcw
from ..workloads.spec import WorkloadSpec
from .context import get_profiling_report
from .settings import ExperimentSettings

MULTI_MASTER = "multi-master"
SINGLE_MASTER = "single-master"

_BENCHMARKS: Dict[str, Dict[str, WorkloadSpec]] = {
    "tpcw": dict(tpcw.MIXES),
    "rubis": dict(rubis.MIXES),
}


@dataclass(frozen=True)
class FigureResult:
    """One reproduced figure: a family of predicted-vs-measured curves."""

    figure_id: str
    title: str
    #: Which operating-point field the figure plots.
    metric: str  # "throughput" | "response_time"
    #: Mix name -> validation series (one curve pair per mix).
    series: Dict[str, ValidationSeries]

    def max_error(self) -> float:
        """Worst relative error of the plotted metric across all curves."""
        errors = []
        for validation in self.series.values():
            for row in validation.rows:
                if self.metric == "throughput":
                    errors.append(row.throughput_error)
                else:
                    errors.append(row.response_time_error)
        return max(errors)

    def to_text(self) -> str:
        """Render the figure as a paper-style text table."""
        lines = [f"{self.figure_id}: {self.title}"]
        unit = "tps" if self.metric == "throughput" else "ms"
        for mix, validation in self.series.items():
            lines.append(f"  [{mix}]")
            lines.append(
                f"    {'N':>3s} {'measured':>12s} {'predicted':>12s} {'err%':>7s}"
            )
            for row in validation.rows:
                measured, predicted = _metric_values(self.metric, row)
                err = abs(predicted - measured) / measured * 100.0
                lines.append(
                    f"    {row.replicas:>3d} {measured:>10.1f} {unit} "
                    f"{predicted:>9.1f} {unit} {err:>6.1f}%"
                )
        return "\n".join(lines)


def _metric_values(metric: str, row: ValidationPoint) -> Tuple[float, float]:
    if metric == "throughput":
        return row.measured.throughput, row.predicted.throughput
    return to_ms(row.measured.response_time), to_ms(row.predicted.response_time)


# ---------------------------------------------------------------------------
# The validation sweep grid shared by Figures 6-13 and the error margin
# ---------------------------------------------------------------------------


def sweep_points(
    benchmark: str, design: str, settings: ExperimentSettings
) -> List:
    """The (mix × N × pillar) grid behind one benchmark/design sweep."""
    points = []
    for mix_name, spec in _BENCHMARKS[benchmark].items():
        task = profile_task(spec, settings)
        for n in settings.replica_counts:
            config = spec.replication_config(
                n,
                load_balancer_delay=settings.load_balancer_delay,
                certifier_delay=settings.certifier_delay,
            )
            points.append(
                model_point(spec, config, design, profile=task, tag=mix_name)
            )
            points.append(
                sim_point(
                    spec, config, design,
                    seed=settings.seed,
                    warmup=settings.sim_warmup,
                    duration=settings.sim_duration,
                    tag=mix_name,
                )
            )
    return points


def assemble_sweep(
    settings: ExperimentSettings, points: Sequence, results: Sequence
) -> Dict[str, ValidationSeries]:
    """Pair model and simulator points back into validation series."""
    predicted: Dict[Tuple[str, int], OperatingPoint] = {}
    measured: Dict[Tuple[str, int], OperatingPoint] = {}
    labels: Dict[str, str] = {}
    order: List[str] = []
    for point, result in zip(points, results):
        key = (point.tag, point.replicas)
        if point.backend == MODEL:
            predicted[key] = result.point
        else:
            measured[key] = result.point
        if point.tag not in labels:
            labels[point.tag] = f"{point.spec.name} {point.design}"
            order.append(point.tag)
    series: Dict[str, ValidationSeries] = {}
    for mix in order:
        rows = [
            ValidationPoint(
                replicas=n,
                predicted=predicted[(mix, n)],
                measured=measured[(mix, n)],
            )
            for n in settings.replica_counts
        ]
        series[mix] = ValidationSeries(label=labels[mix], rows=rows)
    return series


def validation_sweep(
    benchmark: str,
    design: str,
    settings: ExperimentSettings,
    *,
    jobs: Optional[int] = 1,
    cache: object = None,
) -> Dict[str, ValidationSeries]:
    """Predicted and measured curves for every mix of *benchmark* (cached)."""
    points = sweep_points(benchmark, design, settings)
    results = execute_points(points, jobs=jobs, cache=cache)
    return assemble_sweep(settings, points, results)


def clear_sweep_cache() -> None:
    """Drop memoized sweep points (tests use this for isolation)."""
    clear_memo()


# ---------------------------------------------------------------------------
# Figures 6-13
# ---------------------------------------------------------------------------

#: (figure number, title, benchmark, design, metric)
_FIGURE_DEFS: Tuple[Tuple[int, str, str, str, str], ...] = (
    (6, "TPC-W throughput on MM system", "tpcw", MULTI_MASTER, "throughput"),
    (7, "TPC-W response time on MM system", "tpcw", MULTI_MASTER,
     "response_time"),
    (8, "TPC-W throughput on SM system", "tpcw", SINGLE_MASTER, "throughput"),
    (9, "TPC-W response time on SM system", "tpcw", SINGLE_MASTER,
     "response_time"),
    (10, "RUBiS throughput on MM system", "rubis", MULTI_MASTER, "throughput"),
    (11, "RUBiS response time on MM system", "rubis", MULTI_MASTER,
     "response_time"),
    (12, "RUBiS throughput on SM system", "rubis", SINGLE_MASTER,
     "throughput"),
    (13, "RUBiS response time on SM system", "rubis", SINGLE_MASTER,
     "response_time"),
)


def _assemble_figure(
    figure_id: str,
    title: str,
    metric: str,
    settings: ExperimentSettings,
    points: Sequence,
    results: Sequence,
) -> FigureResult:
    return FigureResult(
        figure_id=figure_id,
        title=title,
        metric=metric,
        series=assemble_sweep(settings, points, results),
    )


def _figure_scenario(
    number: int, title: str, benchmark: str, design: str, metric: str
) -> Scenario:
    figure_id = f"figure{number}"
    aliases = tuple(dict.fromkeys((f"fig{number:02d}", f"fig{number}")))
    return Scenario(
        name=figure_id,
        title=title,
        kind="figure",
        metrics=(metric,),
        points=partial(sweep_points, benchmark, design),
        assemble=partial(_assemble_figure, figure_id, title, metric),
        aliases=aliases,
    )


_FIGURE_SCENARIOS: Dict[str, Scenario] = {
    f"figure{number}": register_scenario(
        _figure_scenario(number, title, benchmark, design, metric)
    )
    for number, title, benchmark, design, metric in _FIGURE_DEFS
}


def _run_figure(
    figure_id: str,
    settings: ExperimentSettings,
    jobs: Optional[int],
    cache: object,
) -> FigureResult:
    from ..engine.runner import run_scenario

    return run_scenario(
        _FIGURE_SCENARIOS[figure_id], settings, jobs=jobs, cache=cache
    )


def figure6(settings: ExperimentSettings = ExperimentSettings(),
            *, jobs: Optional[int] = 1, cache: object = None) -> FigureResult:
    """TPC-W throughput on the multi-master system."""
    return _run_figure("figure6", settings, jobs, cache)


def figure7(settings: ExperimentSettings = ExperimentSettings(),
            *, jobs: Optional[int] = 1, cache: object = None) -> FigureResult:
    """TPC-W response time on the multi-master system."""
    return _run_figure("figure7", settings, jobs, cache)


def figure8(settings: ExperimentSettings = ExperimentSettings(),
            *, jobs: Optional[int] = 1, cache: object = None) -> FigureResult:
    """TPC-W throughput on the single-master system."""
    return _run_figure("figure8", settings, jobs, cache)


def figure9(settings: ExperimentSettings = ExperimentSettings(),
            *, jobs: Optional[int] = 1, cache: object = None) -> FigureResult:
    """TPC-W response time on the single-master system."""
    return _run_figure("figure9", settings, jobs, cache)


def figure10(settings: ExperimentSettings = ExperimentSettings(),
             *, jobs: Optional[int] = 1, cache: object = None) -> FigureResult:
    """RUBiS throughput on the multi-master system."""
    return _run_figure("figure10", settings, jobs, cache)


def figure11(settings: ExperimentSettings = ExperimentSettings(),
             *, jobs: Optional[int] = 1, cache: object = None) -> FigureResult:
    """RUBiS response time on the multi-master system."""
    return _run_figure("figure11", settings, jobs, cache)


def figure12(settings: ExperimentSettings = ExperimentSettings(),
             *, jobs: Optional[int] = 1, cache: object = None) -> FigureResult:
    """RUBiS throughput on the single-master system."""
    return _run_figure("figure12", settings, jobs, cache)


def figure13(settings: ExperimentSettings = ExperimentSettings(),
             *, jobs: Optional[int] = 1, cache: object = None) -> FigureResult:
    """RUBiS response time on the single-master system."""
    return _run_figure("figure13", settings, jobs, cache)


# ---------------------------------------------------------------------------
# Figure 14: abort probability under artificially raised conflict rates
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AbortCurve:
    """One Figure-14 curve: abort probability vs N at a fixed A1."""

    target_a1: float
    measured_a1: float
    replica_counts: Sequence[int]
    measured: Sequence[float]
    predicted: Sequence[float]


@dataclass(frozen=True)
class Figure14Result:
    """All Figure-14 curves."""

    curves: Sequence[AbortCurve]

    def to_text(self) -> str:
        """Render as a paper-style text table."""
        lines = ["figure14: TPC-W shopping MM abort probabilities"]
        for curve in self.curves:
            lines.append(
                f"  [A1 target={curve.target_a1:.2%} "
                f"measured={curve.measured_a1:.2%}]"
            )
            lines.append(f"    {'N':>3s} {'measured AN':>12s} {'predicted AN':>13s}")
            for n, m, p in zip(curve.replica_counts, curve.measured, curve.predicted):
                lines.append(f"    {n:>3d} {m:>11.2%} {p:>12.2%}")
        return "\n".join(lines)


def _figure14_points(
    abort_rates: Sequence[float], settings: ExperimentSettings
) -> List:
    """Derive the heap-table specs (§6.3.3) and lay out their grid.

    Building the grid profiles the base workload and each derived spec in
    the parent process (the derived spec's *shape* depends on the base
    profile); those reports land in the shared profiling cache, so the
    assemble step reads the measured A1 values for free.
    """
    base = tpcw.SHOPPING
    base_report = get_profiling_report(base, settings)
    base_profile = base_report.profile
    update_rate = (
        base_report.standalone_throughput * base_profile.mix.write_fraction
    )
    points = []
    for target in abort_rates:
        spec = microbench.heap_table_spec(
            target,
            update_response_time=base_profile.update_response_time,
            update_rate=update_rate,
            base=base,
        )
        task = profile_task(spec, settings)
        tag = f"{target:.6f}"
        for n in settings.replica_counts:
            config = spec.replication_config(
                n,
                load_balancer_delay=settings.load_balancer_delay,
                certifier_delay=settings.certifier_delay,
            )
            points.append(
                model_point(spec, config, MULTI_MASTER, profile=task, tag=tag)
            )
            points.append(
                sim_point(
                    spec, config, MULTI_MASTER,
                    seed=settings.seed,
                    warmup=settings.sim_warmup,
                    duration=settings.sim_duration,
                    tag=tag,
                )
            )
    return points


def _figure14_assemble(
    abort_rates: Sequence[float],
    settings: ExperimentSettings,
    points: Sequence,
    results: Sequence,
) -> Figure14Result:
    predicted: Dict[Tuple[str, int], float] = {}
    measured: Dict[Tuple[str, int], float] = {}
    spec_by_tag: Dict[str, WorkloadSpec] = {}
    for point, result in zip(points, results):
        key = (point.tag, point.replicas)
        if point.backend == MODEL:
            predicted[key] = result.abort_rate
        else:
            measured[key] = result.abort_rate
        spec_by_tag[point.tag] = point.spec
    curves: List[AbortCurve] = []
    for target in abort_rates:
        tag = f"{target:.6f}"
        profile = get_profiling_report(spec_by_tag[tag], settings).profile
        curves.append(
            AbortCurve(
                target_a1=target,
                measured_a1=profile.abort_rate,
                replica_counts=tuple(settings.replica_counts),
                measured=tuple(
                    measured[(tag, n)] for n in settings.replica_counts
                ),
                predicted=tuple(
                    predicted[(tag, n)] for n in settings.replica_counts
                ),
            )
        )
    return Figure14Result(curves=tuple(curves))


def _figure14_scenario(abort_rates: Sequence[float]) -> Scenario:
    rates = tuple(abort_rates)
    return Scenario(
        name="figure14",
        title="TPC-W shopping MM abort probability at elevated A1",
        kind="figure",
        metrics=("abort_rate",),
        points=partial(_figure14_points, rates),
        assemble=partial(_figure14_assemble, rates),
        aliases=("fig14",),
    )


register_scenario(_figure14_scenario(microbench.FIGURE14_ABORT_RATES))


def figure14(
    settings: ExperimentSettings = ExperimentSettings(),
    abort_rates: Sequence[float] = microbench.FIGURE14_ABORT_RATES,
    *,
    jobs: Optional[int] = 1,
    cache: object = None,
) -> Figure14Result:
    """Multi-master abort probability with an injected high-conflict table.

    Following §6.3.3: the conflict footprint of TPC-W shopping is shrunk
    (the "heap table") until the standalone abort rate A1 reaches each
    target; the model then predicts AN from the *measured* A1 while the
    simulator measures AN directly.
    """
    from ..engine.runner import run_scenario

    return run_scenario(
        _figure14_scenario(abort_rates), settings, jobs=jobs, cache=cache
    )
