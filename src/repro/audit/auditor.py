"""The online invariant auditor shared by both executable pillars."""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, FrozenSet, List, Optional, Set, Tuple

#: Invariant identifiers (the ``invariant`` field of a violation).
COMMIT_ORDER = "commit-order"
DELIVERY_ORDER = "delivery-order"
DELIVERY_GAP = "delivery-gap"
APPLY_ONCE = "apply-once"
PARTITION_SCOPE = "partition-scope"

INVARIANTS = (COMMIT_ORDER, DELIVERY_ORDER, DELIVERY_GAP, APPLY_ONCE,
              PARTITION_SCOPE)

#: Commit versions whose (partitions, origin) metadata is retained for
#: partition-scope checks; older applies skip the scope check rather
#: than grow memory without bound.
_COMMIT_META_LIMIT = 16_384

#: Violations retained verbatim (counters keep counting past this).
_VIOLATION_LIMIT = 256


@dataclass(frozen=True)
class AuditViolation:
    """One observed breach of a replication safety invariant."""

    invariant: str
    subject: str
    version: int
    detail: str

    def to_text(self) -> str:
        return (f"{self.invariant:<16s} {self.subject:<12s} "
                f"v{self.version}: {self.detail}")


@dataclass(frozen=True)
class AuditReport:
    """Frozen outcome of one run's continuous invariant auditing."""

    #: Per-invariant check counts (how much evidence "zero violations"
    #: rests on).
    checks: Tuple[Tuple[str, int], ...]
    violations: Tuple[AuditViolation, ...] = ()
    #: Violations observed beyond the retained sample.
    violations_dropped: int = 0
    commits_seen: int = 0
    deliveries_seen: int = 0
    applies_seen: int = 0

    @property
    def ok(self) -> bool:
        """True when every check passed."""
        return not self.violations and not self.violations_dropped

    @property
    def total_checks(self) -> int:
        return sum(count for _, count in self.checks)

    @property
    def total_violations(self) -> int:
        return len(self.violations) + self.violations_dropped


@dataclass
class _ReplicaLedger:
    """Delivery/apply bookkeeping for one tracked replica."""

    #: Join baseline: versions at or below it arrived as transferred
    #: state and are never delivered individually.
    baseline: int = 0
    last_delivered: int = 0
    #: Contiguously applied watermark plus out-of-order completions —
    #: mirrors the replicas' own watermark logic, bounding memory to
    #: the apply backlog.
    applied_watermark: int = 0
    applied_ahead: Set[int] = field(default_factory=set)

    def reset(self, baseline: int) -> None:
        self.baseline = baseline
        self.last_delivered = baseline
        self.applied_watermark = baseline
        self.applied_ahead.clear()

    def mark_applied(self, version: int) -> None:
        self.applied_ahead.add(version)
        while self.applied_watermark + 1 in self.applied_ahead:
            self.applied_watermark += 1
            self.applied_ahead.discard(self.applied_watermark)


class Auditor:
    """Continuously verifies replication safety from lifecycle hooks.

    Pure bookkeeping: no clocks, no randomness, no simulated time, so a
    DES run is bit-identical with the auditor on or off.  One internal
    lock makes it safe under the live cluster's concurrent appliers.

    Sharded certification passes ``shard=<partition>`` to every hook:
    each shard is then an independent commit sequence and each
    ``(replica, shard)`` pair an independent delivery/apply lane, so
    the same contiguity invariants hold per shard instead of globally.
    A cross-partition commit reports once per touched shard, with
    ``primary=True`` only on its home shard — the one lane the hosting
    replicas are charged apply work on; the other lanes are pure
    version-vector markers and must never be charged.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        # Last version per commit lane: ``None`` is the single global
        # sequence, an int names a certifier shard.
        self._last_commit: Dict[Optional[int], int] = {}
        # Meta key (version, or (shard, version)) ->
        # (partition set, origin name, primary) for scope checks.
        self._commit_meta: Dict[
            object, Tuple[FrozenSet[int], str, bool]
        ] = {}
        self._commit_order: Deque[object] = deque()
        # Ledger key: replica name, or (replica, shard) per lane.
        self._replicas: Dict[object, _ReplicaLedger] = {}
        self._dead: Set[str] = set()
        self._checks: Dict[str, int] = {name: 0 for name in INVARIANTS}
        self._violations: List[AuditViolation] = []
        self._violations_dropped = 0
        self.commits_seen = 0
        self.deliveries_seen = 0
        self.applies_seen = 0

    # ------------------------------------------------------------------
    # Internal helpers (called with the lock held)
    # ------------------------------------------------------------------

    def _flag(self, invariant: str, subject: str, version: int,
              detail: str) -> None:
        if len(self._violations) >= _VIOLATION_LIMIT:
            self._violations_dropped += 1
            return
        self._violations.append(AuditViolation(
            invariant=invariant, subject=subject, version=version,
            detail=detail,
        ))

    @staticmethod
    def _lane(replica: str, shard: Optional[int]) -> object:
        return replica if shard is None else (replica, shard)

    @staticmethod
    def _subject(replica: str, shard: Optional[int]) -> str:
        return replica if shard is None else f"{replica}[s{shard}]"

    def _ledger(self, replica: str,
                shard: Optional[int] = None) -> Optional[_ReplicaLedger]:
        """The replica's (lane's) ledger, ``None`` for dead/unknown ones.

        Unknown replicas are registered lazily at a baseline just below
        their first observation, so an assembly that never called
        :meth:`on_attach` still gets monotonicity (though not gap)
        coverage.
        """
        if replica in self._dead:
            return None
        return self._replicas.get(self._lane(replica, shard))

    # ------------------------------------------------------------------
    # Lifecycle hooks
    # ------------------------------------------------------------------

    def on_attach(self, replica: str, baseline: int,
                  shard: Optional[int] = None) -> None:
        """Track *replica* from *baseline* (join / state-transfer sync).

        Versions at or below the baseline are part of the transferred
        state; delivery is expected to resume contiguously above it.
        With ``shard`` this attaches one ``(replica, shard)`` lane; the
        sharded assemblies attach every hosted lane explicitly so gap
        coverage starts at shard version 0.
        """
        with self._lock:
            if shard is None:
                self._dead.discard(replica)
            ledger = self._replicas.get(self._lane(replica, shard))
            if ledger is None:
                ledger = _ReplicaLedger()
                self._replicas[self._lane(replica, shard)] = ledger
            ledger.reset(baseline)

    def on_crash(self, replica: str) -> None:
        """Stop auditing *replica*: its state is lost, later deliveries
        are dropped by design and must not count as violations."""
        with self._lock:
            self._dead.add(replica)
            self._replicas = {
                lane: ledger for lane, ledger in self._replicas.items()
                if (lane if isinstance(lane, str) else lane[0]) != replica
            }

    def on_commit(self, version: int, partitions, origin: str,
                  shard: Optional[int] = None,
                  primary: bool = True) -> None:
        """One writeset was certified and assigned a commit version.

        Global path: called once with the global version.  Sharded
        path: called once per touched shard with that shard's version;
        ``primary`` marks the home shard (the lane charged apply work
        on), every other touched shard being a marker lane.
        """
        with self._lock:
            self.commits_seen += 1
            self._checks[COMMIT_ORDER] += 1
            last = self._last_commit.get(shard, 0)
            if version != last + 1:
                subject = ("certifier" if shard is None
                           else f"certifier[s{shard}]")
                sequence = ("global" if shard is None
                            else f"shard {shard}") + " sequence"
                self._flag(
                    COMMIT_ORDER, subject, version,
                    f"expected v{last + 1} next "
                    f"(duplicate or gap in the {sequence})",
                )
            self._last_commit[shard] = max(last, version)
            meta_key = version if shard is None else (shard, version)
            self._commit_meta[meta_key] = (
                frozenset(partitions or ()), origin, primary,
            )
            self._commit_order.append(meta_key)
            while len(self._commit_order) > _COMMIT_META_LIMIT:
                old = self._commit_order.popleft()
                self._commit_meta.pop(old, None)

    def on_deliver(self, replica: str, version: int,
                   shard: Optional[int] = None) -> None:
        """One writeset reached *replica*'s apply queue (lane *shard*)."""
        with self._lock:
            if replica in self._dead:
                return
            lane = self._lane(replica, shard)
            ledger = self._replicas.get(lane)
            if ledger is None:
                # Lazy registration: monotonicity coverage from here on
                # even without an explicit on_attach.
                ledger = _ReplicaLedger()
                ledger.reset(version - 1)
                self._replicas[lane] = ledger
            subject = self._subject(replica, shard)
            self.deliveries_seen += 1
            self._checks[DELIVERY_ORDER] += 1
            if version <= ledger.last_delivered:
                self._flag(
                    DELIVERY_ORDER, subject, version,
                    f"already delivered up to v{ledger.last_delivered} "
                    f"(duplicated writeset)",
                )
                return
            self._checks[DELIVERY_GAP] += 1
            if version != ledger.last_delivered + 1:
                self._flag(
                    DELIVERY_GAP, subject, version,
                    f"v{ledger.last_delivered + 1}..v{version - 1} "
                    f"never delivered (lost writesets)",
                )
            ledger.last_delivered = version

    def on_apply(self, replica: str, version: int, charged: bool,
                 hosted_partitions=None,
                 shard: Optional[int] = None) -> None:
        """One delivered writeset advanced *replica*'s watermark.

        ``charged`` is whether the replica paid application work;
        ``hosted_partitions`` is its partial-replication hosting set
        (``None`` = hosts everything).  Sharded runs report once per
        touched shard: charged (at most) on the home-shard lane, as a
        free marker on the others.
        """
        with self._lock:
            ledger = self._ledger(replica, shard)
            if ledger is None:
                return
            subject = self._subject(replica, shard)
            self.applies_seen += 1
            self._checks[APPLY_ONCE] += 1
            if (version <= ledger.applied_watermark
                    or version in ledger.applied_ahead):
                self._flag(
                    APPLY_ONCE, subject, version,
                    "applied more than once",
                )
                return
            if version <= ledger.baseline:
                self._flag(
                    APPLY_ONCE, subject, version,
                    f"at or below the v{ledger.baseline} join baseline "
                    f"(transferred state re-applied)",
                )
                return
            ledger.mark_applied(version)
            meta_key = version if shard is None else (shard, version)
            meta = self._commit_meta.get(meta_key)
            if meta is None:
                return  # metadata aged out: skip the scope check
            partitions, origin, primary = meta
            self._checks[PARTITION_SCOPE] += 1
            if not primary:
                # Non-home shard of a cross-partition commit: a pure
                # version-vector marker everywhere — the data rides the
                # home-shard lane.
                if charged:
                    self._flag(
                        PARTITION_SCOPE, subject, version,
                        "charged apply work on a non-home shard lane "
                        "(cross-partition data rides the home shard)",
                    )
                return
            hosts = (
                not partitions
                or hosted_partitions is None
                or not hosted_partitions.isdisjoint(partitions)
            )
            if charged:
                if replica == origin:
                    self._flag(
                        PARTITION_SCOPE, subject, version,
                        "origin replica charged for its own writeset",
                    )
                elif not hosts:
                    self._flag(
                        PARTITION_SCOPE, subject, version,
                        "charged for a writeset whose partitions it "
                        "does not host",
                    )
            elif replica != origin and hosts:
                self._flag(
                    PARTITION_SCOPE, subject, version,
                    "hosting replica advanced its watermark without "
                    "applying the writeset",
                )

    # ------------------------------------------------------------------
    # Finalisation
    # ------------------------------------------------------------------

    def report(self) -> AuditReport:
        """Freeze everything audited so far."""
        with self._lock:
            return AuditReport(
                checks=tuple(sorted(self._checks.items())),
                violations=tuple(self._violations),
                violations_dropped=self._violations_dropped,
                commits_seen=self.commits_seen,
                deliveries_seen=self.deliveries_seen,
                applies_seen=self.applies_seen,
            )
