"""Always-on replication invariant auditing.

The paper's safety story — certified writesets reach every hosting
replica exactly once, in commit order — used to be a post-hoc bench
assertion.  :class:`Auditor` promotes it to an online check: both
executable pillars feed it the same small set of lifecycle callbacks
(commit, deliver, apply, crash, attach) and it continuously verifies

* **commit-order** — the certifier hands out one contiguous global
  version sequence (no gaps, no duplicates);
* **delivery** — each replica receives writesets in strictly increasing,
  gap-free version order above its join baseline (a gap is a *lost*
  writeset, a repeat is a *duplicated* one);
* **apply-once** — each delivered version is folded into a replica's
  watermark at most once;
* **partition-scope** — a replica is charged for applying a writeset
  iff it hosts one of the writeset's partitions and did not originate
  it; version markers (uncharged advances) are only legal on the origin
  or on non-hosting replicas.

The auditor is wired through :class:`repro.telemetry.Telemetry` (see
``TelemetryConfig.audit``): every call site is double-guarded
(``telemetry is not None`` and ``telemetry.auditor is not None``), it
performs pure bookkeeping — no clocks, no randomness, no simulated
time — so DES results are bit-identical with it on or off, and it is
thread-safe for the live cluster's applier threads.
"""

from .auditor import AuditReport, Auditor, AuditViolation

__all__ = ["AuditReport", "Auditor", "AuditViolation"]
