"""Discrete-event simulator of the paper's prototype systems (§5)."""

from .des import Acquire, Environment, Semaphore, Service, Timeout
from .faults import ReplicaFault
from .replica import SimReplica
from .resources import FIFOResource, ProcessorSharingResource
from .runner import (
    DESIGNS,
    MULTI_MASTER,
    SINGLE_MASTER,
    STANDALONE,
    SimulationResult,
    measure_curve,
    simulate,
)
from .sampling import DISTRIBUTIONS, WorkloadSampler
from .stats import MetricsCollector, RunningStats
from .systems import (
    LB_POLICIES,
    LEAST_LOADED,
    PINNED,
    RANDOM,
    MultiMasterSystem,
    SingleMasterSystem,
    StandaloneSystem,
)

__all__ = [
    "DESIGNS",
    "LB_POLICIES",
    "LEAST_LOADED",
    "PINNED",
    "RANDOM",
    "DISTRIBUTIONS",
    "Acquire",
    "Environment",
    "ReplicaFault",
    "Semaphore",
    "FIFOResource",
    "MetricsCollector",
    "MULTI_MASTER",
    "MultiMasterSystem",
    "ProcessorSharingResource",
    "RunningStats",
    "Service",
    "SimReplica",
    "SimulationResult",
    "SINGLE_MASTER",
    "SingleMasterSystem",
    "STANDALONE",
    "StandaloneSystem",
    "Timeout",
    "WorkloadSampler",
    "measure_curve",
    "simulate",
]
