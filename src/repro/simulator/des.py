"""A small discrete-event simulation kernel.

Processes are Python generators that yield *effects*; the kernel resumes a
process when its current effect completes.  Two effects exist:

* :class:`Timeout` — resume after a fixed simulated delay (think times,
  network and certification latencies);
* :class:`Service` — resume after a resource (CPU, disk) has performed a
  given amount of work for this process, including any queueing imposed by
  the resource's scheduling discipline.

Sub-activities compose with ``yield from``, so a transaction's life cycle
reads top-to-bottom in the system assemblies.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, List, Optional

from ..core.errors import SimulationError

#: Type alias for simulator processes.
Process = Generator


class EventHandle:
    """A scheduled callback that can be cancelled before it fires."""

    __slots__ = ("time", "callback", "args", "cancelled", "_env")

    def __init__(
        self, time: float, callback: Callable, args: tuple, env=None
    ) -> None:
        self.time = time
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._env = env

    def cancel(self) -> None:
        """Prevent the callback from firing (idempotent)."""
        if not self.cancelled:
            self.cancelled = True
            if self._env is not None:
                self._env._note_cancelled()


class Environment:
    """Event loop: a time-ordered heap of callbacks.

    Cancelled events stay in the heap as tombstones (cancellation is O(1))
    and are normally discarded when popped; when they come to outnumber the
    live events the heap is lazily compacted, so long runs whose resources
    reschedule constantly (processor sharing cancels one completion per
    arrival/departure) hold memory proportional to the *live* event count
    instead of the cancellation history.

    ``compact_min`` tunes how small a heap is left uncompacted.  The
    default suits fixed sweeps; long *elastic* runs (autoscaling churns
    membership and cancels events far more aggressively) may lower it to
    reclaim memory sooner, or raise it to trade memory for fewer
    re-heapifications.
    """

    #: Default for ``compact_min``: don't bother compacting smaller heaps.
    _COMPACT_MIN = 64

    def __init__(self, compact_min: Optional[int] = None) -> None:
        self._now = 0.0
        self._heap: List = []
        self._sequence = 0
        self._cancelled = 0
        if compact_min is None:
            compact_min = self._COMPACT_MIN
        if compact_min < 0:
            raise SimulationError(
                f"compact_min must be >= 0, got {compact_min}"
            )
        self.compact_min = compact_min

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Heap entries, cancelled tombstones included (diagnostics)."""
        return len(self._heap)

    def schedule(self, delay: float, callback: Callable, *args) -> EventHandle:
        """Run ``callback(*args)`` after *delay* seconds of simulated time."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        handle = EventHandle(self._now + delay, callback, args, self)
        self._sequence += 1
        heapq.heappush(self._heap, (handle.time, self._sequence, handle))
        return handle

    def _note_cancelled(self) -> None:
        self._cancelled += 1
        if (len(self._heap) > self.compact_min
                and self._cancelled * 2 > len(self._heap)):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled tombstones and restore the heap invariant.

        Entries are (time, sequence, handle) tuples, so re-heapifying the
        filtered list reproduces exactly the pop order the tombstoned heap
        would have produced — determinism is unaffected.
        """
        self._heap = [entry for entry in self._heap if not entry[2].cancelled]
        heapq.heapify(self._heap)
        self._cancelled = 0

    def run_until(self, end_time: float) -> None:
        """Process events until simulated time reaches *end_time*."""
        if end_time < self._now:
            raise SimulationError("end_time is in the past")
        while self._heap and self._heap[0][0] <= end_time:
            time, _, handle = heapq.heappop(self._heap)
            if handle.cancelled:
                if self._cancelled > 0:
                    self._cancelled -= 1
                continue
            if time < self._now:
                raise SimulationError("event heap went backwards in time")
            self._now = time
            handle.callback(*handle.args)
        self._now = end_time

    def start(self, process: Process) -> None:
        """Begin driving a generator process."""
        self._resume(process, None)

    def _resume(self, process: Process, value: Any) -> None:
        try:
            effect = process.send(value)
        except StopIteration:
            return
        if not isinstance(effect, _Effect):
            raise SimulationError(
                f"process yielded {effect!r}; expected Timeout or Service"
            )
        effect.apply(self, process)


class _Effect:
    """Base class for things a process may yield."""

    def apply(self, env: Environment, process: Process) -> None:
        raise NotImplementedError


class Timeout(_Effect):
    """Suspend the process for a fixed simulated duration."""

    __slots__ = ("delay",)

    def __init__(self, delay: float) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout {delay}")
        self.delay = delay

    def apply(self, env: Environment, process: Process) -> None:
        env.schedule(self.delay, env._resume, process, None)


class Service(_Effect):
    """Suspend the process until *resource* completes *work* seconds for it."""

    __slots__ = ("resource", "work")

    def __init__(self, resource, work: float) -> None:
        if work < 0:
            raise SimulationError(f"negative service demand {work}")
        self.resource = resource
        self.work = work

    def apply(self, env: Environment, process: Process) -> None:
        self.resource.submit(self.work, lambda: env._resume(process, None))


class Semaphore:
    """A counting semaphore with a FIFO waiter queue.

    Models admission control: the database executes at most ``capacity``
    client transactions concurrently (the connection-pool /
    multiprogramming limit); excess clients wait *before* the transaction
    begins, i.e. before it receives a snapshot.
    """

    def __init__(self, env: Environment, capacity: int) -> None:
        if capacity < 1:
            raise SimulationError(f"semaphore capacity must be >= 1, got {capacity}")
        self._env = env
        self.capacity = capacity
        self._available = capacity
        self._waiters: List[Callable] = []

    @property
    def in_use(self) -> int:
        """Slots currently held."""
        return self.capacity - self._available

    @property
    def waiting(self) -> int:
        """Processes queued for admission."""
        return len(self._waiters)

    def _acquire(self, resume: Callable) -> None:
        if self._available > 0:
            self._available -= 1
            self._env.schedule(0.0, resume)
        else:
            self._waiters.append(resume)

    def release(self) -> None:
        """Return a slot, admitting the longest-waiting process if any."""
        if self._waiters:
            self._env.schedule(0.0, self._waiters.pop(0))
        else:
            if self._available >= self.capacity:
                raise SimulationError("semaphore released more than acquired")
            self._available += 1


class Acquire(_Effect):
    """Suspend the process until it is granted a slot of *semaphore*."""

    __slots__ = ("semaphore",)

    def __init__(self, semaphore: Semaphore) -> None:
        self.semaphore = semaphore

    def apply(self, env: Environment, process: Process) -> None:
        self.semaphore._acquire(lambda: env._resume(process, None))
