"""Timed resources: processor-sharing CPU and FIFO disk.

The CPU runs all resident jobs simultaneously at equal shares (processor
sharing — how an OS scheduler behaves at the timescale of transactions);
the disk serves one request at a time in arrival order.  Both disciplines
have the same mean residence time under MVA's assumptions, so the analytical
model applies to either; simulating the realistic disciplines lets the
validation probe that insensitivity.

Both resources track a *busy-time integral* so the profiler can apply the
Utilization Law, and a completion count for throughput accounting.

Heterogeneous capacity: both servers take a ``rate`` multiplier (default
1.0) — a rate-2 CPU finishes the same sampled work in half the time.  The
scaling happens once, at submit, so the processor-sharing bookkeeping and
the busy-time accounting are untouched: utilization remains the fraction
of time the (faster) server is busy.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Optional, Tuple

from ..core.errors import SimulationError
from .des import Environment, EventHandle

#: Work remaining below this threshold counts as finished (absorbs float
#: drift in the processor-sharing bookkeeping).
_EPSILON = 1e-12


class ResourceStats:
    """Shared accounting: busy time, completions, and unscaled work.

    ``work_done`` accumulates the *unscaled* service demand of completed
    jobs.  Dividing a window's ``work_done`` delta by its busy-time delta
    recovers the server's effective rate multiplier exactly, independent
    of the transaction mix — the signal the online capacity estimator
    needs to notice a replica that has silently slowed down.
    """

    def __init__(self) -> None:
        self.busy_time = 0.0
        self.completions = 0
        self.work_done = 0.0

    def snapshot(self) -> Tuple[float, int]:
        """Return (busy_time, completions) for windowed measurements."""
        return (self.busy_time, self.completions)


def _check_rate(rate: float, name: str) -> float:
    if rate <= 0.0:
        raise SimulationError(f"{name}: capacity rate must be positive")
    return rate


class ProcessorSharingResource:
    """A single server shared equally among all resident jobs (the CPU)."""

    def __init__(self, env: Environment, name: str, rate: float = 1.0) -> None:
        self._env = env
        self.name = name
        self.rate = _check_rate(rate, name)
        self.stats = ResourceStats()
        self._jobs: Dict[int, Tuple[float, Callable]] = {}
        self._remaining: Dict[int, float] = {}
        self._resume: Dict[int, Callable] = {}
        self._demand: Dict[int, float] = {}
        self._next_job_id = 0
        self._last_sync = env.now
        self._completion: Optional[EventHandle] = None

    @property
    def queue_length(self) -> int:
        """Number of resident jobs (all of them are 'in service' under PS)."""
        return len(self._remaining)

    def busy_time_now(self) -> float:
        """Busy time up to the current instant (forces an accounting sync)."""
        self._sync()
        return self.stats.busy_time

    def submit(self, work: float, resume: Callable) -> None:
        """Add a job needing *work* seconds of service; call *resume* when done."""
        self._sync()
        demand = work
        work = work / self.rate
        if work <= _EPSILON:
            # Zero-cost work completes immediately (but asynchronously, to
            # keep process resumption ordering consistent).
            self._env.schedule(0.0, resume)
            self._reschedule()
            return
        job_id = self._next_job_id
        self._next_job_id += 1
        self._remaining[job_id] = work
        self._resume[job_id] = resume
        self._demand[job_id] = demand
        self._reschedule()

    def _sync(self) -> None:
        """Charge elapsed time against resident jobs at equal shares."""
        now = self._env.now
        elapsed = now - self._last_sync
        self._last_sync = now
        if elapsed <= 0.0 or not self._remaining:
            return
        share = elapsed / len(self._remaining)
        for job_id in self._remaining:
            self._remaining[job_id] -= share
        self.stats.busy_time += elapsed

    def _reschedule(self) -> None:
        if self._completion is not None:
            self._completion.cancel()
            self._completion = None
        if not self._remaining:
            return
        shortest = min(self._remaining.values())
        delay = max(0.0, shortest) * len(self._remaining)
        self._completion = self._env.schedule(delay, self._complete)

    def _complete(self) -> None:
        self._completion = None
        self._sync()
        finished = [
            job_id
            for job_id, remaining in self._remaining.items()
            if remaining <= _EPSILON
        ]
        if not finished:
            # Numerical drift can leave the shortest job epsilon short;
            # finish the closest one explicitly.
            closest = min(self._remaining, key=self._remaining.get)
            finished = [closest]
        resumes = []
        for job_id in finished:
            del self._remaining[job_id]
            self.stats.work_done += self._demand.pop(job_id)
            resumes.append(self._resume.pop(job_id))
        self._reschedule()
        for resume in resumes:
            self.stats.completions += 1
            resume()


class FIFOResource:
    """A single server with a first-come-first-served queue (the disk)."""

    def __init__(self, env: Environment, name: str, rate: float = 1.0) -> None:
        self._env = env
        self.name = name
        self.rate = _check_rate(rate, name)
        self.stats = ResourceStats()
        self._queue: Deque[Tuple[float, float, Callable]] = deque()
        self._busy = False
        self._current_start = 0.0
        self._current_work = 0.0
        self._current_demand = 0.0

    @property
    def queue_length(self) -> int:
        """Jobs waiting plus the one in service."""
        return len(self._queue) + (1 if self._busy else 0)

    def submit(self, work: float, resume: Callable) -> None:
        """Enqueue a job needing *work* seconds; call *resume* when done."""
        demand = work
        work = work / self.rate
        if work <= _EPSILON:
            self._env.schedule(0.0, resume)
            return
        if self._busy:
            self._queue.append((work, demand, resume))
            return
        self._begin(work, demand, resume)

    def _begin(self, work: float, demand: float, resume: Callable) -> None:
        self._busy = True
        self._current_start = self._env.now
        self._current_work = work
        self._current_demand = demand
        self._env.schedule(work, self._finish, resume)

    def _finish(self, resume: Callable) -> None:
        self.stats.busy_time += self._current_work
        self.stats.completions += 1
        self.stats.work_done += self._current_demand
        self._busy = False
        if self._queue:
            next_work, next_demand, next_resume = self._queue.popleft()
            self._begin(next_work, next_demand, next_resume)
        resume()

    def busy_time_now(self) -> float:
        """Busy time including the partially-served current job."""
        total = self.stats.busy_time
        if self._busy:
            total += self._env.now - self._current_start
        return total
