"""A simulated database replica: CPU + disk + writeset applier.

The replica charges transaction work to a processor-sharing CPU and a FIFO
disk.  Propagated writesets are applied concurrently (as the Tashkent proxy
does over parallel connections), but the ``applied_version`` watermark —
the version of the local snapshot new transactions receive (GSI, §2) —
advances contiguously, so snapshot staleness *emerges* from propagation
and application latency rather than being assumed.
"""

from __future__ import annotations

import heapq
from typing import List, Tuple

from ..core.errors import SimulationError
from .des import Environment, Service
from .resources import FIFOResource, ProcessorSharingResource
from .sampling import WorkloadSampler


class SimReplica:
    """One replica's timed resources and replication state."""

    def __init__(
        self,
        env: Environment,
        name: str,
        sampler: WorkloadSampler,
        capacity: float = 1.0,
    ) -> None:
        if capacity <= 0.0:
            raise SimulationError(f"{name}: capacity must be positive")
        self._env = env
        self.name = name
        self._sampler = sampler
        #: Relative hardware speed: a capacity-2 replica finishes the same
        #: sampled work in half the time (threaded into both resources).
        self.capacity = capacity
        self.cpu = ProcessorSharingResource(env, f"{name}.cpu", rate=capacity)
        self.disk = FIFOResource(env, f"{name}.disk", rate=capacity)
        #: Highest contiguously applied global commit version.
        self.applied_version = 0
        #: Number of client transactions currently resident (LB routing).
        self.active = 0
        # Versions whose application finished but whose predecessors have
        # not: the applied_version watermark only advances contiguously.
        self._completed_out_of_order: List[int] = []
        #: Highest version ever enqueued (sanity checking).
        self._enqueued_version = 0
        #: Writesets applied (for propagation-load diagnostics).
        self.writesets_applied = 0
        #: Admission-control semaphore (set by the system assembly; ``None``
        #: means unlimited concurrency).
        self.admission = None
        #: Load-balancer availability (failure injection flips this).
        self._available = True
        #: True once the replica has crashed for good: its state is lost,
        #: writesets are dropped instead of deferred, and only replacement
        #: by a fresh member (state transfer) can restore redundancy.
        self.failed = False
        #: Writesets received while down, applied in bulk on recovery.
        self._deferred: List[Tuple[int, bool]] = []
        #: True while the replica is being drained for elastic removal:
        #: the load balancer routes around it (``available`` is cleared
        #: too) and it leaves the system once its resident count hits 0.
        self.draining = False
        #: Partitions this replica hosts (partial replication); ``None``
        #: means everything — the full-replication default.  Routing and
        #: propagation consult this through
        #: :func:`repro.simulator.systems.hosts_any` / ``hosts_all``.
        self.hosted_partitions = None
        #: Optional :class:`repro.telemetry.Telemetry` hook (``None``
        #: keeps the apply path allocation-free).
        self.telemetry = None
        # Enqueue timestamps for apply-latency measurement; only
        # populated while telemetry is attached.
        self._enqueue_times = {}

    # ------------------------------------------------------------------
    # Transaction execution (generators composed by the system assemblies)
    # ------------------------------------------------------------------

    def serve_read(self):
        """Charge one read-only transaction's CPU and disk work."""
        yield Service(self.cpu, self._sampler.read_cpu())
        yield Service(self.disk, self._sampler.read_disk())

    def serve_update_attempt(self):
        """Charge one update attempt's local execution work."""
        yield Service(self.cpu, self._sampler.update_cpu())
        yield Service(self.disk, self._sampler.update_disk())

    def serve_writeset_inline(self):
        """Charge one writeset application in the caller's context.

        Used by the profiler's writeset-replay run (§4.1.1); regular
        propagation goes through :meth:`enqueue_writeset` instead.
        """
        yield Service(self.cpu, self._sampler.writeset_cpu())
        yield Service(self.disk, self._sampler.writeset_disk())

    # ------------------------------------------------------------------
    # Update propagation
    # ------------------------------------------------------------------

    def enqueue_writeset(self, commit_version: int, charged: bool = True) -> None:
        """Start applying a committed writeset at this replica.

        Writesets are applied **concurrently** (the Tashkent proxy applies
        non-conflicting writesets over parallel connections); the replica's
        ``applied_version`` watermark still only advances contiguously, so
        new snapshots never expose a gap.  ``charged=False`` marks a
        transaction that committed locally: its effects are already in the
        local database, so only the version bookkeeping advances (at zero
        resource cost).
        """
        if commit_version <= self._enqueued_version:
            raise SimulationError(
                f"{self.name}: writeset {commit_version} arrived out of order "
                f"(latest is {self._enqueued_version})"
            )
        telemetry = self.telemetry
        if telemetry is not None and telemetry.auditor is not None:
            telemetry.auditor.on_deliver(self.name, commit_version)
        self._enqueued_version = commit_version
        if self.failed:
            # The replica is dead and its state will be thrown away:
            # dropping the writeset (instead of deferring it) is exactly
            # what "stopped consuming writesets" means.
            return
        if not self._available:
            # The replica is down: its proxy queues the writeset; the
            # backlog is applied on recovery (catch-up).
            self._deferred.append((commit_version, charged))
            return
        if charged:
            if self.telemetry is not None:
                self._enqueue_times[commit_version] = self._env.now
            self._env.start(self._apply_one(commit_version))
        else:
            self._mark_applied(commit_version)
            if telemetry is not None and telemetry.auditor is not None:
                telemetry.auditor.on_apply(
                    self.name, commit_version, False,
                    self.hosted_partitions,
                )

    def _apply_one(self, commit_version: int):
        """Apply one writeset, charging CPU and disk work."""
        yield Service(self.cpu, self._sampler.writeset_cpu())
        yield Service(self.disk, self._sampler.writeset_disk())
        self.writesets_applied += 1
        self._mark_applied(commit_version)
        telemetry = self.telemetry
        if telemetry is not None:
            now = self._env.now
            start = self._enqueue_times.pop(commit_version, now)
            telemetry.observe_apply(self.name, now - start)
            telemetry.apply_span(commit_version, self.name, start, now)
            if telemetry.auditor is not None:
                telemetry.auditor.on_apply(
                    self.name, commit_version, True,
                    self.hosted_partitions,
                )

    def _mark_applied(self, commit_version: int) -> None:
        heapq.heappush(self._completed_out_of_order, commit_version)
        while (
            self._completed_out_of_order
            and self._completed_out_of_order[0] == self.applied_version + 1
        ):
            heapq.heappop(self._completed_out_of_order)
            self.applied_version += 1

    @property
    def apply_backlog(self) -> int:
        """Writesets whose application has not yet advanced the watermark."""
        return self._enqueued_version - self.applied_version

    def sync_to(self, commit_version: int) -> None:
        """Adopt *commit_version* as this replica's starting state.

        Elastic join: the replica receives a state snapshot at the
        cluster's propagation watermark, so both its applied version and
        its expected-next-writeset cursor begin there — writesets at or
        below the sync point are part of the transferred state and must
        never be re-applied, writesets above it arrive via propagation.
        """
        if self.applied_version != 0 or self._enqueued_version != 0:
            raise SimulationError(
                f"{self.name}: can only sync a fresh replica "
                f"(applied={self.applied_version})"
            )
        if commit_version < 0:
            raise SimulationError(f"negative sync version {commit_version}")
        self.applied_version = commit_version
        self._enqueued_version = commit_version
        telemetry = self.telemetry
        if telemetry is not None and telemetry.auditor is not None:
            telemetry.auditor.on_attach(self.name, commit_version)

    # ------------------------------------------------------------------
    # Failure injection
    # ------------------------------------------------------------------

    @property
    def available(self) -> bool:
        """Whether the load balancer may route new transactions here."""
        return self._available and not self.failed

    @available.setter
    def available(self, value: bool) -> None:
        came_back = value and not self._available and not self.failed
        self._available = value
        if came_back:
            self._flush_deferred()

    def crash(self) -> None:
        """Kill the replica permanently (state lost, no self-recovery).

        Unlike a drain fault, a crash drops the deferred backlog and all
        future writesets: the replica's copy of the database is gone, so
        there is nothing left to catch up.  The operations layer replaces
        crashed replicas with fresh members via state transfer.
        """
        self.failed = True
        self._available = False
        self._deferred.clear()
        telemetry = self.telemetry
        if telemetry is not None and telemetry.auditor is not None:
            telemetry.auditor.on_crash(self.name)

    def _flush_deferred(self) -> None:
        """Start catch-up on the writesets missed while down."""
        deferred, self._deferred = self._deferred, []
        telemetry = self.telemetry
        for commit_version, charged in deferred:
            if charged:
                if telemetry is not None:
                    self._enqueue_times[commit_version] = self._env.now
                self._env.start(self._apply_one(commit_version))
            else:
                self._mark_applied(commit_version)
                if telemetry is not None and telemetry.auditor is not None:
                    telemetry.auditor.on_apply(
                        self.name, commit_version, False,
                        self.hosted_partitions,
                    )
