"""Measurement collection for simulation runs.

Mirrors the paper's methodology (§6.1): a warm-up period is discarded, then
sustained throughput and mean response time are measured over a steady-state
window.  Resource busy times are snapshotted at the window boundaries so the
Utilization Law applies exactly to the window.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.errors import SimulationError


class RunningStats:
    """Numerically stable streaming mean/variance (Welford's algorithm)."""

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0

    def add(self, value: float) -> None:
        """Record one observation."""
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)

    @property
    def mean(self) -> float:
        """Sample mean (0 for an empty series)."""
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        """Unbiased sample variance (0 with fewer than two observations)."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def stddev(self) -> float:
        """Sample standard deviation."""
        return math.sqrt(self.variance)

    @property
    def stderr(self) -> float:
        """Standard error of the mean."""
        if self.count < 2:
            return 0.0
        return self.stddev / math.sqrt(self.count)


@dataclass
class ResourceWindow:
    """Busy time and completions of one resource within the window."""

    name: str
    busy_time: float = 0.0
    completions: int = 0

    def utilization(self, window: float) -> float:
        """Fraction of the window the resource was busy."""
        if window <= 0:
            raise SimulationError("measurement window must be positive")
        return self.busy_time / window


class MetricsCollector:
    """Accumulates transaction and resource measurements for one run."""

    def __init__(self) -> None:
        self.measuring = False
        self.window_start = 0.0
        self.window_end = 0.0
        # Committed transaction counts by class.
        self.read_commits = 0
        self.update_commits = 0
        # Update attempts that were aborted (each abort triggers a retry).
        self.update_abort_attempts = 0
        # Response times of committed transactions (including retry time).
        self.response_all = RunningStats()
        self.response_read = RunningStats()
        self.response_update = RunningStats()
        # GSI snapshot staleness in versions, sampled at update begin.
        self.snapshot_age = RunningStats()
        # Certifier requests observed in the window.
        self.certifier_requests = 0
        # Commit counts bucketed per second of the window (timeline).
        self._timeline: Dict[int, int] = {}
        self._now = 0.0
        # Busy-time snapshots: resource key -> busy time at window start.
        self._busy_at_start: Dict[str, float] = {}
        self._busy_at_end: Dict[str, float] = {}
        self._resources: Dict[str, object] = {}

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def watch_resource(self, key: str, resource) -> None:
        """Register a resource whose utilization should be reported."""
        if key in self._resources:
            raise SimulationError(f"resource {key!r} registered twice")
        self._resources[key] = resource

    def forget_resource(self, key: str) -> None:
        """Unregister a resource (a failed elastic join rolls back its
        registration so retries don't accumulate dead entries)."""
        self._resources.pop(key, None)
        self._busy_at_start.pop(key, None)
        self._busy_at_end.pop(key, None)

    def begin_window(self, now: float) -> None:
        """Start the measurement window (end of warm-up)."""
        self.measuring = True
        self.window_start = now
        for key, resource in self._resources.items():
            self._busy_at_start[key] = resource.busy_time_now()

    def end_window(self, now: float) -> None:
        """Close the measurement window."""
        if not self.measuring:
            raise SimulationError("measurement window was never started")
        self.measuring = False
        self.window_end = now
        for key, resource in self._resources.items():
            self._busy_at_end[key] = resource.busy_time_now()

    # ------------------------------------------------------------------
    # Recording (no-ops outside the measurement window)
    # ------------------------------------------------------------------

    def record_commit(
        self, is_update: bool, response_time: float, aborts: int,
        now: Optional[float] = None,
    ) -> None:
        """Record a committed transaction and its retry count."""
        if not self.measuring:
            return
        if now is not None:
            bucket = int(now - self.window_start)
            self._timeline[bucket] = self._timeline.get(bucket, 0) + 1
        self.response_all.add(response_time)
        if is_update:
            self.update_commits += 1
            self.update_abort_attempts += aborts
            self.response_update.add(response_time)
        else:
            self.read_commits += 1
            self.response_read.add(response_time)

    def record_snapshot_age(self, age_versions: float) -> None:
        """Record the staleness (in versions) of a GSI snapshot."""
        if self.measuring:
            self.snapshot_age.add(age_versions)

    def record_certification(self) -> None:
        """Count one certification request."""
        if self.measuring:
            self.certifier_requests += 1

    # ------------------------------------------------------------------
    # Derived metrics
    # ------------------------------------------------------------------

    @property
    def window(self) -> float:
        """Length of the measurement window in seconds."""
        return self.window_end - self.window_start

    @property
    def committed(self) -> int:
        """Total committed transactions in the window."""
        return self.read_commits + self.update_commits

    def throughput(self) -> float:
        """Committed transactions per second."""
        if self.window <= 0:
            raise SimulationError("empty measurement window")
        return self.committed / self.window

    def read_throughput(self) -> float:
        """Committed read-only transactions per second."""
        return self.read_commits / self.window if self.window > 0 else 0.0

    def update_throughput(self) -> float:
        """Committed update transactions per second."""
        return self.update_commits / self.window if self.window > 0 else 0.0

    def abort_rate(self) -> float:
        """Fraction of update attempts that aborted."""
        attempts = self.update_commits + self.update_abort_attempts
        if attempts == 0:
            return 0.0
        return self.update_abort_attempts / attempts

    def mean_response_time(self) -> float:
        """Mean response time of committed transactions."""
        return self.response_all.mean

    def utilizations(self) -> Dict[str, float]:
        """Per-resource utilization over the window."""
        if self.window <= 0:
            return {}
        result = {}
        for key in self._resources:
            busy = self._busy_at_end.get(key, 0.0) - self._busy_at_start.get(key, 0.0)
            result[key] = busy / self.window
        return result

    def certifier_request_rate(self) -> float:
        """Certification requests per second in the window."""
        return self.certifier_requests / self.window if self.window > 0 else 0.0

    def throughput_timeline(self) -> List[float]:
        """Committed transactions per second, bucketed per window second.

        Bucket ``i`` covers window time ``[i, i+1)``; failure-injection
        experiments read the throughput dip and recovery off this series.
        """
        if self.window <= 0:
            return []
        buckets = int(self.window)
        return [float(self._timeline.get(i, 0)) for i in range(buckets)]
