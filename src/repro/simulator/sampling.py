"""Stochastic transaction generation for the simulator.

Transactions are drawn from a :class:`~repro.workloads.spec.WorkloadSpec`:
the class (read-only vs update) is Bernoulli(Pw); per-attempt service times
at the CPU and disk are exponentially distributed around the ground-truth
mean demands (MVA's service-distribution assumption, probed by ablations);
update transactions touch ``U`` uniformly chosen rows of the updatable set.
"""

from __future__ import annotations

import itertools
from typing import Tuple

import numpy as np

from ..core import rng as rng_util
from ..core.errors import ConfigurationError
from ..sidb.writeset import Writeset
from ..workloads.spec import WorkloadSpec

#: Global transaction-id source for the whole process; ids only need to be
#: unique within a run, monotonicity is convenient for traces.
_txn_ids = itertools.count(1)

#: Service-time distributions supported by the sampler (ablation §3.4/6).
EXPONENTIAL = "exponential"
DETERMINISTIC = "deterministic"
LOGNORMAL = "lognormal"
DISTRIBUTIONS = (EXPONENTIAL, DETERMINISTIC, LOGNORMAL)

#: Coefficient of variation used for the lognormal ablation.
_LOGNORMAL_CV = 1.0


def next_txn_id() -> int:
    """Allocate a fresh transaction id."""
    return next(_txn_ids)


class WorkloadSampler:
    """Draws transaction classes, service times, and conflict footprints.

    For partitioned workloads (``spec.partitions > 1``) the sampler also
    draws each transaction's partition set: a weighted primary partition,
    plus — for updates, with probability
    ``spec.cross_partition_fraction`` — a second partition *co-located*
    with the primary under *partition_map* (so some replica can execute
    the whole transaction; no distributed commit is modelled).  All
    partition draws are guarded behind ``spec.partitions > 1``:
    unpartitioned workloads consume exactly the RNG stream they always
    did, keeping every existing run byte-identical.
    """

    def __init__(
        self,
        spec: WorkloadSpec,
        rng: np.random.Generator,
        distribution: str = EXPONENTIAL,
        partition_map=None,
    ) -> None:
        if distribution not in DISTRIBUTIONS:
            raise ConfigurationError(
                f"distribution must be one of {DISTRIBUTIONS}, got {distribution!r}"
            )
        self._spec = spec
        self._rng = rng
        self._distribution = distribution
        self._partition_weights = None
        self._partners = None
        if spec.partitions > 1:
            if spec.partition_weights is not None:
                total = float(sum(spec.partition_weights))
                self._partition_weights = tuple(
                    w / total for w in spec.partition_weights
                )
            # Precompute each partition's co-located partners once: the
            # map is frozen and this runs on every cross-partition draw.
            if partition_map is not None:
                self._partners = tuple(
                    partition_map.colocated_partners(p)
                    for p in range(spec.partitions)
                )
            else:
                self._partners = tuple(
                    tuple(q for q in range(spec.partitions) if q != p)
                    for p in range(spec.partitions)
                )

    @property
    def spec(self) -> WorkloadSpec:
        """The workload being sampled."""
        return self._spec

    def next_is_update(self) -> bool:
        """Decide the class of the next transaction (Bernoulli(Pw))."""
        pw = self._spec.mix.write_fraction
        if pw <= 0.0:
            return False
        return bool(self._rng.random() < pw)

    def think_time(self) -> float:
        """One exponential think-time draw (closed-loop model, §3.1)."""
        return rng_util.exponential(self._rng, self._spec.think_time)

    def _draw(self, mean: float) -> float:
        if mean <= 0.0:
            return 0.0
        if self._distribution == EXPONENTIAL:
            return float(self._rng.exponential(mean))
        if self._distribution == DETERMINISTIC:
            return mean
        # Lognormal with the configured coefficient of variation.
        sigma2 = np.log(1.0 + _LOGNORMAL_CV**2)
        mu = np.log(mean) - sigma2 / 2.0
        return float(self._rng.lognormal(mean=mu, sigma=np.sqrt(sigma2)))

    # Per-attempt service-time draws -----------------------------------

    def read_cpu(self) -> float:
        """CPU time of one read-only transaction."""
        return self._draw(self._spec.demands.read.cpu)

    def read_disk(self) -> float:
        """Disk time of one read-only transaction."""
        return self._draw(self._spec.demands.read.disk)

    def update_cpu(self) -> float:
        """CPU time of one update-transaction attempt."""
        return self._draw(self._spec.demands.write.cpu)

    def update_disk(self) -> float:
        """Disk time of one update-transaction attempt."""
        return self._draw(self._spec.demands.write.disk)

    def writeset_cpu(self) -> float:
        """CPU time to apply one propagated writeset."""
        return self._draw(self._spec.demands.writeset.cpu)

    def writeset_disk(self) -> float:
        """Disk time to apply one propagated writeset."""
        return self._draw(self._spec.demands.writeset.disk)

    # Partition footprint ------------------------------------------------

    def _sample_primary_partition(self) -> int:
        """Weighted draw of one partition (uniform without weights)."""
        if self._partition_weights is None:
            return int(self._rng.integers(0, self._spec.partitions))
        return rng_util.choice_index(self._rng, self._partition_weights)

    def sample_partition_set(self, is_update: bool) -> Tuple[int, ...]:
        """Draw the partitions one transaction touches.

        Unpartitioned workloads return ``()`` without consuming the RNG.
        Reads touch their primary partition only; updates additionally
        touch one *co-located* partition with probability
        ``cross_partition_fraction`` (co-location taken from the
        partition map; without a map any partner qualifies, matching the
        full-replication default).
        """
        if self._spec.partitions <= 1:
            return ()
        primary = self._sample_primary_partition()
        if (
            not is_update
            or self._spec.cross_partition_fraction <= 0.0
            or self._rng.random() >= self._spec.cross_partition_fraction
        ):
            return (primary,)
        partners = self._partners[primary]
        if not partners:
            return (primary,)
        partner = partners[int(self._rng.integers(0, len(partners)))]
        return tuple(sorted((primary, partner)))

    # Conflict footprint -------------------------------------------------

    def sample_writeset(
        self, snapshot_version: int, partitions: Tuple[int, ...] = ()
    ) -> Writeset:
        """Build the writeset of one update attempt.

        Each attempt (including retries) re-samples its rows, modelling the
        re-execution of the transaction logic against fresh data.  With a
        non-empty *partitions* tuple the ``U`` rows are drawn from the
        touched partitions' own row ranges (the updatable set splits
        evenly: ``DbUpdateSize // partitions`` rows each) and keys are
        partition-qualified, so disjoint partitions never share a key.
        """
        conflict = self._spec.conflict
        if conflict is None:
            raise ConfigurationError(
                f"workload {self._spec.name} has no conflict profile"
            )
        txn_id = next_txn_id()
        if not partitions:
            rows = rng_util.sample_rows(
                self._rng, conflict.db_update_size,
                conflict.updates_per_transaction,
            )
            writes = {("updatable", row): txn_id for row in rows}
            return Writeset.from_dict(txn_id, snapshot_version, writes)

        per_partition = conflict.db_update_size // self._spec.partitions
        count = conflict.updates_per_transaction
        writes = {}
        touched = []
        # Spread U rows over the touched partitions, first partitions
        # taking the remainder (a 2-partition U=3 update writes 2 + 1).
        base, extra = divmod(count, len(partitions))
        for index, partition in enumerate(partitions):
            share = base + (1 if index < extra else 0)
            if share == 0:
                continue
            touched.append(partition)
            for row in rng_util.sample_rows(self._rng, per_partition, share):
                writes[("updatable", partition, row)] = txn_id
        return Writeset.from_dict(
            txn_id, snapshot_version, writes, partitions=tuple(touched)
        )
