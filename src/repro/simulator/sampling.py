"""Stochastic transaction generation for the simulator.

Transactions are drawn from a :class:`~repro.workloads.spec.WorkloadSpec`:
the class (read-only vs update) is Bernoulli(Pw); per-attempt service times
at the CPU and disk are exponentially distributed around the ground-truth
mean demands (MVA's service-distribution assumption, probed by ablations);
update transactions touch ``U`` uniformly chosen rows of the updatable set.
"""

from __future__ import annotations

import itertools

import numpy as np

from ..core import rng as rng_util
from ..core.errors import ConfigurationError
from ..sidb.writeset import Writeset
from ..workloads.spec import WorkloadSpec

#: Global transaction-id source for the whole process; ids only need to be
#: unique within a run, monotonicity is convenient for traces.
_txn_ids = itertools.count(1)

#: Service-time distributions supported by the sampler (ablation §3.4/6).
EXPONENTIAL = "exponential"
DETERMINISTIC = "deterministic"
LOGNORMAL = "lognormal"
DISTRIBUTIONS = (EXPONENTIAL, DETERMINISTIC, LOGNORMAL)

#: Coefficient of variation used for the lognormal ablation.
_LOGNORMAL_CV = 1.0


def next_txn_id() -> int:
    """Allocate a fresh transaction id."""
    return next(_txn_ids)


class WorkloadSampler:
    """Draws transaction classes, service times, and conflict footprints."""

    def __init__(
        self,
        spec: WorkloadSpec,
        rng: np.random.Generator,
        distribution: str = EXPONENTIAL,
    ) -> None:
        if distribution not in DISTRIBUTIONS:
            raise ConfigurationError(
                f"distribution must be one of {DISTRIBUTIONS}, got {distribution!r}"
            )
        self._spec = spec
        self._rng = rng
        self._distribution = distribution

    @property
    def spec(self) -> WorkloadSpec:
        """The workload being sampled."""
        return self._spec

    def next_is_update(self) -> bool:
        """Decide the class of the next transaction (Bernoulli(Pw))."""
        pw = self._spec.mix.write_fraction
        if pw <= 0.0:
            return False
        return bool(self._rng.random() < pw)

    def think_time(self) -> float:
        """One exponential think-time draw (closed-loop model, §3.1)."""
        return rng_util.exponential(self._rng, self._spec.think_time)

    def _draw(self, mean: float) -> float:
        if mean <= 0.0:
            return 0.0
        if self._distribution == EXPONENTIAL:
            return float(self._rng.exponential(mean))
        if self._distribution == DETERMINISTIC:
            return mean
        # Lognormal with the configured coefficient of variation.
        sigma2 = np.log(1.0 + _LOGNORMAL_CV**2)
        mu = np.log(mean) - sigma2 / 2.0
        return float(self._rng.lognormal(mean=mu, sigma=np.sqrt(sigma2)))

    # Per-attempt service-time draws -----------------------------------

    def read_cpu(self) -> float:
        """CPU time of one read-only transaction."""
        return self._draw(self._spec.demands.read.cpu)

    def read_disk(self) -> float:
        """Disk time of one read-only transaction."""
        return self._draw(self._spec.demands.read.disk)

    def update_cpu(self) -> float:
        """CPU time of one update-transaction attempt."""
        return self._draw(self._spec.demands.write.cpu)

    def update_disk(self) -> float:
        """Disk time of one update-transaction attempt."""
        return self._draw(self._spec.demands.write.disk)

    def writeset_cpu(self) -> float:
        """CPU time to apply one propagated writeset."""
        return self._draw(self._spec.demands.writeset.cpu)

    def writeset_disk(self) -> float:
        """Disk time to apply one propagated writeset."""
        return self._draw(self._spec.demands.writeset.disk)

    # Conflict footprint -------------------------------------------------

    def sample_writeset(self, snapshot_version: int) -> Writeset:
        """Build the writeset of one update attempt.

        Each attempt (including retries) re-samples its rows, modelling the
        re-execution of the transaction logic against fresh data.
        """
        conflict = self._spec.conflict
        if conflict is None:
            raise ConfigurationError(
                f"workload {self._spec.name} has no conflict profile"
            )
        rows = rng_util.sample_rows(
            self._rng, conflict.db_update_size, conflict.updates_per_transaction
        )
        txn_id = next_txn_id()
        writes = {("updatable", row): txn_id for row in rows}
        return Writeset.from_dict(txn_id, snapshot_version, writes)
