"""Sharded-certifier assembly for the discrete-event simulator.

:class:`ShardedMultiMasterSystem` is the multi-master system of
:mod:`.systems` with the global certifier replaced by per-partition
:class:`~repro.sidb.sharded.ShardedCertifier` shards.  Three things
change on the update path:

* **Snapshots are version vectors.**  A transaction's snapshot is the
  originating replica's per-shard applied vector; the sampled writeset
  carries the touched shards' floors
  (:meth:`~repro.sidb.writeset.Writeset.with_snapshot_vector`).
* **Cross-partition commits pay a coordination round.**  Certification
  is forwarded to the home shard (lowest touched partition), so a
  cross-partition transaction charges ``2 x certifier_delay`` where a
  single-partition one charges ``1 x`` — the latency cost of the
  forwarding protocol (see :mod:`repro.sidb.sharded`).
* **The certifier can be a real queueing centre.**  With
  ``CertifierSpec.service_time > 0`` every certification occupies its
  touched shards for that long — one service token *per shard*, so
  disjoint-partition commits certify concurrently.  The global arm of
  the same comparison serialises every commit through one token
  (:class:`~.systems.MultiMasterSystem` with the same spec), which is
  exactly the contention the sharding removes.

Ordering discipline: all delays (coordination rounds, service time)
are charged *before* certification, and certify + propagate then run
synchronously with no intervening yield.  Shard versions are therefore
handed to the replicas in assignment order per shard — the per-lane
contiguity the replicas and the auditor check.

Elastic membership is not supported: shard snapshots, join baselines
and catch-up would all need vector-valued state transfer, and the
assembly refuses loudly rather than silently miscounting.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

from ..core import rng as rng_util
from ..core.errors import (
    ConfigurationError,
    RetryLimitExceeded,
    SimulationError,
)
from ..sidb.certifier_api import CertifierSpec, shard_version_key
from ..sidb.sharded import ShardedCertifier
from ..telemetry import schema as tel_schema
from .des import Acquire, Semaphore, Service, Timeout
from .replica import SimReplica
from .sampling import WorkloadSampler
from .systems import LEAST_LOADED, MultiMasterSystem, hosts_any


class ShardedSimReplica(SimReplica):
    """A replica whose replication state is a per-shard version vector.

    ``applied_version`` remains the scalar the load balancer and the
    telemetry layer compare — maintained as the *sum* of the per-shard
    watermarks, so it advances by exactly one per shard version applied
    and stays comparable with the sharded certifier's summed clock.
    """

    def __init__(
        self,
        env,
        name: str,
        sampler: WorkloadSampler,
        capacity: float = 1.0,
        partitions: int = 1,
    ) -> None:
        super().__init__(env, name, sampler, capacity=capacity)
        if partitions < 1:
            raise SimulationError(f"{name}: partitions must be >= 1")
        #: Highest contiguously applied version per certifier shard.
        self.applied_vector: Dict[int, int] = {
            p: 0 for p in range(partitions)
        }
        self._shard_ahead: Dict[int, List[int]] = {
            p: [] for p in range(partitions)
        }
        self._enqueued_vector: Dict[int, int] = {
            p: 0 for p in range(partitions)
        }
        self._deferred_shard: List[
            Tuple[Tuple[Tuple[int, int], ...], bool]
        ] = []

    # The global-path entry point must not be reachable by accident:
    # a scalar version is meaningless against a vector watermark.
    def enqueue_writeset(self, commit_version: int, charged: bool = True) -> None:
        raise SimulationError(
            f"{self.name}: sharded replicas receive writesets via "
            f"enqueue_shard_writeset"
        )

    def enqueue_shard_writeset(
        self,
        shard_versions: Tuple[Tuple[int, int], ...],
        charged: bool = True,
    ) -> None:
        """Start applying one committed writeset's shard versions.

        *shard_versions* is the certification outcome's sorted
        ``(partition, shard version)`` tuple; the first entry is the
        home shard carrying the data, the rest are vector markers.
        """
        for partition, version in shard_versions:
            enqueued = self._enqueued_vector.get(partition)
            if enqueued is None:
                raise SimulationError(
                    f"{self.name}: unknown certifier shard {partition}"
                )
            if version <= enqueued:
                raise SimulationError(
                    f"{self.name}: shard {partition} writeset v{version} "
                    f"arrived out of order (latest is {enqueued})"
                )
        telemetry = self.telemetry
        if telemetry is not None and telemetry.auditor is not None:
            for partition, version in shard_versions:
                telemetry.auditor.on_deliver(
                    self.name, version, shard=partition
                )
        for partition, version in shard_versions:
            self._enqueued_vector[partition] = version
        self._enqueued_version = sum(self._enqueued_vector.values())
        if self.failed:
            return
        if not self._available:
            self._deferred_shard.append((shard_versions, charged))
            return
        self._start_apply_sharded(shard_versions, charged)

    def _start_apply_sharded(self, shard_versions, charged: bool) -> None:
        telemetry = self.telemetry
        if charged:
            if telemetry is not None:
                home, home_version = shard_versions[0]
                key = shard_version_key(home, home_version)
                self._enqueue_times[key] = self._env.now
            self._env.start(self._apply_one_sharded(shard_versions))
            return
        for partition, version in shard_versions:
            self._mark_shard_applied(partition, version)
        if telemetry is not None and telemetry.auditor is not None:
            for partition, version in shard_versions:
                telemetry.auditor.on_apply(
                    self.name, version, False,
                    self.hosted_partitions, shard=partition,
                )

    def _apply_one_sharded(self, shard_versions):
        """Apply one writeset (charged once), advancing every touched lane."""
        yield Service(self.cpu, self._sampler.writeset_cpu())
        yield Service(self.disk, self._sampler.writeset_disk())
        self.writesets_applied += 1
        for partition, version in shard_versions:
            self._mark_shard_applied(partition, version)
        telemetry = self.telemetry
        if telemetry is not None:
            home, home_version = shard_versions[0]
            key = shard_version_key(home, home_version)
            now = self._env.now
            start = self._enqueue_times.pop(key, now)
            telemetry.observe_apply(self.name, now - start)
            telemetry.apply_span(key, self.name, start, now)
            if telemetry.auditor is not None:
                for partition, version in shard_versions:
                    # Apply work is charged on the home lane only; the
                    # other touched shards are free vector markers.
                    telemetry.auditor.on_apply(
                        self.name, version, partition == home,
                        self.hosted_partitions, shard=partition,
                    )

    def _mark_shard_applied(self, partition: int, version: int) -> None:
        heap = self._shard_ahead[partition]
        heapq.heappush(heap, version)
        while heap and heap[0] == self.applied_vector[partition] + 1:
            heapq.heappop(heap)
            self.applied_vector[partition] += 1
            self.applied_version += 1

    def sync_to(self, commit_version: int) -> None:
        raise SimulationError(
            f"{self.name}: elastic join is not supported with the "
            f"sharded certifier (vector-valued state transfer)"
        )

    def crash(self) -> None:
        self._deferred_shard.clear()
        super().crash()

    def _flush_deferred(self) -> None:
        deferred, self._deferred_shard = self._deferred_shard, []
        for shard_versions, charged in deferred:
            self._start_apply_sharded(shard_versions, charged)
        super()._flush_deferred()


class ShardedMultiMasterSystem(MultiMasterSystem):
    """Multi-master assembly running per-partition certifier shards."""

    design = "multi-master"

    def __init__(self, env, spec, config, seed, metrics,
                 distribution="exponential", lb_policy=LEAST_LOADED,
                 capacities=None, partition_map=None,
                 certifier_spec: Optional[CertifierSpec] = None):
        if certifier_spec is None or not certifier_spec.is_sharded:
            raise ConfigurationError(
                "ShardedMultiMasterSystem requires a sharded CertifierSpec"
            )
        if spec.partitions < 2:
            raise ConfigurationError(
                "the sharded certifier needs a partitioned workload "
                f"(spec {spec.name!r} has partitions={spec.partitions}); "
                "use --certifier global for unpartitioned runs"
            )
        self._shard_count = spec.partitions
        super().__init__(env, spec, config, seed, metrics, distribution,
                         lb_policy, capacities, partition_map)
        self._certifier_spec = certifier_spec
        self.certifier = ShardedCertifier(partitions=spec.partitions)
        # One service token per shard: disjoint-partition commits
        # certify concurrently, which is the whole point of sharding.
        if certifier_spec.service_time > 0.0:
            self._shard_service: Optional[Dict[int, Semaphore]] = {
                p: Semaphore(env, 1) for p in range(spec.partitions)
            }
        else:
            self._shard_service = None

    # ------------------------------------------------------------------
    # Replica construction / telemetry (vector-aware variants)
    # ------------------------------------------------------------------

    def _make_replica(self, name, path, capacity=1.0,
                      hosted_partitions=None) -> ShardedSimReplica:
        sampler = WorkloadSampler(
            self.spec,
            rng_util.spawn(self._seed, "replica", path),
            distribution=self._distribution,
        )
        replica = ShardedSimReplica(self.env, name, sampler,
                                    capacity=capacity,
                                    partitions=self._shard_count)
        replica.hosted_partitions = hosted_partitions
        if self.config.max_concurrency is not None:
            replica.admission = Semaphore(self.env, self.config.max_concurrency)
        self.metrics.watch_resource(f"{name}.cpu", replica.cpu)
        self.metrics.watch_resource(f"{name}.disk", replica.disk)
        if self.telemetry is not None:
            replica.telemetry = self.telemetry
            self._audit_attach(replica)
        self.replicas.append(replica)
        return replica

    def _audit_attach(self, replica: ShardedSimReplica) -> None:
        """Register every (replica, shard) delivery lane with the auditor."""
        auditor = (self.telemetry.auditor
                   if self.telemetry is not None else None)
        if auditor is None:
            return
        for partition, watermark in replica.applied_vector.items():
            auditor.on_attach(replica.name, watermark, shard=partition)

    def attach_telemetry(self, telemetry) -> None:
        self.telemetry = telemetry
        self.certifier.telemetry = telemetry
        for replica in self.replicas:
            replica.telemetry = telemetry
            self._audit_attach(replica)

    # ------------------------------------------------------------------
    # Elastic membership: refused loudly (vector state transfer needed)
    # ------------------------------------------------------------------

    def add_replica(self, transfer_writesets: int = 0,
                    capacity: float = 1.0):
        raise SimulationError(
            "elastic membership is not supported with the sharded "
            "certifier (joins need vector-valued state transfer)"
        )

    def remove_replica(self, replica=None, force: bool = False):
        raise SimulationError(
            "elastic membership is not supported with the sharded "
            "certifier (joins need vector-valued state transfer)"
        )

    # ------------------------------------------------------------------
    # Update path
    # ------------------------------------------------------------------

    def execute(self, sampler: WorkloadSampler, is_update: bool,
                client_id: int = 0):
        telemetry = self.telemetry
        trace = (
            telemetry.tracer.start_trace()
            if telemetry is not None else None
        )
        route_start = self.env.now
        yield Timeout(self.config.load_balancer_delay)
        partitions = sampler.sample_partition_set(is_update)
        replica = self.route(self.replicas, client_id, is_update, partitions)
        if telemetry is not None:
            telemetry.count_route(replica.name, is_update)
            if trace is not None:
                telemetry.tracer.add_span(
                    trace, tel_schema.SPAN_ROUTE, route_start,
                    self.env.now, subject=replica.name,
                    policy=self.lb_policy,
                )
        replica.active += 1
        aborts = 0
        yield from self._admit(replica)
        try:
            if not is_update:
                if telemetry is not None:
                    telemetry.observe_staleness(
                        replica.name, replica.applied_version,
                        self.certifier.latest_version, self.env.now,
                    )
                work_start = self.env.now
                yield from replica.serve_read()
                if trace is not None:
                    telemetry.tracer.add_span(
                        trace, tel_schema.SPAN_EXECUTE, work_start,
                        self.env.now, subject=replica.name, kind="read",
                    )
                return aborts
            for attempt in range(1, self.config.max_retries + 1):
                snapshot_vector = dict(replica.applied_vector)
                snapshot = replica.applied_version
                self.metrics.record_snapshot_age(
                    self.certifier.latest_version - snapshot
                )
                if telemetry is not None:
                    telemetry.observe_staleness(
                        replica.name, snapshot,
                        self.certifier.latest_version, self.env.now,
                    )
                token = self._register_snapshot(snapshot_vector)
                try:
                    work_start = self.env.now
                    yield from replica.serve_update_attempt()
                    writeset = sampler.sample_writeset(
                        snapshot, partitions
                    ).with_snapshot_vector({
                        p: snapshot_vector.get(p, 0) for p in partitions
                    })
                    if trace is not None:
                        telemetry.tracer.add_span(
                            trace, tel_schema.SPAN_EXECUTE, work_start,
                            self.env.now, subject=replica.name,
                            kind="update", attempt=attempt,
                        )
                    self.metrics.record_certification()
                    # Forwarding protocol: a single-partition commit is
                    # one round to its shard; a cross-partition commit
                    # pays one extra coordination round to its home
                    # shard.  All latency is charged *before* the
                    # (synchronous) certify+propagate step so shard
                    # versions reach the replicas in assignment order.
                    rounds = 2 if len(writeset.partitions) > 1 else 1
                    certify_start = self.env.now
                    if telemetry is not None:
                        telemetry.certify_begin()
                    try:
                        yield Timeout(self.config.certifier_delay * rounds)
                        if self._shard_service is not None:
                            acquired: List[int] = []
                            try:
                                for p in writeset.partitions:
                                    yield Acquire(self._shard_service[p])
                                    acquired.append(p)
                                yield Timeout(
                                    self._certifier_spec.service_time
                                )
                                outcome = self.certifier.certify(writeset)
                            finally:
                                for p in reversed(acquired):
                                    self._shard_service[p].release()
                        else:
                            outcome = self.certifier.certify(writeset)
                    finally:
                        if telemetry is not None:
                            telemetry.certify_end()
                finally:
                    self._release_snapshot(token)
                home = outcome.home_shard
                if telemetry is not None:
                    if outcome.committed:
                        telemetry.note_commit(
                            self.certifier.latest_version, self.env.now
                        )
                        if telemetry.auditor is not None:
                            for p, v in outcome.shard_versions:
                                telemetry.auditor.on_commit(
                                    v, writeset.partitions, replica.name,
                                    shard=p, primary=(p == home),
                                )
                    if trace is not None:
                        tags = {"attempt": attempt,
                                "committed": outcome.committed,
                                "shards": len(writeset.partitions)}
                        if not outcome.committed:
                            tags["abort"] = tel_schema.ABORT_WW_CONFLICT
                            tags["conflicts"] = len(
                                outcome.conflicting_keys
                            )
                        telemetry.tracer.add_span(
                            trace, tel_schema.SPAN_CERTIFY, certify_start,
                            self.env.now, subject="certifier", **tags,
                        )
                if outcome.committed:
                    if trace is not None:
                        key = shard_version_key(
                            home, outcome.commit_version
                        )
                        telemetry.tracer.note_version(key, trace)
                        telemetry.tracer.add_span(
                            trace, tel_schema.SPAN_PROPAGATE,
                            certify_start, self.env.now,
                            subject="channel", fanout=len(self.replicas),
                        )
                    # Propagation is synchronous with certification (no
                    # yield since certify), preserving per-shard order.
                    self._propagate_sharded(
                        outcome, origin=replica,
                        partitions=writeset.partitions,
                    )
                    return aborts
                aborts += 1
            raise RetryLimitExceeded(
                "multi-master", "update", self.config.max_retries
            )
        finally:
            self._release(replica)
            replica.active -= 1

    def _propagate_sharded(self, outcome, origin, partitions) -> None:
        """Hand one commit's shard versions to every replica."""
        self._propagated_version = self.certifier.latest_version
        for replica in self.replicas:
            charged = replica is not origin and hosts_any(replica, partitions)
            replica.enqueue_shard_writeset(
                outcome.shard_versions, charged=charged
            )

    # ------------------------------------------------------------------
    # Snapshot tracking: vectors instead of scalars
    # ------------------------------------------------------------------

    def _register_snapshot(self, snapshot_vector) -> int:
        self._snapshot_token += 1
        self._active_snapshots[self._snapshot_token] = snapshot_vector
        return self._snapshot_token

    def _release_snapshot(self, token: int) -> None:
        self._active_snapshots.pop(token, None)
        floors: Dict[int, int] = {}
        for p in range(self._shard_count):
            lagging = min(
                replica.applied_vector.get(p, 0)
                for replica in self.replicas
            )
            active = min(
                (vector.get(p, 0)
                 for vector in self._active_snapshots.values()),
                default=lagging,
            )
            floors[p] = max(0, min(lagging, active))
        self.certifier.observe_snapshot(floors)
