"""Run simulations and collect paper-style measurements.

:func:`simulate` builds a system, runs closed-loop clients through a
warm-up period and a measurement window (§6.1 uses 10 + 15 minutes on real
hardware; simulated defaults are shorter but deliver thousands of
transactions per point), and reports an
:class:`~repro.core.results.OperatingPoint` plus diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from ..core.errors import ConfigurationError
from ..core.params import ReplicationConfig
from ..core.results import OperatingPoint, ScalabilityCurve
from ..core.rng import DEFAULT_SEED
from ..sidb.certifier_api import resolve_certifier_spec
from ..telemetry import Telemetry, active_config
from ..workloads.spec import WorkloadSpec
from .des import Environment, Timeout
from .faults import ReplicaFault, install_faults, validate_faults
from .sampling import DISTRIBUTIONS, EXPONENTIAL
from .sharded import ShardedMultiMasterSystem
from .stats import MetricsCollector
from .systems import (
    LB_POLICIES,
    LEAST_LOADED,
    MultiMasterSystem,
    SingleMasterSystem,
    StandaloneSystem,
)

#: System designs the simulator can build.
STANDALONE = "standalone"
MULTI_MASTER = "multi-master"
SINGLE_MASTER = "single-master"
DESIGNS = (STANDALONE, MULTI_MASTER, SINGLE_MASTER)

_SYSTEM_CLASSES = {
    STANDALONE: StandaloneSystem,
    MULTI_MASTER: MultiMasterSystem,
    SINGLE_MASTER: SingleMasterSystem,
}


@dataclass(frozen=True)
class SimulationResult:
    """Everything measured during one simulation run."""

    design: str
    replicas: int
    point: OperatingPoint
    read_throughput: float
    update_throughput: float
    mean_read_response: float
    mean_update_response: float
    #: Mean GSI snapshot staleness in versions (multi-master only).
    mean_snapshot_age: float
    #: Certification requests per second.
    certifier_request_rate: float
    #: Whole-run certifier counters (warm-up included) — many more samples
    #: than the measurement window for estimating rare abort rates.
    total_certifications: int = 0
    total_certification_aborts: int = 0
    #: Utilization per resource, keyed like ``replica0.cpu``.
    utilizations: Dict[str, float] = field(default_factory=dict)
    committed_transactions: int = 0
    window: float = 0.0
    #: Committed tps per second of the window (failure-injection runs read
    #: the dip and recovery off this series).
    throughput_timeline: Sequence[float] = ()
    #: :class:`repro.telemetry.TelemetryResult` when the run was
    #: telemetry-enabled; ``None`` otherwise (the default keeps results
    #: from older cached runs loading unchanged).
    telemetry: object = None

    @property
    def throughput(self) -> float:
        """Committed transactions per second."""
        return self.point.throughput

    @property
    def response_time(self) -> float:
        """Mean response time (seconds)."""
        return self.point.response_time

    @property
    def abort_rate(self) -> float:
        """Measured update-attempt abort fraction."""
        return self.point.abort_rate


def simulate(
    spec: WorkloadSpec,
    config: ReplicationConfig,
    design: str = MULTI_MASTER,
    seed: int = DEFAULT_SEED,
    warmup: float = 10.0,
    duration: float = 40.0,
    distribution: str = EXPONENTIAL,
    lb_policy: str = LEAST_LOADED,
    faults: Sequence[ReplicaFault] = (),
    arrival_rate: Optional[float] = None,
    capacities: Optional[Sequence[float]] = None,
    partition_map=None,
    telemetry=None,
    certifier=None,
) -> SimulationResult:
    """Simulate *spec* on *design* with *config* and measure steady state.

    *faults* optionally injects replica crash/recovery events
    (:class:`~repro.simulator.faults.ReplicaFault`); fault times are
    relative to the start of the run (warm-up included).

    *arrival_rate* switches from the closed-loop client model (§3.1) to an
    open-loop Poisson stream of that many transactions per second — the
    open-vs-closed comparison of [Schroeder 2006].

    *capacities* builds a heterogeneous fleet: one speed multiplier per
    replica (single-master: index 0 is the master), scaling that
    replica's CPU and disk rates.

    *partition_map* places a partitioned workload's data on replica
    subsets (:class:`~repro.partition.placement.PartitionMap`): writesets
    propagate only to hosting replicas and transactions route to hosts of
    everything they touch.  Partitioned specs with no explicit map run
    fully replicated (the A/B baseline).

    *telemetry* opts into the observability layer: ``None`` (default)
    records nothing and changes nothing; a
    :class:`repro.telemetry.TelemetryConfig` (or ``True`` for defaults)
    threads a recorder through the certifier, replicas and load
    balancer, samples the fleet on the configured interval (a DES
    process in virtual time), and attaches a
    :class:`~repro.telemetry.TelemetryResult` to the result.  Telemetry
    never perturbs workload randomness or charges simulated time, so
    measurements are identical with it on or off.

    *certifier* selects the certification service: ``None`` (default)
    and the default :class:`~repro.sidb.certifier_api.CertifierSpec`
    keep the single global certifier byte-identical to before the
    sharded path existed; ``"sharded"`` (or a sharded spec) runs
    per-partition certifier shards with version vectors and the
    cross-partition forwarding coordinator
    (:class:`~repro.simulator.sharded.ShardedMultiMasterSystem`).
    """
    certifier_spec = resolve_certifier_spec(certifier)
    if design not in _SYSTEM_CLASSES:
        raise ConfigurationError(f"unknown design {design!r}; one of {DESIGNS}")
    if distribution not in DISTRIBUTIONS:
        raise ConfigurationError(f"unknown distribution {distribution!r}")
    if lb_policy not in LB_POLICIES:
        raise ConfigurationError(f"unknown lb_policy {lb_policy!r}")
    if warmup < 0 or duration <= 0:
        raise ConfigurationError("warmup must be >= 0 and duration > 0")
    if design == STANDALONE and config.replicas != 1:
        raise ConfigurationError("standalone design requires replicas == 1")

    env = Environment()
    metrics = MetricsCollector()
    if capacities is not None and design == STANDALONE:
        raise ConfigurationError(
            "capacities describe a replicated fleet; standalone systems "
            "have exactly one machine"
        )
    if certifier_spec is not None and not certifier_spec.is_default:
        if design != MULTI_MASTER:
            raise ConfigurationError(
                "the certifier axis is multi-master only (the certifier "
                f"spec {certifier_spec.kind!r} cannot apply to {design!r})"
            )
        if certifier_spec.is_sharded:
            system = ShardedMultiMasterSystem(
                env, spec, config, seed, metrics,
                distribution=distribution, lb_policy=lb_policy,
                capacities=capacities, partition_map=partition_map,
                certifier_spec=certifier_spec,
            )
        else:
            system = MultiMasterSystem(
                env, spec, config, seed, metrics,
                distribution=distribution, lb_policy=lb_policy,
                capacities=capacities, partition_map=partition_map,
                certifier_spec=certifier_spec,
            )
    else:
        system = _SYSTEM_CLASSES[design](
            env, spec, config, seed, metrics,
            distribution=distribution, lb_policy=lb_policy,
            capacities=capacities, partition_map=partition_map,
        )
    telemetry_config = active_config(telemetry)
    recorder = None
    if telemetry_config is not None:
        recorder = Telemetry(telemetry_config, pillar="simulator")
        system.attach_telemetry(recorder)

        def _telemetry_sampler():
            while True:
                yield Timeout(recorder.config.snapshot_interval)
                recorder.sample_fleet(
                    env.now, system.replicas,
                    getattr(system, "certifier", None),
                )

        env.start(_telemetry_sampler())
    if faults:
        from ..partition.placement import check_faults_against_map

        check_faults_against_map(faults, system.partition_map)
    clients = (
        config.clients_per_replica
        if design == STANDALONE
        else config.total_clients
    )
    if faults:
        install_faults(env, system, validate_faults(faults, config.replicas, design))
    if arrival_rate is None:
        system.start_clients(clients)
    else:
        system.start_open_arrivals(arrival_rate)

    env.schedule(warmup, metrics.begin_window, warmup)
    env.run_until(warmup + duration)
    metrics.end_window(env.now)

    certifier = getattr(system, "certifier", None)
    telemetry_result = None
    if recorder is not None:
        # One closing sample so end-of-run state is always captured
        # (even when the interval exceeds the run length).
        recorder.sample_fleet(env.now, system.replicas, certifier)
        telemetry_result = recorder.result()
    return _collect(design, config, metrics, certifier, telemetry_result)


def _collect(
    design: str,
    config: ReplicationConfig,
    metrics: MetricsCollector,
    certifier=None,
    telemetry=None,
) -> SimulationResult:
    utilizations = metrics.utilizations()
    busiest = _busiest_by_resource(utilizations)
    point = OperatingPoint(
        throughput=metrics.throughput(),
        response_time=metrics.mean_response_time(),
        abort_rate=metrics.abort_rate(),
        utilization=busiest,
    )
    return SimulationResult(
        design=design,
        replicas=config.replicas,
        point=point,
        read_throughput=metrics.read_throughput(),
        update_throughput=metrics.update_throughput(),
        mean_read_response=metrics.response_read.mean,
        mean_update_response=metrics.response_update.mean,
        mean_snapshot_age=metrics.snapshot_age.mean,
        certifier_request_rate=metrics.certifier_request_rate(),
        total_certifications=0 if certifier is None else certifier.certifications,
        total_certification_aborts=0 if certifier is None else certifier.aborts,
        utilizations=utilizations,
        committed_transactions=metrics.committed,
        window=metrics.window,
        throughput_timeline=tuple(metrics.throughput_timeline()),
        telemetry=telemetry,
    )


def _busiest_by_resource(utilizations: Dict[str, float]) -> Dict[str, float]:
    """Max utilization per resource kind across replicas."""
    busiest: Dict[str, float] = {}
    for key, value in utilizations.items():
        kind = key.rsplit(".", 1)[-1]
        busiest[kind] = max(busiest.get(kind, 0.0), value)
    return busiest


def measure_curve(
    spec: WorkloadSpec,
    design: str,
    replica_counts: Sequence[int],
    seed: int = DEFAULT_SEED,
    warmup: float = 10.0,
    duration: float = 40.0,
    load_balancer_delay: float = 0.001,
    certifier_delay: float = 0.012,
    distribution: str = EXPONENTIAL,
    lb_policy: str = LEAST_LOADED,
) -> ScalabilityCurve:
    """Measure a scalability curve by simulating each replica count."""
    counts = list(replica_counts)
    if not counts:
        raise ConfigurationError("replica_counts must not be empty")
    points = []
    for n in counts:
        config = spec.replication_config(
            n,
            load_balancer_delay=load_balancer_delay,
            certifier_delay=certifier_delay,
        )
        result = simulate(
            spec,
            config,
            design=design,
            seed=seed,
            warmup=warmup,
            duration=duration,
            distribution=distribution,
            lb_policy=lb_policy,
        )
        points.append(result.point)
    return ScalabilityCurve(
        label=f"{spec.name} {design} (measured)",
        replica_counts=counts,
        points=points,
    )
