"""Failure injection for the simulated replicated systems.

The paper motivates replication with fault tolerance but evaluates only
performance; this module adds the natural follow-on experiment: *what does
throughput look like while a replica is down, and how long does recovery
take?*

A :class:`ReplicaFault` takes one replica out of load-balancer rotation at
``start`` and brings it back at ``start + downtime``.  Failure is modelled
as a drain (in-flight transactions finish; new work routes elsewhere) —
the behaviour of a middleware that detects an unresponsive replica and
stops dispatching to it.  On recovery in a multi-master system the replica
must first catch up on the writesets it missed (they were queued for it),
so its snapshots lag until application drains — recovery cost *emerges*
from the writeset backlog rather than being assumed.

Restrictions: the single-master design only supports slave faults (master
failover needs a promotion protocol the paper does not describe).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..core.errors import ConfigurationError


@dataclass(frozen=True)
class ReplicaFault:
    """One crash/recovery event for a named replica."""

    #: Index into the system's replica list (for single-master systems,
    #: index 0 is the master and may not be faulted).
    replica_index: int
    #: Simulated time at which the replica stops accepting work.
    start: float
    #: How long the replica stays out of rotation.
    downtime: float

    def __post_init__(self) -> None:
        if self.replica_index < 0:
            raise ConfigurationError("replica index must be >= 0")
        if self.start < 0:
            raise ConfigurationError("fault start must be >= 0")
        if self.downtime <= 0:
            raise ConfigurationError("downtime must be positive")

    @property
    def end(self) -> float:
        """Time at which the replica rejoins the rotation."""
        return self.start + self.downtime


def validate_faults(
    faults: Sequence[ReplicaFault], replicas: int, design: str
) -> List[ReplicaFault]:
    """Check a fault schedule against a system layout."""
    checked: List[ReplicaFault] = []
    for fault in faults:
        if fault.replica_index >= replicas:
            raise ConfigurationError(
                f"fault targets replica {fault.replica_index} but the "
                f"system has {replicas}"
            )
        if design == "single-master" and fault.replica_index == 0:
            raise ConfigurationError(
                "cannot fault the master of a single-master system "
                "(no promotion protocol); fault a slave instead"
            )
        if design == "standalone":
            raise ConfigurationError(
                "standalone systems have no redundancy to fault"
            )
        checked.append(fault)
    return checked


def install_faults(env, system, faults: Sequence[ReplicaFault]) -> None:
    """Schedule crash/recovery callbacks on *system*'s replicas."""
    for fault in faults:
        replica = system.replicas[fault.replica_index]
        env.schedule(fault.start, _crash, replica)
        env.schedule(fault.end, _recover, replica)


def _crash(replica) -> None:
    replica.available = False


def _recover(replica) -> None:
    replica.available = True
