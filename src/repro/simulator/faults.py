"""Failure injection for the simulated replicated systems.

The paper motivates replication with fault tolerance but evaluates only
performance; this module adds the natural follow-on experiment: *what does
throughput look like while a replica is down, and how long does recovery
take?*

Two fault kinds share the :class:`ReplicaFault` schedule entry:

* ``drain`` (the default) takes one replica out of load-balancer rotation
  at ``start`` and brings it back at ``start + downtime``.  This is the
  behaviour of a middleware that detects an unresponsive replica and stops
  dispatching to it: in-flight transactions finish, writesets queue at the
  replica's proxy, and on recovery the replica catches up on the backlog —
  so recovery cost *emerges* from the writeset backlog rather than being
  assumed.
* ``crash`` kills the replica outright: it stops consuming writesets (its
  copy of the state is lost, so queued and future writesets are dropped,
  not deferred) and it never comes back by itself.  A crashed replica can
  only rejoin as a *new* member via state transfer — the replacement
  path the self-healing operations layer (:mod:`repro.ops`) automates.

Overlapping drain faults on the same replica nest: the replica recovers
only when the *last* overlapping outage ends (a per-replica down-count,
not a boolean).  Faults scheduled past the end of the run simply never
fire.

Restrictions: the single-master design only supports slave faults (master
failover needs a promotion protocol the paper does not describe).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..core.errors import ConfigurationError

#: Fault kinds: a recoverable outage vs a permanent loss of the replica.
DRAIN = "drain"
CRASH = "crash"
FAULT_KINDS = (DRAIN, CRASH)


@dataclass(frozen=True)
class ReplicaFault:
    """One failure event for a named replica."""

    #: Index into the system's replica list (for single-master systems,
    #: index 0 is the master and may not be faulted).
    replica_index: int
    #: Simulated time at which the replica stops accepting work.
    start: float
    #: How long the replica stays out of rotation (``drain`` kind only;
    #: a ``crash`` is permanent and ignores this field).
    downtime: float = 0.0
    #: ``drain`` (recoverable outage) or ``crash`` (permanent loss).
    kind: str = DRAIN

    def __post_init__(self) -> None:
        if self.replica_index < 0:
            raise ConfigurationError("replica index must be >= 0")
        if self.start < 0:
            raise ConfigurationError("fault start must be >= 0")
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; one of {FAULT_KINDS}"
            )
        if self.kind == DRAIN and self.downtime <= 0:
            raise ConfigurationError("downtime must be positive")

    @property
    def end(self) -> float:
        """Time at which a drain fault's replica rejoins the rotation."""
        return self.start + self.downtime


def crash_fault(replica_index: int, start: float) -> ReplicaFault:
    """A permanent crash of one replica at *start* (no self-recovery)."""
    return ReplicaFault(replica_index=replica_index, start=start, kind=CRASH)


def validate_faults(
    faults: Sequence[ReplicaFault], replicas: int, design: str
) -> List[ReplicaFault]:
    """Check a fault schedule against a system layout."""
    checked: List[ReplicaFault] = []
    for fault in faults:
        if fault.replica_index >= replicas:
            raise ConfigurationError(
                f"fault targets replica {fault.replica_index} but the "
                f"system has {replicas}"
            )
        if design == "single-master" and fault.replica_index == 0:
            raise ConfigurationError(
                "cannot fault the master of a single-master system "
                "(no promotion protocol); fault a slave instead"
            )
        if design == "standalone":
            raise ConfigurationError(
                "standalone systems have no redundancy to fault"
            )
        checked.append(fault)
    return checked


@dataclass
class _DownCounts:
    """Per-replica count of overlapping drain outages."""

    counts: Dict[int, int] = field(default_factory=dict)

    def down(self, replica) -> None:
        key = id(replica)
        self.counts[key] = self.counts.get(key, 0) + 1
        replica.available = False

    def up(self, replica) -> None:
        key = id(replica)
        self.counts[key] = self.counts.get(key, 0) - 1
        if self.counts[key] <= 0 and not getattr(replica, "failed", False):
            replica.available = True


def install_faults(
    env,
    system,
    faults: Sequence[ReplicaFault],
    recorder: Optional[Callable[[float, str, str], None]] = None,
) -> None:
    """Schedule fault callbacks on *system*'s replicas.

    *recorder*, when given, is called as ``recorder(now, kind, name)``
    each time a fault fires — the hook the operations layer uses to stamp
    crash times into its event log.
    """
    counts = _DownCounts()
    for fault in faults:
        replica = system.replicas[fault.replica_index]
        if fault.kind == CRASH:
            env.schedule(fault.start, _crash, env, replica, recorder)
        else:
            env.schedule(fault.start, _down, env, counts, replica, recorder)
            env.schedule(fault.end, _up, env, counts, replica, recorder)


def _crash(env, replica, recorder) -> None:
    replica.crash()
    if recorder is not None:
        recorder(env.now, CRASH, replica.name)


def _down(env, counts, replica, recorder) -> None:
    counts.down(replica)
    if recorder is not None:
        recorder(env.now, "down", replica.name)


def _up(env, counts, replica, recorder) -> None:
    counts.up(replica)
    if recorder is not None:
        recorder(env.now, "up", replica.name)
