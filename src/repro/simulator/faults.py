"""Failure injection for the simulated replicated systems.

The paper motivates replication with fault tolerance but evaluates only
performance; this module adds the natural follow-on experiment: *what does
throughput look like while a replica is down, and how long does recovery
take?*

Two fault kinds share the :class:`ReplicaFault` schedule entry:

* ``drain`` (the default) takes one replica out of load-balancer rotation
  at ``start`` and brings it back at ``start + downtime``.  This is the
  behaviour of a middleware that detects an unresponsive replica and stops
  dispatching to it: in-flight transactions finish, writesets queue at the
  replica's proxy, and on recovery the replica catches up on the backlog —
  so recovery cost *emerges* from the writeset backlog rather than being
  assumed.
* ``crash`` kills the replica outright: it stops consuming writesets (its
  copy of the state is lost, so queued and future writesets are dropped,
  not deferred) and it never comes back by itself.  A crashed replica can
  only rejoin as a *new* member via state transfer — the replacement
  path the self-healing operations layer (:mod:`repro.ops`) automates.
* ``brownout`` is the gray failure: the replica stays in rotation but its
  CPU and disk rates are multiplied by ``severity`` for ``downtime``
  seconds — a machine silently running at partial speed.  Nothing in the
  membership layer notices (the replica is *available* the whole time);
  only the online capacity estimator can catch it.

Overlapping drain faults on the same replica nest: the replica recovers
only when the *last* overlapping outage ends (a per-replica down-count,
not a boolean).  Overlapping brownouts compose multiplicatively and each
restores exactly its own factor.  Faults scheduled past the end of the
run simply never fire.

Restrictions: the single-master design only supports slave drain/crash
faults (master failover needs a promotion protocol the paper does not
describe); a brownout never changes membership, so it may target the
master.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..core.errors import ConfigurationError

#: Fault kinds: a recoverable outage, a permanent loss of the replica, or
#: a gray failure (the replica serves on at degraded speed).
DRAIN = "drain"
CRASH = "crash"
BROWNOUT = "brownout"
FAULT_KINDS = (DRAIN, CRASH, BROWNOUT)


@dataclass(frozen=True)
class ReplicaFault:
    """One failure event for a named replica."""

    #: Index into the system's replica list (for single-master systems,
    #: index 0 is the master and may not be faulted).
    replica_index: int
    #: Simulated time at which the replica stops accepting work.
    start: float
    #: How long the replica stays out of rotation (``drain``) or degraded
    #: (``brownout``); a ``crash`` is permanent and ignores this field.
    downtime: float = 0.0
    #: ``drain`` (recoverable outage), ``crash`` (permanent loss), or
    #: ``brownout`` (gray failure at reduced speed).
    kind: str = DRAIN
    #: Resource-rate multiplier while a ``brownout`` is active: the
    #: replica's CPU and disk run at ``severity`` times their configured
    #: rate.  Ignored by the other kinds.
    severity: float = 1.0

    def __post_init__(self) -> None:
        if self.replica_index < 0:
            raise ConfigurationError("replica index must be >= 0")
        if self.start < 0:
            raise ConfigurationError("fault start must be >= 0")
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; one of {FAULT_KINDS}"
            )
        if self.kind in (DRAIN, BROWNOUT) and self.downtime <= 0:
            raise ConfigurationError("downtime must be positive")
        if self.kind == BROWNOUT and not 0.0 < self.severity < 1.0:
            raise ConfigurationError(
                "brownout severity must be in (0, 1): it is the fraction "
                "of the replica's configured speed that survives"
            )

    @property
    def end(self) -> float:
        """Time at which a drain/brownout fault's replica recovers."""
        return self.start + self.downtime


def crash_fault(replica_index: int, start: float) -> ReplicaFault:
    """A permanent crash of one replica at *start* (no self-recovery)."""
    return ReplicaFault(replica_index=replica_index, start=start, kind=CRASH)


def brownout_fault(
    replica_index: int, start: float, downtime: float, severity: float = 0.5
) -> ReplicaFault:
    """A gray failure: one replica runs at ``severity`` times its speed
    from *start* for *downtime* seconds, while staying in rotation."""
    return ReplicaFault(
        replica_index=replica_index, start=start, downtime=downtime,
        kind=BROWNOUT, severity=severity,
    )


def validate_faults(
    faults: Sequence[ReplicaFault], replicas: int, design: str
) -> List[ReplicaFault]:
    """Check a fault schedule against a system layout."""
    checked: List[ReplicaFault] = []
    for fault in faults:
        if fault.replica_index >= replicas:
            raise ConfigurationError(
                f"fault targets replica {fault.replica_index} but the "
                f"system has {replicas}"
            )
        if (design == "single-master" and fault.replica_index == 0
                and fault.kind != BROWNOUT):
            raise ConfigurationError(
                "cannot fault the master of a single-master system "
                "(no promotion protocol); fault a slave instead"
            )
        if design == "standalone":
            raise ConfigurationError(
                "standalone systems have no redundancy to fault"
            )
        checked.append(fault)
    return checked


@dataclass
class _DownCounts:
    """Per-replica count of overlapping drain outages."""

    counts: Dict[int, int] = field(default_factory=dict)

    def down(self, replica) -> None:
        key = id(replica)
        self.counts[key] = self.counts.get(key, 0) + 1
        replica.available = False

    def up(self, replica) -> None:
        key = id(replica)
        self.counts[key] = self.counts.get(key, 0) - 1
        if self.counts[key] <= 0 and not getattr(replica, "failed", False):
            replica.available = True


def install_faults(
    env,
    system,
    faults: Sequence[ReplicaFault],
    recorder: Optional[Callable[[float, str, str], None]] = None,
) -> None:
    """Schedule fault callbacks on *system*'s replicas.

    *recorder*, when given, is called as ``recorder(now, kind, name)``
    each time a fault fires — the hook the operations layer uses to stamp
    crash times into its event log.
    """
    counts = _DownCounts()
    for fault in faults:
        replica = system.replicas[fault.replica_index]
        if fault.kind == CRASH:
            env.schedule(fault.start, _crash, env, replica, recorder)
        elif fault.kind == BROWNOUT:
            env.schedule(fault.start, _slow, env, replica,
                         fault.severity, recorder)
            env.schedule(fault.end, _restore, env, replica,
                         fault.severity, recorder)
        else:
            env.schedule(fault.start, _down, env, counts, replica, recorder)
            env.schedule(fault.end, _up, env, counts, replica, recorder)


def scale_replica_rates(replica, factor: float) -> None:
    """Multiply a replica's CPU and disk rates by *factor*.

    Multiplicative bookkeeping makes overlapping brownouts compose and
    restore exactly: each fault undoes its own factor, so the rates end
    the run bit-identical to how they started.  Only work submitted after
    the change is affected (both resource disciplines scale at submit),
    which is exactly a machine whose new requests run slow.
    """
    for resource in (replica.cpu, replica.disk):
        resource.rate *= factor


def _crash(env, replica, recorder) -> None:
    replica.crash()
    if recorder is not None:
        recorder(env.now, CRASH, replica.name)


def _slow(env, replica, severity, recorder) -> None:
    scale_replica_rates(replica, severity)
    if recorder is not None:
        recorder(env.now, BROWNOUT, replica.name)


def _restore(env, replica, severity, recorder) -> None:
    scale_replica_rates(replica, 1.0 / severity)
    if recorder is not None:
        recorder(env.now, "brownout-end", replica.name)


def _down(env, counts, replica, recorder) -> None:
    counts.down(replica)
    if recorder is not None:
        recorder(env.now, "down", replica.name)


def _up(env, counts, replica, recorder) -> None:
    counts.up(replica)
    if recorder is not None:
        recorder(env.now, "up", replica.name)
