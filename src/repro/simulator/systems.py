"""Simulated replicated-database systems (the prototypes of §5).

Three assemblies share the client loop:

* :class:`StandaloneSystem` — one database, no middleware.  This is what
  the profiler measures.
* :class:`MultiMasterSystem` — Figure 4: load balancer, N replicas each
  executing reads and updates, and a certifier detecting system-wide
  write-write conflicts and driving update propagation (Tashkent-style).
* :class:`SingleMasterSystem` — Figure 5: the master executes all updates
  and propagates writesets to the slaves; read-only transactions go to the
  least-loaded replica, master included (Ganymed-style).

Clients follow the closed-loop model of §3.1: think (exponential), submit,
wait for the response; aborted update transactions are retried immediately
by the (simulated) application server, as the paper's Java servlets do.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..core import rng as rng_util
from ..core.errors import (
    ConfigurationError,
    RetryLimitExceeded,
    SimulationError,
)
from ..core.params import ReplicationConfig
from ..sidb.certifier import Certifier
from ..telemetry import schema as tel_schema
from ..workloads.spec import WorkloadSpec
from .des import Acquire, Environment, Semaphore, Timeout
from .replica import SimReplica
from .sampling import WorkloadSampler
from .stats import MetricsCollector

#: Load-balancer routing policies.  The paper's prototypes route to the
#: least-loaded replica; "pinned" statically partitions clients over
#: replicas (the analytical model's view); "random" picks uniformly;
#: "conflict-aware" routes updates to the most caught-up replica (freshest
#: ``applied_version``, so update snapshots are as young as possible and
#: certification aborts shrink) and reads to the least-loaded one;
#: "capacity-weighted" divides the resident count by each replica's
#: ``capacity`` multiplier, so a twice-as-fast box carries twice the load
#: (the right policy for heterogeneous fleets); "partition-aware" is the
#: canonical policy for partially replicated fleets — capacity-normalized
#: least-loaded among the replicas hosting the transaction's partitions.
#: (Under a partition map the *hosting filter* applies to every policy —
#: a replica without the data simply cannot serve the transaction — the
#: named policy just makes the partitioned default explicit.)
LEAST_LOADED = "least-loaded"
PINNED = "pinned"
RANDOM = "random"
CONFLICT_AWARE = "conflict-aware"
CAPACITY_WEIGHTED = "capacity-weighted"
PARTITION_AWARE = "partition-aware"
LB_POLICIES = (LEAST_LOADED, PINNED, RANDOM, CONFLICT_AWARE,
               CAPACITY_WEIGHTED, PARTITION_AWARE)


def check_capacities(
    capacities: Optional[Sequence[float]], replicas: int
) -> Optional[Tuple[float, ...]]:
    """Validate a heterogeneous-fleet capacity vector (``None`` = uniform).

    Shared by the simulator systems and the live clusters: one multiplier
    per initial replica, all positive.
    """
    if capacities is None:
        return None
    caps = tuple(float(c) for c in capacities)
    if len(caps) != replicas:
        raise ConfigurationError(
            f"capacities names {len(caps)} replicas but the deployment "
            f"has {replicas}"
        )
    if any(c <= 0.0 for c in caps):
        raise ConfigurationError("every capacity multiplier must be positive")
    return caps


def hosts_all(replica, partitions) -> bool:
    """True when *replica* hosts every partition in *partitions*
    (``hosted_partitions is None`` means the replica hosts everything)."""
    hosted = getattr(replica, "hosted_partitions", None)
    return hosted is None or hosted.issuperset(partitions)


def hosts_any(replica, partitions) -> bool:
    """True when *replica* hosts at least one of *partitions* (an empty
    set — the unpartitioned wildcard — is hosted everywhere)."""
    if not partitions:
        return True
    hosted = getattr(replica, "hosted_partitions", None)
    return hosted is None or not hosted.isdisjoint(partitions)


def select_replica(policy, candidates, client_id, is_update, rng,
                   partitions=()):
    """Pick an *available* replica according to *policy*.

    The single routing implementation shared by the simulator and the
    live cluster runtime (:mod:`repro.cluster.balancer`); candidates only
    need ``available``, ``active``, ``applied_version``, and ``name``.

    *partitions* restricts routing to replicas hosting the transaction's
    data (partial replication): replicas hosting *all* touched partitions
    are preferred, falling back to hosts of *any* of them, falling back
    to everyone (total-outage liveness, as below).  The filter applies to
    every policy — a replica without the data cannot serve the
    transaction.
    """
    alive = [r for r in candidates if r.available]
    if not alive:
        # Total outage: keep routing so clients block on queues rather
        # than deadlocking the closed loop.
        alive = list(candidates)
    if partitions:
        hosting = [r for r in alive if hosts_all(r, partitions)]
        if not hosting:
            hosting = [r for r in alive if hosts_any(r, partitions)]
        if hosting:
            alive = hosting
    if policy == PINNED:
        return alive[client_id % len(alive)]
    if policy == RANDOM:
        return alive[int(rng.integers(0, len(alive)))]
    if policy == CONFLICT_AWARE and is_update:
        # Updates go to a most-caught-up replica (never a lagging one):
        # the freshest applied_version minimises snapshot staleness and
        # therefore the certification-abort window.  Versions are read
        # once: in the live cluster appliers advance them concurrently,
        # and re-reading could leave the freshest set empty.
        versions = [(r.applied_version, r) for r in alive]
        freshest = max(v for v, _ in versions)
        alive = [r for v, r in versions if v == freshest]
    if policy in (CAPACITY_WEIGHTED, PARTITION_AWARE):
        return min(
            alive,
            key=lambda r: (r.active / getattr(r, "capacity", 1.0), r.name),
        )
    return min(alive, key=lambda r: (r.active, r.name))


class _BaseSystem:
    """Shared plumbing: replicas, samplers, metric wiring, client loop."""

    #: How often an elastic drain re-checks that a leaving replica has
    #: finished its in-flight transactions (simulated seconds).
    _DRAIN_POLL = 0.025

    #: Design name used to validate partition maps (subclasses override).
    design = "multi-master"

    #: Optional :class:`repro.telemetry.Telemetry` hook (see
    #: :meth:`attach_telemetry`); ``None`` keeps every hot path exactly
    #: as it was before the telemetry layer existed.
    telemetry = None

    def __init__(
        self,
        env: Environment,
        spec: WorkloadSpec,
        config: ReplicationConfig,
        seed: int,
        metrics: MetricsCollector,
        distribution: str = "exponential",
        lb_policy: str = LEAST_LOADED,
        capacities: Optional[Sequence[float]] = None,
        partition_map=None,
    ) -> None:
        from ..partition.placement import resolve_partition_map

        if lb_policy not in LB_POLICIES:
            raise SimulationError(
                f"unknown lb_policy {lb_policy!r}; one of {LB_POLICIES}"
            )
        self._capacities = check_capacities(capacities, config.replicas)
        self.partition_map = resolve_partition_map(
            spec, config, partition_map, self.design
        )
        self.env = env
        self.spec = spec
        self.config = config
        self.metrics = metrics
        self._seed = seed
        self._distribution = distribution
        self.lb_policy = lb_policy
        self._lb_rng = rng_util.spawn(seed, "load-balancer")
        self.replicas: List[SimReplica] = []
        #: Monotonic counter naming elastically added replicas (names and
        #: metric keys must never be reused after a removal).
        self._members_created = 0
        #: Highest commit version already handed to update propagation —
        #: the sync point elastic joins adopt (the certifier can be ahead
        #: by in-flight certification delays).
        self._propagated_version = 0
        #: Cleared by :meth:`stop_arrivals` to end open-loop streams.
        self._arrivals_on = True

    def _initial_capacity(self, index: int) -> float:
        """Capacity multiplier for the *index*-th initial replica."""
        if self._capacities is None:
            return 1.0
        return self._capacities[index]

    def _make_replica(
        self, name: str, path: object, capacity: float = 1.0,
        hosted_partitions=None,
    ) -> SimReplica:
        sampler = WorkloadSampler(
            self.spec,
            rng_util.spawn(self._seed, "replica", path),
            distribution=self._distribution,
        )
        replica = SimReplica(self.env, name, sampler, capacity=capacity)
        replica.hosted_partitions = hosted_partitions
        # Admission control: the connection pool bounds how many client
        # transactions execute concurrently (config.max_concurrency).
        if self.config.max_concurrency is not None:
            replica.admission = Semaphore(self.env, self.config.max_concurrency)
        else:
            replica.admission = None
        self.metrics.watch_resource(f"{name}.cpu", replica.cpu)
        self.metrics.watch_resource(f"{name}.disk", replica.disk)
        if self.telemetry is not None:
            replica.telemetry = self.telemetry
            if self.telemetry.auditor is not None:
                self.telemetry.auditor.on_attach(
                    replica.name, replica.applied_version
                )
        self.replicas.append(replica)
        return replica

    def attach_telemetry(self, telemetry) -> None:
        """Wire a :class:`repro.telemetry.Telemetry` into the system.

        Called once after construction by a telemetry-enabled run; the
        certifier, every current replica, and every replica created
        later (elastic joins) share the same recorder.
        """
        self.telemetry = telemetry
        certifier = getattr(self, "certifier", None)
        if certifier is not None:
            certifier.telemetry = telemetry
        for replica in self.replicas:
            replica.telemetry = telemetry
            if telemetry.auditor is not None:
                telemetry.auditor.on_attach(
                    replica.name, replica.applied_version
                )

    def _admit(self, replica: SimReplica):
        """Wait for an execution slot at *replica* (no-op without a limit)."""
        if replica.admission is not None:
            yield Acquire(replica.admission)

    def _release(self, replica: SimReplica) -> None:
        if replica.admission is not None:
            replica.admission.release()

    def _hosted_for_index(self, index: int):
        """Hosted-partition set of the *index*-th initial replica
        (``None`` — host everything — without a partial map)."""
        if self.partition_map is None or self.partition_map.is_full:
            return None
        return self.partition_map.hosted_by(index)

    def start_clients(self, count: int) -> None:
        """Launch *count* closed-loop client processes."""
        for client_id in range(count):
            sampler = WorkloadSampler(
                self.spec,
                rng_util.spawn(self._seed, "client", client_id),
                distribution=self._distribution,
                partition_map=self.partition_map,
            )
            self.env.start(self._client_loop(client_id, sampler))

    def start_open_arrivals(self, rate: float) -> None:
        """Launch an open-loop Poisson arrival stream of *rate* tps.

        Open arrivals do not wait for responses (no think-time feedback):
        past the capacity knee the resident population — and response time
        — grows without bound, the contrast with the closed-loop model that
        [Schroeder 2006] warns about and §3.1 adopts deliberately.
        """
        if rate <= 0:
            raise SimulationError(f"arrival rate must be positive, got {rate}")
        self.env.start(self._arrival_process(rate))

    def _arrival_process(self, rate: float):
        arrival_rng = rng_util.spawn(self._seed, "open-arrivals")
        sampler = WorkloadSampler(
            self.spec,
            rng_util.spawn(self._seed, "open-client"),
            distribution=self._distribution,
            partition_map=self.partition_map,
        )
        sequence = 0
        while self._arrivals_on:
            yield Timeout(float(arrival_rng.exponential(1.0 / rate)))
            if not self._arrivals_on:
                return
            sequence += 1
            self.env.start(self._one_shot(sequence, sampler))

    def start_trace_arrivals(self, trace) -> None:
        """Launch an open-loop stream whose rate follows a load trace.

        *trace* is any :class:`repro.control.trace.LoadTrace`-shaped object
        (``rate(t)`` and ``max_rate``).  Arrivals form a non-homogeneous
        Poisson process sampled by thinning [Lewis & Shedler 1979]:
        candidate arrivals at the trace's peak rate, each accepted with
        probability ``rate(now) / peak`` — deterministic for a fixed seed
        regardless of how membership changes mid-run.
        """
        if trace.max_rate <= 0:
            raise SimulationError("trace peak rate must be positive")
        self.env.start(self._trace_arrival_process(trace))

    def _trace_arrival_process(self, trace):
        arrival_rng = rng_util.spawn(self._seed, "trace-arrivals")
        sampler = WorkloadSampler(
            self.spec,
            rng_util.spawn(self._seed, "trace-client"),
            distribution=self._distribution,
            partition_map=self.partition_map,
        )
        peak = trace.max_rate
        sequence = 0
        while self._arrivals_on:
            yield Timeout(float(arrival_rng.exponential(1.0 / peak)))
            if not self._arrivals_on:
                return
            if not trace.accept_arrival(arrival_rng, self.env.now):
                continue  # thinned-out candidate
            sequence += 1
            self.env.start(self._one_shot(sequence, sampler))

    def stop_arrivals(self) -> None:
        """Stop open-loop arrival streams (lets elastic runs drain)."""
        self._arrivals_on = False

    def _one_shot(self, sequence: int, sampler: WorkloadSampler):
        is_update = sampler.next_is_update()
        started = self.env.now
        aborts = yield from self.execute(sampler, is_update, sequence)
        self.metrics.record_commit(
            is_update, self.env.now - started, aborts, now=self.env.now
        )
        if self.telemetry is not None:
            self.telemetry.count_commit(is_update)

    def _client_loop(self, client_id: int, sampler: WorkloadSampler):
        while True:
            yield Timeout(sampler.think_time())
            is_update = sampler.next_is_update()
            started = self.env.now
            aborts = yield from self.execute(sampler, is_update, client_id)
            self.metrics.record_commit(
                is_update, self.env.now - started, aborts, now=self.env.now
            )
            if self.telemetry is not None:
                self.telemetry.count_commit(is_update)

    def execute(self, sampler: WorkloadSampler, is_update: bool, client_id: int):
        """Run one transaction to commit; returns the abort (retry) count."""
        raise NotImplementedError

    def route(
        self,
        candidates: List[SimReplica],
        client_id: int,
        is_update: bool = False,
        partitions: Tuple[int, ...] = (),
    ) -> SimReplica:
        """Pick an *available* replica according to the LB policy."""
        return select_replica(
            self.lb_policy, candidates, client_id, is_update, self._lb_rng,
            partitions=partitions,
        )

    # ------------------------------------------------------------------
    # Elastic membership (dynamic provisioning)
    # ------------------------------------------------------------------

    @property
    def member_count(self) -> int:
        """Replicas provisioned, healthy, and not draining away
        (controller view): a crashed replica is no longer a member."""
        return sum(
            1 for r in self.replicas if not r.draining and not r.failed
        )

    def upgrade_targets(self) -> List[SimReplica]:
        """Replicas a rolling restart cycles (single-master: slaves only,
        the master cannot be detached)."""
        pool = getattr(self, "slaves", self.replicas)
        return [r for r in pool if not r.draining and not r.failed]

    def _require_elastic_placement(self) -> None:
        """Partial partition maps pin the fleet: membership is static.

        (Re-placing partitions on join/leave — split, merge, migrate —
        is the natural follow-on; until then a partial map and elastic
        membership are mutually exclusive, loudly.)
        """
        if self.partition_map is not None and not self.partition_map.is_full:
            raise SimulationError(
                "elastic membership requires full replication; the "
                "partition map places data on a fixed fleet"
            )

    def add_replica(self, transfer_writesets: int = 0,
                    capacity: float = 1.0) -> SimReplica:
        """Grow the system by one replica; topology-specific."""
        raise NotImplementedError(f"{type(self).__name__} is not elastic")

    def remove_replica(self, replica: Optional[SimReplica] = None,
                       force: bool = False) -> SimReplica:
        """Drain (or, with ``force``, immediately detach) one replica."""
        raise NotImplementedError(f"{type(self).__name__} is not elastic")

    def _detach_now(self, replica: SimReplica) -> None:
        """Forget *replica* immediately (force-detach, no drain).

        The failure-replacement path: a crashed replica has nothing left
        to drain — its in-flight transactions, if any, still hold their
        snapshot registrations and release them normally, but the replica
        stops pinning the certifier's prune floor and leaves routing,
        propagation, and the convergence check at once.
        """
        if replica in self.replicas:
            self.replicas.remove(replica)
        slaves = getattr(self, "slaves", None)
        if slaves is not None and replica in slaves:
            slaves.remove(replica)

    def _join_process(self, replica: SimReplica, transfer_writesets: int):
        """Pay the join cost, then enter load-balancer rotation.

        State transfer is modeled as a bulk writeset replay: the joiner
        charges *transfer_writesets* writeset applications to its own CPU
        and disk before it may serve clients.  Writesets committed during
        the transfer were deferred (the replica is unavailable) and are
        flushed by the ``available`` setter, so the total join cost is
        transfer work plus catch-up backlog.
        """
        for _ in range(transfer_writesets):
            yield from replica.serve_writeset_inline()
        replica.available = True

    def _drain_and_detach(self, replica: SimReplica):
        """Wait out in-flight transactions, then forget the replica.

        While draining, the replica stays in ``self.replicas``: update
        propagation keeps covering it (deferred, since it is unavailable)
        and the certifier's prune floor keeps honouring the snapshots of
        its in-flight transactions.  Both obligations end exactly when it
        leaves the list.
        """
        while replica.active > 0:
            yield Timeout(self._DRAIN_POLL)
        self._detach_now(replica)


class StandaloneSystem(_BaseSystem):
    """A single snapshot-isolated database with directly attached clients."""

    design = "standalone"

    def __init__(self, env, spec, config, seed, metrics,
                 distribution="exponential", lb_policy=LEAST_LOADED,
                 capacities=None, partition_map=None):
        super().__init__(env, spec, config, seed, metrics, distribution,
                         lb_policy, capacities, partition_map)
        self.database = self._make_replica("standalone", 0,
                                           capacity=self._initial_capacity(0))
        self.certifier = Certifier()
        self._active_snapshots: Dict[int, int] = {}
        self._snapshot_token = 0

    def execute(self, sampler: WorkloadSampler, is_update: bool, client_id: int = 0):
        replica = self.database
        replica.active += 1
        aborts = 0
        yield from self._admit(replica)
        try:
            if not is_update:
                yield from replica.serve_read()
                return aborts
            partitions = sampler.sample_partition_set(is_update=True)
            for _ in range(self.config.max_retries):
                # The snapshot is taken at begin; the conflict window is the
                # full execution time on the standalone database (§2).
                snapshot = self.certifier.latest_version
                token = self._register_snapshot(snapshot)
                try:
                    yield from replica.serve_update_attempt()
                    writeset = sampler.sample_writeset(snapshot, partitions)
                    self.metrics.record_certification()
                    outcome = self.certifier.certify(writeset)
                finally:
                    self._release_snapshot(token)
                if outcome.committed:
                    return aborts
                aborts += 1
            raise RetryLimitExceeded(
                "standalone", "update", self.config.max_retries
            )
        finally:
            self._release(replica)
            replica.active -= 1

    def _register_snapshot(self, snapshot: int) -> int:
        self._snapshot_token += 1
        self._active_snapshots[self._snapshot_token] = snapshot
        return self._snapshot_token

    def _release_snapshot(self, token: int) -> None:
        self._active_snapshots.pop(token, None)
        floor = min(
            self._active_snapshots.values(),
            default=self.certifier.latest_version,
        )
        self.certifier.observe_snapshot(max(0, floor))


class MultiMasterSystem(_BaseSystem):
    """Figure 4: N symmetric replicas behind a load balancer + certifier."""

    design = "multi-master"

    def __init__(self, env, spec, config, seed, metrics,
                 distribution="exponential", lb_policy=LEAST_LOADED,
                 capacities=None, partition_map=None, certifier_spec=None):
        super().__init__(env, spec, config, seed, metrics, distribution,
                         lb_policy, capacities, partition_map)
        for index in range(config.replicas):
            self._make_replica(f"replica{index}", index,
                               capacity=self._initial_capacity(index),
                               hosted_partitions=self._hosted_for_index(index))
        self._members_created = config.replicas
        self.certifier = Certifier()
        self._active_snapshots: Dict[int, int] = {}
        self._snapshot_token = 0
        # Optional certifier occupancy (CertifierSpec.service_time): the
        # global certifier becomes a single-token queueing centre every
        # commit serialises through — the contention the sharded arm of
        # the certifier comparison removes.  ``None`` (the default, and
        # any spec with service_time == 0) leaves the commit path with
        # zero extra simulation events: byte-identical to before.
        self._certifier_spec = certifier_spec
        if certifier_spec is not None and certifier_spec.service_time > 0.0:
            self._certify_service = Semaphore(env, 1)
        else:
            self._certify_service = None

    def add_replica(self, transfer_writesets: int = 0,
                    capacity: float = 1.0) -> SimReplica:
        """Grow the cluster by one replica (elastic provisioning).

        The joiner adopts a state snapshot at the current propagation
        watermark (everything already handed to the replicas; versions
        certified but still inside their certification delay arrive
        normally afterwards) and pays for it with a bulk writeset replay
        of *transfer_writesets* applications before entering rotation.
        """
        self._require_elastic_placement()
        index = self._members_created
        self._members_created += 1
        replica = self._make_replica(f"replica{index}", index,
                                     capacity=capacity)
        replica.sync_to(self._propagated_version)
        replica.available = False
        self.env.start(self._join_process(replica, transfer_writesets))
        return replica

    def remove_replica(self, replica: Optional[SimReplica] = None,
                       force: bool = False) -> SimReplica:
        """Shrink the cluster by one replica: drain, then detach.

        Without a target, picks the youngest fully-joined replica; at
        least one healthy replica always remains.  ``force`` detaches
        immediately without draining — the replacement path for crashed
        replicas, whose state is already lost.
        """
        self._require_elastic_placement()
        if replica is None:
            candidates = [
                r for r in self.replicas if not r.draining and r.available
            ]
            if len(candidates) <= 1:
                raise SimulationError(
                    "cannot remove the last available replica"
                )
            replica = candidates[-1]
        elif replica not in self.replicas:
            raise SimulationError(f"{replica.name} is not attached")
        survivors = [
            r for r in self.replicas
            if r is not replica and not r.draining and not r.failed
        ]
        if not survivors:
            raise SimulationError("cannot remove the last healthy replica")
        if force:
            self._detach_now(replica)
            return replica
        replica.draining = True
        replica.available = False
        self.env.start(self._drain_and_detach(replica))
        return replica

    def execute(self, sampler: WorkloadSampler, is_update: bool, client_id: int = 0):
        telemetry = self.telemetry
        trace = (
            telemetry.tracer.start_trace()
            if telemetry is not None else None
        )
        route_start = self.env.now
        yield Timeout(self.config.load_balancer_delay)
        # Partitioned workloads pick their data before routing: the
        # transaction must land on a replica hosting what it touches.
        partitions = sampler.sample_partition_set(is_update)
        replica = self.route(self.replicas, client_id, is_update, partitions)
        if telemetry is not None:
            telemetry.count_route(replica.name, is_update)
            if trace is not None:
                telemetry.tracer.add_span(
                    trace, tel_schema.SPAN_ROUTE, route_start,
                    self.env.now, subject=replica.name,
                    policy=self.lb_policy,
                )
        replica.active += 1
        aborts = 0
        yield from self._admit(replica)
        try:
            if not is_update:
                # Read-only transactions execute entirely locally and always
                # commit (§2: GSI read-only transactions never abort).
                if telemetry is not None:
                    telemetry.observe_staleness(
                        replica.name, replica.applied_version,
                        self.certifier.latest_version, self.env.now,
                    )
                work_start = self.env.now
                yield from replica.serve_read()
                if trace is not None:
                    telemetry.tracer.add_span(
                        trace, tel_schema.SPAN_EXECUTE, work_start,
                        self.env.now, subject=replica.name, kind="read",
                    )
                return aborts
            for attempt in range(1, self.config.max_retries + 1):
                snapshot = replica.applied_version
                self.metrics.record_snapshot_age(
                    self.certifier.latest_version - snapshot
                )
                if telemetry is not None:
                    telemetry.observe_staleness(
                        replica.name, snapshot,
                        self.certifier.latest_version, self.env.now,
                    )
                token = self._register_snapshot(snapshot)
                try:
                    work_start = self.env.now
                    yield from replica.serve_update_attempt()
                    writeset = sampler.sample_writeset(snapshot, partitions)
                    if trace is not None:
                        telemetry.tracer.add_span(
                            trace, tel_schema.SPAN_EXECUTE, work_start,
                            self.env.now, subject=replica.name,
                            kind="update", attempt=attempt,
                        )
                    self.metrics.record_certification()
                    # The certifier orders and checks the writeset on
                    # arrival; the response (and update propagation) reach
                    # the replicas one certification delay later (§6.3.2).
                    certify_start = self.env.now
                    if telemetry is not None:
                        telemetry.certify_begin()
                    try:
                        if self._certify_service is not None:
                            # Single-token occupancy: every commit holds
                            # the one certifier server for service_time.
                            yield Acquire(self._certify_service)
                            try:
                                yield Timeout(
                                    self._certifier_spec.service_time
                                )
                                outcome = self.certifier.certify(writeset)
                            finally:
                                self._certify_service.release()
                        else:
                            outcome = self.certifier.certify(writeset)
                        yield Timeout(self.config.certifier_delay)
                    finally:
                        if telemetry is not None:
                            telemetry.certify_end()
                finally:
                    self._release_snapshot(token)
                if telemetry is not None:
                    if outcome.committed:
                        telemetry.note_commit(
                            outcome.commit_version, self.env.now
                        )
                        if telemetry.auditor is not None:
                            telemetry.auditor.on_commit(
                                outcome.commit_version,
                                writeset.partitions, replica.name,
                            )
                    if trace is not None:
                        tags = {"attempt": attempt,
                                "committed": outcome.committed}
                        if not outcome.committed:
                            tags["abort"] = tel_schema.ABORT_WW_CONFLICT
                            tags["conflicts"] = len(
                                outcome.conflicting_keys
                            )
                        telemetry.tracer.add_span(
                            trace, tel_schema.SPAN_CERTIFY, certify_start,
                            self.env.now, subject="certifier", **tags,
                        )
                if outcome.committed:
                    if trace is not None:
                        # The appliers find the trace via the version map
                        # (note before propagation starts), and the
                        # propagation span rides the certification
                        # response (§6.3.2): decision to fan-out.
                        telemetry.tracer.note_version(
                            outcome.commit_version, trace
                        )
                        telemetry.tracer.add_span(
                            trace, tel_schema.SPAN_PROPAGATE,
                            certify_start, self.env.now,
                            subject="channel", fanout=len(self.replicas),
                        )
                    self._propagate(outcome.commit_version, origin=replica,
                                    partitions=writeset.partitions)
                    return aborts
                aborts += 1
            raise RetryLimitExceeded(
                "multi-master", "update", self.config.max_retries
            )
        finally:
            self._release(replica)
            replica.active -= 1

    def _propagate(self, commit_version: int, origin: SimReplica,
                   partitions: Tuple[int, ...] = ()) -> None:
        """Hand one committed version to every replica.

        Partial replication: only replicas hosting one of the writeset's
        partitions pay the application work; everyone else advances its
        watermark for free (the version-marker bookkeeping that keeps the
        single global snapshot clock contiguous).
        """
        self._propagated_version = commit_version
        for replica in self.replicas:
            charged = replica is not origin and hosts_any(replica, partitions)
            replica.enqueue_writeset(commit_version, charged=charged)

    def _register_snapshot(self, snapshot: int) -> int:
        self._snapshot_token += 1
        self._active_snapshots[self._snapshot_token] = snapshot
        return self._snapshot_token

    def _release_snapshot(self, token: int) -> None:
        self._active_snapshots.pop(token, None)
        # Future transactions take their snapshot from a replica's applied
        # version, which can lag the certifier; pruning must keep history
        # back to the most-lagging replica as well as all active snapshots.
        lagging = min(replica.applied_version for replica in self.replicas)
        floor = min(
            min(self._active_snapshots.values(), default=lagging),
            lagging,
        )
        self.certifier.observe_snapshot(max(0, floor))


class SingleMasterSystem(_BaseSystem):
    """Figure 5: one master for updates, N-1 slaves for reads."""

    design = "single-master"

    def __init__(self, env, spec, config, seed, metrics,
                 distribution="exponential", lb_policy=LEAST_LOADED,
                 capacities=None, partition_map=None):
        super().__init__(env, spec, config, seed, metrics, distribution,
                         lb_policy, capacities, partition_map)
        # The master executes every update, so it hosts every partition
        # implicitly; a partition map only constrains the slaves.
        self.master = self._make_replica("master", "master",
                                         capacity=self._initial_capacity(0))
        self.slaves = [
            self._make_replica(
                f"slave{index}", index,
                capacity=self._initial_capacity(index + 1),
                hosted_partitions=self._hosted_for_index(index + 1),
            )
            for index in range(config.replicas - 1)
        ]
        self._members_created = config.replicas - 1
        self.certifier = Certifier()
        self._active_snapshots: Dict[int, int] = {}
        self._snapshot_token = 0

    def add_replica(self, transfer_writesets: int = 0,
                    capacity: float = 1.0) -> SimReplica:
        """Grow the system by one read-only slave (the master is fixed)."""
        self._require_elastic_placement()
        index = self._members_created
        self._members_created += 1
        slave = self._make_replica(f"slave{index}", index, capacity=capacity)
        self.slaves.append(slave)
        slave.sync_to(self._propagated_version)
        slave.available = False
        self.env.start(self._join_process(slave, transfer_writesets))
        return slave

    def remove_replica(self, replica: Optional[SimReplica] = None,
                       force: bool = False) -> SimReplica:
        """Drain (or force-detach) one slave — never the master."""
        self._require_elastic_placement()
        if replica is None:
            candidates = [
                r for r in self.slaves if not r.draining and r.available
            ]
            if not candidates:
                raise SimulationError(
                    "no removable slave (the master cannot be removed)"
                )
            replica = candidates[-1]
        elif replica is self.master:
            raise SimulationError("the master cannot be removed")
        elif replica not in self.slaves:
            raise SimulationError(f"{replica.name} is not an attached slave")
        if force:
            self._detach_now(replica)
            return replica
        replica.draining = True
        replica.available = False
        self.env.start(self._drain_and_detach(replica))
        return replica

    def execute(self, sampler: WorkloadSampler, is_update: bool, client_id: int = 0):
        telemetry = self.telemetry
        trace = (
            telemetry.tracer.start_trace()
            if telemetry is not None else None
        )
        route_start = self.env.now
        yield Timeout(self.config.load_balancer_delay)
        partitions = sampler.sample_partition_set(is_update)
        if not is_update:
            # Reads may only land on replicas hosting their partition
            # (the master hosts everything).
            replica = self.route(self.replicas, client_id,
                                 partitions=partitions)
            if telemetry is not None:
                telemetry.count_route(replica.name, False)
                if trace is not None:
                    telemetry.tracer.add_span(
                        trace, tel_schema.SPAN_ROUTE, route_start,
                        self.env.now, subject=replica.name,
                        policy=self.lb_policy,
                    )
            replica.active += 1
            yield from self._admit(replica)
            try:
                if telemetry is not None:
                    telemetry.observe_staleness(
                        replica.name, replica.applied_version,
                        self.certifier.latest_version, self.env.now,
                    )
                work_start = self.env.now
                yield from replica.serve_read()
                if trace is not None:
                    telemetry.tracer.add_span(
                        trace, tel_schema.SPAN_EXECUTE, work_start,
                        self.env.now, subject=replica.name, kind="read",
                    )
                return 0
            finally:
                self._release(replica)
                replica.active -= 1

        if telemetry is not None:
            telemetry.count_route(self.master.name, True)
            if trace is not None:
                telemetry.tracer.add_span(
                    trace, tel_schema.SPAN_ROUTE, route_start,
                    self.env.now, subject=self.master.name,
                    policy="master",
                )
        self.master.active += 1
        aborts = 0
        yield from self._admit(self.master)
        try:
            for attempt in range(1, self.config.max_retries + 1):
                # The master runs plain SI: the snapshot is its latest
                # committed version, and the conflict window is the
                # execution time on the master (§2).
                snapshot = self.certifier.latest_version
                if telemetry is not None:
                    telemetry.observe_staleness(
                        self.master.name, snapshot,
                        self.certifier.latest_version, self.env.now,
                    )
                token = self._register_snapshot(snapshot)
                try:
                    work_start = self.env.now
                    yield from self.master.serve_update_attempt()
                    writeset = sampler.sample_writeset(snapshot, partitions)
                    if trace is not None:
                        telemetry.tracer.add_span(
                            trace, tel_schema.SPAN_EXECUTE, work_start,
                            self.env.now, subject=self.master.name,
                            kind="update", attempt=attempt,
                        )
                    self.metrics.record_certification()
                    certify_start = self.env.now
                    if telemetry is not None:
                        telemetry.certify_begin()
                    try:
                        outcome = self.certifier.certify(writeset)
                    finally:
                        if telemetry is not None:
                            telemetry.certify_end()
                finally:
                    self._release_snapshot(token)
                if telemetry is not None:
                    if outcome.committed:
                        telemetry.note_commit(
                            outcome.commit_version, self.env.now
                        )
                        if telemetry.auditor is not None:
                            telemetry.auditor.on_commit(
                                outcome.commit_version,
                                writeset.partitions, self.master.name,
                            )
                    if trace is not None:
                        tags = {"attempt": attempt,
                                "committed": outcome.committed}
                        if not outcome.committed:
                            tags["abort"] = tel_schema.ABORT_WW_CONFLICT
                            tags["conflicts"] = len(
                                outcome.conflicting_keys
                            )
                        telemetry.tracer.add_span(
                            trace, tel_schema.SPAN_CERTIFY, certify_start,
                            self.env.now, subject="certifier", **tags,
                        )
                if outcome.committed:
                    if trace is not None:
                        telemetry.tracer.note_version(
                            outcome.commit_version, trace
                        )
                        telemetry.tracer.add_span(
                            trace, tel_schema.SPAN_PROPAGATE,
                            certify_start, self.env.now,
                            subject="channel",
                            fanout=len(self.slaves) + 1,
                        )
                    self._propagated_version = outcome.commit_version
                    self.master.enqueue_writeset(
                        outcome.commit_version, charged=False
                    )
                    for slave in self.slaves:
                        # Partial replication: non-hosting slaves advance
                        # their watermark for free (version marker).
                        slave.enqueue_writeset(
                            outcome.commit_version,
                            charged=hosts_any(slave, writeset.partitions),
                        )
                    return aborts
                aborts += 1
            raise RetryLimitExceeded(
                "single-master", "update", self.config.max_retries
            )
        finally:
            self._release(self.master)
            self.master.active -= 1

    def _register_snapshot(self, snapshot: int) -> int:
        self._snapshot_token += 1
        self._active_snapshots[self._snapshot_token] = snapshot
        return self._snapshot_token

    def _release_snapshot(self, token: int) -> None:
        self._active_snapshots.pop(token, None)
        floor = min(
            self._active_snapshots.values(),
            default=self.certifier.latest_version,
        )
        self.certifier.observe_snapshot(max(0, floor))
